#!/usr/bin/env python3
"""Validate telemetry artifacts produced by `qdd --metrics-out / --trace-out
/ --record-timeline`.

Usage:
    check_trace.py FILE [FILE ...]

Each file's format is detected from its content:

* **metrics snapshot** — a JSON object with ``"schema": "qdd-metrics-v1"``
  (from ``--metrics-out`` or the ``metrics`` field embedded in
  ``BENCH_*.json`` workloads);
* **Chrome trace** — a JSON object with a ``traceEvents`` array (from
  ``--trace-out foo.json``), loadable in ``chrome://tracing`` / Perfetto;
* **JSONL event stream** — one JSON object per line (from
  ``--trace-out foo.jsonl``);
* **execution timeline** — JSONL whose first line carries
  ``"schema": "qdd-timeline-v1"`` (from ``--record-timeline``), the input
  of ``qdd inspect``.

Exits non-zero on the first malformed file, printing what was wrong and
where. Unlike bench_diff.py this *is* a gate: the output formats are a
published contract, not a noisy measurement. Validated-but-lossy artifacts
(events or records dropped at a recording cap) emit a GitHub
``::warning::`` annotation without failing the check.
"""

import json
import sys

METRICS_SCHEMA = "qdd-metrics-v1"
TIMELINE_SCHEMA = "qdd-timeline-v1"


def fail(path, msg):
    raise SystemExit(f"check_trace: {path}: {msg}")


def warn(path, msg):
    print(f"::warning file={path}::{msg}")


def check_metrics(path, doc):
    """A --metrics-out snapshot: four name->record maps plus a drop count."""
    for key, kind in [("counters", int), ("gauges", (int, float)),
                      ("histograms", dict), ("spans", dict)]:
        section = doc.get(key)
        if not isinstance(section, dict):
            fail(path, f"`{key}` must be an object, got {type(section).__name__}")
        for name, value in section.items():
            if not isinstance(value, kind):
                fail(path, f"{key}[{name!r}]: expected {kind}, got {value!r}")
    if not isinstance(doc.get("dropped_events"), int):
        fail(path, "`dropped_events` must be an integer")
    if doc["dropped_events"] > 0:
        warn(path, f"metrics snapshot dropped {doc['dropped_events']} events "
                   f"at the buffer cap; the trace is incomplete")
    for name, h in doc["histograms"].items():
        bucket_total = sum(c for _, _, c in h.get("buckets", []))
        if bucket_total != h.get("count"):
            fail(path, f"histogram {name!r}: buckets sum to {bucket_total}, "
                       f"count says {h.get('count')}")
        for lo, hi, c in h["buckets"]:
            if not (0 <= lo <= hi and c > 0):
                fail(path, f"histogram {name!r}: bad bucket [{lo},{hi},{c}]")
    for name, s in doc["spans"].items():
        for field in ("count", "total_ns", "max_ns"):
            if not isinstance(s.get(field), int) or s[field] < 0:
                fail(path, f"span {name!r}: bad `{field}`: {s.get(field)!r}")
        if s["max_ns"] > s["total_ns"]:
            fail(path, f"span {name!r}: max_ns {s['max_ns']} exceeds "
                       f"total_ns {s['total_ns']}")
        if s["count"] == 0 and s["total_ns"] > 0:
            fail(path, f"span {name!r}: time recorded with zero closings")
    return (f"metrics snapshot: {len(doc['counters'])} counters, "
            f"{len(doc['gauges'])} gauges, {len(doc['spans'])} spans, "
            f"{doc['dropped_events']} dropped")


def check_event(path, where, ev):
    """One event record (a JSONL line or a Chrome trace entry's source)."""
    if not isinstance(ev, dict):
        fail(path, f"{where}: expected an object, got {type(ev).__name__}")
    kind = ev.get("kind")
    if kind not in ("span", "instant"):
        fail(path, f"{where}: bad `kind` {kind!r}")
    if not isinstance(ev.get("name"), str) or not ev["name"]:
        fail(path, f"{where}: missing `name`")
    for field in ("ts_us", "depth") + (("dur_us",) if kind == "span" else ()):
        if not isinstance(ev.get(field), int) or ev[field] < 0:
            fail(path, f"{where}: bad `{field}`: {ev.get(field)!r}")
    if not isinstance(ev.get("args"), dict):
        fail(path, f"{where}: `args` must be an object")


def check_jsonl(path, text):
    lines = [l for l in text.splitlines() if l.strip()]
    kinds = {"span": 0, "instant": 0}
    for i, line in enumerate(lines, 1):
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            fail(path, f"line {i}: not JSON ({e})")
        check_event(path, f"line {i}", ev)
        kinds[ev["kind"]] += 1
    return (f"JSONL stream: {len(lines)} events "
            f"({kinds['span']} spans, {kinds['instant']} instants)")


def check_chrome(path, doc):
    """The subset of the trace_event format the converter emits."""
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, "`traceEvents` must be an array")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(path, f"{where}: expected an object")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            fail(path, f"{where}: bad `ph` {ph!r} (converter emits X, i, M)")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(path, f"{where}: missing `name`")
        if ph == "M":
            # Metadata record: names a process or thread, no timestamp.
            if ev["name"] not in ("process_name", "thread_name"):
                fail(path, f"{where}: bad metadata `name` {ev['name']!r}")
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                fail(path, f"{where}: metadata needs args.name")
            continue
        for field in ("ts", "pid", "tid") + (("dur",) if ph == "X" else ()):
            if not isinstance(ev.get(field), (int, float)) or ev[field] < 0:
                fail(path, f"{where}: bad `{field}`: {ev.get(field)!r}")
    return f"Chrome trace: {len(events)} trace events"


# Per-op delta fields that must never go negative in a timeline record.
TIMELINE_DELTAS = ("dur_us", "vec_nodes", "mat_nodes", "peak_nodes",
                   "nodes_allocated", "nodes_freed", "complex_entries",
                   "compute_hits", "compute_misses", "gate_hits",
                   "gate_misses")


def check_timeline(path, text):
    """A --record-timeline stream: header, op records, snapshots, spans."""
    lines = [l for l in text.splitlines() if l.strip()]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        fail(path, f"line 1: not JSON ({e})")
    for field in ("circuit", "qubits", "ops", "snapshot_stride", "workers",
                  "records", "dropped_records"):
        if field not in header:
            fail(path, f"header: missing `{field}`")
    ops = 0            # op lines seen
    spans = 0
    snapshots = 0
    last_index = {}    # (worker, run) -> last op_index
    seen_ops = set()   # (worker, run, op_index) valid snapshot targets
    for i, line in enumerate(lines[1:], 2):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(path, f"line {i}: not JSON ({e})")
        kind = rec.get("type")
        if kind == "op":
            ops += 1
            for field in TIMELINE_DELTAS:
                v = rec.get(field, 0)
                if not isinstance(v, int) or v < 0:
                    fail(path, f"line {i}: bad `{field}`: {v!r}")
            key = (rec.get("worker"), rec.get("run"))
            idx = rec.get("op_index")
            if not isinstance(idx, int) or idx < 0:
                fail(path, f"line {i}: bad `op_index`: {idx!r}")
            if key in last_index and idx <= last_index[key]:
                fail(path, f"line {i}: op_index {idx} not monotonic within "
                           f"worker/run {key} (previous {last_index[key]})")
            last_index[key] = idx
            seen_ops.add((key[0], key[1], idx))
            for ev in rec.get("events", []):
                if not isinstance(ev.get("kind"), str) or not ev["kind"]:
                    fail(path, f"line {i}: event without `kind`")
        elif kind == "snapshot":
            snapshots += 1
            ref = (rec.get("worker"), rec.get("run"), rec.get("op_index"))
            if ref not in seen_ops:
                fail(path, f"line {i}: snapshot references unknown op "
                           f"worker={ref[0]} run={ref[1]} op_index={ref[2]}")
            if not isinstance(rec.get("graph"), dict):
                fail(path, f"line {i}: snapshot without an inline `graph`")
        elif kind == "span":
            spans += 1
            for field in ("ts_us", "dur_us"):
                v = rec.get(field)
                if not isinstance(v, int) or v < 0:
                    fail(path, f"line {i}: bad `{field}`: {v!r}")
        else:
            fail(path, f"line {i}: unknown record type {kind!r}")
    if ops != header["records"]:
        fail(path, f"header says {header['records']} records, "
                   f"stream has {ops}")
    if header["dropped_records"] > 0:
        warn(path, f"timeline dropped {header['dropped_records']} records at "
                   f"the recording cap; per-op attribution is incomplete")
    return (f"timeline: {ops} ops over {len(last_index)} worker/run passes, "
            f"{snapshots} snapshots, {spans} spans, "
            f"{header['dropped_records']} dropped")


def check_file(path):
    with open(path) as f:
        text = f.read()
    if not text.strip():
        fail(path, "empty file")
    first = text.strip().splitlines()[0]
    try:
        head = json.loads(first)
    except json.JSONDecodeError:
        head = None
    if isinstance(head, dict) and head.get("schema") == TIMELINE_SCHEMA:
        return check_timeline(path, text)
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        return check_jsonl(path, text)
    if isinstance(doc, dict) and doc.get("schema") == METRICS_SCHEMA:
        return check_metrics(path, doc)
    if isinstance(doc, dict) and "traceEvents" in doc:
        return check_chrome(path, doc)
    if isinstance(doc, dict) and "schema" in doc:
        fail(path, f"unknown schema {doc['schema']!r} (this checker knows "
                   f"{METRICS_SCHEMA!r} and {TIMELINE_SCHEMA!r})")
    # A one-event JSONL file parses as a single JSON object; accept it.
    if isinstance(doc, dict) and "kind" in doc:
        return check_jsonl(path, text)
    fail(path, "unrecognized format: neither a metrics snapshot, a Chrome "
               "trace, a JSONL event stream, nor an execution timeline")


def main():
    if len(sys.argv) < 2:
        raise SystemExit(__doc__.strip().splitlines()[3].strip())
    for path in sys.argv[1:]:
        print(f"{path}: OK ({check_file(path)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
