#!/usr/bin/env python3
"""Compare two bench_suite JSON files and warn on wall-time regressions.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]

Workloads are matched on (family, phase, n). A regression is a current
wall time more than ``--threshold`` percent (default 15) above baseline.
The report is advisory: the exit code is always 0, because shared-runner
timings are too noisy to gate a merge on. The job log (and any wrapping
`::warning::` annotations) is the product.
"""

import argparse
import json
import sys

# Workloads faster than this are dominated by timer noise; percentage
# comparisons on them are meaningless.
MIN_MEANINGFUL_MS = 1.0


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        (w["family"], w["phase"], w["n"]): w
        for w in data.get("workloads", [])
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="regression warning threshold in percent")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("bench_diff: no common workloads; nothing to compare")
        return 0

    regressions = []
    print(f"{'workload':<28} {'base ms':>10} {'cur ms':>10} {'delta':>8}")
    for key in shared:
        b, c = base[key]["wall_ms"], cur[key]["wall_ms"]
        name = f"{key[0]}/{key[1]}/n={key[2]}"
        if b <= 0:
            print(f"{name:<28} {b:>10.3f} {c:>10.3f}     n/a")
            continue
        delta = (c - b) / b * 100.0
        flag = ""
        if delta > args.threshold and max(b, c) >= MIN_MEANINGFUL_MS:
            flag = "  <-- REGRESSION"
            regressions.append((name, b, c, delta))
        print(f"{name:<28} {b:>10.3f} {c:>10.3f} {delta:>+7.1f}%{flag}")

    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"bench_diff: {len(missing)} baseline workload(s) missing "
              f"from current run (e.g. a --small subset); skipped")

    if regressions:
        print()
        for name, b, c, delta in regressions:
            # `::warning::` renders as an annotation on GitHub Actions and
            # is harmless noise anywhere else.
            print(f"::warning::bench regression {name}: "
                  f"{b:.3f} ms -> {c:.3f} ms ({delta:+.1f}%, "
                  f"threshold {args.threshold:.0f}%)")
    else:
        print(f"\nbench_diff: no regressions above {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
