#!/usr/bin/env python3
"""Compare two bench_suite JSON files and warn on wall-time regressions.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]
                  [--hit-rate-threshold POINTS]

Workloads are matched on (family, phase, n). A regression is a current
wall time more than ``--threshold`` percent (default 15) above baseline.
Cache hit rates (compute tables and the gate-DD cache) and peak node
counts are diffed as well: a hit rate dropping by more than
``--hit-rate-threshold`` percentage points (default 5) earns a warning,
since hit-rate collapses are the usual *cause* behind wall-time moves.
The report is advisory: the exit code is always 0, because shared-runner
timings are too noisy to gate a merge on. The job log (and any wrapping
`::warning::` annotations) is the product.
"""

import argparse
import json
import sys

# Workloads faster than this are dominated by timer noise; percentage
# comparisons on them are meaningless.
MIN_MEANINGFUL_MS = 1.0


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        (w["family"], w["phase"], w["n"]): w
        for w in data.get("workloads", [])
    }


def hit_rate_points(workload, key):
    """A cache hit rate as percentage points, or None when absent/unprobed."""
    rate = workload.get(key)
    lookups_key = key.replace("_hit_rate", "_lookups")
    if rate is None or workload.get(lookups_key, 0) == 0:
        return None
    return rate * 100.0


def diff_metrics(name, b, c, hit_rate_threshold, warnings):
    """Compares the embedded metrics of one workload; appends to warnings."""
    for key, label in [("cache_hit_rate", "compute-table hit rate"),
                       ("gate_cache_hit_rate", "gate-DD-cache hit rate")]:
        br = hit_rate_points(b, key)
        cr = hit_rate_points(c, key)
        if br is None or cr is None:
            continue
        drop = br - cr
        if drop > hit_rate_threshold:
            warnings.append(
                f"{name}: {label} dropped {br:.1f} -> {cr:.1f} points "
                f"({drop:.1f}-point drop, threshold {hit_rate_threshold:.0f})")
    bp, cp = b.get("peak_nodes"), c.get("peak_nodes")
    if bp and cp and bp > 0:
        growth = (cp - bp) / bp * 100.0
        if growth > 25.0:
            warnings.append(
                f"{name}: peak nodes grew {bp} -> {cp} ({growth:+.0f}%)")
    # Peak *matrix* nodes: the operator-DD footprint identity skip keeps
    # small. Tighter threshold than the combined peak — a growth here means
    # gates or system matrices re-materialized identity structure.
    bm, cm = b.get("mat_peak_nodes"), c.get("mat_peak_nodes")
    if bm and cm and bm > 0:
        growth = (cm - bm) / bm * 100.0
        if growth > 10.0:
            warnings.append(
                f"{name}: peak matrix nodes grew {bm} -> {cm} "
                f"({growth:+.0f}%, threshold 10%)")
    # Sampling throughput (higher is better — the inverse of wall time, so
    # a *drop* is the regression direction).
    bs, cs = b.get("shots_per_sec", 0.0), c.get("shots_per_sec", 0.0)
    if bs > 0 and cs > 0:
        drop = (bs - cs) / bs * 100.0
        if drop > 15.0:
            warnings.append(
                f"{name}: sampling throughput fell {bs:,.0f} -> {cs:,.0f} "
                f"shots/s ({drop:.0f}% drop)")
    # Thread-scaling speedup (the scaling family records each run's
    # wall-time speedup over its own 1-thread run; other families record
    # 0.0). A 4-thread speedup below 80% of the baseline's means the
    # parallel path lost scalability even if absolute wall time moved less.
    bsp, csp = b.get("speedup", 0.0), c.get("speedup", 0.0)
    if b.get("threads", 0) == 4 and bsp > 0 and csp > 0 and csp < 0.8 * bsp:
        warnings.append(
            f"{name}: 4-thread speedup fell {bsp:.2f}x -> {csp:.2f}x "
            f"(below 80% of the baseline's)")
    # Approximation fidelity (the approx family records the achieved lower
    # bound; other families omit the field or record 1.0). A drop of more
    # than 5 points means the same node budget now costs more of the state.
    bf, cf = b.get("fidelity"), c.get("fidelity")
    if bf is not None and cf is not None:
        fidelity_drop = (bf - cf) * 100.0
        if fidelity_drop > 5.0:
            warnings.append(
                f"{name}: fidelity lower bound dropped {bf:.4f} -> {cf:.4f} "
                f"({fidelity_drop:.1f}-point drop, threshold 5)")
    # Timeline-recording overhead (the sim family re-times each workload
    # with the execution-timeline recorder armed at snapshot stride 16).
    # Unlike the diffs above this is an absolute bound on the *current*
    # value: the recorder's contract is <5% wall time regardless of what
    # the baseline paid.
    overhead = c.get("timeline_overhead_pct")
    if (overhead is not None and overhead > 5.0
            and c.get("wall_ms", 0.0) >= MIN_MEANINGFUL_MS):
        warnings.append(
            f"{name}: timeline recording costs {overhead:.1f}% wall time "
            f"(stride 16 vs recording off, threshold 5%)")
    # GC pause totals from the embedded telemetry snapshot, when both sides
    # carry one (older baselines predate the `metrics` field).
    bgc = gc_total_ms(b)
    cgc = gc_total_ms(c)
    if bgc is not None and cgc is not None and cgc - bgc > 1.0:
        warnings.append(
            f"{name}: GC pause total grew {bgc:.2f} ms -> {cgc:.2f} ms")


def gc_total_ms(workload):
    spans = workload.get("metrics", {}).get("spans", {})
    gc = spans.get("core.gc")
    if gc is None:
        return None
    return gc.get("total_ns", 0) / 1e6


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="regression warning threshold in percent")
    ap.add_argument("--hit-rate-threshold", type=float, default=5.0,
                    help="hit-rate drop warning threshold in percentage points")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("bench_diff: no common workloads; nothing to compare")
        return 0

    regressions = []
    metric_warnings = []
    print(f"{'workload':<28} {'base ms':>10} {'cur ms':>10} {'delta':>8}")
    for key in shared:
        b, c = base[key]["wall_ms"], cur[key]["wall_ms"]
        name = f"{key[0]}/{key[1]}/n={key[2]}"
        diff_metrics(name, base[key], cur[key],
                     args.hit_rate_threshold, metric_warnings)
        if b <= 0:
            print(f"{name:<28} {b:>10.3f} {c:>10.3f}     n/a")
            continue
        delta = (c - b) / b * 100.0
        flag = ""
        if delta > args.threshold and max(b, c) >= MIN_MEANINGFUL_MS:
            flag = "  <-- REGRESSION"
            regressions.append((name, b, c, delta))
        extra = ""
        bs = base[key].get("shots_per_sec", 0.0)
        cs = cur[key].get("shots_per_sec", 0.0)
        if bs > 0 and cs > 0:
            extra = f"  ({bs:,.0f} -> {cs:,.0f} shots/s)"
        print(f"{name:<28} {b:>10.3f} {c:>10.3f} {delta:>+7.1f}%{flag}{extra}")

    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"bench_diff: {len(missing)} baseline workload(s) missing "
              f"from current run (e.g. a --small subset); skipped")

    if regressions:
        print()
        for name, b, c, delta in regressions:
            # `::warning::` renders as an annotation on GitHub Actions and
            # is harmless noise anywhere else.
            print(f"::warning::bench regression {name}: "
                  f"{b:.3f} ms -> {c:.3f} ms ({delta:+.1f}%, "
                  f"threshold {args.threshold:.0f}%)")
    else:
        print(f"\nbench_diff: no regressions above {args.threshold:.0f}%")
    if metric_warnings:
        print()
        for w in metric_warnings:
            print(f"::warning::bench metrics {w}")
    else:
        print("bench_diff: no metric warnings "
              f"(hit-rate drop threshold {args.hit_rate_threshold:.0f} points)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
