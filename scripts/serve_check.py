#!/usr/bin/env python3
"""End-to-end gate for `qdd serve`: the daemon must agree with the CLI.

Usage:
    serve_check.py [QDD_BINARY]

Starts a daemon on an ephemeral port (parsing the bound address from the
``qdd serve listening on http://…`` handshake line), then checks the four
contracts the HTTP surface publishes:

1. **Histogram identity** — for each pinned circuit, the JSONL histogram
   streamed by ``POST /v1/shots`` must be *byte-identical* to the file the
   CLI writes via ``simulate --shots N --seed S --histogram-out``. Same
   engine, same seed, same bytes — the daemon is a transport, not a fork.
2. **Verification** — ``POST /v1/verify`` on a circuit against itself
   reports ``equivalent`` with the construction strategy.
3. **Panic containment** — with ``--test-hooks``, a request carrying
   ``test_panic_at_shot`` gets a typed 500 (``worker_panicked``) and the
   daemon keeps serving: the very next request must succeed.
4. **Quota rejection** — a shots ask over the server ceiling gets a typed
   429 whose ``budget`` field names the tripped dimension.

Exits non-zero on the first violation. Like check_trace.py this *is* a
gate: the HTTP surface is a published contract, not a measurement.
"""

import http.client
import json
import os
import re
import subprocess
import sys
import tempfile

SHOTS = 4096
SEED = 7
QUOTA_SHOTS = 1_000_000
CIRCUITS = ["qft16", "cliffordt15"]


def fail(msg):
    raise SystemExit(f"serve_check: {msg}")


def post(addr, path, body):
    """One request over a fresh connection (the daemon is one-shot per
    connection); returns (status, decoded body text). http.client handles
    the chunked transfer coding the shots endpoint uses."""
    host, port = addr.rsplit(":", 1)
    conn = http.client.HTTPConnection(host, int(port), timeout=120)
    try:
        conn.request("POST", path, body=json.dumps(body),
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, resp.read().decode()
    finally:
        conn.close()


def start_daemon(qdd):
    proc = subprocess.Popen(
        [qdd, "serve", "--port", "0", "--test-hooks",
         "--quota-shots", str(QUOTA_SHOTS)],
        stdout=subprocess.PIPE, text=True)
    # The handshake line is the startup contract: wrappers block on it.
    line = proc.stdout.readline()
    m = re.match(r"qdd serve listening on http://(\S+)", line)
    if not m:
        proc.kill()
        fail(f"bad handshake line: {line!r}")
    return proc, m.group(1)


def check_histograms(qdd, addr):
    for name in CIRCUITS:
        path = f"circuits/{name}.qasm"
        qasm = open(path).read()
        with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as f:
            hist_path = f.name
        try:
            subprocess.run(
                [qdd, "simulate", path, "--shots", str(SHOTS),
                 "--seed", str(SEED), "--histogram-out", hist_path],
                check=True, stdout=subprocess.DEVNULL)
            cli = open(hist_path).read()
        finally:
            os.unlink(hist_path)
        status, body = post(addr, "/v1/shots",
                            {"qasm": qasm, "shots": SHOTS, "seed": SEED})
        if status != 200:
            fail(f"{name}: /v1/shots returned {status}: {body[:200]}")
        # The stream is the CLI file plus one stats trailer line.
        lines = body.splitlines(keepends=True)
        if not lines or not lines[-1].startswith('{"stats"'):
            fail(f"{name}: stream does not end with a stats trailer")
        http_hist = "".join(lines[:-1])
        if http_hist != cli:
            fail(f"{name}: HTTP histogram differs from the CLI's "
                 f"--histogram-out ({len(http_hist)} vs {len(cli)} bytes)")
        trailer = json.loads(lines[-1])
        if trailer["stats"]["regime"] not in (
                "no-measurement", "terminal-measurement", "mid-circuit"):
            fail(f"{name}: bad regime {trailer['stats']['regime']!r}")
        print(f"{name}: HTTP histogram bit-identical to CLI "
              f"({len(cli.splitlines())} lines, regime "
              f"{trailer['stats']['regime']})")


def check_verify(addr):
    qasm = open(f"circuits/{CIRCUITS[0]}.qasm").read()
    status, body = post(addr, "/v1/verify",
                        {"left": qasm, "right": qasm,
                         "strategy": "proportional"})
    if status != 200:
        fail(f"/v1/verify returned {status}: {body[:200]}")
    doc = json.loads(body)
    if not doc.get("equivalent") or doc.get("verdict") != "equivalent":
        fail(f"/v1/verify: circuit not equivalent to itself: {body[:200]}")
    print(f"verify: {CIRCUITS[0]} ≡ itself "
          f"(peak {doc['peak_nodes']} nodes)")


# The panic hook fires inside the per-shot worker loop, which only runs in
# the mid-circuit regime (measure-and-branch forces per-shot re-execution);
# measurement-free circuits sample from one run and never enter it.
MID_CIRCUIT = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
creg c[1];
h q[0];
measure q[0] -> c[0];
if(c==1) x q[0];
measure q[0] -> c[0];
"""


def check_panic_containment(addr):
    qasm = MID_CIRCUIT
    status, body = post(addr, "/v1/shots",
                        {"qasm": qasm, "shots": 256, "seed": SEED,
                         "test_panic_at_shot": 10})
    if status != 500:
        fail(f"panic hook: expected 500, got {status}: {body[:200]}")
    doc = json.loads(body)
    if doc["error"]["code"] != "worker_panicked":
        fail(f"panic hook: expected code worker_panicked, got {body[:200]}")
    # The daemon must survive its own 500: retry without the hook.
    status, body = post(addr, "/v1/shots",
                        {"qasm": qasm, "shots": 256, "seed": SEED})
    if status != 200:
        fail(f"daemon did not survive the panic: retry got {status}")
    print("panic containment: typed 500, daemon kept serving")


def check_quota(addr):
    qasm = open(f"circuits/{CIRCUITS[0]}.qasm").read()
    status, body = post(addr, "/v1/shots",
                        {"qasm": qasm, "shots": QUOTA_SHOTS + 1})
    if status != 429:
        fail(f"over-quota ask: expected 429, got {status}: {body[:200]}")
    doc = json.loads(body)
    err = doc["error"]
    if err["code"] != "over_quota" or err.get("budget") != "shots":
        fail(f"over-quota ask: bad error body: {body[:200]}")
    print("quota: over-ceiling shots ask rejected with a typed 429 "
          "naming 'shots'")


def main():
    qdd = sys.argv[1] if len(sys.argv) > 1 else "target/release/qdd"
    if not os.path.exists(qdd):
        fail(f"binary not found: {qdd} (build with cargo build --release)")
    proc, addr = start_daemon(qdd)
    try:
        check_histograms(qdd, addr)
        check_verify(addr)
        check_panic_containment(addr)
        check_quota(addr)
    finally:
        proc.kill()
        proc.wait()
    print("serve_check: all contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
