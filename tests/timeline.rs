//! The execution-timeline recorder must observe, never perturb: with
//! recording on, amplitudes and shot histograms are bit-identical to a
//! recording-off run at every thread count, per-op cache-hit deltas sum to
//! the run-level package totals, and the disabled probe costs one branch.
//!
//! Timeline state is thread-local; each test owns its recorder (and clears
//! the process-wide published registry it touches).

use qdd::circuit::{library, Condition, QuantumCircuit, StandardGate};
use qdd::sim::{shots, DdSimulator, ShotOptions};
use qdd::telemetry::timeline;
use std::time::Instant;

/// GHZ preparation plus rotation and entangling layers: touches the gate
/// cache, the compute tables, and node allocation/free paths, while staying
/// exactly reproducible.
fn workload() -> QuantumCircuit {
    let mut qc = library::ghz(10);
    for q in 0..10 {
        qc.ry(0.17 + 0.05 * q as f64, q);
    }
    for q in 0..9 {
        qc.cx(q, q + 1);
    }
    qc
}

/// A circuit the shot engine must re-execute per shot (mid-circuit
/// measurement feeding classical control).
fn mid_circuit_workload() -> QuantumCircuit {
    let mut qc = QuantumCircuit::with_name(3, "timeline-mid");
    let creg = qc.add_creg("c", 3);
    qc.h(0);
    qc.measure(0, 0);
    qc.gate_if(StandardGate::X, Vec::new(), 1, Condition { creg, value: 1 });
    qc.cx(1, 2);
    qc.measure(1, 1);
    qc.measure(2, 2);
    qc
}

fn run(circuit: QuantumCircuit) -> DdSimulator {
    let mut sim = DdSimulator::with_seed(circuit, 7);
    sim.run().expect("simulation");
    sim
}

// Neither helper touches the process-wide published registry: tests in
// this binary run concurrently, and only the shot test (which owns its
// workers) may drain or clear the global side.
fn arm(stride: u32) {
    timeline::set_enabled(true);
    timeline::reset();
    timeline::set_snapshot_stride(stride);
}

fn disarm() {
    timeline::set_enabled(false);
    timeline::reset();
}

#[test]
fn recording_is_bit_identical_to_off() {
    disarm();
    let plain = run(workload());

    arm(4);
    let recorded = run(workload());
    let (records, dropped) = timeline::drain();
    disarm();

    // Amplitudes must match to the bit, not merely to a tolerance: the
    // recorder reads engine counters, it must never touch the arithmetic.
    let a = plain.dense_state();
    let b = recorded.dense_state();
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            (x.re.to_bits(), x.im.to_bits()),
            (y.re.to_bits(), y.im.to_bits()),
            "amplitude {i} diverged: {x:?} vs {y:?}"
        );
    }
    assert_eq!(plain.node_count(), recorded.node_count());
    assert_eq!(plain.stats(), recorded.stats());

    // One record per applied operation, none dropped.
    assert_eq!(records.len(), recorded.stats().applied_ops);
    assert_eq!(dropped, 0);
}

#[test]
fn per_op_deltas_sum_to_package_totals() {
    arm(0);
    let sim = run(workload());
    let (records, _) = timeline::drain();
    disarm();

    let pkg = sim.package().stats();
    let compute_hits: u64 = records.iter().map(|r| r.compute_hits).sum();
    let compute_misses: u64 = records.iter().map(|r| r.compute_misses).sum();
    let gate_hits: u64 = records.iter().map(|r| r.gate_hits).sum();
    let gate_misses: u64 = records.iter().map(|r| r.gate_misses).sum();

    // The deltas telescope: every lookup the package made happened inside
    // exactly one op's probe window (state preparation does none).
    assert_eq!(compute_hits, pkg.cache_hits, "compute hits attribute fully");
    assert_eq!(
        compute_hits + compute_misses,
        pkg.cache_lookups,
        "compute lookups attribute fully"
    );
    assert_eq!(gate_hits, pkg.gate_cache_hits, "gate hits attribute fully");
    assert_eq!(
        gate_hits + gate_misses,
        pkg.gate_cache_lookups,
        "gate lookups attribute fully"
    );

    // Node accounting balances: births minus frees across all op windows
    // telescopes to the net growth of the package's live population (the
    // windows are contiguous — nothing touches the package between ops).
    let allocated: u64 = records.iter().map(|r| r.nodes_allocated).sum();
    let freed: u64 = records.iter().map(|r| r.nodes_freed).sum();
    let initial = DdSimulator::with_seed(workload(), 7)
        .package()
        .live_node_estimate() as u64;
    let final_live = sim.package().live_node_estimate() as u64;
    assert_eq!(initial + allocated - freed, final_live);

    // Peak never decreases and dominates every live reading.
    let mut prev_peak = 0;
    for r in &records {
        assert!(r.peak_nodes >= prev_peak, "peak is monotone");
        assert!(r.peak_nodes >= r.vec_nodes, "peak dominates live");
        prev_peak = r.peak_nodes;
    }
}

#[test]
fn shot_histograms_match_off_run_at_every_thread_count() {
    let circuit = mid_circuit_workload();
    disarm();
    timeline::reset_published();
    let mut baseline_opts = ShotOptions::new(96, 5);
    baseline_opts.threads = 1;
    let baseline = shots::run(&circuit, &baseline_opts).expect("baseline shots");

    for threads in [1usize, 2, 4] {
        arm(0);
        let mut opts = ShotOptions::new(96, 5);
        opts.threads = threads;
        let report = shots::run(&circuit, &opts).expect("recorded shots");
        let (records, dropped) = timeline::merged_drain();
        disarm();

        assert_eq!(
            report.histogram, baseline.histogram,
            "histogram diverged at {threads} threads with recording on"
        );
        assert_eq!(dropped, 0);
        assert!(!records.is_empty(), "workers recorded at {threads} threads");

        // The merge is deterministic: sorted by (worker, run, seq), with
        // op indices monotonic within each (worker, run) pass.
        let mut prev: Option<(u32, u32, u64, u64)> = None;
        for r in &records {
            let key = (r.worker, r.run, r.seq, r.op_index);
            if let Some(p) = prev {
                assert!(key > p, "merge order violated: {p:?} then {key:?}");
                if p.0 == r.worker && p.1 == r.run {
                    assert!(r.op_index > p.3, "op_index not monotonic in a run");
                }
            }
            prev = Some(key);
        }
    }
}

#[test]
fn snapshot_stride_captures_every_kth_op() {
    arm(4);
    let sim = run(workload());
    let (records, _) = timeline::drain();
    disarm();

    let with_snapshot: Vec<_> = records.iter().filter(|r| r.snapshot.is_some()).collect();
    let expected = records.iter().filter(|r| r.op_index % 4 == 0).count();
    assert_eq!(with_snapshot.len(), expected, "one snapshot per stride hit");
    assert!(!with_snapshot.is_empty());
    for r in &with_snapshot {
        assert_eq!(r.op_index % 4, 0, "snapshots land on stride boundaries");
        let graph = r.snapshot.as_ref().unwrap();
        assert!(graph.starts_with("{\"kind\":\"vector\""), "inline graph JSON");
    }
    drop(sim);
}

#[test]
fn disabled_probe_costs_a_branch() {
    disarm();

    // Ten million disabled probes: the cost is a thread-local read and a
    // branch. The bound leaves generous headroom for slow CI machines while
    // still catching an accidental clock read, counter read, or allocation
    // on the disabled path.
    const N: u64 = 10_000_000;
    let t0 = Instant::now();
    let mut armed = 0u64;
    for _ in 0..N {
        if timeline::enabled() {
            armed += 1;
        }
    }
    let elapsed = t0.elapsed();
    assert_eq!(armed, 0);
    assert!(
        elapsed.as_millis() < 2_000,
        "disabled timeline probe too slow: {N} probes took {elapsed:?}"
    );

    // And a full simulation with the recorder off leaves no trace.
    let _ = run(workload());
    let (records, dropped) = timeline::drain();
    assert!(records.is_empty());
    assert_eq!(dropped, 0);
}
