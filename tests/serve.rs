//! Integration tests for `qdd serve`: a real daemon on an ephemeral port,
//! driven over raw TCP with a minimal HTTP/1.1 client (the same
//! no-dependency discipline as the server itself).
//!
//! Covers the tentpole contracts: session lifecycle mirroring the paper
//! tool's step/play state machine, warm-cache sharing across concurrent
//! shot jobs (the warm request's gate-cache hit rate is strictly higher),
//! typed over-quota and malformed-QASM errors, panic containment (a
//! worker panic is a typed 500 and the daemon keeps serving), and
//! client-disconnect cancellation keeping the daemon responsive.

use qdd::serve::quota::Quota;
use qdd::serve::{Server, ServerConfig};
use qdd::viz::inspect::{parse_json, JsonValue};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

// --- tiny HTTP client -----------------------------------------------------

struct Response {
    status: u16,
    body: String,
}

impl Response {
    fn json(&self) -> JsonValue {
        parse_json(&self.body)
            .unwrap_or_else(|e| panic!("response body is not JSON ({e}): {}", self.body))
    }

    /// Lines of a JSONL body (chunked bodies decode to plain lines).
    fn lines(&self) -> Vec<&str> {
        self.body.lines().collect()
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: qdd\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, payload) = text.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let chunked = head
        .lines()
        .any(|l| l.to_ascii_lowercase().contains("transfer-encoding: chunked"));
    let body = if chunked {
        decode_chunked(payload)
    } else {
        payload.to_string()
    };
    Response { status, body }
}

fn decode_chunked(payload: &str) -> String {
    let mut out = String::new();
    let mut rest = payload;
    loop {
        let (size_line, tail) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            return out;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..]; // skip the chunk's trailing CRLF
    }
}

fn get_f64(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(JsonValue::as_f64).unwrap_or_else(|| {
        panic!("missing numeric field '{key}'")
    })
}

fn get_str<'a>(v: &'a JsonValue, key: &str) -> &'a str {
    v.get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("missing string field '{key}'"))
}

// --- server harness -------------------------------------------------------

fn spawn_server(config: ServerConfig) -> SocketAddr {
    let server = Server::bind(("127.0.0.1", 0), config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    std::thread::spawn(move || server.run());
    addr
}

fn default_server() -> SocketAddr {
    spawn_server(ServerConfig {
        enable_test_hooks: true,
        ..ServerConfig::default()
    })
}

const BELL_MEASURED: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n";

const MID_CIRCUIT: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\nmeasure q[0] -> c[0];\nif(c==1) x q[1];\nmeasure q[1] -> c[1];\n";

fn shots_body(qasm: &str, shots: u64, extra: &str) -> String {
    let escaped = qasm.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
    format!("{{\"qasm\":\"{escaped}\",\"shots\":{shots},\"seed\":7{extra}}}")
}

// --- tests ----------------------------------------------------------------

#[test]
fn session_lifecycle_mirrors_the_step_play_state_machine() {
    let addr = default_server();
    let created = request(
        addr,
        "POST",
        "/v1/sessions",
        &shots_body(MID_CIRCUIT, 0, ""),
    );
    assert_eq!(created.status, 201, "{}", created.body);
    let id = created.json().get("session").and_then(JsonValue::as_u64).unwrap();
    let path = format!("/v1/sessions/{id}/step");

    // Op 0 is the Hadamard; op 1 is a measurement, which opens the
    // tool's choice dialog instead of advancing.
    let step = request(addr, "POST", &path, "");
    assert_eq!(get_str(&step.json(), "outcome"), "applied");
    let dialog = request(addr, "POST", &path, "");
    let dialog = dialog.json();
    assert_eq!(get_str(&dialog, "outcome"), "needs_choice");
    assert!((get_f64(&dialog, "p0") - 0.5).abs() < 1e-9);
    assert_eq!(get_str(&dialog, "kind"), "measurement");

    // Resolve the dialog, step back, then play to the end.
    let chosen = request(addr, "POST", &path, "{\"choose\":1}");
    assert_eq!(get_str(&chosen.json(), "outcome"), "chosen");
    let back = request(addr, "POST", &path, "{\"back\":true}");
    assert_eq!(get_str(&back.json(), "outcome"), "stepped_back");
    let played = request(addr, "POST", &format!("/v1/sessions/{id}/play"), "{\"seed\":3}");
    assert_eq!(played.status, 200, "{}", played.body);
    let played = played.json();
    assert_eq!(played.get("finished"), Some(&JsonValue::Bool(true)));

    // Delete releases the slot; a second delete is a typed 404.
    let deleted = request(addr, "DELETE", &format!("/v1/sessions/{id}"), "");
    assert_eq!(deleted.status, 200);
    let gone = request(addr, "DELETE", &format!("/v1/sessions/{id}"), "");
    assert_eq!(gone.status, 404);
    assert_eq!(
        get_str(gone.json().get("error").unwrap(), "code"),
        "not_found"
    );
}

#[test]
fn concurrent_warm_requests_beat_the_cold_request_hit_rate() {
    let addr = default_server();
    // Cold request: builds the warm base, paying the gate-DD construction
    // misses.
    let cold = request(addr, "POST", "/v1/shots", &shots_body(BELL_MEASURED, 500, ""));
    assert_eq!(cold.status, 200, "{}", cold.body);
    let cold_trailer = parse_json(cold.lines().last().unwrap()).unwrap();
    let cold_stats = cold_trailer.get("stats").unwrap();
    let cold_rate = get_f64(cold_stats, "gate_cache_hit_rate");
    assert_eq!(
        cold_trailer.get("cache").unwrap().get("hit"),
        Some(&JsonValue::Bool(false))
    );

    // Two concurrent requests for the same circuit share the interned
    // warm base; with no construction misses to pay, each one's hit rate
    // is strictly higher than the cold request's.
    let warm: Vec<Response> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                s.spawn(move || {
                    request(addr, "POST", "/v1/shots", &shots_body(BELL_MEASURED, 500, ""))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for resp in &warm {
        assert_eq!(resp.status, 200, "{}", resp.body);
        let trailer = parse_json(resp.lines().last().unwrap()).unwrap();
        assert_eq!(
            trailer.get("cache").unwrap().get("hit"),
            Some(&JsonValue::Bool(true))
        );
        let rate = get_f64(trailer.get("stats").unwrap(), "gate_cache_hit_rate");
        assert!(
            rate > cold_rate,
            "warm hit rate {rate} should exceed cold {cold_rate}"
        );
        // Same circuit, same seed: the streamed histogram lines are
        // identical across cold and warm requests.
        assert_eq!(
            resp.lines()[1..resp.lines().len() - 1],
            cold.lines()[1..cold.lines().len() - 1]
        );
    }
}

#[test]
fn over_quota_asks_get_a_typed_429_naming_the_budget() {
    let addr = spawn_server(ServerConfig {
        quota: Quota {
            max_shots: 100,
            ..Quota::default()
        },
        ..ServerConfig::default()
    });
    let resp = request(addr, "POST", "/v1/shots", &shots_body(BELL_MEASURED, 101, ""));
    assert_eq!(resp.status, 429, "{}", resp.body);
    let error = resp.json();
    let error = error.get("error").unwrap();
    assert_eq!(get_str(error, "code"), "over_quota");
    assert_eq!(get_str(error, "budget"), "shots");
}

#[test]
fn malformed_qasm_is_a_400_not_a_crash() {
    let addr = default_server();
    let resp = request(
        addr,
        "POST",
        "/v1/simulate",
        "{\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\\nfrobnicate q;\\n\"}",
    );
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("QASM parse error"), "{}", resp.body);
    // Garbage bodies are also typed 400s, and the daemon keeps serving.
    let garbage = request(addr, "POST", "/v1/simulate", "not json at all");
    assert_eq!(garbage.status, 400);
    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
}

#[test]
fn worker_panic_is_a_typed_500_and_the_daemon_survives() {
    let addr = default_server();
    let resp = request(
        addr,
        "POST",
        "/v1/shots",
        &shots_body(MID_CIRCUIT, 200, ",\"threads\":4,\"test_panic_at_shot\":40"),
    );
    assert_eq!(resp.status, 500, "{}", resp.body);
    let error = resp.json();
    let error = error.get("error").unwrap();
    assert_eq!(get_str(error, "code"), "worker_panicked");
    assert!(get_str(error, "message").contains("forced panic at shot 40"));

    // The panic was contained: the same daemon serves the same circuit
    // correctly on the very next request.
    let retry = request(
        addr,
        "POST",
        "/v1/shots",
        &shots_body(MID_CIRCUIT, 200, ",\"threads\":4"),
    );
    assert_eq!(retry.status, 200, "{}", retry.body);
    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
}

#[test]
fn client_disconnect_cancels_the_job_and_frees_the_daemon() {
    let addr = default_server();
    // A mid-circuit job big enough to run for minutes if nobody cancels
    // it. Drop the connection right after sending the request: the
    // handler's disconnect poll flips the engine's cooperative cancel
    // flag and the job dies at the next shot boundary.
    let body = shots_body(MID_CIRCUIT, 50_000_000, ",\"threads\":2");
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /v1/shots HTTP/1.1\r\nHost: qdd\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // Dropping the stream closes the socket mid-job.
    }
    // The daemon answers a real request promptly — the abandoned job is
    // not holding its worker threads to completion.
    let start = std::time::Instant::now();
    let resp = request(addr, "POST", "/v1/shots", &shots_body(MID_CIRCUIT, 100, ""));
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "follow-up request took {:?}",
        start.elapsed()
    );
}

#[test]
fn hostile_inputs_get_typed_400s_not_a_dead_daemon() {
    let addr = default_server();
    // Deeply nested JSON: the parser's depth cap must reject it as a 400.
    // Without the cap this recursed once per '[' and overflowed the
    // connection thread's stack — aborting the whole process.
    let bomb = "[".repeat(200_000);
    let resp = request(addr, "POST", "/v1/simulate", &bomb);
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("nesting"), "{}", resp.body);
    // A request line that never ends is cut off at the per-line cap.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(stream, "GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64 * 1024)).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let head = String::from_utf8_lossy(&raw);
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    }
    // The daemon survived both.
    assert_eq!(request(addr, "GET", "/healthz", "").status, 200);
}

#[test]
fn thread_asks_are_clamped_to_the_server_ceiling() {
    let addr = default_server();
    // An absurd thread ask must not spawn a million OS threads: the server
    // clamps it to its own default worker count and answers normally.
    let resp = request(
        addr,
        "POST",
        "/v1/shots",
        &shots_body(BELL_MEASURED, 100, ",\"threads\":1000000"),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    let trailer = parse_json(resp.lines().last().unwrap()).unwrap();
    let used = trailer
        .get("stats")
        .unwrap()
        .get("threads_used")
        .and_then(JsonValue::as_u64)
        .unwrap();
    let cap = std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1);
    assert!(used <= cap, "threads_used {used} exceeds the {cap}-CPU cap");
}

#[test]
fn sessions_honor_the_server_node_ceiling() {
    // Sessions must run under the same clamped budgets as batch requests:
    // with an 8-node ceiling, playing a 12-qubit GHZ cascade trips the
    // node budget as a typed 422 instead of running unbudgeted.
    let addr = spawn_server(ServerConfig {
        quota: Quota {
            node_ceiling: Some(8),
            ..Quota::default()
        },
        ..ServerConfig::default()
    });
    let mut ghz = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[12];\nh q[0];\n");
    for i in 0..11 {
        ghz.push_str(&format!("cx q[{i}],q[{}];\n", i + 1));
    }
    let created = request(addr, "POST", "/v1/sessions", &shots_body(&ghz, 0, ""));
    assert_eq!(created.status, 201, "{}", created.body);
    let id = created.json().get("session").and_then(JsonValue::as_u64).unwrap();
    let played = request(addr, "POST", &format!("/v1/sessions/{id}/play"), "");
    assert_eq!(played.status, 422, "{}", played.body);
    assert_eq!(
        get_str(played.json().get("error").unwrap(), "code"),
        "resource_exhausted"
    );
}

#[test]
fn responses_embed_request_scoped_telemetry() {
    let addr = default_server();
    let resp = request(addr, "POST", "/v1/shots", &shots_body(MID_CIRCUIT, 100, ""));
    assert_eq!(resp.status, 200, "{}", resp.body);
    let trailer = parse_json(resp.lines().last().unwrap()).unwrap();
    let telemetry = trailer.get("telemetry").unwrap();
    assert_eq!(get_str(telemetry, "schema"), "qdd-metrics-v1");
    // The shot engine's span and sample counter from *this* request are
    // present in the request-scoped snapshot.
    assert!(
        telemetry
            .get("spans")
            .and_then(|s| s.get("shots.engine"))
            .is_some(),
        "missing shots.engine span: {}",
        resp.body
    );
    assert_eq!(
        telemetry
            .get("counters")
            .and_then(|c| c.get("shots.sampled"))
            .and_then(JsonValue::as_u64),
        Some(100)
    );
}

#[test]
fn resource_budgets_clamp_and_degradation_is_reported() {
    // A server-side deadline ceiling applies even when the request asks
    // for more.
    let addr = spawn_server(ServerConfig {
        quota: Quota {
            node_ceiling: Some(8),
            ..Quota::default()
        },
        ..ServerConfig::default()
    });
    // 8 nodes cannot hold a 12-qubit GHZ cascade: with no fidelity floor
    // and dense fallback disabled, the budget trips as a typed 422.
    let mut ghz = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[12];\nh q[0];\n");
    for i in 0..11 {
        ghz.push_str(&format!("cx q[{i}],q[{}];\n", i + 1));
    }
    let body = shots_body(
        &ghz,
        10,
        ",\"dense_fallback\":false,\"limits\":{\"max_nodes\":999999}",
    );
    let resp = request(addr, "POST", "/v1/shots", &body);
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert_eq!(
        get_str(resp.json().get("error").unwrap(), "code"),
        "resource_exhausted"
    );
}
