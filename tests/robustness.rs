//! Resource-governance and malformed-input robustness.
//!
//! The engine must fail *structurally* — typed errors, balanced stats,
//! graceful degradation — when driven past its budgets or fed garbage,
//! never by panicking or exhausting the host.

use qdd::circuit::{library, qasm, QuantumCircuit};
use qdd::core::{DdError, DdPackage, Limits, PackageConfig, ResourceKind};
use qdd::sim::{DdSimulator, SimError};
use qdd::verify::{EquivalenceChecker, Strategy, VerifyError};
use std::time::Duration;

fn limited(limits: Limits) -> PackageConfig {
    PackageConfig {
        limits,
        ..PackageConfig::default()
    }
}

/// Entangling layers with incommensurate rotation angles: the state has no
/// product structure, so its diagram grows exponentially in the register —
/// the adversarial workload for a node budget.
fn adversarial(n: usize, layers: usize) -> QuantumCircuit {
    let mut qc = QuantumCircuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            qc.ry(0.37 + 0.11 * (layer * n + q) as f64, q);
        }
        for q in 0..n - 1 {
            qc.cx(q, q + 1);
        }
    }
    qc
}

#[test]
fn node_budget_yields_structured_error_with_balanced_stats() {
    // Register too wide for the dense fallback: the budget must surface as
    // a hard, typed error.
    let config = limited(Limits {
        max_nodes: Some(10_000),
        ..Limits::default()
    });
    qdd::telemetry::set_enabled(true);
    qdd::telemetry::reset();
    let mut sim = DdSimulator::with_config(adversarial(26, 3), 1, config);
    let err = sim.run().unwrap_err();
    let events = qdd::telemetry::drain_events();
    let pressure_events = qdd::telemetry::snapshot()
        .counter("core.gc.pressure_runs")
        .unwrap_or(0);
    qdd::telemetry::set_enabled(false);
    // The degradation left a telemetry trail: pressure-GC events on the
    // stream, matching the counter.
    assert!(
        events.iter().any(|e| e.name == "core.pressure_gc"),
        "pressure GC must emit a telemetry event"
    );
    assert!(pressure_events > 0, "pressure-run counter must advance");
    match err {
        SimError::Dd(DdError::ResourceExhausted { kind, limit, used }) => {
            assert_eq!(kind, ResourceKind::Nodes);
            assert_eq!(limit, 10_000);
            assert!(used >= limit, "reported usage {used} below limit {limit}");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    let stats = sim.stats();
    assert!(stats.gc_pressure_runs > 0, "pressure GC must have run");
    assert!(!stats.dense_fallback, "26 qubits cannot fall back densely");

    // The package survives the failure with a consistent node ledger:
    // every live node occupies an allocated slot, and the pressure GCs
    // actually returned slots to the free list.
    let pkg = sim.package().stats();
    assert!(
        pkg.vnodes_alive <= pkg.vnodes_allocated,
        "vector ledger out of balance: {} alive > {} allocated",
        pkg.vnodes_alive,
        pkg.vnodes_allocated
    );
    assert!(
        pkg.mnodes_alive <= pkg.mnodes_allocated,
        "matrix ledger out of balance: {} alive > {} allocated",
        pkg.mnodes_alive,
        pkg.mnodes_allocated
    );
    assert!(pkg.gc_pressure_runs > 0);
    assert!(pkg.peak_live_nodes >= 10_000);
}

#[test]
fn deadline_fires_on_long_qft() {
    let config = limited(Limits {
        deadline: Some(Duration::from_millis(50)),
        ..Limits::default()
    });
    // QFT over a non-basis (H-prepared) input keeps every step busy.
    let mut qc = QuantumCircuit::new(22);
    for q in 0..22 {
        qc.ry(0.3 + 0.05 * q as f64, q);
    }
    let qft = library::qft(22, true);
    qc.extend(&qft);
    qdd::telemetry::set_enabled(true);
    qdd::telemetry::reset();
    let mut sim = DdSimulator::with_config(qc, 1, config);
    let start = std::time::Instant::now();
    let err = sim.run().unwrap_err();
    let events = qdd::telemetry::drain_events();
    qdd::telemetry::set_enabled(false);
    assert!(
        matches!(err, SimError::Dd(DdError::DeadlineExceeded { .. })),
        "expected DeadlineExceeded, got {err:?}"
    );
    assert!(
        events.iter().any(|e| e.name == "sim.deadline"),
        "deadline abort must emit a telemetry event"
    );
    // Generous ceiling: the point is that it aborted, not ran to completion.
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "deadline failed to cut the run short"
    );
}

#[test]
fn dense_fallback_preserves_semantics() {
    let circuit = adversarial(10, 3);
    let mut reference = DdSimulator::with_seed(circuit.clone(), 7);
    reference.run().unwrap();
    let expected = reference.dense_state();

    let config = limited(Limits {
        max_nodes: Some(32),
        ..Limits::default()
    });
    qdd::telemetry::set_enabled(true);
    qdd::telemetry::reset();
    let mut sim = DdSimulator::with_config(circuit, 7, config);
    sim.run().unwrap();
    let events = qdd::telemetry::drain_events();
    qdd::telemetry::set_enabled(false);
    assert!(sim.degraded_to_dense());
    assert!(sim.stats().dense_fallback);
    assert!(
        events.iter().any(|e| e.name == "sim.dense_fallback"),
        "dense fallback must emit a telemetry event"
    );
    for (a, b) in expected.iter().zip(sim.dense_state().iter()) {
        assert!(a.approx_eq(*b, 1e-9), "fallback diverged: {a:?} vs {b:?}");
    }
}

#[test]
fn default_limits_change_nothing() {
    assert!(Limits::default().is_unlimited());
    let mut plain = DdSimulator::with_seed(library::grover(8, 5), 3);
    let mut configured =
        DdSimulator::with_config(library::grover(8, 5), 3, limited(Limits::default()));
    plain.run().unwrap();
    configured.run().unwrap();
    assert_eq!(plain.stats(), configured.stats());
    for (a, b) in plain.dense_state().iter().zip(configured.dense_state().iter()) {
        assert!(a.approx_eq(*b, 1e-15));
    }
}

#[test]
fn verifier_respects_budgets() {
    let config = limited(Limits {
        max_nodes: Some(64),
        ..Limits::default()
    });
    let mut checker = EquivalenceChecker::with_config(config);
    let qft = library::qft(7, true);
    let err = checker
        .check(&qft, &qft, Strategy::Construction)
        .unwrap_err();
    assert!(matches!(
        err,
        VerifyError::Dd(DdError::ResourceExhausted { .. })
    ));
}

#[test]
fn compute_table_budget_degrades_without_error() {
    let config = limited(Limits {
        max_compute_entries: Some(512),
        ..Limits::default()
    });
    let mut sim = DdSimulator::with_config(library::qft(10, true), 1, config);
    sim.run().unwrap(); // bounded caches never fail, they just evict
    assert!(
        sim.stats().compute_evictions > 0,
        "a 512-entry cache budget must evict on a 10-qubit QFT"
    );
}

#[test]
fn recursion_depth_limit_is_enforced() {
    let mut dd = DdPackage::with_config(limited(Limits {
        recursion_depth: Some(4),
        ..Limits::default()
    }));
    let state = dd.zero_state(8).unwrap();
    // H on the bottom qubit forces the multiply to thread all 8 levels,
    // which a depth budget of 4 must reject.
    let err = dd
        .apply_gate(state, qdd::core::gates::H, &[], 0)
        .unwrap_err();
    assert!(matches!(
        err,
        DdError::ResourceExhausted {
            kind: ResourceKind::RecursionDepth,
            ..
        }
    ));
}

/// The full degradation ladder, stage by stage on the same adversarial
/// family, with the telemetry stream proving the rungs fire in order:
/// pressure GC → fidelity-bounded approximation → dense fallback → typed
/// error.
#[test]
fn degradation_ladder_fires_in_order() {
    // Stage A: approximation suffices. The run completes without dense
    // fallback, and the event stream shows pressure GC before the first
    // degrade.approximate.
    let config = limited(Limits {
        max_nodes: Some(160),
        min_fidelity: Some(0.5),
        ..Limits::default()
    });
    qdd::telemetry::set_enabled(true);
    qdd::telemetry::reset();
    let mut sim = DdSimulator::with_config(adversarial(8, 3), 1, config);
    sim.run().unwrap();
    let events = qdd::telemetry::drain_events();
    qdd::telemetry::set_enabled(false);
    assert!(!sim.degraded_to_dense(), "approximation must carry stage A");
    assert!(sim.stats().approx_rounds > 0);
    assert!(sim.stats().fidelity_lower_bound >= 0.5);
    let first_gc = events
        .iter()
        .position(|e| e.name == "core.pressure_gc")
        .expect("stage A must GC under pressure first");
    let first_approx = events
        .iter()
        .position(|e| e.name == "degrade.approximate")
        .expect("stage A must approximate");
    assert!(
        first_gc < first_approx,
        "GC rung must fire before approximation ({first_gc} vs {first_approx})"
    );
    assert!(
        !events.iter().any(|e| e.name == "sim.dense_fallback"),
        "stage A must not reach the dense rung"
    );

    // Stage B: the cap is so tight that even an approximated diagram cannot
    // fit, so the dense rung backs the approximation up — and its event
    // arrives after the approximation's.
    let config = limited(Limits {
        max_nodes: Some(96),
        min_fidelity: Some(0.5),
        ..Limits::default()
    });
    qdd::telemetry::set_enabled(true);
    qdd::telemetry::reset();
    let mut sim = DdSimulator::with_config(adversarial(8, 3), 1, config);
    sim.run().unwrap();
    let events = qdd::telemetry::drain_events();
    qdd::telemetry::set_enabled(false);
    assert!(sim.degraded_to_dense(), "stage B must exhaust into dense");
    let first_approx = events
        .iter()
        .position(|e| e.name == "degrade.approximate")
        .expect("stage B must attempt approximation before going dense");
    let dense = events
        .iter()
        .position(|e| e.name == "sim.dense_fallback")
        .expect("stage B must reach the dense rung");
    assert!(
        first_approx < dense,
        "approximation must precede dense fallback ({first_approx} vs {dense})"
    );

    // Stage C: too wide for the dense rung — the ladder runs out and the
    // typed error names the budget that tripped.
    let config = limited(Limits {
        max_nodes: Some(10_000),
        min_fidelity: Some(0.9),
        ..Limits::default()
    });
    let mut sim = DdSimulator::with_config(adversarial(26, 3), 1, config);
    let err = sim.run().unwrap_err();
    assert!(!sim.stats().dense_fallback, "26 qubits cannot go dense");
    let message = err.to_string();
    assert!(
        message.contains("max_nodes") && message.contains("10000"),
        "error must name the tripped budget and its limit: {message}"
    );
}

/// The dense rung refuses registers beyond its cap *before* allocating:
/// a 30-qubit run under node pressure gets the typed resource error
/// immediately instead of attempting a 2³⁰-amplitude vector.
#[test]
fn dense_cap_is_checked_before_allocation() {
    // Direct probe of the guarded export.
    let mut dd = DdPackage::with_config(PackageConfig::default());
    let state = dd.zero_state(30).unwrap();
    match dd.try_to_dense_vector(state, 30) {
        Err(DdError::TooLargeForDense { num_qubits: 30, max }) => {
            assert!(max < 30, "the cap must be below the register width");
        }
        other => panic!("expected TooLargeForDense, got {other:?}"),
    }

    // Through the ladder: the run must fail with the node-budget error —
    // not hang on a dense allocation, not report a dense fallback.
    let config = limited(Limits {
        max_nodes: Some(600),
        ..Limits::default()
    });
    let mut sim = DdSimulator::with_config(adversarial(30, 2), 1, config);
    let err = sim.run().unwrap_err();
    assert!(matches!(
        err,
        SimError::Dd(DdError::ResourceExhausted {
            kind: ResourceKind::Nodes,
            ..
        })
    ));
    assert!(!sim.stats().dense_fallback);
}

/// Malformed QASM must produce `Err`, never a panic. Each entry is run
/// under `catch_unwind` so a regression reports the offending source.
#[test]
fn malformed_qasm_corpus_never_panics() {
    let deep_parens = format!(
        "OPENQASM 2.0; qreg q[1]; rz({}pi{}) q[0];",
        "(".repeat(50_000),
        ")".repeat(50_000)
    );
    let corpus: Vec<String> = vec![
        String::new(),
        ";".into(),
        "OPENQASM".into(),
        "OPENQASM 3.0;".into(),
        "OPENQASM 2.0; qreg".into(),
        "OPENQASM 2.0; qreg q[0];".into(),
        "OPENQASM 2.0; qreg q[99999999999];".into(),
        "OPENQASM 2.0; qreg q[2]; qreg q[2];".into(),
        "OPENQASM 2.0; qreg q[2]; h q[5];".into(),
        "OPENQASM 2.0; qreg q[2]; cx q[0], q[0];".into(),
        "OPENQASM 2.0; qreg q[1]; rx() q[0];".into(),
        "OPENQASM 2.0; qreg q[1]; rx(1/0) q[0];".into(),
        "OPENQASM 2.0; qreg q[1]; rx(frob(1)) q[0];".into(),
        "OPENQASM 2.0; qreg q[1]; gate rec a { rec a; } rec q[0];".into(),
        "OPENQASM 2.0; qreg q[1]; gate a x { b x; } gate b x { a x; } a q[0];".into(),
        "OPENQASM 2.0; qreg q[1]; gate broken a {".into(),
        "OPENQASM 2.0; qreg q[1]; creg c[1]; if (c = 1) x q[0];".into(),
        "OPENQASM 2.0; qreg q[1]; creg c[1]; if (d == 1) x q[0];".into(),
        "OPENQASM 2.0; qreg q[1]; measure q[0] ->".into(),
        "OPENQASM 2.0; qreg q[2]; creg c[1]; measure q -> c;".into(),
        "OPENQASM 2.0; qreg q[1]; x q[0]".into(),
        "OPENQASM 2.0; qreg q[1]; \u{0} x q[0];".into(),
        "OPENQASM 2.0; include \"unterminated".into(),
        deep_parens,
        format!("OPENQASM 2.0; qreg q[1]; rz({}1) q[0];", "-".repeat(50_000)),
    ];
    for src in &corpus {
        let label: String = src.chars().take(60).collect();
        let result = std::panic::catch_unwind(|| qasm::parse(src));
        match result {
            Ok(parse_result) => assert!(
                parse_result.is_err(),
                "malformed source accepted: {label}"
            ),
            Err(_) => panic!("parser panicked on: {label}"),
        }
    }
}
