//! Cross-validation: the decision-diagram simulator against the dense
//! state-vector baseline on identical circuits — the fundamental soundness
//! check for the whole DD stack.

use qdd::circuit::library;
use qdd::sim::{DdSimulator, DenseSimulator};

fn assert_states_match(circuit: &qdd::circuit::QuantumCircuit, tol: f64) {
    let mut dd_sim = DdSimulator::with_seed(circuit.clone(), 1);
    dd_sim.run().unwrap();
    let dd_state = dd_sim.dense_state();
    let dense = DenseSimulator::simulate(circuit, 1).unwrap();
    for (i, (a, b)) in dd_state.iter().zip(dense.state().iter()).enumerate() {
        assert!(
            a.approx_eq(*b, tol),
            "{}: amplitude {i} differs: {a} vs {b}",
            circuit.name()
        );
    }
}

#[test]
fn library_circuits_match_dense() {
    for circuit in [
        library::bell(),
        library::ghz(6),
        library::w_state(5),
        library::qft(5, true),
        library::qft(4, false),
        library::bernstein_vazirani(5, 0b10110),
        library::grover(4, 9),
        library::phase_estimation(4, 0.3125),
    ] {
        assert_states_match(&circuit, 1e-9);
    }
}

#[test]
fn random_circuits_match_dense() {
    for seed in 0..20 {
        let circuit = library::random_circuit(5, 12, seed);
        assert_states_match(&circuit, 1e-9);
    }
}

#[test]
fn w_state_amplitudes_are_uniform_one_hot() {
    let n = 6;
    let mut sim = DdSimulator::with_seed(library::w_state(n), 1);
    sim.run().unwrap();
    let amps = sim.dense_state();
    let expected = 1.0 / (n as f64).sqrt();
    for (i, a) in amps.iter().enumerate() {
        if (i as u64).count_ones() == 1 {
            assert!((a.abs() - expected).abs() < 1e-9, "one-hot |{i:06b}⟩");
        } else {
            assert!(a.abs() < 1e-9, "non-one-hot |{i:06b}⟩ must vanish");
        }
    }
}

#[test]
fn cuccaro_adder_adds() {
    // b ← a + b (mod 2^n) with carry-out, for several operand pairs.
    let n = 3;
    for (a_val, b_val) in [(0u64, 0u64), (1, 1), (3, 5), (7, 7), (5, 2), (6, 3)] {
        let mut circuit = qdd::circuit::QuantumCircuit::new(2 * n + 2);
        // Prepare inputs: a_i at qubit 1+2i, b_i at qubit 2+2i.
        for i in 0..n {
            if (a_val >> i) & 1 == 1 {
                circuit.x(1 + 2 * i);
            }
            if (b_val >> i) & 1 == 1 {
                circuit.x(2 + 2 * i);
            }
        }
        circuit.extend(&library::cuccaro_adder(n));
        let mut sim = DdSimulator::with_seed(circuit, 1);
        sim.run().unwrap();
        let states = sim.package().nonzero_basis_states(sim.state());
        assert_eq!(states.len(), 1, "classical input stays classical");
        let out = states[0];
        let sum = a_val + b_val;
        let b_out = (0..n).fold(0u64, |acc, i| acc | (((out >> (2 + 2 * i)) & 1) << i));
        let carry = (out >> (2 * n + 1)) & 1;
        let a_out = (0..n).fold(0u64, |acc, i| acc | (((out >> (1 + 2 * i)) & 1) << i));
        assert_eq!(b_out, sum & ((1 << n) - 1), "{a_val}+{b_val} sum bits");
        assert_eq!(carry, sum >> n, "{a_val}+{b_val} carry");
        assert_eq!(a_out, a_val, "operand a restored");
    }
}

#[test]
fn phase_estimation_recovers_exact_phase() {
    // θ = 3/8 is exactly representable with 3 counting bits.
    let n = 3;
    let theta = 3.0 / 8.0;
    let mut sim = DdSimulator::with_seed(library::phase_estimation(n, theta), 1);
    sim.run().unwrap();
    // The counting register (qubits 1..=n) holds θ·2^n exactly.
    let states = sim.package().nonzero_basis_states(sim.state());
    assert_eq!(states.len(), 1, "exact phase collapses to one basis state");
    let counting = (states[0] >> 1) & ((1 << n) - 1);
    assert_eq!(counting, 3, "measured phase register must encode 3/8");
}

#[test]
fn sampling_agrees_with_dense_distribution() {
    let circuit = library::random_circuit(4, 8, 77);
    let mut dd_sim = DdSimulator::with_seed(circuit.clone(), 5);
    dd_sim.run().unwrap();
    let probs: Vec<f64> = dd_sim.dense_state().iter().map(|a| a.norm_sqr()).collect();
    let shots = 20_000u64;
    let counts = dd_sim.sample(shots);
    for (basis, p) in probs.iter().enumerate() {
        let observed = *counts.get(&(basis as u64)).unwrap_or(&0) as f64 / shots as f64;
        assert!(
            (observed - p).abs() < 0.02,
            "basis {basis}: observed {observed:.4} vs p {p:.4}"
        );
    }
}

#[test]
fn deep_circuit_with_auto_gc_stays_correct() {
    // Long alternating pattern: exercises reference counting + GC paths.
    let n = 6;
    let mut circuit = qdd::circuit::QuantumCircuit::new(n);
    for layer in 0..50 {
        for q in 0..n {
            circuit.ry(0.1 * (layer * n + q) as f64, q);
        }
        circuit.cx(layer % n, (layer + 1) % n);
    }
    let mut sim = DdSimulator::with_seed(circuit.clone(), 1);
    sim.run().unwrap();
    sim.collect_garbage();
    let dd_state = sim.dense_state();
    let dense = DenseSimulator::simulate(&circuit, 1).unwrap();
    for (a, b) in dd_state.iter().zip(dense.state().iter()) {
        assert!(a.approx_eq(*b, 1e-8));
    }
    let norm: f64 = dd_state.iter().map(|a| a.norm_sqr()).sum();
    assert!((norm - 1.0).abs() < 1e-8);
}

#[test]
fn deutsch_jozsa_decides_in_one_query() {
    use qdd::circuit::library::{deutsch_jozsa, DjOracle};
    let n = 5;
    for (oracle, constant) in [
        (DjOracle::Constant(false), true),
        (DjOracle::Constant(true), true),
        (DjOracle::Balanced(0b1), false),
        (DjOracle::Balanced(0b10110), false),
    ] {
        let mut sim = DdSimulator::with_seed(deutsch_jozsa(n, oracle), 1);
        sim.run().unwrap();
        // Probability of the data register (qubits 1..=n) being all zero.
        let p_zero: f64 = sim
            .package()
            .nonzero_basis_states(sim.state())
            .iter()
            .filter(|&&b| (b >> 1) & ((1 << n) - 1) == 0)
            .map(|&b| sim.amplitude(b).norm_sqr())
            .sum();
        if constant {
            assert!((p_zero - 1.0).abs() < 1e-9, "{oracle:?}: p={p_zero}");
        } else {
            assert!(p_zero < 1e-9, "{oracle:?}: p={p_zero}");
        }
    }
}

#[test]
fn bit_flip_code_corrects_every_single_error() {
    use qdd::circuit::library::bit_flip_code;
    let theta = 1.234;
    for error_on in [None, Some(0), Some(1), Some(2)] {
        // Every seed: the syndrome is deterministic, but run a few anyway.
        for seed in 0..3 {
            let mut sim = DdSimulator::with_seed(bit_flip_code(theta, error_on), seed);
            sim.run().unwrap();
            // Decode: the logical qubit lives in q0..q2 as α|000⟩ + β|111⟩.
            // After correction, q0 must carry the original RY(θ) marginals
            // and the three code qubits must agree.
            let state = sim.state();
            let p1 = sim.package_mut().prob_one(state, 0);
            let expected_p1 = (theta / 2.0).sin().powi(2);
            assert!(
                (p1 - expected_p1).abs() < 1e-9,
                "{error_on:?} seed {seed}: p1 = {p1}, expected {expected_p1}"
            );
            // Code qubits are re-correlated: q0 == q1 == q2 in every branch.
            for basis in sim.package().nonzero_basis_states(state) {
                let q0 = basis & 1;
                let q1 = (basis >> 1) & 1;
                let q2 = (basis >> 2) & 1;
                assert_eq!(q0, q1, "{error_on:?}: basis {basis:05b}");
                assert_eq!(q0, q2, "{error_on:?}: basis {basis:05b}");
            }
        }
    }
}
