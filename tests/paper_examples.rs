//! Every worked example of the reproduced paper, as an executable test.
//!
//! Example numbers refer to *Visualizing Decision Diagrams for Quantum
//! Computing* (Wille, Burgholzer, Artner; DATE 2021).

use qdd::circuit::{compile, library, QuantumCircuit};
use qdd::complex::Complex;
use qdd::core::{gates, Control, DdPackage, MeasurementOutcome};
use qdd::sim::{DdSimulator, StepOutcome, SteppableSimulation};
use qdd::verify::{EquivalenceChecker, Strategy};
use std::f64::consts::FRAC_1_SQRT_2;

fn bell_state(dd: &mut DdPackage) -> qdd::core::VecEdge {
    let z = dd.zero_state(2).unwrap();
    let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
    dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap()
}

/// Example 1: 1/√2 [1,0,0,1]ᵀ is a valid state with |α₀₀|² + |α₁₁|² = 1.
#[test]
fn example_1_bell_state_vector() {
    let mut dd = DdPackage::new();
    let b = bell_state(&mut dd);
    let amps = dd.to_dense_vector(b, 2);
    assert!(amps[0].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
    assert!(amps[3].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
    let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
    assert!((norm - 1.0).abs() < 1e-12);
    // Entanglement: the state is not a tensor product — the two q0
    // sub-vectors under the root are different nodes.
    let root = dd.vnode(b.node);
    assert_ne!(root.children[0].node, root.children[1].node);
}

/// Example 2: measuring one qubit yields |0⟩/|1⟩ with 50% each, and the
/// other qubit is then fully determined.
#[test]
fn example_2_measurement_statistics() {
    let mut dd = DdPackage::new();
    let b = bell_state(&mut dd);
    let (p0, p1) = dd.qubit_probabilities(b, 0);
    assert!((p0 - 0.5).abs() < 1e-12 && (p1 - 0.5).abs() < 1e-12);
    for outcome in [MeasurementOutcome::Zero, MeasurementOutcome::One] {
        let collapsed = dd.collapse(b, 0, outcome).unwrap();
        let (q1_p0, q1_p1) = dd.qubit_probabilities(collapsed, 1);
        if outcome.as_bool() {
            assert!((q1_p1 - 1.0).abs() < 1e-12);
        } else {
            assert!((q1_p0 - 1.0).abs() < 1e-12);
        }
    }
}

/// Example 3: (H ⊗ I₂)|00⟩ = 1/√2 [1,0,1,0]ᵀ.
#[test]
fn example_3_hadamard_on_msb() {
    let mut dd = DdPackage::new();
    let z = dd.zero_state(2).unwrap();
    let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
    let amps = dd.to_dense_vector(s, 2);
    assert!(amps[0].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
    assert!(amps[2].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
    assert!(amps[1].approx_eq(Complex::ZERO, 1e-12));
    assert!(amps[3].approx_eq(Complex::ZERO, 1e-12));
}

/// Example 4: the CNOT fires iff the control is |1⟩.
#[test]
fn example_4_cnot_semantics() {
    let mut dd = DdPackage::new();
    for (input, expected) in [(0b00u64, 0b00u64), (0b01, 0b01), (0b10, 0b11), (0b11, 0b10)] {
        let s = dd.basis_state(2, input).unwrap();
        let out = dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap();
        let want = dd.basis_state(2, expected).unwrap();
        assert_eq!(out, want, "CNOT |{input:02b}⟩");
    }
}

/// Example 5: the two-gate evolution |00⟩ → Bell state.
#[test]
fn example_5_bell_evolution() {
    let mut sim = DdSimulator::with_seed(library::bell(), 1);
    sim.run().unwrap();
    let amps = sim.dense_state();
    assert!(amps[0].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
    assert!(amps[3].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
}

/// Example 6: the Bell-state diagram has 3 nodes (terminal not counted)
/// and both encoded paths reconstruct amplitude 1/√2.
#[test]
fn example_6_bell_diagram() {
    let mut dd = DdPackage::new();
    let amps = [
        Complex::real(FRAC_1_SQRT_2),
        Complex::ZERO,
        Complex::ZERO,
        Complex::real(FRAC_1_SQRT_2),
    ];
    let e = dd.state_from_amplitudes(&amps).unwrap();
    assert_eq!(dd.vec_node_count(e), 3);
    assert!(dd.amplitude(e, 0b00).approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
    assert!(dd.amplitude(e, 0b11).approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
    // And it is the same canonical diagram the circuit evolution builds.
    let via_circuit = bell_state(&mut dd);
    assert_eq!(e, via_circuit);
}

/// Example 7: H is a single matrix node; CNOT has the Fig. 2(c) block
/// structure with both off-diagonal blocks as 0-stubs.
#[test]
fn example_7_gate_diagrams() {
    let mut dd = DdPackage::new();
    let h = dd.gate_dd(gates::H, &[], 0, 1).unwrap();
    assert_eq!(dd.mat_node_count(h), 1);
    let cx = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).unwrap();
    let root = dd.mnode(cx.node);
    assert!(root.children[1].is_zero());
    assert!(root.children[2].is_zero());
    assert!(!root.children[0].is_zero());
    assert!(!root.children[3].is_zero());
}

/// Example 8 / Fig. 3: H ⊗ I₂ by terminal replacement.
#[test]
fn example_8_tensor_product() {
    let mut dd = DdPackage::new();
    let h = dd.gate_dd(gates::H, &[], 0, 1).unwrap();
    let i2 = dd.identity(1).unwrap();
    // Identity skip makes I₂ a nodeless terminal edge; its one-level span
    // must be stated for the tensor product to shift H past it.
    let kron = dd.kron_mat_spanned(h, i2, 1);
    let direct = dd.gate_dd(gates::H, &[], 1, 2).unwrap();
    assert_eq!(kron, direct);
}

/// Example 9 / Fig. 4: matrix–vector multiplication decomposes block-wise
/// and matches the dense computation.
#[test]
fn example_9_multiplication() {
    let mut dd = DdPackage::new();
    let u = dd.gate_dd(gates::t(), &[Control::pos(0)], 1, 2).unwrap();
    let amps = [
        Complex::new(0.5, 0.0),
        Complex::new(0.0, 0.5),
        Complex::new(-0.5, 0.0),
        Complex::new(0.0, -0.5),
    ];
    let v = dd.state_from_amplitudes(&amps).unwrap();
    let product = dd.mat_vec(u, v);
    let dense_u = dd.to_dense_matrix(u, 2);
    let dense_v = dd.to_dense_vector(v, 2);
    let dense_p = dd.to_dense_vector(product, 2);
    for i in 0..4 {
        let mut want = Complex::ZERO;
        for j in 0..4 {
            want += dense_u[i][j] * dense_v[j];
        }
        assert!(dense_p[i].approx_eq(want, 1e-12), "component {i}");
    }
}

/// Example 10 / Fig. 5: the QFT functionality is 1/√8 · [ω^{jk}] with
/// ω = e^{iπ/4} = √i.
#[test]
fn example_10_qft_functionality() {
    let mut dd = DdPackage::new();
    let qft = library::qft(3, true);
    let mut u = dd.identity(3).unwrap();
    for op in qft.ops() {
        for g in op.to_gate_sequence().unwrap() {
            let m = dd.gate_dd(g.gate.matrix(), &g.controls, g.target, 3).unwrap();
            u = dd.mat_mat(m, u);
        }
    }
    let omega = Complex::cis(std::f64::consts::FRAC_PI_4);
    assert!(omega.approx_eq(Complex::I.sqrt(), 1e-12), "ω = √i");
    let dense = dd.to_dense_matrix(u, 3);
    let scale = 1.0 / (8.0f64).sqrt();
    for (j, row) in dense.iter().enumerate() {
        for (k, &entry) in row.iter().enumerate() {
            let want = Complex::cis(std::f64::consts::FRAC_PI_4 * ((j * k) % 8) as f64) * scale;
            assert!(entry.approx_eq(want, 1e-9), "entry ({j},{k})");
        }
    }
}

/// Example 11: both QFT versions construct the *identical* canonical
/// diagram — equivalence by root comparison.
#[test]
fn example_11_canonicity() {
    let mut dd = DdPackage::new();
    let build = |dd: &mut DdPackage, qc: &QuantumCircuit| {
        let mut u = dd.identity(3).unwrap();
        for op in qc.ops() {
            if let Some(gs) = op.to_gate_sequence() {
                for g in gs {
                    let m = dd.gate_dd(g.gate.matrix(), &g.controls, g.target, 3).unwrap();
                    u = dd.mat_mat(m, u);
                }
            }
        }
        u
    };
    let u1 = build(&mut dd, &library::qft(3, true));
    let u2 = build(&mut dd, &compile::compiled_qft(3));
    assert_eq!(u1, u2, "same edge, same diagram");
    // The paper's size for this diagram: 21 nodes.
    assert_eq!(dd.mat_node_count(u1), 21);
}

/// Example 12: the alternating check needs at most 9 nodes, vs 21 for the
/// full system matrix.
#[test]
fn example_12_advanced_equivalence_checking() {
    let qft = library::qft(3, true);
    let compiled = compile::compiled_qft(3);
    let mut checker = EquivalenceChecker::new();
    let full = checker.check(&qft, &compiled, Strategy::Construction).unwrap();
    let mut checker = EquivalenceChecker::new();
    let alt = checker.check(&qft, &compiled, Strategy::BarrierGuided).unwrap();
    assert!(full.result.is_equivalent());
    assert!(alt.result.is_equivalent());
    assert_eq!(full.peak_nodes, 21);
    assert!(alt.peak_nodes <= 9, "peak {}", alt.peak_nodes);
}

/// Example 13 / Fig. 8: the interactive simulation walk-through.
#[test]
fn example_13_simulation_session() {
    let mut qc = library::bell();
    qc.add_creg("c", 1);
    qc.measure(0, 0);
    let mut s = SteppableSimulation::new(qc);
    s.step_forward().unwrap();
    s.step_forward().unwrap();
    match s.step_forward().unwrap() {
        StepOutcome::NeedsChoice(p) => {
            assert!((p.p0 - 0.5).abs() < 1e-12);
        }
        other => panic!("expected dialog, got {other:?}"),
    }
    s.choose(MeasurementOutcome::One).unwrap();
    let amps = s.package().to_dense_vector(s.state(), 2);
    assert!(amps[0b11].abs() > 0.999);
}

/// Example 14: building the QFT functionality in the left algorithm box
/// yields the Fig. 6 diagram.
#[test]
fn example_14_functionality_construction() {
    use qdd::viz::{style::VizStyle, VerificationExplorer};
    let qft = library::qft(3, true);
    let empty = QuantumCircuit::new(3);
    let mut ex = VerificationExplorer::new(&qft, &empty, VizStyle::colored()).unwrap();
    while ex.apply_left().unwrap() {}
    assert_eq!(ex.package().mat_node_count(ex.matrix()), 21, "Fig. 6 diagram");
}

/// Example 15 / Fig. 9: stepping both circuits keeps the working diagram
/// near the identity throughout.
#[test]
fn example_15_verification_session() {
    use qdd::viz::{style::VizStyle, VerificationExplorer};
    let qft = library::qft(3, true);
    let compiled = compile::compiled_qft(3);
    let mut ex = VerificationExplorer::new(&qft, &compiled, VizStyle::colored()).unwrap();
    let equivalent = ex.run_barrier_guided().unwrap();
    assert!(equivalent);
    assert!(ex.peak_nodes() <= 9);
    // "Close to the identity throughout": every intermediate diagram stays
    // tiny compared to the 21-node functionality.
    assert!(ex.frames().iter().all(|f| f.node_count <= 9));
}
