//! Telemetry must observe, never perturb: recording on or off, the engine
//! computes bit-identical results, and the disabled instrumentation costs
//! a single branch on the hot path.
//!
//! Telemetry state is thread-local, so each test owns its collector.

use qdd::circuit::{library, QuantumCircuit};
use qdd::sim::DdSimulator;
use qdd::telemetry;
use std::time::Instant;

/// A GHZ preparation followed by rotation layers: entangling enough to
/// exercise every operation family (gate cache, add, multiply, measure-free
/// traversal) while staying exactly reproducible.
fn workload() -> QuantumCircuit {
    let mut qc = library::ghz(12);
    for q in 0..12 {
        qc.ry(0.21 + 0.07 * q as f64, q);
    }
    for q in 0..11 {
        qc.cx(q, q + 1);
    }
    qc
}

fn run(circuit: QuantumCircuit) -> DdSimulator {
    let mut sim = DdSimulator::with_seed(circuit, 11);
    sim.run().expect("simulation");
    sim
}

#[test]
fn enabled_telemetry_is_bit_identical_to_disabled() {
    telemetry::set_enabled(false);
    let plain = run(workload());

    telemetry::set_enabled(true);
    telemetry::reset();
    let traced = run(workload());
    telemetry::set_enabled(false);

    // Amplitudes must match to the bit, not merely to a tolerance:
    // telemetry reads state, it must never touch the arithmetic.
    let a = plain.dense_state();
    let b = traced.dense_state();
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            (x.re.to_bits(), x.im.to_bits()),
            (y.re.to_bits(), y.im.to_bits()),
            "amplitude {i} diverged: {x:?} vs {y:?}"
        );
    }
    assert_eq!(plain.node_count(), traced.node_count());
    assert_eq!(plain.stats(), traced.stats());
}

#[test]
fn enabled_run_records_the_expected_shape() {
    telemetry::set_enabled(true);
    telemetry::reset();
    let sim = run(workload());
    let snapshot = telemetry::snapshot();
    let events = telemetry::drain_events();
    telemetry::set_enabled(false);

    // One apply_gate span per gate, one sim.run span overall.
    let gates = sim.circuit().gate_count() as u64;
    let apply = snapshot.span_stats("core.apply_gate").expect("apply spans");
    assert_eq!(apply.count, gates);
    assert_eq!(snapshot.span_stats("sim.run").expect("run span").count, 1);

    // The package published its end-of-run gauges.
    assert!(snapshot.gauge("core.nodes.peak_live").unwrap_or(0.0) > 0.0);
    assert!(snapshot.gauge("core.compute.lookups").unwrap_or(0.0) > 0.0);

    // Every operation produced a `sim.op` event, none were dropped.
    let ops = events.iter().filter(|e| e.name == "sim.op").count();
    assert_eq!(ops as u64, gates, "one sim.op event per gate");
    assert_eq!(snapshot.dropped_events, 0);
}

#[test]
fn worker_threads_publish_into_the_merged_snapshot() {
    telemetry::set_enabled(true);
    telemetry::reset();
    telemetry::reset_published();

    // A mid-circuit-measurement circuit forces the per-shot re-execution
    // regime, which fans out over worker threads.
    let mut qc = QuantumCircuit::new(3);
    let c = qc.add_creg("c", 2);
    qc.h(0).measure(0, 0);
    qc.gate_if(
        qdd::circuit::StandardGate::X,
        vec![],
        1,
        qdd::circuit::Condition { creg: c, value: 1 },
    );
    qc.h(2).cx(2, 1).measure(2, 1);

    let shots = 64;
    let mut opts = qdd::sim::ShotOptions::new(shots, 5);
    opts.threads = 4;
    let report = qdd::sim::shots::run(&qc, &opts).expect("shot run");
    assert_eq!(report.threads_used, 4);

    // Workers record into their own thread-local registries and publish on
    // exit; the coordinating thread's local snapshot therefore has no
    // per-shot spans, but the merged snapshot accounts for every shot on
    // every worker.
    let local = telemetry::snapshot();
    let merged = telemetry::merged_snapshot();
    telemetry::set_enabled(false);
    telemetry::reset();
    telemetry::reset_published();

    assert!(local.span_stats("sim.run").is_none(), "shots run on workers");
    let runs = merged.span_stats("sim.run").expect("published run spans");
    assert_eq!(runs.count, shots, "one sim.run span per shot, all threads");
    // Merged spans fold across workers: totals add, max is the global max.
    assert!(runs.total_ns >= runs.max_ns);
    // The coordinator's own recordings (the shot-engine span and the warm
    // base construction) are still present in the merged view.
    assert_eq!(merged.span_stats("shots.engine").expect("engine span").count, 1);
    assert_eq!(merged.gauge("shots.shared_base"), Some(1.0));
}

#[test]
fn disabled_hot_path_costs_a_branch() {
    telemetry::set_enabled(false);
    telemetry::reset();

    // Ten million disabled probes. The real per-call cost is a thread-local
    // read and a branch (~1 ns); the bound leaves two orders of magnitude
    // of headroom for slow CI machines while still catching an accidental
    // clock read or allocation on the disabled path.
    const N: u64 = 10_000_000;
    let t0 = Instant::now();
    for i in 0..N {
        let _span = telemetry::span("overhead.probe");
        telemetry::counter_add("overhead.count", i & 1);
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed.as_millis() < 2_000,
        "disabled telemetry too slow: {N} probes took {elapsed:?}"
    );

    // And nothing was recorded.
    let snapshot = telemetry::snapshot();
    assert!(snapshot.counters.is_empty());
    assert!(snapshot.spans.is_empty());
    assert!(telemetry::drain_events().is_empty());
}
