//! End-to-end verification scenarios across circuit families, strategies
//! and fault models.

use qdd::circuit::{compile, library, QuantumCircuit, StandardGate};
use qdd::verify::{simulate_equivalence, EquivalenceChecker, Strategy};

const STRATEGIES: [Strategy; 5] = [
    Strategy::Construction,
    Strategy::OneToOne,
    Strategy::Proportional,
    Strategy::BarrierGuided,
    Strategy::Lookahead,
];

#[test]
fn qft_compile_flow_verifies_at_multiple_sizes() {
    for n in 2..=6 {
        let qft = library::qft(n, true);
        let compiled = compile::compiled_qft(n);
        let mut checker = EquivalenceChecker::new();
        let report = checker.check(&qft, &compiled, Strategy::Proportional).unwrap();
        assert!(report.result.is_equivalent(), "qft({n}): {report}");
    }
}

#[test]
fn ccx_decomposition_verifies() {
    let mut original = QuantumCircuit::new(3);
    original.ccx(2, 1, 0);
    let options = compile::CompileOptions {
        decompose_ccx: true,
        ..compile::CompileOptions::default()
    };
    let decomposed = compile::compile(&original, options);
    assert!(decomposed.gate_count() > 10, "actually decomposed");
    let mut checker = EquivalenceChecker::new();
    let report = checker.check(&original, &decomposed, Strategy::Construction).unwrap();
    assert!(report.result.is_equivalent(), "{report}");
}

#[test]
fn inverse_concatenation_is_identity_for_all_library_circuits() {
    for circuit in [
        library::ghz(4),
        library::w_state(4),
        library::qft(4, true),
        library::bernstein_vazirani(3, 0b101),
        library::random_circuit(4, 10, 3),
    ] {
        let inv = circuit.inverse().unwrap();
        let mut composed = QuantumCircuit::new(circuit.num_qubits());
        composed.extend(&circuit);
        composed.extend(&inv);
        let identity = QuantumCircuit::new(circuit.num_qubits());
        let mut checker = EquivalenceChecker::new();
        let report = checker.check(&composed, &identity, Strategy::OneToOne).unwrap();
        assert!(report.result.is_equivalent(), "{}: {report}", circuit.name());
    }
}

#[test]
fn every_strategy_catches_every_single_gate_fault() {
    let base = library::qft(3, false);
    let faults: Vec<(&str, QuantumCircuit)> = vec![
        ("extra-x", {
            let mut c = base.clone();
            c.x(1);
            c
        }),
        ("extra-z", {
            let mut c = base.clone();
            c.z(0);
            c
        }),
        ("extra-t", {
            let mut c = base.clone();
            c.t(2);
            c
        }),
        ("swapped-qubits", {
            let mut c = base.clone();
            c.swap(0, 2);
            c
        }),
    ];
    for (name, faulty) in &faults {
        for strategy in STRATEGIES {
            let mut checker = EquivalenceChecker::new();
            let report = checker.check(&base, faulty, strategy).unwrap();
            assert!(
                !report.result.is_equivalent(),
                "{name} undetected by {strategy}"
            );
        }
    }
}

#[test]
fn commuting_rewrites_verify() {
    // Diagonal gates commute: T·S == S·T; CZ is symmetric in its qubits.
    let mut a = QuantumCircuit::new(2);
    a.t(0).s(0).cz(0, 1);
    let mut b = QuantumCircuit::new(2);
    b.s(0).t(0).cz(1, 0);
    let mut checker = EquivalenceChecker::new();
    let report = checker.check(&a, &b, Strategy::Construction).unwrap();
    assert!(report.result.is_equivalent());
}

#[test]
fn hadamard_conjugation_rewrites_verify() {
    // H X H = Z and H Z H = X.
    let mut a = QuantumCircuit::new(1);
    a.h(0).x(0).h(0);
    let mut b = QuantumCircuit::new(1);
    b.z(0);
    let mut checker = EquivalenceChecker::new();
    assert!(checker
        .check(&a, &b, Strategy::OneToOne)
        .unwrap()
        .result
        .is_equivalent());

    // CX direction flip under H conjugation on both qubits.
    let mut a = QuantumCircuit::new(2);
    a.h(0).h(1).cx(0, 1).h(0).h(1);
    let mut b = QuantumCircuit::new(2);
    b.cx(1, 0);
    let mut checker = EquivalenceChecker::new();
    assert!(checker
        .check(&a, &b, Strategy::Proportional)
        .unwrap()
        .result
        .is_equivalent());
}

#[test]
fn stimuli_and_construction_agree_on_verdicts() {
    for seed in 0..6 {
        let a = library::random_circuit(4, 8, seed);
        let b = if seed % 2 == 0 {
            a.clone()
        } else {
            let mut c = a.clone();
            c.y(seed as usize % 4);
            c
        };
        let mut checker = EquivalenceChecker::new();
        let exact = checker.check(&a, &b, Strategy::Construction).unwrap();
        let stimuli = simulate_equivalence(&a, &b, 12, seed).unwrap();
        if exact.result.is_equivalent() {
            assert!(stimuli.probably_equivalent, "seed {seed}");
        } else {
            // A global-phase-only difference could fool stimuli, but an
            // injected Y is not phase-only on these circuits.
            assert!(!stimuli.probably_equivalent, "seed {seed}");
        }
    }
}

#[test]
fn peak_nodes_shrink_with_alternation_on_compiled_flows() {
    let (qft, compiled) = (library::qft(5, true), compile::compiled_qft(5));
    let mut checker = EquivalenceChecker::new();
    let construction = checker.check(&qft, &compiled, Strategy::Construction).unwrap();
    let mut checker = EquivalenceChecker::new();
    let proportional = checker.check(&qft, &compiled, Strategy::Proportional).unwrap();
    assert!(
        proportional.peak_nodes * 2 <= construction.peak_nodes,
        "alternating {} vs construction {}",
        proportional.peak_nodes,
        construction.peak_nodes
    );
}

#[test]
fn gate_order_fault_is_detected() {
    let mut a = QuantumCircuit::new(2);
    a.h(0).cx(0, 1);
    let mut b = QuantumCircuit::new(2);
    b.cx(0, 1).h(0); // reversed order — not equivalent
    let mut checker = EquivalenceChecker::new();
    let report = checker.check(&a, &b, Strategy::Construction).unwrap();
    assert!(!report.result.is_equivalent());
    assert!(report.counterexample.is_some());
}

#[test]
fn controlled_gate_polarity_fault_is_detected() {
    let mut a = QuantumCircuit::new(2);
    a.gate(StandardGate::X, vec![qdd::circuit::Control::pos(1)], 0);
    let mut b = QuantumCircuit::new(2);
    b.gate(StandardGate::X, vec![qdd::circuit::Control::neg(1)], 0);
    let mut checker = EquivalenceChecker::new();
    let report = checker.check(&a, &b, Strategy::OneToOne).unwrap();
    assert!(!report.result.is_equivalent());
}

#[test]
fn optimizer_output_verifies_against_original() {
    use qdd::circuit::optimize::optimize;
    for (name, circuit) in [
        ("qft", library::qft(4, true)),
        ("compiled_qft", compile::compiled_qft(4)),
        ("grover", library::grover(3, 5)),
        ("random", library::random_circuit(4, 15, 21)),
        ("redundant", {
            let mut qc = QuantumCircuit::new(3);
            qc.h(0).h(0).t(1).t(1).cx(0, 2).cx(0, 2).s(1).sdg(1).swap(0, 1).swap(1, 0);
            qc
        }),
    ] {
        let (optimized, stats) = optimize(&circuit);
        let mut checker = EquivalenceChecker::new();
        let report = checker
            .check(&circuit, &optimized, Strategy::Proportional)
            .unwrap();
        assert!(
            report.result.is_equivalent(),
            "{name}: optimization broke equivalence ({} removed): {report}",
            stats.total_removed()
        );
    }
}

#[test]
fn optimizer_collapses_circuit_times_inverse() {
    use qdd::circuit::optimize::optimize;
    // QFT followed by its inverse cancels gate by gate from the seam.
    let qft = library::qft(4, false);
    let mut composed = QuantumCircuit::new(4);
    composed.extend(&qft);
    composed.extend(&qft.inverse().unwrap());
    let (optimized, stats) = optimize(&composed);
    assert!(optimized.is_empty(), "{optimized}");
    assert_eq!(stats.total_removed(), composed.len());
}
