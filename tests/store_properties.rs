//! Property-based tests of the arity-generic node store, exercised at both
//! instantiations (`N = 2` vector DDs, `N = 4` matrix DDs) through one
//! shared harness.
//!
//! These subsume the hand-written per-arity unit tests for structural
//! sharing: instead of one fixed example each for vectors and matrices,
//! every property here runs over randomized diagram shapes at both
//! arities. Checked invariants:
//!
//! * **Unique-table canonicity** — rebuilding the same diagram in the same
//!   package yields pointer-identical edges and allocates nothing.
//! * **Refcount round trips** — balanced `inc_ref`/`dec_ref` leaves the
//!   package in a state where GC reclaims everything.
//! * **GC-survivor identity** — a referenced root survives collection with
//!   its node count and semantics (dense amplitudes) intact.

use proptest::prelude::*;
use qdd::circuit::QuantumCircuit;
use qdd::complex::Complex;
use qdd::core::{DdPackage, MatEdge, PackageConfig, VecEdge};
use qdd::sim::DdSimulator;

/// One child slot in a random diagram spec: a selector byte plus a complex
/// weight. The selector picks zero / terminal / an already-built node.
type ChildSpec = (u8, f64, f64);

/// `spec[level][node]` is the list of `N` child specs for one node at that
/// level. Levels are built bottom-up, so level `l` nodes decide variable
/// `l` and may reference any node from levels below.
type DdSpec = Vec<Vec<Vec<ChildSpec>>>;

/// The per-arity surface the harness needs — the test-side mirror of the
/// store's own `HasStore<N>` dispatch.
trait StoreArity {
    const N: usize;
    const NAME: &'static str;
    type Edge: Copy + PartialEq + std::fmt::Debug;

    fn zero() -> Self::Edge;
    fn terminal(dd: &mut DdPackage, w: Complex) -> Self::Edge;
    fn make(dd: &mut DdPackage, var: u8, children: &[Self::Edge]) -> Self::Edge;
    fn is_zero(e: Self::Edge) -> bool;
    fn inc_ref(dd: &mut DdPackage, e: Self::Edge);
    fn dec_ref(dd: &mut DdPackage, e: Self::Edge);
    fn node_count(dd: &DdPackage, e: Self::Edge) -> usize;
    /// Dense semantics over `n` qubits, flattened for comparison.
    fn dense(dd: &DdPackage, e: Self::Edge, n: usize) -> Vec<Complex>;
    fn alive(dd: &DdPackage) -> usize;
}

struct VecArity;

impl StoreArity for VecArity {
    const N: usize = 2;
    const NAME: &'static str = "vector";
    type Edge = VecEdge;

    fn zero() -> VecEdge {
        VecEdge::ZERO
    }
    fn terminal(dd: &mut DdPackage, w: Complex) -> VecEdge {
        let idx = dd.intern(w);
        if idx.is_zero() {
            VecEdge::ZERO
        } else {
            VecEdge::terminal(idx)
        }
    }
    fn make(dd: &mut DdPackage, var: u8, children: &[VecEdge]) -> VecEdge {
        dd.make_vec_node(var, [children[0], children[1]])
    }
    fn is_zero(e: VecEdge) -> bool {
        e.is_zero()
    }
    fn inc_ref(dd: &mut DdPackage, e: VecEdge) {
        dd.inc_ref_vec(e);
    }
    fn dec_ref(dd: &mut DdPackage, e: VecEdge) {
        dd.dec_ref_vec(e);
    }
    fn node_count(dd: &DdPackage, e: VecEdge) -> usize {
        dd.vec_node_count(e)
    }
    fn dense(dd: &DdPackage, e: VecEdge, n: usize) -> Vec<Complex> {
        dd.to_dense_vector(e, n)
    }
    fn alive(dd: &DdPackage) -> usize {
        dd.stats().vnodes_alive
    }
}

struct MatArity;

impl StoreArity for MatArity {
    const N: usize = 4;
    const NAME: &'static str = "matrix";
    type Edge = MatEdge;

    fn zero() -> MatEdge {
        MatEdge::ZERO
    }
    fn terminal(dd: &mut DdPackage, w: Complex) -> MatEdge {
        let idx = dd.intern(w);
        if idx.is_zero() {
            MatEdge::ZERO
        } else {
            MatEdge::terminal(idx)
        }
    }
    fn make(dd: &mut DdPackage, var: u8, children: &[MatEdge]) -> MatEdge {
        dd.make_mat_node(var, [children[0], children[1], children[2], children[3]])
    }
    fn is_zero(e: MatEdge) -> bool {
        e.is_zero()
    }
    fn inc_ref(dd: &mut DdPackage, e: MatEdge) {
        dd.inc_ref_mat(e);
    }
    fn dec_ref(dd: &mut DdPackage, e: MatEdge) {
        dd.dec_ref_mat(e);
    }
    fn node_count(dd: &DdPackage, e: MatEdge) -> usize {
        dd.mat_node_count(e)
    }
    fn dense(dd: &DdPackage, e: MatEdge, n: usize) -> Vec<Complex> {
        dd.to_dense_matrix(e, n).into_iter().flatten().collect()
    }
    fn alive(dd: &DdPackage) -> usize {
        dd.stats().mnodes_alive
    }
}

/// Strategy: a random diagram spec with 1–3 levels of 1–3 nodes each.
fn dd_spec(arity: usize) -> impl Strategy<Value = DdSpec> {
    let child = (0u8..255, -1.0f64..1.0, -1.0f64..1.0);
    let node = prop::collection::vec(child, arity);
    let level = prop::collection::vec(node, 1..4);
    prop::collection::vec(level, 1..4)
}

/// Deterministically materializes a spec in `dd`, returning the root edge
/// (never the zero edge) and the number of variable levels.
///
/// The store enforces strict level structure — a node's children are zero
/// stubs, or (at `var == 0`) terminals, or nodes exactly one level down —
/// so each level draws its children only from the level built just before
/// it. A fallback node per level keeps the chain alive when every random
/// node normalizes to zero.
fn build_dd<A: StoreArity>(dd: &mut DdPackage, spec: &DdSpec) -> (A::Edge, usize) {
    let mut prev: Vec<A::Edge> = Vec::new();
    for (var, level) in spec.iter().enumerate() {
        let mut next: Vec<A::Edge> = Vec::new();
        for node_spec in level {
            let children: Vec<A::Edge> = node_spec
                .iter()
                .map(|&(sel, re, im)| {
                    if sel % 3 == 0 {
                        A::zero()
                    } else if var == 0 {
                        A::terminal(dd, Complex::new(re, im))
                    } else {
                        prev[(sel as usize / 3) % prev.len()]
                    }
                })
                .collect();
            let e = A::make(dd, var as u8, &children);
            if !A::is_zero(e) {
                next.push(e);
            }
        }
        if next.is_empty() {
            // All nodes at this level normalized to zero; keep the tower
            // going with a deterministic non-zero node.
            let mut children = vec![A::zero(); A::N];
            children[0] = if var == 0 {
                A::terminal(dd, Complex::ONE)
            } else {
                prev[0]
            };
            next.push(A::make(dd, var as u8, &children));
        }
        prev = next;
    }
    (*prev.last().unwrap(), spec.len())
}

const TOL: f64 = 1e-9;

fn assert_dense_eq(a: &[Complex], b: &[Complex]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert!(x.approx_eq(*y, TOL), "{x} vs {y}");
    }
}

/// Rebuilding the identical spec yields the identical edge and allocates
/// no new nodes or complex values: the unique table canonicalizes.
fn check_canonicity<A: StoreArity>(spec: &DdSpec) {
    let mut dd = DdPackage::new();
    let (r1, _) = build_dd::<A>(&mut dd, spec);
    let alive = A::alive(&dd);
    let complexes = dd.stats().complex_entries;
    let (r2, _) = build_dd::<A>(&mut dd, spec);
    assert_eq!(r1, r2, "{} rebuild must be pointer-identical", A::NAME);
    assert_eq!(A::alive(&dd), alive, "{} rebuild allocated nodes", A::NAME);
    assert_eq!(
        dd.stats().complex_entries,
        complexes,
        "{} rebuild interned new weights",
        A::NAME
    );
}

/// Balanced inc/dec leaves no roots behind: a following GC reclaims every
/// node of both stores.
fn check_refcount_round_trip<A: StoreArity>(spec: &DdSpec, pins: usize) {
    let mut dd = DdPackage::new();
    let (root, _) = build_dd::<A>(&mut dd, spec);
    for _ in 0..pins {
        A::inc_ref(&mut dd, root);
    }
    for _ in 0..pins {
        A::dec_ref(&mut dd, root);
    }
    dd.garbage_collect();
    assert_eq!(
        A::alive(&dd),
        0,
        "{} nodes leaked after balanced refcounts",
        A::NAME
    );
}

/// A referenced root survives GC unchanged — same node count, same dense
/// semantics — and is reclaimed once released.
fn check_gc_survivor_identity<A: StoreArity>(spec: &DdSpec) {
    let mut dd = DdPackage::new();
    let (root, levels) = build_dd::<A>(&mut dd, spec);
    A::inc_ref(&mut dd, root);
    let count = A::node_count(&dd, root);
    let dense = A::dense(&dd, root, levels);
    dd.garbage_collect();
    assert_eq!(
        A::node_count(&dd, root),
        count,
        "{} survivor changed shape",
        A::NAME
    );
    assert_dense_eq(&dense, &A::dense(&dd, root, levels));
    A::dec_ref(&mut dd, root);
    dd.garbage_collect();
    assert_eq!(A::alive(&dd), 0, "{} root not reclaimed", A::NAME);
}

/// Strategy: a random gate list over a 5-qubit register. Wide enough that
/// most two-qubit gates leave idle levels in their operator DDs, so the
/// identity-skip representation actually diverges from the dense one.
const SKIP_QUBITS: usize = 5;

fn skip_circuit() -> impl Strategy<Value = QuantumCircuit> {
    let op = (0u8..6, 0usize..SKIP_QUBITS, 0usize..SKIP_QUBITS, -3.0f64..3.0);
    prop::collection::vec(op, 1..20).prop_map(|ops| {
        let mut qc = QuantumCircuit::new(SKIP_QUBITS);
        for (kind, a, b, theta) in ops {
            match kind {
                0 => {
                    qc.h(a);
                }
                1 => {
                    qc.t(a);
                }
                2 => {
                    qc.rz(theta, a);
                }
                3 if a != b => {
                    qc.cx(a, b);
                }
                4 if a != b => {
                    qc.cp(theta, a, b);
                }
                _ => {
                    qc.x(a);
                }
            }
        }
        qc
    })
}

/// Runs `qc` under the given identity-skip setting; returns the final
/// amplitudes and a shot histogram.
fn run_with_skip(
    qc: &QuantumCircuit,
    skip: bool,
    shots: u64,
) -> (Vec<Complex>, std::collections::HashMap<u64, u64>) {
    let config = PackageConfig {
        identity_skip: skip,
        ..PackageConfig::default()
    };
    let mut sim = DdSimulator::with_config(qc.clone(), 7, config);
    sim.run().expect("simulation");
    let amps = sim.package().to_dense_vector(sim.state(), SKIP_QUBITS);
    let hist = sim.sample(shots).into_iter().collect();
    (amps, hist)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole contract of identity-skipped matrix DDs: the
    /// representation change is invisible to results. Amplitudes are
    /// *bit-identical* (not approximately equal) between skip-on and
    /// skip-off runs — skipping only elides multiplications by exact 1 —
    /// and seeded shot histograms therefore match exactly too.
    #[test]
    fn identity_skip_is_semantically_invisible(
        qc in skip_circuit(),
        shots in 1u64..64,
    ) {
        let (amps_on, hist_on) = run_with_skip(&qc, true, shots);
        let (amps_off, hist_off) = run_with_skip(&qc, false, shots);
        prop_assert_eq!(amps_on.len(), amps_off.len());
        for (x, y) in amps_on.iter().zip(amps_off.iter()) {
            prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
            prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        prop_assert_eq!(hist_on, hist_off);
    }

    #[test]
    fn unique_table_canonicity_vec(spec in dd_spec(2)) {
        check_canonicity::<VecArity>(&spec);
    }

    #[test]
    fn unique_table_canonicity_mat(spec in dd_spec(4)) {
        check_canonicity::<MatArity>(&spec);
    }

    #[test]
    fn refcount_round_trip_vec(spec in dd_spec(2), pins in 1usize..4) {
        check_refcount_round_trip::<VecArity>(&spec, pins);
    }

    #[test]
    fn refcount_round_trip_mat(spec in dd_spec(4), pins in 1usize..4) {
        check_refcount_round_trip::<MatArity>(&spec, pins);
    }

    #[test]
    fn gc_survivor_identity_vec(spec in dd_spec(2)) {
        check_gc_survivor_identity::<VecArity>(&spec);
    }

    #[test]
    fn gc_survivor_identity_mat(spec in dd_spec(4)) {
        check_gc_survivor_identity::<MatArity>(&spec);
    }
}
