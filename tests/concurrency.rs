//! Gating concurrency tests: one shared `DdPackage` hammered from many
//! threads must stay canonical and balanced, and the shot engine's shared
//! frozen-base path must produce bit-identical histograms at every thread
//! count. Run in CI under `--release` with 8 worker threads.

use qdd::core::{DdPackage, Edge, FrontCache, Qubit, VecEdge};
use qdd::sim::ShotOptions;
use std::sync::{Arc, RwLock};

/// Compile-time proof that the package and its frozen form cross threads.
#[allow(dead_code)]
fn package_is_send_sync() {
    fn ok<T: Send + Sync>() {}
    ok::<DdPackage>();
    ok::<qdd::core::FrozenDd>();
    ok::<Arc<qdd::core::FrozenDd>>();
}

const QUBITS: u32 = 6;

/// Builds the basis state |bits⟩ through the shared (lock-striped) lane.
fn build_basis(pkg: &DdPackage, bits: u64, front: &mut FrontCache) -> VecEdge {
    let mut e: VecEdge = Edge::ONE;
    for q in 0..QUBITS {
        let children = if bits >> q & 1 == 0 {
            [e, Edge::ZERO]
        } else {
            [Edge::ZERO, e]
        };
        e = pkg.make_vec_node_shared(q as Qubit, children, front);
    }
    e
}

/// N threads interleave shared-lane node construction, unique-table
/// lookups, atomic refcount pinning, and full GC runs on one package
/// behind an `RwLock` (readers build, writers collect). Afterwards the
/// unique tables must be canonical (same inputs → same edge, from any
/// thread) and every refcount balanced (a final GC frees everything).
#[test]
fn shared_store_survives_make_lookup_gc_interleavings() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 200;

    let pkg = Arc::new(RwLock::new(DdPackage::new()));
    let base_alive = pkg.read().unwrap().stats().vnodes_alive;

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let pkg = Arc::clone(&pkg);
            scope.spawn(move || {
                let mut front = FrontCache::new();
                let mut roots: Vec<VecEdge> = Vec::new();
                for round in 0..ROUNDS {
                    // Overlapping pattern sets: every pattern is built by
                    // several threads, racing on the same unique-table
                    // shards.
                    let bits = ((round * 7 + t * 13) % 64) as u64;
                    {
                        let p = pkg.read().unwrap();
                        let e = build_basis(&p, bits, &mut front);
                        p.inc_ref_vec_shared(e);
                        roots.push(e);
                        // Canonicity under contention: an immediate rebuild
                        // of the same structure must return the same edge.
                        let again = build_basis(&p, bits, &mut front);
                        assert_eq!(e, again, "shared make_node lost canonicity");
                    }
                    // Staggered writers force GC runs between (and only
                    // between) read sections.
                    if round % 16 == t {
                        pkg.write().unwrap().garbage_collect();
                    }
                }
                // Release every pinned root (twice-pinned patterns release
                // twice — the atomic counts must balance exactly).
                let p = pkg.read().unwrap();
                for &e in &roots {
                    p.dec_ref_vec_shared(e);
                }
            });
        }
    });

    // Canonicity across the whole table: the 64 patterns still intern to 64
    // distinct, stable edges after all the GC churn.
    {
        let p = pkg.read().unwrap();
        let mut front = FrontCache::new();
        let edges: Vec<VecEdge> = (0..64).map(|b| build_basis(&p, b, &mut front)).collect();
        for (i, a) in edges.iter().enumerate() {
            for b in &edges[i + 1..] {
                assert_ne!(a, b, "distinct basis states collapsed");
            }
        }
    }

    // Refcount balance: with every shared pin released, a final collection
    // frees all stress nodes and the package is back at its baseline.
    let mut p = pkg.write().unwrap();
    let report = p.garbage_collect();
    assert!(report.freed_vnodes > 0, "stress nodes should be collectable");
    assert_eq!(
        p.stats().vnodes_alive,
        base_alive,
        "unbalanced refcounts kept stress nodes alive"
    );
}

/// A mid-circuit-measurement circuit: per-shot re-execution, and (with no
/// resource budgets configured) the shot engine's shared frozen-base path.
fn mid_circuit_workload() -> qdd::circuit::QuantumCircuit {
    let mut qc = qdd::circuit::QuantumCircuit::new(4);
    let c = qc.add_creg("c", 2);
    qc.h(0).measure(0, 0);
    qc.gate_if(
        qdd::circuit::StandardGate::X,
        vec![],
        1,
        qdd::circuit::Condition { creg: c, value: 1 },
    );
    qc.h(2).cx(2, 1).cx(2, 3).measure(2, 1);
    qc
}

/// The shared-package path must be invisible in the histogram: every worker
/// overlays the same frozen base, every shot derives its stream from
/// (base seed, shot index) alone, so 1 thread and N threads agree bit for
/// bit.
#[test]
fn shared_package_histograms_are_bit_identical_one_vs_n_threads() {
    let circuit = mid_circuit_workload();
    let shots = 500;

    let mut opts = ShotOptions::new(shots, 23);
    opts.threads = 1;
    let reference = qdd::sim::shots::run(&circuit, &opts).expect("1-thread run");
    assert_eq!(reference.threads_used, 1);
    assert_eq!(reference.histogram.values().sum::<u64>(), shots);

    for threads in [2, 4, 8] {
        let mut opts = ShotOptions::new(shots, 23);
        opts.threads = threads;
        let report = qdd::sim::shots::run(&circuit, &opts).expect("N-thread run");
        assert_eq!(report.threads_used, threads);
        assert_eq!(
            report.histogram, reference.histogram,
            "{threads}-thread histogram diverged from the 1-thread reference"
        );
    }
}
