//! Property-based tests of the core decision-diagram invariants, driven
//! through the whole stack with `proptest`.

use proptest::prelude::*;
use qdd::circuit::{QuantumCircuit, StandardGate};
use qdd::complex::Complex;
use qdd::core::{Control, DdPackage};
use qdd::sim::{DdSimulator, DenseSimulator};
use qdd::verify::{EquivalenceChecker, Strategy as EcStrategy};

/// Strategy: a random amplitude vector over `n` qubits (not normalized).
fn amplitudes(n: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1 << n)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
        .prop_filter("norm must not vanish", |v: &Vec<Complex>| {
            v.iter().map(|a| a.norm_sqr()).sum::<f64>() > 1e-6
        })
}

/// Strategy: a random small circuit description.
fn small_circuit() -> impl Strategy<Value = QuantumCircuit> {
    let gate = prop_oneof![
        Just(0usize),
        Just(1),
        Just(2),
        Just(3),
        Just(4),
        Just(5)
    ];
    prop::collection::vec((gate, 0usize..4, 0usize..4, -3.0f64..3.0), 1..25).prop_map(|ops| {
        let mut qc = QuantumCircuit::new(4);
        for (kind, a, b, theta) in ops {
            match kind {
                0 => {
                    qc.h(a);
                }
                1 => {
                    qc.t(a);
                }
                2 => {
                    qc.rx(theta, a);
                }
                3 => {
                    qc.rz(theta, a);
                }
                4 if a != b => {
                    qc.cx(a, b);
                }
                5 if a != b => {
                    qc.cp(theta, a, b);
                }
                _ => {
                    qc.x(a);
                }
            }
        }
        qc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: dense → DD → dense reproduces amplitudes up to the
    /// global normalization.
    #[test]
    fn dd_dense_round_trip(amps in amplitudes(3)) {
        let mut dd = DdPackage::new();
        let e = dd.state_from_amplitudes(&amps).unwrap();
        let back = dd.to_dense_vector(e, 3);
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        for (orig, got) in amps.iter().zip(back.iter()) {
            prop_assert!(got.approx_eq(*orig / norm, 1e-9));
        }
    }

    /// Canonicity: building the same function twice yields the same edge.
    #[test]
    fn canonicity_of_state_construction(amps in amplitudes(3)) {
        let mut dd = DdPackage::new();
        let a = dd.state_from_amplitudes(&amps).unwrap();
        let b = dd.state_from_amplitudes(&amps).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Scale invariance: a scaled amplitude vector yields the same node
    /// with a scaled root weight.
    #[test]
    fn canonicity_under_scaling(amps in amplitudes(3), scale in 0.1f64..5.0, phase in 0.0f64..std::f64::consts::TAU) {
        let mut dd = DdPackage::new();
        let a = dd.state_from_amplitudes(&amps).unwrap();
        let factor = Complex::from_polar(scale, phase);
        let scaled: Vec<Complex> = amps.iter().map(|&v| v * factor).collect();
        let b = dd.state_from_amplitudes(&scaled).unwrap();
        // state_from_amplitudes normalizes, so only the phase remains.
        prop_assert_eq!(a.node, b.node);
        let wa = dd.complex_value(a.weight);
        let wb = dd.complex_value(b.weight);
        prop_assert!((wa.abs() - wb.abs()).abs() < 1e-9);
    }

    /// Unitarity: every circuit keeps states normalized.
    #[test]
    fn circuits_preserve_norm(qc in small_circuit()) {
        let mut sim = DdSimulator::with_seed(qc, 1);
        sim.run().unwrap();
        let state = sim.state();
        let norm = sim.package_mut().vec_norm(state);
        prop_assert!((norm - 1.0).abs() < 1e-8);
    }

    /// Soundness: the DD simulator agrees with the dense baseline on
    /// arbitrary circuits.
    #[test]
    fn dd_matches_dense_on_random_circuits(qc in small_circuit()) {
        let mut dd_sim = DdSimulator::with_seed(qc.clone(), 1);
        dd_sim.run().unwrap();
        let dd_state = dd_sim.dense_state();
        let dense = DenseSimulator::simulate(&qc, 1).unwrap();
        for (a, b) in dd_state.iter().zip(dense.state().iter()) {
            prop_assert!(a.approx_eq(*b, 1e-8));
        }
    }

    /// Self-equivalence: every circuit verifies against itself, under the
    /// cheapest and the most involved strategy.
    #[test]
    fn self_equivalence(qc in small_circuit()) {
        let mut checker = EquivalenceChecker::new();
        let report = checker.check(&qc, &qc, EcStrategy::OneToOne).unwrap();
        prop_assert!(report.result.is_equivalent());
    }

    /// Inverse property: appending the inverse yields the identity.
    #[test]
    fn inverse_gives_identity(qc in small_circuit()) {
        let inv = qc.inverse().unwrap();
        let mut composed = QuantumCircuit::new(qc.num_qubits());
        composed.extend(&qc);
        composed.extend(&inv);
        let identity = QuantumCircuit::new(qc.num_qubits());
        let mut checker = EquivalenceChecker::new();
        let report = checker.check(&composed, &identity, EcStrategy::Proportional).unwrap();
        prop_assert!(report.result.is_equivalent());
    }

    /// Measurement probabilities always form a distribution.
    #[test]
    fn probabilities_sum_to_one(qc in small_circuit(), qubit in 0usize..4) {
        let mut sim = DdSimulator::with_seed(qc, 1);
        sim.run().unwrap();
        let state = sim.state();
        let (p0, p1) = sim.package_mut().qubit_probabilities(state, qubit);
        prop_assert!((p0 + p1 - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&p0));
    }

    /// Collapse is a projection: collapsing twice to the same outcome is
    /// the same as collapsing once.
    #[test]
    fn collapse_is_idempotent(qc in small_circuit(), qubit in 0usize..4) {
        let mut sim = DdSimulator::with_seed(qc, 1);
        sim.run().unwrap();
        let state = sim.state();
        let dd = sim.package_mut();
        let (p0, _) = dd.qubit_probabilities(state, qubit);
        let outcome = qdd::core::MeasurementOutcome::from(p0 < 0.5);
        if let Ok(once) = dd.collapse(state, qubit, outcome) {
            let twice = dd.collapse(once, qubit, outcome).unwrap();
            prop_assert_eq!(once, twice);
        }
    }

    /// Inner products are bounded by Cauchy–Schwarz.
    #[test]
    fn inner_product_bounded(a in amplitudes(3), b in amplitudes(3)) {
        let mut dd = DdPackage::new();
        let ea = dd.state_from_amplitudes(&a).unwrap();
        let eb = dd.state_from_amplitudes(&b).unwrap();
        let ip = dd.inner_product(ea, eb);
        prop_assert!(ip.abs() <= 1.0 + 1e-9);
        // ⟨a|a⟩ is real 1 after normalization.
        let aa = dd.inner_product(ea, ea);
        prop_assert!(aa.approx_eq(Complex::ONE, 1e-9));
    }

    /// Kron dimension/content law on states.
    #[test]
    fn kron_matches_dense_tensor(a in amplitudes(2), b in amplitudes(2)) {
        let mut dd = DdPackage::new();
        let ea = dd.state_from_amplitudes(&a).unwrap();
        let eb = dd.state_from_amplitudes(&b).unwrap();
        let prod = dd.kron_vec(ea, eb);
        let da = dd.to_dense_vector(ea, 2);
        let db = dd.to_dense_vector(eb, 2);
        let dp = dd.to_dense_vector(prod, 4);
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!(dp[i * 4 + j].approx_eq(da[i] * db[j], 1e-9));
            }
        }
    }
}

/// A non-proptest spot check that the controlled-gate builder agrees with
/// the dense controlled construction for every standard gate.
#[test]
fn controlled_gates_match_dense_for_standard_set() {
    let gates_to_test = [
        StandardGate::H,
        StandardGate::X,
        StandardGate::Y,
        StandardGate::Z,
        StandardGate::S,
        StandardGate::T,
        StandardGate::Sx,
        StandardGate::Phase(0.77),
        StandardGate::Rx(1.3),
        StandardGate::Ry(-0.6),
        StandardGate::Rz(2.2),
        StandardGate::U(0.4, 1.0, -1.5),
    ];
    let mut dd = DdPackage::new();
    for gate in gates_to_test {
        let g = dd
            .gate_dd(gate.matrix(), &[Control::pos(1)], 0, 2)
            .unwrap();
        let dense = dd.to_dense_matrix(g, 2);
        let u = gate.matrix();
        for r in 0..4 {
            for c in 0..4 {
                let want = if r < 2 && c < 2 {
                    // control |0⟩ block: identity
                    if r == c { Complex::ONE } else { Complex::ZERO }
                } else if r >= 2 && c >= 2 {
                    u[r - 2][c - 2]
                } else {
                    Complex::ZERO
                };
                assert!(
                    dense[r][c].approx_eq(want, 1e-12),
                    "{gate:?} entry ({r},{c})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serialization format round trip: QASM emitted by `to_qasm` reparses
    /// to a circuit with the same semantics.
    #[test]
    fn qasm_round_trip_preserves_semantics(qc in small_circuit()) {
        let text = qc.to_qasm();
        let reparsed = qdd::circuit::qasm::parse(&text).unwrap();
        let mut a = DdSimulator::with_seed(qc, 1);
        a.run().unwrap();
        let mut b = DdSimulator::with_seed(reparsed, 1);
        b.run().unwrap();
        for (x, y) in a.dense_state().iter().zip(b.dense_state().iter()) {
            prop_assert!(x.approx_eq(*y, 1e-9));
        }
    }

    /// Diagram serialization round trip on arbitrary circuit states.
    #[test]
    fn dd_serialization_round_trip(qc in small_circuit()) {
        let mut sim = DdSimulator::with_seed(qc.clone(), 1);
        sim.run().unwrap();
        let mut buffer = Vec::new();
        sim.package().write_vector(sim.state(), &mut buffer).unwrap();
        let mut fresh = DdPackage::new();
        let loaded = fresh.read_vector(buffer.as_slice()).unwrap();
        let a = sim.dense_state();
        let b = fresh.to_dense_vector(loaded, qc.num_qubits());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!(x.approx_eq(*y, 1e-9));
        }
    }

    /// Approximation soundness: the reported fidelity lower bound never
    /// exceeds the exact overlap `|⟨ψ|ψ̃⟩|²` (computed independently via
    /// the DD inner product), honors the requested floor, and the pruned
    /// state comes back normalized.
    #[test]
    fn pruning_bound_is_sound(amps in amplitudes(4), floor in 0.3f64..0.999) {
        let mut dd = DdPackage::new();
        let state = dd.state_from_amplitudes(&amps).unwrap();
        let (pruned, report) = dd.prune_to_fidelity(state, floor).unwrap();
        let exact = dd.fidelity(state, pruned);
        prop_assert!(
            report.fidelity_lower_bound <= exact + 1e-9,
            "bound {} exceeds exact fidelity {exact}",
            report.fidelity_lower_bound
        );
        prop_assert!(
            report.fidelity_lower_bound >= floor - 1e-12,
            "bound {} broke the floor {floor}",
            report.fidelity_lower_bound
        );
        let norm = dd.vec_norm(pruned);
        prop_assert!((norm - 1.0).abs() < 1e-9, "pruned norm {norm}");
    }

    /// A fidelity floor of exactly 1.0 is a bit-identical no-op: same edge,
    /// zero rounds, nothing removed.
    #[test]
    fn full_fidelity_floor_is_identity(amps in amplitudes(4)) {
        let mut dd = DdPackage::new();
        let state = dd.state_from_amplitudes(&amps).unwrap();
        let (pruned, report) = dd.prune_to_fidelity(state, 1.0).unwrap();
        prop_assert_eq!(pruned, state);
        prop_assert_eq!(report.rounds, 0);
        prop_assert_eq!(report.fidelity_lower_bound, 1.0);
    }

    /// Threshold contraction reports the same kind of sound bound whenever
    /// it leaves a nonzero state behind.
    #[test]
    fn threshold_bound_is_sound(amps in amplitudes(4), eps in 1e-6f64..0.05) {
        let mut dd = DdPackage::new();
        let state = dd.state_from_amplitudes(&amps).unwrap();
        if let Ok((pruned, report)) = dd.contract_threshold(state, eps) {
            let exact = dd.fidelity(state, pruned);
            prop_assert!(
                report.fidelity_lower_bound <= exact + 1e-9,
                "bound {} exceeds exact fidelity {exact}",
                report.fidelity_lower_bound
            );
            let norm = dd.vec_norm(pruned);
            prop_assert!((norm - 1.0).abs() < 1e-9, "pruned norm {norm}");
        }
    }

    /// The optimizer never changes semantics (dense-state comparison,
    /// complementing the EC-based integration test).
    #[test]
    fn optimizer_preserves_semantics(qc in small_circuit()) {
        let (optimized, _) = qdd::circuit::optimize::optimize(&qc);
        let mut a = DdSimulator::with_seed(qc, 1);
        a.run().unwrap();
        if optimized.is_empty() {
            // Optimized to identity: the original must act as identity on |0…0⟩.
            prop_assert!((a.amplitude(0).abs() - 1.0).abs() < 1e-9);
        } else {
            let mut b = DdSimulator::with_seed(optimized, 1);
            b.run().unwrap();
            for (x, y) in a.dense_state().iter().zip(b.dense_state().iter()) {
                prop_assert!(x.approx_eq(*y, 1e-9));
            }
        }
    }
}
