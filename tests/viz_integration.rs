//! Visualization pipeline integration: every export format stays
//! well-formed across circuit families and styles, and the explorer
//! sessions mirror the tool's behaviour end to end.

use qdd::circuit::{compile, library};
use qdd::core::MeasurementOutcome;
use qdd::sim::DdSimulator;
use qdd::viz::{
    dot, graph::DdGraph, html, json, style::VizStyle, svg, SimulationExplorer,
    VerificationExplorer,
};

fn styles() -> [VizStyle; 3] {
    [VizStyle::classic(), VizStyle::colored(), VizStyle::modern()]
}

#[test]
fn all_formats_well_formed_for_library_states() {
    for circuit in [
        library::bell(),
        library::ghz(5),
        library::w_state(4),
        library::qft(4, true),
        library::random_circuit(4, 8, 2),
    ] {
        let mut sim = DdSimulator::with_seed(circuit.clone(), 1);
        sim.run().unwrap();
        let graph = DdGraph::from_vector(sim.package(), sim.state());
        assert_eq!(graph.node_count(), sim.node_count());
        for style in styles() {
            let d = dot::vector_to_dot(sim.package(), sim.state(), &style);
            assert!(d.starts_with("digraph dd {") && d.trim_end().ends_with('}'));
            assert_eq!(d.matches('{').count(), d.matches('}').count());

            let s = svg::vector_to_svg(sim.package(), sim.state(), &style);
            assert!(s.starts_with("<svg") && s.trim_end().ends_with("</svg>"));
            // Every drawn node appears.
            for node in &graph.nodes {
                assert!(
                    s.contains(&format!(">q{}</text>", node.var)),
                    "{}: node q{} missing",
                    circuit.name(),
                    node.var
                );
            }
        }
        let j = json::graph_to_json(&graph);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches("\"key\":").count(), graph.node_count());
    }
}

#[test]
fn matrix_exports_for_functionalities() {
    use qdd::core::DdPackage;
    let mut dd = DdPackage::new();
    let qft = library::qft(3, true);
    let mut u = dd.identity(3).unwrap();
    for op in qft.ops() {
        for g in op.to_gate_sequence().unwrap() {
            let m = dd.gate_dd(g.gate.matrix(), &g.controls, g.target, 3).unwrap();
            u = dd.mat_mat(m, u);
        }
    }
    for style in styles() {
        let d = dot::matrix_to_dot(&dd, u, &style);
        assert_eq!(d.matches('{').count(), d.matches('}').count());
        let s = svg::matrix_to_svg(&dd, u, &style);
        assert!(s.contains("</svg>"));
    }
    let graph = DdGraph::from_matrix(&dd, u);
    assert_eq!(graph.node_count(), 21, "Fig. 6 size");
    assert_eq!(graph.slots(), 4);
}

#[test]
fn simulation_explorer_full_ghz_story() {
    let mut circuit = library::ghz(3);
    circuit.add_creg("c", 3);
    circuit.barrier();
    circuit.measure(2, 2);
    let mut ex = SimulationExplorer::new(circuit, VizStyle::colored());
    let dialogs = ex.run_scripted(&[MeasurementOutcome::One]).unwrap();
    assert_eq!(dialogs, 1);
    // Initial + 3 gates + barrier + dialog + collapse = 7 frames.
    assert_eq!(ex.frames().len(), 7);
    // After measuring the MSB of a GHZ state as |1⟩, the state is |111⟩.
    let final_nodes = ex.latest_frame().node_count;
    assert_eq!(final_nodes, 3, "basis state diagram is a chain");

    let page = html::explorer_html("ghz", ex.frames());
    assert!(page.contains("const frames = 7;"));
    // All SVG content is embedded inline.
    assert_eq!(page.matches("<svg").count(), 7);
}

#[test]
fn verification_explorer_detects_and_confirms() {
    let left = library::qft(4, true);
    let right = compile::compiled_qft(4);
    let mut ex = VerificationExplorer::new(&left, &right, VizStyle::classic()).unwrap();
    assert!(ex.run_barrier_guided().unwrap());

    // Frames: identity + one per applied gate on either side.
    let (l, r) = ex.position();
    assert_eq!(ex.frames().len(), 1 + l + r);
    assert!(ex.peak_nodes() < 21, "stays below the full functionality");
}

#[test]
fn step_back_and_forward_round_trips_frames() {
    let mut ex = SimulationExplorer::new(library::qft(3, false), VizStyle::classic());
    for _ in 0..4 {
        ex.step_forward().unwrap();
    }
    let fwd_frame = ex.latest_frame().clone();
    ex.step_back();
    ex.step_back();
    ex.step_forward().unwrap();
    ex.step_forward().unwrap();
    let again = ex.latest_frame();
    // Same state reached again: identical rendering (same canonical DD),
    // even though the frame indices differ.
    assert_eq!(fwd_frame.svg, again.svg);
    assert_eq!(fwd_frame.node_count, again.node_count);
}

#[test]
fn color_wheel_and_phase_samples_are_stable() {
    let wheel = svg::color_wheel_svg(24, 64.0);
    assert_eq!(wheel.matches("<path").count(), 24);
    // Anchor colors of the Fig. 7(b) wheel.
    assert_eq!(qdd::viz::phase_to_color(0.0).to_hex(), "#ff0000");
    assert_eq!(
        qdd::viz::phase_to_color(std::f64::consts::PI).to_hex(),
        "#00ffff"
    );
}
