//! Algebraic properties of `Snapshot::merge`, the cross-thread aggregation
//! step behind `merged_snapshot()` and the timeline's run-level totals.
//!
//! Worker threads publish in whatever order they finish, and the
//! coordinator folds them left-to-right — so the merged result is
//! deterministic only if merge is **commutative** and **associative** over
//! every metric kind, with the empty snapshot as the **identity**. These
//! properties are checked over randomized snapshots whose names overlap
//! (the interesting case: disjoint names trivially commute).

use proptest::prelude::*;
use qdd::telemetry::{HistogramSnapshot, Snapshot, SpanAgg};

/// A small name pool so generated snapshots collide on names often.
const NAMES: [&str; 5] = ["core.apply", "sim.op", "gc.runs", "shots.run", "verify.step"];

/// Sorted, deduplicated named entries — the shape `Snapshot` construction
/// guarantees and `merge` relies on.
fn named<T>(entries: Vec<(usize, T)>, fold: impl Fn(&mut T, T)) -> Vec<(String, T)> {
    let mut out: Vec<(String, T)> = Vec::new();
    for (idx, value) in entries {
        let name = NAMES[idx % NAMES.len()].to_string();
        match out.binary_search_by(|(n, _)| n.cmp(&name)) {
            Ok(i) => fold(&mut out[i].1, value),
            Err(i) => out.insert(i, (name, value)),
        }
    }
    out
}

/// A histogram over explicit observations, bucketed into fixed decades so
/// any two generated histograms agree on bucket boundaries (as real ones
/// do: the recorder's bucketing is value-determined, not state-determined).
fn histogram(observations: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::default();
    for &v in observations {
        if h.count == 0 {
            h.min = v;
            h.max = v;
        } else {
            h.min = h.min.min(v);
            h.max = h.max.max(v);
        }
        h.count += 1;
        h.sum += v;
        let lo = v / 10 * 10;
        match h.buckets.binary_search_by_key(&lo, |&(l, _, _)| l) {
            Ok(i) => h.buckets[i].2 += 1,
            Err(i) => h.buckets.insert(i, (lo, lo + 9, 1)),
        }
    }
    h
}

#[allow(clippy::type_complexity)]
fn snapshot_strategy() -> impl Strategy<
    Value = (
        Vec<(usize, u64)>,
        Vec<(usize, f64)>,
        Vec<(usize, Vec<u64>)>,
        Vec<(usize, (u64, u64))>,
        u64,
    ),
> {
    (
        prop::collection::vec((0usize..5, 0u64..1_000), 0..6),
        prop::collection::vec((0usize..5, 0.0f64..100.0), 0..6),
        prop::collection::vec((0usize..5, prop::collection::vec(0u64..200, 1..5)), 0..4),
        prop::collection::vec((0usize..5, (1u64..50, 1u64..10_000)), 0..6),
        0u64..4,
    )
}

type SnapshotSpec = (
    Vec<(usize, u64)>,
    Vec<(usize, f64)>,
    Vec<(usize, Vec<u64>)>,
    Vec<(usize, (u64, u64))>,
    u64,
);

fn build(spec: SnapshotSpec) -> Snapshot {
    let (counters, gauges, histograms, spans, dropped) = spec;
    Snapshot {
        counters: named(counters, |a, b| *a += b),
        gauges: named(gauges, |a, b| *a = a.max(b)),
        histograms: named(
            histograms.into_iter().map(|(i, obs)| (i, histogram(&obs))).collect(),
            |a, b| a.merge(&b),
        ),
        spans: named(
            spans
                .into_iter()
                .map(|(i, (count, total_ns))| {
                    (
                        i,
                        SpanAgg {
                            count,
                            total_ns,
                            max_ns: total_ns / count.max(1),
                        },
                    )
                })
                .collect(),
            |a, b| {
                a.count += b.count;
                a.total_ns += b.total_ns;
                a.max_ns = a.max_ns.max(b.max_ns);
            },
        ),
        dropped_events: dropped,
    }
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Worker publish order must not matter: `a ⊔ b == b ⊔ a`.
    #[test]
    fn merge_is_commutative(
        a in snapshot_strategy(),
        b in snapshot_strategy(),
    ) {
        let (a, b) = (build(a), build(b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// Folding grouping must not matter: `(a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)`.
    #[test]
    fn merge_is_associative(
        a in snapshot_strategy(),
        b in snapshot_strategy(),
        c in snapshot_strategy(),
    ) {
        let (a, b, c) = (build(a), build(b), build(c));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    /// The empty snapshot is the merge identity on both sides — a worker
    /// that recorded nothing must not perturb the merged totals.
    #[test]
    fn empty_merge_is_identity(a in snapshot_strategy()) {
        let a = build(a);
        let empty = Snapshot::default();
        prop_assert_eq!(merged(&a, &empty), a.clone());
        prop_assert_eq!(merged(&empty, &a), a);
    }
}

/// Regression pin (non-randomized): merging an empty snapshot into a fully
/// populated one — every metric kind present — changes nothing, and the
/// symmetric merge reproduces it exactly.
#[test]
fn empty_merge_identity_regression() {
    let full = Snapshot {
        counters: vec![("a".into(), 7), ("b".into(), 0)],
        gauges: vec![("g".into(), 3.5)],
        histograms: vec![("h".into(), histogram(&[1, 15, 15, 220]))],
        spans: vec![(
            "s".into(),
            SpanAgg {
                count: 3,
                total_ns: 900,
                max_ns: 400,
            },
        )],
        dropped_events: 2,
    };
    assert_eq!(merged(&full, &Snapshot::default()), full);
    assert_eq!(merged(&Snapshot::default(), &full), full);
}
