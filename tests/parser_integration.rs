//! Parser round-trips through the full pipeline: QASM/`.real` sources are
//! parsed, simulated, and verified against programmatically built circuits.

use qdd::circuit::{library, qasm, real, QuantumCircuit};
use qdd::sim::DdSimulator;
use qdd::verify::{EquivalenceChecker, Strategy};

#[test]
fn qasm_export_reimport_is_equivalent() {
    for circuit in [
        library::bell(),
        library::ghz(4),
        library::qft(4, true),
        library::w_state(3),
        library::random_circuit(4, 8, 9),
    ] {
        let qasm_text = circuit.to_qasm();
        let reparsed = qasm::parse(&qasm_text).unwrap_or_else(|e| {
            panic!("{}: reparse failed: {e}\n{qasm_text}", circuit.name())
        });
        let mut checker = EquivalenceChecker::new();
        let report = checker
            .check(&circuit, &reparsed, Strategy::Proportional)
            .unwrap();
        assert!(
            report.result.is_equivalent(),
            "{}: {report}\n{qasm_text}",
            circuit.name()
        );
    }
}

#[test]
fn qasm_qft_from_text_matches_library() {
    let src = r#"
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[3];
        h q[2];
        cp(pi/2) q[1], q[2];
        cp(pi/4) q[0], q[2];
        h q[1];
        cp(pi/2) q[0], q[1];
        h q[0];
        swap q[0], q[2];
    "#;
    let parsed = qasm::parse(src).unwrap();
    let built = library::qft(3, true);
    let mut checker = EquivalenceChecker::new();
    assert!(checker
        .check(&parsed, &built, Strategy::Construction)
        .unwrap()
        .result
        .is_equivalent());
}

#[test]
fn qasm_gate_definitions_simulate_correctly() {
    let src = r#"
        OPENQASM 2.0;
        include "qelib1.inc";
        gate majority a, b, c { cx c, b; cx c, a; ccx a, b, c; }
        qreg q[3];
        x q[0];
        x q[2];
        majority q[0], q[1], q[2];
    "#;
    let parsed = qasm::parse(src).unwrap();
    let mut sim = DdSimulator::with_seed(parsed, 1);
    sim.run().unwrap();
    // majority(1, 0, 1): cx c,b → b=1; cx c,a → a=0; ccx a,b,c → c stays 1.
    let states = sim.package().nonzero_basis_states(sim.state());
    assert_eq!(states, vec![0b110]);
}

#[test]
fn qasm_teleportation_with_conditions_runs() {
    let src = r#"
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[3];
        creg m1[1];
        creg m2[1];
        ry(1.1) q[2];
        h q[1];
        cx q[1], q[0];
        cx q[2], q[1];
        h q[2];
        measure q[1] -> m1[0];
        measure q[2] -> m2[0];
        if (m1 == 1) x q[0];
        if (m2 == 1) z q[0];
    "#;
    let parsed = qasm::parse(src).unwrap();
    let expected_p1 = (1.1f64 / 2.0).sin().powi(2);
    for seed in 0..20 {
        let mut sim = DdSimulator::with_seed(parsed.clone(), seed);
        sim.run().unwrap();
        let state = sim.state();
        let p1 = sim.package_mut().prob_one(state, 0);
        assert!((p1 - expected_p1).abs() < 1e-9, "seed {seed}");
    }
}

#[test]
fn real_toffoli_network_matches_builder() {
    let src = "\
.version 2.0
.numvars 3
.variables a b c
.begin
t1 c
t2 c b
t3 a b c
.end
";
    let parsed = real::parse(src).unwrap();
    // Variables a,b,c map to qubits 2,1,0 (first variable = MSB).
    let mut built = QuantumCircuit::new(3);
    built.x(0);
    built.cx(0, 1);
    built.ccx(2, 1, 0);
    let mut checker = EquivalenceChecker::new();
    assert!(checker
        .check(&parsed, &built, Strategy::Construction)
        .unwrap()
        .result
        .is_equivalent());
}

#[test]
fn real_negative_controls_and_fredkin_simulate() {
    let src = "\
.version 2.0
.numvars 3
.variables a b c
.begin
t2 -a c
f3 a b c
.end
";
    let parsed = real::parse(src).unwrap();
    let mut sim = DdSimulator::with_seed(parsed, 1);
    sim.run().unwrap();
    // From |000⟩: t2 -a c fires (a = 0) → c = 1 → |001⟩.
    // f3: control a = 0 → no swap. Result |001⟩.
    let states = sim.package().nonzero_basis_states(sim.state());
    assert_eq!(states, vec![0b001]);
}

#[test]
fn real_reversible_circuit_is_self_inverse_when_repeated() {
    // Toffoli-family gates are involutions; applying the circuit twice in
    // reverse order yields the identity.
    let src = "\
.numvars 4
.begin
t1 x1
t2 x1 x2
t3 x1 x2 x3
t4 x1 x2 x3 x4
.end
";
    let parsed = real::parse(src).unwrap();
    let inv = parsed.inverse().unwrap();
    let mut doubled = QuantumCircuit::new(4);
    doubled.extend(&parsed);
    doubled.extend(&inv);
    let identity = QuantumCircuit::new(4);
    let mut checker = EquivalenceChecker::new();
    assert!(checker
        .check(&doubled, &identity, Strategy::OneToOne)
        .unwrap()
        .result
        .is_equivalent());
}

#[test]
fn parse_errors_are_reported_not_panicked() {
    assert!(qasm::parse("OPENQASM 3.0; qreg q[1];").is_err());
    assert!(qasm::parse("OPENQASM 2.0; qreg q[1]; cx q[0], q[0];").is_err());
    assert!(real::parse(".numvars 2\n.begin\nt9 x1\n.end").is_err());
}

#[test]
fn map_qubits_permutes_semantics() {
    use qdd::verify::{EquivalenceChecker, Strategy};
    // bell on (1,0) mapped through reversal == bell built on (0,1).
    let bell = library::bell();
    let reversed = bell.map_qubits(&[1, 0]).unwrap();
    let mut direct = QuantumCircuit::new(2);
    direct.h(0).cx(0, 1);
    let mut checker = EquivalenceChecker::new();
    assert!(checker
        .check(&reversed, &direct, Strategy::Construction)
        .unwrap()
        .result
        .is_equivalent());
    // Identity permutation is a no-op; bad permutations are rejected.
    let same = bell.map_qubits(&[0, 1]).unwrap();
    let mut checker = EquivalenceChecker::new();
    assert!(checker
        .check(&same, &bell, Strategy::OneToOne)
        .unwrap()
        .result
        .is_equivalent());
    assert!(bell.map_qubits(&[0, 0]).is_err());
    assert!(bell.map_qubits(&[0]).is_err());
    assert!(bell.map_qubits(&[0, 2]).is_err());
}

#[test]
fn simulator_accepts_custom_initial_state() {
    use qdd::complex::Complex;
    // Apply X to an initial |+⟩⊗|1⟩ state and check the result.
    let mut qc = QuantumCircuit::new(2);
    qc.x(0);
    let mut sim = DdSimulator::with_seed(qc, 1);
    let h = std::f64::consts::FRAC_1_SQRT_2;
    sim.set_initial_state(&[
        Complex::ZERO,
        Complex::real(h),
        Complex::ZERO,
        Complex::real(h),
    ])
    .unwrap();
    sim.run().unwrap();
    let amps = sim.dense_state();
    assert!((amps[0].re - h).abs() < 1e-12);
    assert!((amps[2].re - h).abs() < 1e-12);
    // Setting the state mid-run is refused.
    assert!(sim.set_initial_state(&[Complex::ONE, Complex::ZERO]).is_err());
}
