//! `qdd` — decision diagrams for quantum computing, with visualization.
//!
//! A from-scratch Rust reproduction of *Visualizing Decision Diagrams for
//! Quantum Computing* (Wille, Burgholzer, Artner; DATE 2021) and the
//! decision-diagram machinery it demonstrates. This facade crate re-exports
//! the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`complex`] | `qdd-complex` | complex arithmetic + interning table |
//! | [`telemetry`] | `qdd-telemetry` | metrics registry, spans, trace sinks |
//! | [`core`] | `qdd-core` | the DD package: canonical vector/matrix DDs |
//! | [`circuit`] | `qdd-circuit` | circuits, QASM/`.real` parsers, library |
//! | [`sim`] | `qdd-sim` | DD simulation, interactive stepper, dense baseline |
//! | [`verify`] | `qdd-verify` | equivalence checking (naive + advanced) |
//! | [`viz`] | `qdd-viz` | styles, DOT/SVG/JSON/HTML visualization, sessions |
//! | [`serve`] | `qdd-serve` | simulation-as-a-service HTTP daemon |
//!
//! # Quick start
//!
//! Simulate the paper's Bell circuit and render its diagram:
//!
//! ```
//! use qdd::circuit::library;
//! use qdd::sim::DdSimulator;
//! use qdd::viz::{style::VizStyle, svg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = DdSimulator::with_seed(library::bell(), 42);
//! sim.run()?;
//! assert_eq!(sim.node_count(), 3); // Fig. 2(a): three nodes
//! let picture = svg::vector_to_svg(sim.package(), sim.state(), &VizStyle::classic());
//! assert!(picture.starts_with("<svg"));
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for complete walk-throughs of the paper's simulation
//! (Fig. 8) and verification (Fig. 9 / Example 12) scenarios, and the
//! `qdd-bench` crate for the experiment-regeneration binaries indexed in
//! `DESIGN.md`.

pub use qdd_circuit as circuit;
pub use qdd_complex as complex;
pub use qdd_core as core;
pub use qdd_serve as serve;
pub use qdd_sim as sim;
pub use qdd_telemetry as telemetry;
pub use qdd_verify as verify;
pub use qdd_viz as viz;
