//! The paper's verification scenario end to end (Examples 10–12, Fig. 9):
//! compile the three-qubit QFT down to `{H, P, CNOT}`, then prove the
//! compiled circuit equivalent to the original — first by constructing both
//! system matrices, then with the advanced alternating scheme that stays
//! near the identity.
//!
//! Run with `cargo run --example qft_equivalence`.

use qdd::circuit::{compile, library};
use qdd::verify::{simulate_equivalence, EquivalenceChecker, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let qft = library::qft(3, true);
    let compiled = compile::compiled_qft(3);
    println!("original QFT: {} operations", qft.len());
    println!("compiled QFT: {} operations (SWAP → 3 CNOT, CP → P/CNOT)", compiled.len());

    // Route 1 — Example 10/11: build both system matrices; canonicity makes
    // the comparison a root-edge check.
    let mut checker = EquivalenceChecker::new();
    let construction = checker.check(&qft, &compiled, Strategy::Construction)?;
    println!("\nconstruction route: {construction}");

    // Route 2 — Example 12: interleave gates of G with inverted gates of
    // G', guided by the compiled circuit's barriers. The working diagram
    // never exceeds 9 nodes, vs 21 for the full matrix.
    let mut checker = EquivalenceChecker::new();
    let alternating = checker.check(&qft, &compiled, Strategy::BarrierGuided)?;
    println!("alternating route:  {alternating}");
    println!(
        "  peak comparison: {} (alternating) vs {} (construction)",
        alternating.peak_nodes, construction.peak_nodes
    );

    // Route 3 — random-stimuli simulation (the complementary QCEC check).
    let stimuli = simulate_equivalence(&qft, &compiled, 16, 7)?;
    println!(
        "stimuli route:      {} after {} random basis inputs (min fidelity {:.12})",
        if stimuli.probably_equivalent { "no difference found" } else { "MISMATCH" },
        stimuli.stimuli_run,
        stimuli.min_fidelity
    );

    // Negative control: break the compiled circuit and watch all routes
    // catch it.
    let mut broken = compile::compiled_qft(3);
    broken.t(1);
    let mut checker = EquivalenceChecker::new();
    let verdict = checker.check(&qft, &broken, Strategy::Proportional)?;
    println!("\nwith an extra T gate injected: {verdict}");
    if let Some(cx) = verdict.counterexample {
        println!("  witness entry: U[{}][{}] deviates from the identity pattern", cx.row, cx.col);
    }
    assert!(!verdict.result.is_equivalent());
    Ok(())
}
