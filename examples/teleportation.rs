//! Quantum teleportation with the interactive stepper — exercising every
//! "special operation" of the paper's tool (§IV-B): barriers as
//! breakpoints, measurement pop-up dialogs, and classically-controlled
//! corrections.
//!
//! Run with `cargo run --example teleportation`.

use qdd::circuit::library;
use qdd::core::MeasurementOutcome;
use qdd::sim::{DdSimulator, StepOutcome, SteppableSimulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let theta = 1.2345;
    let circuit = library::teleportation(theta);
    println!("{circuit}");

    // Walk the circuit like a user of the tool: fast-forward stops at each
    // barrier; measurements open dialogs we resolve explicitly.
    let mut session = SteppableSimulation::new(circuit.clone());
    let mut dialogs = 0;
    println!("interactive walk:");
    loop {
        match session.fast_forward()? {
            StepOutcome::Applied { op_index } => {
                println!(
                    "  barrier reached after op {op_index} — state has {} nodes",
                    session.node_count()
                );
            }
            StepOutcome::NeedsChoice(p) => {
                dialogs += 1;
                // Alternate the outcomes to show both correction paths.
                let outcome = MeasurementOutcome::from(dialogs % 2 == 1);
                println!(
                    "  dialog on q{}: p0={:.3}, p1={:.3} → choosing {outcome}",
                    p.qubit, p.p0, p.p1
                );
                session.choose(outcome)?;
            }
            StepOutcome::AtEnd => break,
        }
    }
    println!("resolved {dialogs} measurement dialogs");

    // The teleported qubit q0 must match RY(θ)|0⟩ regardless of the
    // measurement outcomes: p(1) = sin²(θ/2).
    let expected_p1 = (theta / 2.0).sin().powi(2);
    let state = session.state();
    let p1 = session.package_mut().prob_one(state, 0);
    println!("\nteleported qubit: p(|1⟩) = {p1:.6}, expected sin²(θ/2) = {expected_p1:.6}");
    assert!((p1 - expected_p1).abs() < 1e-9);

    // Statistical cross-check with full reruns and random outcomes.
    let mut matches = 0;
    let runs = 200;
    for seed in 0..runs {
        let mut sim = DdSimulator::with_seed(circuit.clone(), seed);
        sim.run()?;
        let state = sim.state();
        let p1 = sim.package_mut().prob_one(state, 0);
        if (p1 - expected_p1).abs() < 1e-9 {
            matches += 1;
        }
    }
    println!("{matches}/{runs} random-outcome reruns teleported the state exactly");
    assert_eq!(matches, runs, "teleportation works for every outcome branch");
    Ok(())
}
