//! Quickstart: build the paper's Bell circuit (Fig. 1(c)), simulate it on
//! decision diagrams, inspect the diagram, sample measurements, and render
//! the picture of Fig. 2(a).
//!
//! Run with `cargo run --example quickstart`.

use qdd::circuit::QuantumCircuit;
use qdd::sim::DdSimulator;
use qdd::viz::{dot, style::VizStyle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The two-gate circuit of Fig. 1(c): H on the most-significant qubit,
    // then a CNOT entangling it with q0.
    let mut circuit = QuantumCircuit::with_name(2, "bell");
    circuit.h(1).cx(1, 0);
    println!("{circuit}");

    // Simulate: consecutive matrix–vector products on decision diagrams.
    let mut sim = DdSimulator::with_seed(circuit, 2021);
    sim.run()?;

    // The state is 1/√2 |00⟩ + 1/√2 |11⟩ — Example 1 of the paper.
    println!("final amplitudes:");
    for basis in 0..4u64 {
        println!("  |{:02b}⟩ : {}", basis, sim.amplitude(basis).to_label());
    }
    println!("diagram size: {} nodes (Fig. 2(a) shows 3)", sim.node_count());

    // Measurement statistics — classically, sampling is non-destructive.
    let counts = sim.sample(1000);
    println!("1000 samples:");
    let mut entries: Vec<_> = counts.into_iter().collect();
    entries.sort_unstable();
    for (basis, count) in entries {
        println!("  |{basis:02b}⟩ : {count}");
    }

    // Render the diagram in the paper's classic style.
    let picture = dot::vector_to_dot(sim.package(), sim.state(), &VizStyle::classic());
    println!("\nGraphviz DOT of the state diagram:\n{picture}");
    Ok(())
}
