//! Builds the offline "web tool": parses an OpenQASM circuit, explores its
//! simulation and the verification of its compiled form, and writes two
//! self-contained HTML explorers with the paper tool's ⏮ ← → ⏭ controls.
//!
//! Run with `cargo run --example visual_tool`, then open
//! `out/tool_simulation.html` and `out/tool_verification.html` in a browser.

use qdd::circuit::{compile, compile::CompileOptions, qasm};
use qdd::core::MeasurementOutcome;
use qdd::viz::{html, style::VizStyle, SimulationExplorer, VerificationExplorer};
use std::path::PathBuf;

const GHZ_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[2];
cx q[2], q[1];
cx q[1], q[0];
barrier q;
measure q[0] -> c[0];
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = PathBuf::from("out");
    std::fs::create_dir_all(&out)?;

    // --- Simulation tab (paper §IV-B) -------------------------------------
    let circuit = qasm::parse(GHZ_QASM)?;
    println!("loaded QASM circuit: {} qubits, {} ops", circuit.num_qubits(), circuit.len());

    let mut sim_tab = SimulationExplorer::new(circuit.clone(), VizStyle::colored());
    // Script the user's session: play to the end, answering the single
    // measurement dialog with |1⟩.
    sim_tab.run_scripted(&[MeasurementOutcome::One])?;
    println!("simulation session: {} frames captured", sim_tab.frames().len());
    html::write_explorer(
        &out.join("tool_simulation.html"),
        "qdd explorer — GHZ simulation",
        sim_tab.frames(),
    )?;

    // --- Verification tab (paper §IV-C) ------------------------------------
    let unitary = circuit.clone();
    // Strip measurements for verification (the tool rejects them).
    let ops: Vec<_> = unitary
        .ops()
        .iter()
        .filter(|op| op.is_unitary() || matches!(op, qdd::circuit::Operation::Barrier))
        .cloned()
        .collect();
    let mut left = qdd::circuit::QuantumCircuit::with_name(3, "ghz");
    for op in ops {
        left.append(op);
    }
    let compiled = compile::compile(&left, CompileOptions::paper_flow());
    let mut verify_tab = VerificationExplorer::new(&left, &compiled, VizStyle::colored())?;
    let equivalent = verify_tab.run_barrier_guided()?;
    println!(
        "verification session: {} frames, equivalent = {equivalent}, peak {} nodes",
        verify_tab.frames().len(),
        verify_tab.peak_nodes()
    );
    html::write_explorer(
        &out.join("tool_verification.html"),
        "qdd explorer — GHZ vs compiled GHZ",
        verify_tab.frames(),
    )?;

    println!("\nOpen these files in a browser:");
    println!("  {}", out.join("tool_simulation.html").display());
    println!("  {}", out.join("tool_verification.html").display());
    Ok(())
}
