//! Observables on decision diagrams: Pauli expectation values, Bloch
//! vectors, and reduced-state purity — quantifying the entanglement the
//! paper's Example 1 describes ("the state of the individual qubits cannot
//! be accurately described").
//!
//! Run with `cargo run --example observables`.

use qdd::circuit::library;
use qdd::core::{Pauli, PauliString};
use qdd::sim::DdSimulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A GHZ state: globally pure, locally maximally mixed.
    let n = 4;
    let mut sim = DdSimulator::with_seed(library::ghz(n), 1);
    sim.run()?;
    let state = sim.state();

    println!("GHZ({n}) correlations:");
    for s in ["ZZZZ", "XXXX", "ZZII", "IZZI", "ZIII"] {
        let p: PauliString = s.parse()?;
        let state = sim.state();
        let value = sim.package_mut().expectation_value(state, &p)?;
        println!("  ⟨{s}⟩ = {value:+.4}");
    }

    println!("\nper-qubit reduced states:");
    for q in 0..n {
        let (x, y, z) = sim.package_mut().bloch_vector(state, q);
        let purity = sim.package_mut().qubit_purity(state, q);
        println!(
            "  q{q}: bloch = ({x:+.3}, {y:+.3}, {z:+.3}), purity = {purity:.3} \
             (½ = maximally mixed)"
        );
        assert!((purity - 0.5).abs() < 1e-9, "GHZ qubits are maximally mixed");
    }

    // Contrast with a product state: unit purity, unit Bloch vectors.
    let mut product = qdd::circuit::QuantumCircuit::new(2);
    product.ry(0.8, 0).rx(1.9, 1);
    let mut sim = DdSimulator::with_seed(product, 1)
        ;
    sim.run()?;
    let state = sim.state();
    println!("\nproduct state RY(0.8) ⊗ RX(1.9):");
    for q in 0..2 {
        let (x, y, z) = sim.package_mut().bloch_vector(state, q);
        let purity = sim.package_mut().qubit_purity(state, q);
        let r = (x * x + y * y + z * z).sqrt();
        println!("  q{q}: |bloch| = {r:.6}, purity = {purity:.6}");
        assert!((purity - 1.0).abs() < 1e-9);
    }

    // Energy of a small transverse-field Ising Hamiltonian on the GHZ
    // state: H = -Σ Z_i Z_{i+1} - 0.5 Σ X_i.
    let mut sim = DdSimulator::with_seed(library::ghz(n), 1);
    sim.run()?;
    let state = sim.state();
    let mut energy = 0.0;
    for q in 0..n - 1 {
        let mut factors = vec![Pauli::I; n];
        factors[q] = Pauli::Z;
        factors[q + 1] = Pauli::Z;
        energy -= sim
            .package_mut()
            .expectation_value(state, &PauliString::new(factors))?;
    }
    for q in 0..n {
        energy -= 0.5
            * sim
                .package_mut()
                .expectation_value(state, &PauliString::single(n, q, Pauli::X))?;
    }
    println!("\nIsing energy ⟨H⟩ on GHZ({n}) = {energy:+.4} (ZZ bonds saturate at -1 each)");
    assert!((energy - (-(n as f64 - 1.0))).abs() < 1e-9);
    Ok(())
}
