//! Grover search on decision diagrams — a workload where the diagrams stay
//! tiny while the dense state vector is exponential, illustrating the
//! paper's compactness claim (§III-A) on a real algorithm.
//!
//! Run with `cargo run --release --example grover_search`.

use qdd::circuit::library;
use qdd::sim::{DdSimulator, DenseSimulator};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12;
    let marked = 0b1010_1100_0011u64 & ((1 << n) - 1);
    let circuit = library::grover(n, marked);
    println!(
        "Grover search: {n} qubits, marked |{marked:0n$b}⟩, {} gates",
        circuit.gate_count()
    );

    // Decision-diagram simulation.
    let t0 = Instant::now();
    let mut sim = DdSimulator::with_seed(circuit.clone(), 99);
    sim.run()?;
    let dd_time = t0.elapsed();
    let peak = sim.stats().peak_nodes;
    println!(
        "\nDD simulation:    {dd_time:?} — peak {peak} nodes (vs {} dense amplitudes)",
        1u64 << n
    );

    // Success probability of the marked element.
    let p = sim.amplitude(marked).norm_sqr();
    println!("P(marked) = {p:.4}");
    assert!(p > 0.9, "Grover must amplify the marked element");

    // Sample shots — the histogram concentrates on the marked element.
    let counts = sim.sample(200);
    let hits = counts.get(&marked).copied().unwrap_or(0);
    println!("200 shots: {hits} hit the marked element");

    // Dense baseline for comparison.
    let t0 = Instant::now();
    let dense = DenseSimulator::simulate(&circuit, 99)?;
    let dense_time = t0.elapsed();
    let p_dense = dense.state()[marked as usize].norm_sqr();
    println!("\ndense simulation: {dense_time:?} — P(marked) = {p_dense:.4}");
    assert!((p - p_dense).abs() < 1e-9, "both simulators must agree");

    println!(
        "\nThe Grover state never holds more than two distinct amplitude values,\n\
         so its diagram stays at ~n nodes all the way through — the compactness\n\
         the paper demonstrates with far smaller examples."
    );
    Ok(())
}
