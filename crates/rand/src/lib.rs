//! Minimal, dependency-free stand-in for the parts of the `rand` crate the
//! qdd workspace uses.
//!
//! The build environment is hermetic (no crates.io access), so the workspace
//! vendors the tiny PRNG surface it needs under the same crate name and API:
//!
//! * [`rngs::SmallRng`] — a xoshiro256** generator (the same family the real
//!   `small_rng` feature uses), seeded through [`SeedableRng::seed_from_u64`]
//!   with SplitMix64, exactly like `rand_core`'s default implementation.
//! * [`Rng::gen`] for `f64`/`u64`/`u32`/`bool`, [`Rng::gen_range`] over
//!   half-open ranges of the integer and float types qdd samples.
//! * [`random`] — a convenience one-shot generator seeded from the clock.
//!
//! Determinism matters here: all simulator/verifier entry points take explicit
//! seeds, and `seed_from_u64` is bit-compatible with the real crate, so
//! seeded runs remain reproducible across the shim and the real dependency.

use std::ops::Range;

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from raw generator bits
/// (the shim's equivalent of `Standard: Distribution<T>`).
pub trait SampleStandard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, matching the real
    /// crate's `Standard` distribution for `f64`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is < 2^-64 for every span qdd uses; fine for
                // test/bench workloads, and keeps the shim branch-free.
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i32, i64, u32, u64, usize, u8, u16);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = f64::sample(rng);
        low + (high - low) * unit
    }
}

/// User-facing generator interface, blanket-implemented for every
/// [`RngCore`] so `SmallRng` and `&mut SmallRng` both work.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Sample `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Expand a `u64` into a full generator state via SplitMix64 (the same
    /// scheme `rand_core` uses, so seeded streams are stable).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG (xoshiro256**), standing in for
    /// `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

/// One-shot sample from a freshly seeded generator (`rand::random`).
///
/// Seeded from wall-clock time plus a process-wide counter, so repeated
/// calls differ even within the same nanosecond tick.
pub fn random<T: SampleStandard>() -> T {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let clock = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let mut state = clock ^ COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed);
    let mut rng = {
        use crate::rngs::SmallRng;
        let _ = splitmix64(&mut state);
        SmallRng::seed_from_u64(state)
    };
    T::sample(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..6);
            assert!((0..6).contains(&v));
            seen[v as usize] = true;
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(0usize..17);
            assert!(u < 17);
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn dyn_compatible_with_unsized_receivers() {
        fn takes_dyn<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = takes_dyn(&mut rng);
    }

    #[test]
    fn random_produces_values() {
        let a: u64 = super::random();
        let b: u64 = super::random();
        // Not a strict guarantee, but with a counter in the seed two equal
        // draws in a row would indicate the entropy plumbing is broken.
        assert!(a != b || a != 0);
    }
}
