//! Criterion benchmark for experiment T-C: equivalence-checking strategies
//! on the paper's QFT compilation flow (Example 12 generalized).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdd_bench::workloads::qft_pair;
use qdd_verify::{EquivalenceChecker, Strategy};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_qft_pair");
    group.sample_size(10);
    for n in [3usize, 5, 7] {
        let (qft, compiled) = qft_pair(n);
        for strategy in [
            Strategy::Construction,
            Strategy::OneToOne,
            Strategy::Proportional,
            Strategy::BarrierGuided,
            Strategy::Lookahead,
        ] {
            group.bench_with_input(
                BenchmarkId::new(strategy.to_string(), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut checker = EquivalenceChecker::new();
                        let report = checker.check(&qft, &compiled, strategy).unwrap();
                        assert!(report.result.is_equivalent());
                        black_box(report.peak_nodes)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_stimuli(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_stimuli");
    group.sample_size(10);
    for n in [5usize, 8] {
        let (qft, compiled) = qft_pair(n);
        group.bench_with_input(BenchmarkId::new("16_stimuli", n), &n, |b, _| {
            b.iter(|| {
                let report =
                    qdd_verify::simulate_equivalence(&qft, &compiled, 16, 1).unwrap();
                assert!(report.probably_equivalent);
                black_box(report.min_fidelity)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_stimuli);
criterion_main!(benches);
