//! Criterion benchmark for experiment T-B: DD simulation vs the dense
//! state-vector baseline (paper §III-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdd_bench::workloads::Family;
use qdd_sim::{DdSimulator, DenseSimulator};
use std::hint::black_box;

fn bench_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for family in [Family::Ghz, Family::Qft, Family::Grover, Family::Random] {
        for n in [8usize, 12] {
            let circuit = family.circuit(n);
            group.bench_with_input(
                BenchmarkId::new(format!("dd_{}", family.name()), n),
                &circuit,
                |b, circuit| {
                    b.iter(|| {
                        let mut sim = DdSimulator::with_seed(circuit.clone(), 1);
                        sim.run().unwrap();
                        black_box(sim.node_count())
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("dense_{}", family.name()), n),
                &circuit,
                |b, circuit| {
                    b.iter(|| {
                        let sim = DenseSimulator::simulate(circuit, 1).unwrap();
                        black_box(sim.state()[0])
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    let mut sim = DdSimulator::with_seed(Family::Qft.circuit(12), 1);
    sim.run().unwrap();
    group.bench_function("dd_single_path_1000_shots", |b| {
        b.iter(|| black_box(sim.sample(1000)))
    });
    group.finish();
}

criterion_group!(benches, bench_families, bench_sampling);
criterion_main!(benches);
