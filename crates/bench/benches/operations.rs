//! Criterion micro-benchmarks for experiment T-D: the recursive DD
//! operations of paper Fig. 4 (multiplication, addition, tensor product)
//! and the compute-table ablation of footnote 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdd_core::{gates, Control, DdPackage, PackageConfig};
use std::hint::black_box;

/// A package pre-loaded with the QFT(n) functionality and an interesting
/// state for the operand benchmarks.
fn qft_setup(n: usize, compute_tables: bool) -> (DdPackage, qdd_core::MatEdge, qdd_core::VecEdge) {
    let mut dd = DdPackage::with_config(PackageConfig {
        compute_tables,
        ..PackageConfig::default()
    });
    let qft = qdd_circuit::library::qft(n, false);
    let mut u = dd.identity(n).unwrap();
    for op in qft.ops() {
        for g in op.to_gate_sequence().unwrap() {
            let m = dd.gate_dd(g.gate.matrix(), &g.controls, g.target, n).unwrap();
            u = dd.mat_mat(m, u);
        }
    }
    let mut s = dd.zero_state(n).unwrap();
    for q in 0..n {
        s = dd.apply_gate(s, gates::ry(0.3 + q as f64 * 0.2), &[], q).unwrap();
        if q > 0 {
            s = dd.apply_gate(s, gates::X, &[Control::pos(q)], q - 1).unwrap();
        }
    }
    (dd, u, s)
}

fn bench_mat_vec(c: &mut Criterion) {
    let mut group = c.benchmark_group("mat_vec");
    for n in [6usize, 10] {
        let (mut dd, u, s) = qft_setup(n, true);
        group.bench_with_input(BenchmarkId::new("qft_matrix_times_state", n), &n, |b, _| {
            b.iter(|| black_box(dd.mat_vec(u, s)))
        });
    }
    group.finish();
}

fn bench_mat_mat(c: &mut Criterion) {
    let mut group = c.benchmark_group("mat_mat");
    for n in [6usize, 10] {
        let (mut dd, u, _) = qft_setup(n, true);
        let h = dd.gate_dd(gates::H, &[], n / 2, n).unwrap();
        group.bench_with_input(BenchmarkId::new("gate_times_qft", n), &n, |b, _| {
            b.iter(|| black_box(dd.mat_mat(h, u)))
        });
    }
    group.finish();
}

fn bench_add_and_kron(c: &mut Criterion) {
    let mut group = c.benchmark_group("add_kron");
    let n = 8;
    let (mut dd, _, s) = qft_setup(n, true);
    let t = dd.basis_state(n, 0b1010_1010).unwrap();
    group.bench_function("add_vec", |b| b.iter(|| black_box(dd.add_vec(s, t))));
    let (mut dd2, u, _) = qft_setup(4, true);
    let id = dd2.identity(4).unwrap();
    group.bench_function("kron_mat_qft4_id4", |b| {
        b.iter(|| black_box(dd2.kron_mat_spanned(u, id, 4)))
    });
    group.finish();
}

/// Ablation: the same multiplication with compute tables disabled.
fn bench_compute_table_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_table_ablation");
    group.sample_size(10);
    let n = 8;
    for (label, enabled) in [("with_caches", true), ("without_caches", false)] {
        let (mut dd, u, s) = qft_setup(n, enabled);
        group.bench_function(label, |b| {
            b.iter(|| {
                dd.clear_compute_tables();
                black_box(dd.mat_vec(u, s))
            })
        });
    }
    group.finish();
}

fn bench_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("measurement");
    let n = 12;
    let (mut dd, _, s) = qft_setup(n, true);
    group.bench_function("prob_one_mid_qubit", |b| {
        b.iter(|| {
            dd.clear_compute_tables();
            black_box(dd.prob_one(s, n / 2))
        })
    });
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(3);
    group.bench_function("sample_once", |b| {
        b.iter(|| black_box(dd.sample_once(s, &mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mat_vec,
    bench_mat_mat,
    bench_add_and_kron,
    bench_compute_table_ablation,
    bench_measurement
);
criterion_main!(benches);
