//! Criterion benchmark for experiment T-A: constructing state
//! representations — decision diagrams vs dense amplitude vectors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdd_bench::workloads::w_state_amplitudes;
use qdd_core::DdPackage;
use std::hint::black_box;

fn bench_state_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_construction");
    for n in [8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::new("dd_basis", n), &n, |b, &n| {
            b.iter(|| {
                let mut dd = DdPackage::new();
                black_box(dd.basis_state(n, 0b1011 % (1 << n)).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("dd_ghz_circuit", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim =
                    qdd_sim::DdSimulator::with_seed(qdd_circuit::library::ghz(n), 1);
                sim.run().unwrap();
                black_box(sim.node_count())
            })
        });
        if n <= 12 {
            group.bench_with_input(BenchmarkId::new("dd_w_from_amps", n), &n, |b, &n| {
                let amps = w_state_amplitudes(n);
                b.iter(|| {
                    let mut dd = DdPackage::new();
                    black_box(dd.state_from_amplitudes(&amps).unwrap())
                })
            });
            group.bench_with_input(BenchmarkId::new("dense_alloc_fill", n), &n, |b, &n| {
                b.iter(|| {
                    let amps = w_state_amplitudes(n);
                    black_box(amps.len())
                })
            });
        }
    }
    group.finish();
}

fn bench_operator_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("operator_construction");
    for n in [6usize, 10, 14] {
        group.bench_with_input(BenchmarkId::new("identity", n), &n, |b, &n| {
            b.iter(|| {
                let mut dd = DdPackage::new();
                black_box(dd.identity(n).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("mcx_gate", n), &n, |b, &n| {
            let controls: Vec<qdd_core::Control> =
                (1..n).map(qdd_core::Control::pos).collect();
            b.iter(|| {
                let mut dd = DdPackage::new();
                black_box(dd.gate_dd(qdd_core::gates::X, &controls, 0, n).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_state_construction, bench_operator_construction);
criterion_main!(benches);
