//! Criterion benchmark for the visualization pipeline: graph extraction
//! and DOT/SVG/JSON rendering throughput (paper §IV figures at scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdd_sim::DdSimulator;
use qdd_viz::{dot, graph::DdGraph, json, style::VizStyle, svg};
use std::hint::black_box;

fn bench_exports(c: &mut Criterion) {
    let mut group = c.benchmark_group("viz_export");
    for n in [6usize, 10] {
        // A random state gives a dense-ish diagram worth rendering.
        let mut sim = DdSimulator::with_seed(
            qdd_circuit::library::random_circuit(n, n, 4),
            1,
        );
        sim.run().unwrap();
        let nodes = sim.node_count();
        let style = VizStyle::colored();

        group.bench_with_input(
            BenchmarkId::new("graph_extraction", format!("{n}q_{nodes}nodes")),
            &n,
            |b, _| {
                b.iter(|| black_box(DdGraph::from_vector(sim.package(), sim.state())))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dot", format!("{n}q_{nodes}nodes")),
            &n,
            |b, _| {
                b.iter(|| black_box(dot::vector_to_dot(sim.package(), sim.state(), &style)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("svg", format!("{n}q_{nodes}nodes")),
            &n,
            |b, _| {
                b.iter(|| black_box(svg::vector_to_svg(sim.package(), sim.state(), &style)))
            },
        );
        let graph = DdGraph::from_vector(sim.package(), sim.state());
        group.bench_with_input(
            BenchmarkId::new("json", format!("{n}q_{nodes}nodes")),
            &n,
            |b, _| b.iter(|| black_box(json::graph_to_json(&graph))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exports);
criterion_main!(benches);
