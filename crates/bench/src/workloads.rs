//! Named workloads shared between the experiment binaries and the
//! criterion benchmarks.

use qdd_circuit::{compile, library, QuantumCircuit};
use qdd_complex::Complex;

/// Circuit families used across the compactness/simulation/verification
/// experiments.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// GHZ-state preparation (structured, linear-size diagrams).
    Ghz,
    /// W-state preparation (structured, linear-size diagrams).
    W,
    /// QFT without final swaps.
    Qft,
    /// Grover search for a fixed marked element.
    Grover,
    /// Seeded random circuit of depth `2n` (dense, worst-case-ish).
    Random,
    /// Seeded random Clifford+T circuit of depth `4n` (deep, discrete gate
    /// set — the memoization stress test).
    CliffordT,
}

impl Family {
    /// All families, in reporting order.
    pub const ALL: [Family; 6] = [
        Family::Ghz,
        Family::W,
        Family::Qft,
        Family::Grover,
        Family::Random,
        Family::CliffordT,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Ghz => "ghz",
            Family::W => "w-state",
            Family::Qft => "qft",
            Family::Grover => "grover",
            Family::Random => "random",
            Family::CliffordT => "clifford-t",
        }
    }

    /// Builds the `n`-qubit member of the family.
    pub fn circuit(self, n: usize) -> QuantumCircuit {
        match self {
            Family::Ghz => library::ghz(n),
            Family::W => library::w_state(n),
            Family::Qft => library::qft(n, false),
            Family::Grover => library::grover(n, (1u64 << n) - 1),
            Family::Random => library::random_circuit(n, 2 * n, 0xC0FFEE + n as u64),
            Family::CliffordT => library::random_clifford_t(n, 4 * n, 0xDD + n as u64),
        }
    }
}

/// Entangling ry/cx layers with incommensurate rotation angles: the state
/// has no product structure, so its diagram grows exponentially in the
/// register — the adversarial workload for a node budget, and the
/// `approx` bench family's non-Clifford member.
pub fn random_entangled(n: usize, layers: usize) -> QuantumCircuit {
    let mut qc = QuantumCircuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            qc.ry(0.37 + 0.11 * (layer * n + q) as f64, q);
        }
        for q in 0..n - 1 {
            qc.cx(q, q + 1);
        }
    }
    qc
}

/// The paper's verification pair: QFT with swaps vs its Fig. 5(b)-style
/// compiled form.
pub fn qft_pair(n: usize) -> (QuantumCircuit, QuantumCircuit) {
    (library::qft(n, true), compile::compiled_qft(n))
}

/// Dense amplitudes of the `n`-qubit W state (for direct state builds).
pub fn w_state_amplitudes(n: usize) -> Vec<Complex> {
    let mut amps = vec![Complex::ZERO; 1 << n];
    let a = 1.0 / (n as f64).sqrt();
    for q in 0..n {
        amps[1 << q] = Complex::real(a);
    }
    amps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build_at_small_sizes() {
        for f in Family::ALL {
            let qc = f.circuit(3);
            assert_eq!(qc.num_qubits(), 3, "{}", f.name());
            assert!(qc.gate_count() > 0);
        }
    }

    #[test]
    fn w_amplitudes_are_normalized() {
        let amps = w_state_amplitudes(5);
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-12);
        assert_eq!(amps.iter().filter(|a| a.norm_sqr() > 0.0).count(), 5);
    }

    #[test]
    fn qft_pair_widths_match() {
        let (a, b) = qft_pair(4);
        assert_eq!(a.num_qubits(), b.num_qubits());
        assert!(b.len() > a.len(), "compiled form is longer");
    }
}
