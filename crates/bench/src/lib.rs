//! Shared infrastructure for the experiment-regeneration binaries and
//! criterion benchmarks.
//!
//! Every figure and worked example of the reproduced paper has a binary in
//! `src/bin/` (see the experiment index in `DESIGN.md`); the helpers here
//! keep their output format consistent.

use std::path::PathBuf;

pub mod workloads;

/// Prints an aligned text table with a header rule.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        parts.join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// The artifact output directory (`out/` beside the workspace root),
/// created on demand.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../out");
    std::fs::create_dir_all(&dir).expect("create out dir");
    dir.canonicalize().unwrap_or(dir)
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2} s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(std::time::Duration::from_micros(12)), "12 µs");
        assert_eq!(
            fmt_duration(std::time::Duration::from_micros(2_500)),
            "2.50 ms"
        );
        assert_eq!(
            fmt_duration(std::time::Duration::from_millis(3_200)),
            "3.20 s"
        );
    }

    #[test]
    fn out_dir_exists() {
        let dir = out_dir();
        assert!(dir.is_dir());
    }
}
