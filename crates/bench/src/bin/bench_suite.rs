//! The tracked performance suite: GHZ / QFT / Grover / random-Clifford+T
//! workloads at several widths, through both simulation and verification,
//! with wall time, peak node counts, and cache hit rates written as JSON.
//!
//! Every perf-relevant PR regenerates `BENCH_current.json` at the repo root
//! (and, once per optimization effort, pins the pre-change numbers as
//! `BENCH_baseline.json`) so the trajectory is answerable:
//!
//! ```text
//! cargo run --release -p qdd-bench --bin bench_suite -- --label current
//! ```
//!
//! Options:
//!   --label baseline|current   output file name (default: current)
//!   --out PATH                 explicit output path (overrides --label)
//!   --small                    smallest widths only, 1 repetition (CI smoke)
//!   --reps N                   timing repetitions per workload (default 3)
//!   --no-identity-skip         disable identity-skip edges in matrix DDs
//!                              for every workload (A/B debugging aid)

use qdd_bench::fmt_duration;
use qdd_bench::workloads::{self, Family};
use qdd_sim::DdSimulator;
use qdd_verify::{EquivalenceChecker, Strategy};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// One benchmark measurement, serialized as a JSON object.
struct Record {
    family: &'static str,
    phase: &'static str,
    n: usize,
    gates: usize,
    wall_ms: f64,
    peak_nodes: usize,
    /// High-water mark of live *matrix* nodes — the operator-DD footprint
    /// identity skip is meant to shrink. `scripts/bench_diff.py` warns when
    /// this regresses by more than 10%.
    mat_peak_nodes: usize,
    /// Matrix-node constructions elided by the identity-skip collapse rule
    /// (0 with `--no-identity-skip`).
    identity_nodes_skipped: u64,
    cache_lookups: u64,
    cache_hits: u64,
    complex_entries: usize,
    /// Gate-DD cache counters (0/0 on package versions without the cache).
    gate_cache_lookups: u64,
    gate_cache_hits: u64,
    /// Sampling throughput (0.0 for non-sampling phases).
    shots_per_sec: f64,
    /// Worker threads used (0 for single-threaded phases).
    threads: usize,
    /// Wall-time speedup over the same workload at 1 thread (the `scaling`
    /// family; 0.0 elsewhere). `scripts/bench_diff.py` warns when the
    /// 4-thread speedup falls below 80% of the baseline's.
    speedup: f64,
    /// Fidelity lower bound achieved by the run (1.0 for exact phases; the
    /// `approx` family records what its node budget cost in state quality).
    fidelity: f64,
    /// Wall-time cost of the execution-timeline recorder at snapshot
    /// stride 16, as a percentage over the recording-off time (the `sim`
    /// family; 0.0 elsewhere). `scripts/bench_diff.py` warns above 5%:
    /// the recorder's contract is that observation stays cheap.
    timeline_overhead_pct: f64,
    /// Telemetry snapshot of one extra untimed repetition (span timings,
    /// GC pauses, table hit rates) — the *why* behind `wall_ms` moves.
    /// Timed repetitions always run with telemetry disabled.
    metrics: String,
}

impl Record {
    fn hit_rate(lookups: u64, hits: u64) -> f64 {
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }

    fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "    {{\"family\": \"{}\", \"phase\": \"{}\", \"n\": {}, \"gates\": {}, \
             \"wall_ms\": {:.3}, \"peak_nodes\": {}, \
             \"mat_peak_nodes\": {}, \"identity_nodes_skipped\": {}, \
             \"cache_lookups\": {}, \"cache_hits\": {}, \"cache_hit_rate\": {:.4}, \
             \"gate_cache_lookups\": {}, \"gate_cache_hits\": {}, \"gate_cache_hit_rate\": {:.4}, \
             \"shots_per_sec\": {:.1}, \"threads\": {}, \"speedup\": {:.4}, \
             \"fidelity\": {:.6}, \"timeline_overhead_pct\": {:.2}, \
             \"complex_entries\": {}}}",
            self.family,
            self.phase,
            self.n,
            self.gates,
            self.wall_ms,
            self.peak_nodes,
            self.mat_peak_nodes,
            self.identity_nodes_skipped,
            self.cache_lookups,
            self.cache_hits,
            Self::hit_rate(self.cache_lookups, self.cache_hits),
            self.gate_cache_lookups,
            self.gate_cache_hits,
            Self::hit_rate(self.gate_cache_lookups, self.gate_cache_hits),
            self.shots_per_sec,
            self.threads,
            self.speedup,
            self.fidelity,
            self.timeline_overhead_pct,
            self.complex_entries,
        );
        // Splice in the (already serialized) telemetry snapshot.
        s.truncate(s.len() - 1);
        let _ = write!(s, ", \"metrics\": {}}}", compact(&self.metrics));
        s
    }
}

/// Flattens the pretty-printed snapshot JSON onto one line so each record
/// stays a single row in the benchmark file. Safe textually: metric names
/// contain no whitespace or escapes, so collapsing indentation never
/// touches string contents.
fn compact(json: &str) -> String {
    json.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Runs `work` once with telemetry enabled and returns the metrics
/// snapshot. Kept outside the timing loop: the telemetry rep is
/// diagnostic, the timed reps measure the engine with recording off.
///
/// The returned snapshot is the *merged* view: multi-threaded workloads
/// publish each worker's registry into the process-wide pool on exit, so
/// the record reflects every thread's work.
fn collect_metrics(work: impl FnOnce()) -> qdd_telemetry::Snapshot {
    qdd_telemetry::set_enabled(true);
    qdd_telemetry::reset();
    qdd_telemetry::reset_published();
    work();
    let snapshot = qdd_telemetry::merged_snapshot();
    let _ = qdd_telemetry::drain_events();
    qdd_telemetry::reset_published();
    qdd_telemetry::set_enabled(false);
    snapshot
}

/// Derives the top-level cache counters from the telemetry snapshot — the
/// same source the embedded `metrics` blob reports — so the record's
/// `cache_hit_rate`/`gate_cache_hit_rate` fields can never disagree with
/// it. Used by the families that do not keep a package around after the
/// timed reps (sampling, scaling), whose records used to hardcode zeros
/// here while the gauges showed real rates.
fn cache_counters(snap: &qdd_telemetry::Snapshot) -> (u64, u64, u64, u64, usize) {
    let g = |name: &str| snap.gauge(name).unwrap_or(0.0).max(0.0) as u64;
    (
        g("core.compute.lookups"),
        g("core.compute.hits"),
        g("core.gate_cache.lookups"),
        g("core.gate_cache.hits"),
        g("core.complex.entries") as usize,
    )
}

/// Matrix-footprint counters from the telemetry snapshot, for families that
/// do not keep a package around after the timed reps.
fn mat_counters(snap: &qdd_telemetry::Snapshot) -> (usize, u64) {
    let g = |name: &str| snap.gauge(name).unwrap_or(0.0).max(0.0) as u64;
    (
        g("core.nodes.mat_peak") as usize,
        g("core.nodes.identity_skipped"),
    )
}

/// The package configuration every workload runs under: defaults, except
/// identity skip follows the suite-wide `--no-identity-skip` flag.
fn suite_config(no_skip: bool) -> qdd_core::PackageConfig {
    qdd_core::PackageConfig {
        identity_skip: !no_skip,
        ..qdd_core::PackageConfig::default()
    }
}

/// Simulation widths per family: wide enough that the DD work dominates
/// fixed overheads, small enough that the full suite stays under a minute.
fn sim_widths(family: Family, small: bool) -> &'static [usize] {
    if small {
        return match family {
            Family::Ghz => &[8],
            Family::Qft => &[8],
            Family::Grover => &[6],
            Family::CliffordT => &[6],
            _ => &[],
        };
    }
    match family {
        Family::Ghz => &[8, 16, 24],
        Family::Qft => &[8, 12, 16],
        Family::Grover => &[8, 12, 14],
        Family::CliffordT => &[8, 10, 12],
        _ => &[],
    }
}

/// Verification (self-equivalence, construction strategy) widths: the full
/// system matrix is built twice, so these are narrower than the sim widths.
fn verify_widths(family: Family, small: bool) -> &'static [usize] {
    if small {
        return match family {
            Family::Ghz => &[6],
            Family::Qft => &[5],
            Family::Grover => &[4],
            Family::CliffordT => &[4],
            _ => &[],
        };
    }
    match family {
        Family::Ghz => &[8, 16, 24],
        Family::Qft => &[6, 8, 10],
        Family::Grover => &[4, 6, 8],
        Family::CliffordT => &[4, 5, 6],
        _ => &[],
    }
}

/// Re-times `work` with the execution-timeline recorder armed at snapshot
/// stride 16 and returns the best wall time's overhead over `best_off_ms`
/// as a percentage. Records are drained and discarded — this measures the
/// recorder's cost, not its output. Noise can make the result slightly
/// negative; the honest number is kept (bench_diff only warns above +5%).
fn timeline_overhead(best_off_ms: f64, reps: usize, work: impl Fn()) -> f64 {
    use qdd_telemetry::timeline;
    timeline::set_enabled(true);
    timeline::set_snapshot_stride(16);
    let mut best_on = f64::INFINITY;
    for _ in 0..reps {
        timeline::reset();
        let t0 = Instant::now();
        work();
        best_on = best_on.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let _ = timeline::drain();
    timeline::set_enabled(false);
    if best_off_ms > 0.0 {
        (best_on - best_off_ms) / best_off_ms * 100.0
    } else {
        0.0
    }
}

fn bench_sim(family: Family, n: usize, reps: usize, no_skip: bool) -> Record {
    let circuit = family.circuit(n);
    let mut best = f64::INFINITY;
    let mut peak = 0usize;
    let mut stats = qdd_core::PackageStats::default();
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut sim = DdSimulator::with_config(circuit.clone(), 1, suite_config(no_skip));
        sim.run().expect("simulation");
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        best = best.min(wall);
        peak = sim.stats().peak_nodes;
        stats = sim.package().stats();
    }
    let timeline_overhead_pct = timeline_overhead(best, reps, || {
        let mut sim = DdSimulator::with_config(circuit.clone(), 1, suite_config(no_skip));
        sim.run().expect("simulation");
    });
    let metrics = collect_metrics(|| {
        let mut sim = DdSimulator::with_config(circuit.clone(), 1, suite_config(no_skip));
        sim.run().expect("simulation");
    })
    .to_json();
    Record {
        family: family.name(),
        phase: "sim",
        n,
        gates: circuit.gate_count(),
        wall_ms: best,
        peak_nodes: peak,
        mat_peak_nodes: stats.mat_peak_nodes,
        identity_nodes_skipped: stats.identity_nodes_skipped,
        cache_lookups: stats.cache_lookups,
        cache_hits: stats.cache_hits,
        complex_entries: stats.complex_entries,
        gate_cache_lookups: stats.gate_cache_lookups,
        gate_cache_hits: stats.gate_cache_hits,
        shots_per_sec: 0.0,
        threads: 0,
        speedup: 0.0,
        fidelity: 1.0,
        timeline_overhead_pct,
        metrics,
    }
}

fn bench_verify(family: Family, n: usize, reps: usize, no_skip: bool) -> Record {
    let circuit = family.circuit(n);
    let mut best = f64::INFINITY;
    let mut peak = 0usize;
    let mut stats = qdd_core::PackageStats::default();
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut checker = EquivalenceChecker::with_config(suite_config(no_skip));
        let report = checker
            .check(&circuit, &circuit, Strategy::Construction)
            .expect("verification");
        assert!(report.result.is_equivalent(), "self-check must pass");
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        best = best.min(wall);
        peak = report.peak_nodes;
        stats = checker.package().stats();
    }
    let metrics = collect_metrics(|| {
        let mut checker = EquivalenceChecker::with_config(suite_config(no_skip));
        let report = checker
            .check(&circuit, &circuit, Strategy::Construction)
            .expect("verification");
        assert!(report.result.is_equivalent(), "self-check must pass");
        checker.package().publish_telemetry();
    })
    .to_json();
    Record {
        family: family.name(),
        phase: "verify",
        n,
        gates: circuit.gate_count(),
        wall_ms: best,
        peak_nodes: peak,
        mat_peak_nodes: stats.mat_peak_nodes,
        identity_nodes_skipped: stats.identity_nodes_skipped,
        cache_lookups: stats.cache_lookups,
        cache_hits: stats.cache_hits,
        complex_entries: stats.complex_entries,
        gate_cache_lookups: stats.gate_cache_lookups,
        gate_cache_hits: stats.gate_cache_hits,
        shots_per_sec: 0.0,
        threads: 0,
        speedup: 0.0,
        fidelity: 1.0,
        timeline_overhead_pct: 0.0,
        metrics,
    }
}

/// The `approx` family: workloads at node caps that exhaust the exact
/// engine (the dense fallback is disabled so the run stands or falls with
/// the approximation rung), recording the nodes saved against the fidelity
/// paid. One timed repetition: the interesting outputs — fidelity bound,
/// peak nodes, rounds — are deterministic, and wall time is secondary.
fn bench_approx(
    phase: &'static str,
    circuit: qdd_circuit::QuantumCircuit,
    cap: usize,
    floor: f64,
    no_skip: bool,
) -> Record {
    let config = qdd_core::PackageConfig {
        limits: qdd_core::Limits {
            max_nodes: Some(cap),
            min_fidelity: Some(floor),
            ..qdd_core::Limits::default()
        },
        ..suite_config(no_skip)
    };
    let t0 = Instant::now();
    let mut sim = DdSimulator::with_config(circuit.clone(), 1, config);
    sim.set_dense_fallback(false);
    sim.run().expect("approximation must complete this workload");
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    assert!(
        sim.stats().approx_rounds > 0,
        "{phase}: the cap must actually trigger the approximation rung"
    );
    assert!(sim.stats().fidelity_lower_bound >= floor);
    let stats = sim.package().stats();
    let metrics = collect_metrics(|| {
        let mut sim = DdSimulator::with_config(circuit.clone(), 1, config);
        sim.set_dense_fallback(false);
        sim.run().expect("approximation must complete this workload");
    })
    .to_json();
    Record {
        family: "approx",
        phase,
        n: circuit.num_qubits(),
        gates: circuit.gate_count(),
        wall_ms: wall,
        peak_nodes: sim.stats().peak_nodes,
        mat_peak_nodes: stats.mat_peak_nodes,
        identity_nodes_skipped: stats.identity_nodes_skipped,
        cache_lookups: stats.cache_lookups,
        cache_hits: stats.cache_hits,
        complex_entries: stats.complex_entries,
        gate_cache_lookups: stats.gate_cache_lookups,
        gate_cache_hits: stats.gate_cache_hits,
        shots_per_sec: 0.0,
        threads: 0,
        speedup: 0.0,
        fidelity: sim.stats().fidelity_lower_bound,
        timeline_overhead_pct: 0.0,
        metrics,
    }
}

/// Sampling throughput of the shared-state fast path on an unmeasured QFT:
/// `memoized` runs the shot engine (one prefix run + tableau walks),
/// `!memoized` the naive per-shot hash-path loop over the same diagram.
fn bench_sampling_shared(n: usize, shots: u64, reps: usize, memoized: bool, no_skip: bool) -> Record {
    let circuit = qdd_circuit::library::qft(n, true);
    let opts_for = |shots: u64| {
        let mut o = qdd_sim::ShotOptions::new(shots, 1);
        o.config = suite_config(no_skip);
        o
    };
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let drawn: u64 = if memoized {
            let report = qdd_sim::shots::run(&circuit, &opts_for(shots)).expect("sampling");
            report.histogram.values().sum()
        } else {
            let mut sim = DdSimulator::with_config(circuit.clone(), 1, suite_config(no_skip));
            sim.run().expect("simulation");
            sim.sample(shots).values().sum()
        };
        assert_eq!(drawn, shots);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let snapshot = collect_metrics(|| {
        let _ = qdd_sim::shots::run(&circuit, &opts_for(shots.min(1000)));
    });
    let (cache_lookups, cache_hits, gate_cache_lookups, gate_cache_hits, complex_entries) =
        cache_counters(&snapshot);
    let (mat_peak_nodes, identity_nodes_skipped) = mat_counters(&snapshot);
    Record {
        family: "sampling",
        phase: if memoized { "qft-memoized" } else { "qft-naive" },
        n,
        gates: circuit.gate_count(),
        wall_ms: best,
        peak_nodes: 0,
        mat_peak_nodes,
        identity_nodes_skipped,
        cache_lookups,
        cache_hits,
        complex_entries,
        gate_cache_lookups,
        gate_cache_hits,
        shots_per_sec: shots as f64 / (best / 1e3),
        threads: 1,
        speedup: 0.0,
        fidelity: 1.0,
        timeline_overhead_pct: 0.0,
        metrics: snapshot.to_json(),
    }
}

/// Sampling throughput of the mid-circuit regime on teleportation:
/// `threads == 0` times the serial reference (`DdSimulator::run_shots`,
/// fresh package per shot), otherwise the batched shot engine.
fn bench_sampling_midcircuit(shots: u64, reps: usize, threads: usize, no_skip: bool) -> Record {
    let circuit = qdd_circuit::library::teleportation(0.3);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let drawn: u64 = if threads == 0 {
            DdSimulator::run_shots(&circuit, shots, 1)
                .expect("shots")
                .values()
                .sum()
        } else {
            let mut opts = qdd_sim::ShotOptions::new(shots, 1);
            opts.threads = threads;
            opts.config = suite_config(no_skip);
            qdd_sim::shots::run(&circuit, &opts)
                .expect("shots")
                .histogram
                .values()
                .sum()
        };
        assert_eq!(drawn, shots);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let snapshot = collect_metrics(|| {
        let mut opts = qdd_sim::ShotOptions::new(shots.min(100), 1);
        opts.threads = threads.max(1);
        opts.config = suite_config(no_skip);
        let _ = qdd_sim::shots::run(&circuit, &opts);
    });
    let (cache_lookups, cache_hits, gate_cache_lookups, gate_cache_hits, complex_entries) =
        cache_counters(&snapshot);
    let (mat_peak_nodes, identity_nodes_skipped) = mat_counters(&snapshot);
    Record {
        family: "sampling",
        phase: match threads {
            0 => "teleport-serial",
            1 => "teleport-engine1",
            _ => "teleport-engine8",
        },
        n: circuit.num_qubits(),
        gates: circuit.gate_count(),
        wall_ms: best,
        peak_nodes: 0,
        mat_peak_nodes,
        identity_nodes_skipped,
        cache_lookups,
        cache_hits,
        complex_entries,
        gate_cache_lookups,
        gate_cache_hits,
        shots_per_sec: shots as f64 / (best / 1e3),
        threads: threads.max(1),
        speedup: 0.0,
        fidelity: 1.0,
        timeline_overhead_pct: 0.0,
        metrics: snapshot.to_json(),
    }
}

/// The `scaling` family: the mid-circuit shot engine on one warm shared
/// base at increasing worker-thread counts, recording each run's speedup
/// over the 1-thread wall time. A leading measurement forces the per-shot
/// re-execution regime without perturbing the workload (on |0…0⟩ it always
/// reads 0); the trailing `measure_all` makes the histogram meaningful.
/// Histograms are asserted bit-identical across thread counts.
fn scaling_workload(family: Family, n: usize) -> qdd_circuit::QuantumCircuit {
    let mut qc = qdd_circuit::QuantumCircuit::with_name(n, format!("scaling-{}", family.name()));
    qc.add_creg("trigger", 1);
    qc.measure(0, 0);
    qc.extend(&family.circuit(n));
    qc.measure_all();
    qc
}

fn bench_scaling(
    family: Family,
    n: usize,
    shots: u64,
    reps: usize,
    threads: usize,
    no_skip: bool,
    baseline: Option<&(f64, std::collections::HashMap<u64, u64>)>,
) -> (Record, (f64, std::collections::HashMap<u64, u64>)) {
    let circuit = scaling_workload(family, n);
    let phase: &'static str = match (family, threads) {
        (Family::Qft, 1) => "qft-t1",
        (Family::Qft, 2) => "qft-t2",
        (Family::Qft, 4) => "qft-t4",
        (Family::Qft, _) => "qft-t8",
        (_, 1) => "clifford-t-t1",
        (_, 2) => "clifford-t-t2",
        (_, 4) => "clifford-t-t4",
        (_, _) => "clifford-t-t8",
    };
    let mut best = f64::INFINITY;
    let mut histogram = std::collections::HashMap::new();
    for _ in 0..reps {
        let mut opts = qdd_sim::ShotOptions::new(shots, 1);
        opts.threads = threads;
        opts.config = suite_config(no_skip);
        let t0 = Instant::now();
        let report = qdd_sim::shots::run(&circuit, &opts).expect("scaling shots");
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(report.threads_used, threads.min(shots as usize));
        histogram = report.histogram.into_iter().collect();
    }
    if let Some((_, base_hist)) = baseline {
        assert_eq!(
            &histogram, base_hist,
            "{phase}: histogram must be bit-identical to the 1-thread run"
        );
    }
    let snapshot = collect_metrics(|| {
        let mut opts = qdd_sim::ShotOptions::new(shots.min(4), 1);
        opts.threads = threads;
        opts.config = suite_config(no_skip);
        let _ = qdd_sim::shots::run(&circuit, &opts);
    });
    let (cache_lookups, cache_hits, gate_cache_lookups, gate_cache_hits, complex_entries) =
        cache_counters(&snapshot);
    let (mat_peak_nodes, identity_nodes_skipped) = mat_counters(&snapshot);
    let speedup = match baseline {
        Some((wall_1, _)) => wall_1 / best,
        None => 1.0,
    };
    let record = Record {
        family: "scaling",
        phase,
        n,
        gates: circuit.gate_count(),
        wall_ms: best,
        peak_nodes: 0,
        mat_peak_nodes,
        identity_nodes_skipped,
        cache_lookups,
        cache_hits,
        complex_entries,
        gate_cache_lookups,
        gate_cache_hits,
        shots_per_sec: shots as f64 / (best / 1e3),
        threads,
        speedup,
        fidelity: 1.0,
        timeline_overhead_pct: 0.0,
        metrics: snapshot.to_json(),
    };
    (record, (best, histogram))
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut label = "current".to_string();
    let mut out: Option<PathBuf> = None;
    let mut small = false;
    let mut reps = 3usize;
    let mut no_skip = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--label" => label = it.next().expect("--label needs a value").clone(),
            "--out" => out = Some(PathBuf::from(it.next().expect("--out needs a value"))),
            "--small" => small = true,
            "--no-identity-skip" => no_skip = true,
            "--reps" => {
                reps = it
                    .next()
                    .expect("--reps needs a value")
                    .parse()
                    .expect("--reps needs a number");
            }
            other => panic!("unknown option `{other}`"),
        }
    }
    if small {
        reps = 1;
    }
    // Without an explicit --out, the label names a tracked file in the repo
    // root, so only the two canonical labels are allowed; any label goes
    // when the caller picks the destination (e.g. CI smoke runs).
    if out.is_none() {
        assert!(
            label == "baseline" || label == "current",
            "--label must be `baseline` or `current` unless --out is given"
        );
    }
    let path = out.unwrap_or_else(|| repo_root().join(format!("BENCH_{label}.json")));

    let families = [Family::Ghz, Family::Qft, Family::Grover, Family::CliffordT];
    let mut records = Vec::new();
    let suite_t0 = Instant::now();
    for family in families {
        for &n in sim_widths(family, small) {
            let r = bench_sim(family, n, reps, no_skip);
            println!(
                "sim     {:>10}  n={:<2}  {:>10}  peak {} nodes",
                r.family,
                r.n,
                fmt_duration(std::time::Duration::from_secs_f64(r.wall_ms / 1e3)),
                r.peak_nodes
            );
            records.push(r);
        }
        for &n in verify_widths(family, small) {
            let r = bench_verify(family, n, reps, no_skip);
            println!(
                "verify  {:>10}  n={:<2}  {:>10}  peak {} nodes",
                r.family,
                r.n,
                fmt_duration(std::time::Duration::from_secs_f64(r.wall_ms / 1e3)),
                r.peak_nodes
            );
            records.push(r);
        }
    }

    // Sampling workloads: the shot engine's two performance claims — the
    // memoized terminal path beats naive per-shot diagram walks, and the
    // batched engine beats serial per-shot re-execution.
    let (qft_n, qft_shots, tele_shots) = if small {
        (8, 20_000, 300)
    } else {
        (16, 100_000, 2_000)
    };
    for memoized in [false, true] {
        let r = bench_sampling_shared(qft_n, qft_shots, reps, memoized, no_skip);
        println!(
            "sample  {:>10}  n={:<2}  {:>10}  {:.0} shots/s",
            r.phase,
            r.n,
            fmt_duration(std::time::Duration::from_secs_f64(r.wall_ms / 1e3)),
            r.shots_per_sec
        );
        records.push(r);
    }
    for threads in [0, 8] {
        let r = bench_sampling_midcircuit(tele_shots, reps, threads, no_skip);
        println!(
            "sample  {:>10}  n={:<2}  {:>10}  {:.0} shots/s",
            r.phase,
            r.n,
            fmt_duration(std::time::Duration::from_secs_f64(r.wall_ms / 1e3)),
            r.shots_per_sec
        );
        records.push(r);
    }

    // The scaling family: the shared-base shot engine at increasing thread
    // counts. On a single-core runner the speedups hover around 1.0 (and
    // below, from thread overhead); the records keep the honest numbers,
    // and `bench_diff.py` warns when the 4-thread speedup falls below 80%
    // of the baseline's so scalability losses on real hardware surface.
    // clifford-t-12 re-executes ~1 s of DD work per shot, so it runs few
    // shots at a single rep; the cheap qft-16 rows carry timing fidelity.
    let scaling_workloads: Vec<(Family, usize, u64, usize)> = if small {
        vec![(Family::Qft, 8, 48, reps), (Family::CliffordT, 6, 48, reps)]
    } else {
        vec![(Family::Qft, 16, 96, reps), (Family::CliffordT, 12, 8, 1)]
    };
    let thread_counts: &[usize] = if small { &[1, 2] } else { &[1, 2, 4, 8] };
    for &(family, n, shots, reps) in &scaling_workloads {
        let mut baseline: Option<(f64, std::collections::HashMap<u64, u64>)> = None;
        for &threads in thread_counts {
            let (r, measured) = bench_scaling(family, n, shots, reps, threads, no_skip, baseline.as_ref());
            println!(
                "scale   {:>13}  n={:<2}  {:>10}  {:.2}x vs 1 thread",
                r.phase,
                r.n,
                fmt_duration(std::time::Duration::from_secs_f64(r.wall_ms / 1e3)),
                r.speedup
            );
            records.push(r);
            if threads == 1 {
                baseline = Some(measured);
            }
        }
    }

    // The approx family: graceful-degradation quality tracking. Caps are
    // pinned where the exact engine exhausts (see tests/robustness.rs and
    // the CI gating step) so the records measure the approximation rung.
    let approx_workloads: Vec<(&'static str, qdd_circuit::QuantumCircuit, usize, f64)> =
        if small {
            vec![("random-entangled", workloads::random_entangled(8, 3), 160, 0.5)]
        } else {
            vec![
                ("random-entangled", workloads::random_entangled(8, 3), 160, 0.5),
                ("clifford-t", Family::CliffordT.circuit(15), 88_000, 0.85),
            ]
        };
    for (phase, qc, cap, floor) in approx_workloads {
        let r = bench_approx(phase, qc, cap, floor, no_skip);
        println!(
            "approx  {:>10}  n={:<2}  {:>10}  fidelity ≥ {:.4}, peak {} nodes",
            r.phase,
            r.n,
            fmt_duration(std::time::Duration::from_secs_f64(r.wall_ms / 1e3)),
            r.fidelity,
            r.peak_nodes
        );
        records.push(r);
    }

    let body: Vec<String> = records.iter().map(Record::to_json).collect();
    let json = format!(
        "{{\n  \"label\": \"{label}\",\n  \"reps\": {reps},\n  \"small\": {small},\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&path, json).expect("write benchmark JSON");
    println!(
        "\nsuite finished in {}; wrote {}",
        fmt_duration(suite_t0.elapsed()),
        path.display()
    );
}
