//! Regenerates paper Fig. 3 / Example 8: building `H ⊗ I₂` on decision
//! diagrams by replacing the terminal of H's diagram with the root of I₂'s.

use qdd_bench::out_dir;
use qdd_core::{gates, DdPackage};
use qdd_viz::{dot, style::VizStyle};

fn main() {
    let mut dd = DdPackage::new();
    let out = out_dir();
    let style = VizStyle::classic();

    let h = dd.gate_dd(gates::H, &[], 0, 1).expect("H");
    let i2 = dd.identity(1).expect("I2");
    println!("operand sizes: H = {} node, I₂ = {} node", dd.mat_node_count(h), dd.mat_node_count(i2));

    let kron = dd.kron_mat_spanned(h, i2, 1);
    println!("H ⊗ I₂ = {} nodes", dd.mat_node_count(kron));

    // Canonicity: the same operator built directly is the identical edge.
    let direct = dd.gate_dd(gates::H, &[], 1, 2).expect("H on q1");
    println!(
        "canonical check: kron-built edge == directly-built edge: {}",
        kron == direct
    );
    assert_eq!(kron, direct);

    println!("\nresulting 4×4 matrix (Example 3):");
    for row in dd.to_dense_matrix(kron, 2) {
        let cells: Vec<String> = row.iter().map(|c| format!("{:>6}", c.to_label())).collect();
        println!("  [{}]", cells.join(" "));
    }

    std::fs::write(out.join("fig3_h.dot"), dot::matrix_to_dot(&dd, h, &style)).unwrap();
    std::fs::write(out.join("fig3_i2.dot"), dot::matrix_to_dot(&dd, i2, &style)).unwrap();
    std::fs::write(out.join("fig3_h_kron_i2.dot"), dot::matrix_to_dot(&dd, kron, &style)).unwrap();
    println!("\nArtifacts written to {}", out.display());
}
