//! Regenerates paper Fig. 2: the decision-diagram representations of the
//! Bell state (3 nodes), the Hadamard gate (1 node), and the controlled-NOT
//! gate (3 nodes incl. the shared identity/X pattern). Writes classic-style
//! DOT and SVG renderings to `out/`.

use qdd_bench::out_dir;
use qdd_core::{gates, Control, DdPackage};
use qdd_viz::{dot, style::VizStyle, svg};

fn main() {
    let mut dd = DdPackage::new();
    let out = out_dir();
    let style = VizStyle::classic();

    // Fig. 2(a): |ϕ⟩ = 1/√2 [1,0,0,1]ᵀ.
    let zero = dd.zero_state(2).expect("|00⟩");
    let s = dd.apply_gate(zero, gates::H, &[], 1).expect("H");
    let bell = dd
        .apply_gate(s, gates::X, &[Control::pos(1)], 0)
        .expect("CNOT");
    println!(
        "Fig. 2(a)  Bell state DD: {} nodes (paper: 3, terminal not counted)",
        dd.vec_node_count(bell)
    );
    for (basis, label) in [(0b00u64, "|00⟩"), (0b11, "|11⟩")] {
        println!("  amplitude {label} = {}", dd.amplitude(bell, basis).to_label());
    }
    std::fs::write(out.join("fig2a_bell.dot"), dot::vector_to_dot(&dd, bell, &style)).unwrap();
    std::fs::write(out.join("fig2a_bell.svg"), svg::vector_to_svg(&dd, bell, &style)).unwrap();

    // Fig. 2(b): the Hadamard gate — a single node.
    let h = dd.gate_dd(gates::H, &[], 0, 1).expect("H");
    println!("\nFig. 2(b)  Hadamard DD: {} node (paper: 1)", dd.mat_node_count(h));
    println!(
        "  root weight = {} (the 1/√2 factor pulled out by normalization)",
        dd.complex_value(h.weight).to_label()
    );
    std::fs::write(out.join("fig2b_hadamard.dot"), dot::matrix_to_dot(&dd, h, &style)).unwrap();
    std::fs::write(out.join("fig2b_hadamard.svg"), svg::matrix_to_svg(&dd, h, &style)).unwrap();

    // Fig. 2(c): the controlled-NOT gate.
    let cx = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).expect("CNOT");
    println!(
        "\nFig. 2(c)  CNOT DD: {} nodes (root q1 + identity-block and X-block q0 nodes)",
        dd.mat_node_count(cx)
    );
    let root = dd.mnode(cx.node);
    println!(
        "  root children: U00 → identity pattern, U01 = 0-stub: {}, U10 = 0-stub: {}, U11 → X pattern",
        root.children[1].is_zero(),
        root.children[2].is_zero()
    );
    std::fs::write(out.join("fig2c_cnot.dot"), dot::matrix_to_dot(&dd, cx, &style)).unwrap();
    std::fs::write(out.join("fig2c_cnot.svg"), svg::matrix_to_svg(&dd, cx, &style)).unwrap();

    println!("\nArtifacts written to {}", out.display());
}
