//! Regenerates paper Example 12: verifying the two QFT(3) circuits with the
//! advanced alternating scheme requires a maximum of 9 nodes, as opposed to
//! 21 nodes for building the entire system matrix. Prints the per-step node
//! trace for every strategy.

use qdd_bench::print_table;
use qdd_circuit::{compile, library};
use qdd_verify::{EquivalenceChecker, Strategy};

fn main() {
    let qft = library::qft(3, true);
    let compiled = compile::compiled_qft(3);

    let strategies = [
        Strategy::Construction,
        Strategy::OneToOne,
        Strategy::Proportional,
        Strategy::BarrierGuided,
        Strategy::Lookahead,
    ];

    let mut rows = Vec::new();
    let mut traces: Vec<(Strategy, Vec<usize>)> = Vec::new();
    for strategy in strategies {
        let mut checker = EquivalenceChecker::new();
        let report = checker.check(&qft, &compiled, strategy).expect("valid");
        assert!(report.result.is_equivalent(), "{strategy}");
        rows.push(vec![
            strategy.to_string(),
            report.peak_nodes.to_string(),
            report.applied_left.to_string(),
            report.applied_right.to_string(),
            format!("{:?}", report.result),
        ]);
        traces.push((strategy, report.nodes_per_step.clone()));
    }
    print_table(
        "Example 12 — QFT(3) vs compiled QFT(3)",
        &["strategy", "peak nodes", "left gates", "right gates", "verdict"],
        &rows,
    );

    println!("\nper-step node counts:");
    for (strategy, trace) in &traces {
        let rendered: Vec<String> = trace.iter().map(|n| n.to_string()).collect();
        println!("  {strategy:>14}: {}", rendered.join(" "));
    }

    let construction_peak = traces[0].1.iter().copied().max().unwrap_or(0);
    let barrier_peak = traces[3].1.iter().copied().max().unwrap_or(0);
    println!(
        "\npaper claim: alternating ≤ 9 nodes vs 21 for the full matrix; \
         measured: {barrier_peak} vs {construction_peak}"
    );
    assert!(barrier_peak <= 9, "Example 12's bound must hold");
}
