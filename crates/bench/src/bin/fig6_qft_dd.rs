//! Regenerates paper Fig. 6: the decision diagram of the three-qubit QFT's
//! functionality, rendered with the color-coded edge-weight style (phases on
//! the HLS wheel, magnitudes as line thickness).

use qdd_bench::out_dir;
use qdd_circuit::library;
use qdd_core::DdPackage;
use qdd_viz::{dot, graph::DdGraph, json, style::VizStyle, svg};

fn main() {
    let mut dd = DdPackage::new();
    let qft = library::qft(3, true);
    let mut u = dd.identity(3).expect("I");
    for op in qft.ops() {
        if let Some(gates) = op.to_gate_sequence() {
            for g in gates {
                let m = dd
                    .gate_dd(g.gate.matrix(), &g.controls, g.target, 3)
                    .expect("gate");
                u = dd.mat_mat(m, u);
            }
        }
    }

    let graph = DdGraph::from_matrix(&dd, u);
    println!("Fig. 6  QFT(3) functionality DD");
    println!("  nodes (terminal not counted): {}", graph.node_count());
    for (row, level) in graph.levels().iter().enumerate() {
        println!("  level q{}: {} nodes", graph.num_levels - 1 - row, level.len());
    }
    println!(
        "  distinct edge weights: {}",
        dd.stats().complex_entries
    );

    let out = out_dir();
    let style = VizStyle::colored();
    std::fs::write(out.join("fig6_qft_dd.dot"), dot::matrix_to_dot(&dd, u, &style)).unwrap();
    std::fs::write(out.join("fig6_qft_dd.svg"), svg::matrix_to_svg(&dd, u, &style)).unwrap();
    std::fs::write(out.join("fig6_qft_dd.json"), json::graph_to_json(&graph)).unwrap();
    println!("\nArtifacts written to {}", out.display());
}
