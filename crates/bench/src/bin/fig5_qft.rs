//! Regenerates paper Fig. 5: the three-qubit QFT (a), its compiled version
//! (b), and the 8×8 functionality matrix in powers of ω = e^{iπ/4} (c) —
//! plus the Example 10/11 check that both circuits yield the identical
//! canonical diagram.

use qdd_circuit::{compile, library};
use qdd_complex::Complex;
use qdd_verify::{EquivalenceChecker, Strategy};
use std::f64::consts::FRAC_PI_4;

/// Formats an entry of the QFT matrix as `ω^k` (times the common 1/√8).
fn omega_power(c: Complex) -> String {
    let scaled = c * (8.0f64).sqrt();
    for k in 0..8 {
        let omega_k = Complex::cis(FRAC_PI_4 * k as f64);
        if scaled.approx_eq(omega_k, 1e-9) {
            return match k {
                0 => "1".to_string(),
                1 => "ω".to_string(),
                k => format!("ω{k}"),
            };
        }
    }
    format!("{scaled}")
}

fn main() {
    let qft = library::qft(3, true);
    let compiled = compile::compiled_qft(3);

    println!("Fig. 5(a)  Three-qubit QFT ({} ops):", qft.len());
    print!("{qft}");
    println!("\nFig. 5(b)  Compiled circuit ({} ops, barriers per source gate):", compiled.len());
    print!("{compiled}");

    // Fig. 5(c): build the functionality and print it in ω powers.
    let mut checker = EquivalenceChecker::new();
    let report = checker
        .check(&qft, &compiled, Strategy::Construction)
        .expect("valid circuits");
    println!("\nEx. 10/11  construction-based equivalence: {report}");
    assert!(report.result.is_equivalent());

    // Rebuild one system matrix for the printout.
    let mut dd = qdd_core::DdPackage::new();
    let mut u = dd.identity(3).expect("I");
    for op in qft.ops() {
        if let Some(gates) = op.to_gate_sequence() {
            for g in gates {
                let m = dd
                    .gate_dd(g.gate.matrix(), &g.controls, g.target, 3)
                    .expect("gate");
                u = dd.mat_mat(m, u);
            }
        }
    }
    println!("\nFig. 5(c)  Functionality 1/√8 · [ωʲᵏ] with ω = e^{{iπ/4}} = √i:");
    for row in dd.to_dense_matrix(u, 3) {
        let cells: Vec<String> = row.iter().map(|c| format!("{:>3}", omega_power(*c))).collect();
        println!("  [{}]", cells.join(" "));
    }
    println!("\nQFT functionality DD size: {} nodes", dd.mat_node_count(u));
}
