//! Experiment T-D: ablations of the design choices called out in
//! `DESIGN.md` — compute tables on/off (paper footnote 4) and the
//! complex-table interning statistics (paper ref \[14\]).

use qdd_bench::workloads::Family;
use qdd_bench::{fmt_duration, print_table};
use qdd_core::PackageConfig;
use qdd_sim::DdSimulator;
use std::time::Instant;

fn main() {
    // Compute tables on/off. Without memoization the recursive operations
    // revisit shared sub-diagrams exponentially often.
    let mut rows = Vec::new();
    for family in [Family::Ghz, Family::Qft, Family::Random] {
        for n in [8usize, 12] {
            let circuit = family.circuit(n);

            let t0 = Instant::now();
            let mut on = DdSimulator::with_config(circuit.clone(), 1, PackageConfig::default());
            on.run().expect("with caches");
            let with_caches = t0.elapsed();
            let stats_on = on.package().stats();

            let t0 = Instant::now();
            let mut off = DdSimulator::with_config(
                circuit,
                1,
                PackageConfig {
                    compute_tables: false,
                    ..PackageConfig::default()
                },
            );
            off.run().expect("without caches");
            let without_caches = t0.elapsed();

            let speedup = without_caches.as_secs_f64() / with_caches.as_secs_f64().max(1e-9);
            rows.push(vec![
                family.name().to_string(),
                n.to_string(),
                fmt_duration(with_caches),
                fmt_duration(without_caches),
                format!("{speedup:.1}×"),
                format!(
                    "{:.0}%",
                    100.0 * stats_on.cache_hits as f64 / stats_on.cache_lookups.max(1) as f64
                ),
            ]);
        }
    }
    print_table(
        "T-D.1 — compute tables (paper footnote 4)",
        &["family", "n", "with caches", "without", "speedup", "hit rate"],
        &rows,
    );

    // Complex-table interning pressure per workload.
    let mut rows = Vec::new();
    for family in Family::ALL {
        let n = 10;
        let mut sim = DdSimulator::with_seed(family.circuit(n), 1);
        sim.run().expect("simulation");
        let s = sim.package().stats();
        rows.push(vec![
            family.name().to_string(),
            n.to_string(),
            s.complex_entries.to_string(),
            s.vnodes_alive.to_string(),
            s.mnodes_alive.to_string(),
        ]);
    }
    print_table(
        "T-D.2 — complex-table interning (paper ref [14])",
        &["family", "n", "distinct weights", "vec nodes alive", "mat nodes alive"],
        &rows,
    );

    // Vector-normalization rule ablation: L2 (paper footnote 3) vs the
    // QMDD-style max-magnitude rule. Both are canonical; compare node
    // counts and wall time on measurement-free workloads.
    let mut rows = Vec::new();
    for family in [Family::Ghz, Family::W, Family::Qft, Family::Random] {
        let n = 10;
        let mut cells = vec![family.name().to_string(), n.to_string()];
        for rule in [
            qdd_core::VectorNormalization::L2,
            qdd_core::VectorNormalization::MaxMagnitude,
        ] {
            let cfg = PackageConfig {
                vector_normalization: rule,
                ..PackageConfig::default()
            };
            let t0 = Instant::now();
            let mut sim = DdSimulator::with_config(family.circuit(n), 1, cfg);
            sim.run().expect("simulation");
            cells.push(format!(
                "{} / {}",
                sim.node_count(),
                fmt_duration(t0.elapsed())
            ));
        }
        rows.push(cells);
    }
    print_table(
        "T-D.3 — vector normalization rule (L2 vs max-magnitude)",
        &["family", "n", "L2 nodes/time", "max-mag nodes/time"],
        &rows,
    );

    println!(
        "\nExpected shape: cache hit rates above ~30% and large slowdowns without\n\
         compute tables on circuits with shared structure; the distinct-weight\n\
         count stays tiny compared to node counts, which is exactly why interning\n\
         by tolerance keeps diagrams canonical at negligible cost."
    );
}
