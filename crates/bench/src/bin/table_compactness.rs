//! Experiment T-A: the paper's compactness claim — decision diagrams
//! represent structured states and operators with polynomially many nodes
//! while the dense representation is exponential (§III-A).
//!
//! Prints DD node counts against `2ⁿ` amplitudes (states) and `4ⁿ` entries
//! (operators) for each workload family.

use qdd_bench::workloads::{w_state_amplitudes, Family};
use qdd_bench::print_table;
use qdd_core::DdPackage;
use qdd_sim::DdSimulator;

fn main() {
    // States reached by the workload circuits.
    let mut rows = Vec::new();
    for n in [4usize, 8, 12, 16, 20] {
        let mut row = vec![n.to_string(), format!("{}", 1u128 << n)];
        for family in Family::ALL {
            // Random circuits hit the exponential worst case; Grover
            // beyond 17 qubits hits the interning-precision wall (see
            // table_precision). Keep the sweep within laptop memory.
            if (family == Family::Random && n > 14) || (family == Family::Grover && n > 17) {
                row.push("—".to_string());
                continue;
            }
            let circuit = family.circuit(n);
            eprintln!("[compactness] {} n={n} ...", family.name());
            let mut sim = DdSimulator::with_seed(circuit, 1);
            sim.run().expect("simulation");
            row.push(sim.node_count().to_string());
        }
        rows.push(row);
    }
    let mut headers = vec!["n", "2^n amps"];
    let names: Vec<String> = Family::ALL.iter().map(|f| format!("{} nodes", f.name())).collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    print_table("T-A.1 — final-state DD sizes vs dense amplitudes", &headers, &rows);

    // Directly constructed states.
    let mut rows = Vec::new();
    for n in [4usize, 8, 12, 16] {
        let mut dd = DdPackage::new();
        let basis = dd.basis_state(n, 0b1010 % (1 << n)).expect("basis");
        let w = dd
            .state_from_amplitudes(&w_state_amplitudes(n))
            .expect("w state");
        rows.push(vec![
            n.to_string(),
            format!("{}", 1u128 << n),
            dd.vec_node_count(basis).to_string(),
            dd.vec_node_count(w).to_string(),
        ]);
    }
    print_table(
        "T-A.2 — directly built states",
        &["n", "2^n amps", "basis nodes", "w-state nodes"],
        &rows,
    );

    // Operators: identity and QFT functionality vs 4ⁿ.
    let mut rows = Vec::new();
    for n in [2usize, 4, 6, 8, 10] {
        let mut dd = DdPackage::new();
        let id = dd.identity(n).expect("identity");
        let qft = qdd_circuit::library::qft(n, false);
        let mut u = dd.identity(n).expect("identity");
        for op in qft.ops() {
            for g in op.to_gate_sequence().expect("unitary") {
                let m = dd
                    .gate_dd(g.gate.matrix(), &g.controls, g.target, n)
                    .expect("gate");
                u = dd.mat_mat(m, u);
            }
        }
        rows.push(vec![
            n.to_string(),
            format!("{}", 1u128 << (2 * n)),
            dd.mat_node_count(id).to_string(),
            dd.mat_node_count(u).to_string(),
        ]);
    }
    print_table(
        "T-A.3 — operator DD sizes vs dense 4^n entries",
        &["n", "4^n entries", "identity nodes", "qft nodes"],
        &rows,
    );

    println!(
        "\nExpected shape: ghz/w/basis grow linearly, qft functionality grows\n\
         exponentially in nodes but still far below 4^n; random circuits approach\n\
         the worst case — matching the paper's \"compact in many cases\" claim."
    );
}
