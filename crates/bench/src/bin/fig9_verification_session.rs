//! Regenerates paper Fig. 9 / Example 15: the verification tab with the two
//! QFT circuits of Fig. 5. Replays the paper's moment — three gates applied
//! from the left circuit, the matching compiled groups from the right —
//! then finishes the check, emitting frames and an HTML explorer.

use qdd_bench::out_dir;
use qdd_circuit::{compile, library};
use qdd_viz::{html, style::VizStyle, VerificationExplorer};

fn main() {
    let qft = library::qft(3, true);
    let compiled = compile::compiled_qft(3);

    let mut explorer =
        VerificationExplorer::new(&qft, &compiled, VizStyle::colored()).expect("valid pair");

    // The paper's snapshot: 3 gates from the left, right side following
    // its barrier groups (6 compiled operations at that point).
    for step in 0..3 {
        explorer.apply_left().expect("left gate");
        explorer.right_to_next_barrier().expect("right group");
        let (l, r) = explorer.position();
        println!(
            "after left gate {}: applied {l} left / {r} right gates, working DD = {} nodes, identity: {}",
            step + 1,
            explorer.node_count(),
            explorer.resembles_identity()
        );
    }

    // Continue to the end (Example 12's completion).
    let equivalent = explorer.run_barrier_guided().expect("run");
    println!(
        "\nfinal verdict: {} (peak {} nodes over the whole session)",
        if equivalent { "equivalent — diagram is the identity" } else { "NOT equivalent" },
        explorer.peak_nodes()
    );
    assert!(equivalent);

    let out = out_dir();
    html::write_explorer(
        &out.join("fig9_verification.html"),
        "Fig. 9 — verifying the QFT circuits",
        explorer.frames(),
    )
    .expect("write html");
    println!("\nArtifacts written to {}", out.display());
}
