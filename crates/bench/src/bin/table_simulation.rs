//! Experiment T-B: the paper's "efficiently simulate quantum circuits"
//! claim (§III-B) — decision-diagram simulation vs the dense state-vector
//! baseline across workload families and register sizes, including where
//! the crossover falls.

use qdd_bench::workloads::Family;
use qdd_bench::{fmt_duration, print_table};
use qdd_sim::{DdSimulator, DenseSimulator};
use std::time::Instant;

fn main() {
    let sizes = [6usize, 10, 14, 16];
    let mut rows = Vec::new();
    let mut crossovers: Vec<String> = Vec::new();

    for family in Family::ALL {
        let mut crossed: Option<usize> = None;
        for &n in &sizes {
            if family == Family::Random && n > 14 {
                continue; // exponential worst case; point made by n = 14
            }
            let circuit = family.circuit(n);

            let t0 = Instant::now();
            let mut dd_sim = DdSimulator::with_seed(circuit.clone(), 1);
            dd_sim.run().expect("dd simulation");
            let dd_time = t0.elapsed();
            let peak = dd_sim.stats().peak_nodes;

            let (dense_time, dense_cell) = if n <= 18 {
                let t0 = Instant::now();
                DenseSimulator::simulate(&circuit, 1).expect("dense simulation");
                let t = t0.elapsed();
                (Some(t), fmt_duration(t))
            } else {
                (None, "—".to_string())
            };

            if crossed.is_none() {
                if let Some(dense) = dense_time {
                    if dd_time < dense {
                        crossed = Some(n);
                    }
                }
            }

            rows.push(vec![
                family.name().to_string(),
                n.to_string(),
                circuit.gate_count().to_string(),
                fmt_duration(dd_time),
                dense_cell,
                peak.to_string(),
                format!("{}", 1u128 << n),
            ]);
        }
        crossovers.push(match crossed {
            Some(n) => format!("{}: DD faster from n = {n}", family.name()),
            None => format!("{}: dense faster at all tested sizes", family.name()),
        });
    }

    print_table(
        "T-B — DD simulation vs dense state-vector baseline",
        &["family", "n", "gates", "dd time", "dense time", "peak dd nodes", "2^n"],
        &rows,
    );

    println!("\ncrossovers:");
    for line in crossovers {
        println!("  {line}");
    }
    println!(
        "\nExpected shape: on structured circuits (ghz, w, bv-like) the DD run\n\
         time stays near-linear while dense grows as 2^n; on random circuits the\n\
         diagrams blow up and dense wins — the paper's \"strengths and limits\"."
    );
}
