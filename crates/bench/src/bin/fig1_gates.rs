//! Regenerates paper Fig. 1: the Hadamard and controlled-NOT matrices and
//! the two-gate Bell circuit, including the system-matrix factorization
//! `CNOT · (H ⊗ I₂)` shown in Fig. 1(c).

use qdd_circuit::library;
use qdd_core::{gates, Control, DdPackage};

fn print_matrix(title: &str, m: &[Vec<qdd_complex::Complex>]) {
    println!("\n{title}:");
    for row in m {
        let cells: Vec<String> = row.iter().map(|c| format!("{:>8}", c.to_label())).collect();
        println!("  [{}]", cells.join(" "));
    }
}

fn main() {
    let mut dd = DdPackage::new();

    // Fig. 1(a): the Hadamard gate.
    let h1 = dd.gate_dd(gates::H, &[], 0, 1).expect("1-qubit H");
    print_matrix("Fig. 1(a)  Hadamard gate H", &dd.to_dense_matrix(h1, 1));

    // Fig. 1(b): the controlled-NOT (control q1, target q0).
    let cx = dd
        .gate_dd(gates::X, &[Control::pos(1)], 0, 2)
        .expect("CNOT");
    print_matrix("Fig. 1(b)  Controlled-NOT gate", &dd.to_dense_matrix(cx, 2));

    // Fig. 1(c): the circuit G = g0 g1 and its factorized system matrix.
    let bell = library::bell();
    println!("\nFig. 1(c)  Quantum circuit G:");
    print!("{bell}");

    let h2 = dd.gate_dd(gates::H, &[], 1, 2).expect("H on q1");
    print_matrix("  H ⊗ I₂ (Example 3)", &dd.to_dense_matrix(h2, 2));
    let system = dd.mat_mat(cx, h2);
    print_matrix("  System matrix U = CNOT · (H ⊗ I₂)", &dd.to_dense_matrix(system, 2));

    println!(
        "\nDD sizes: H = {} node, CNOT = {} nodes, U = {} nodes",
        dd.mat_node_count(h1),
        dd.mat_node_count(cx),
        dd.mat_node_count(system)
    );
}
