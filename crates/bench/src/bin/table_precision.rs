//! Experiment T-E (beyond the paper): the numerical-precision wall of
//! tolerance-based complex interning.
//!
//! Interning perturbs weights by up to the tolerance; fed back through
//! arithmetic, those perturbations straddle later merge windows. On Grover
//! circuits — whose corrected-path weights approach `1/√2` as `n` grows —
//! this fragments the diagram from `~2n` nodes into thousands once the
//! genuine weight differences come within a few orders of magnitude of the
//! tolerance. A coarser tolerance makes it *worse* (more injected noise),
//! which is why the package defaults to 1e-13. This is an inherent
//! trade-off of the approach of paper ref \[14\], shared by production DD
//! packages, and squarely part of the paper's goal of conveying the
//! "strengths and limits" of decision diagrams.

use qdd_bench::{fmt_duration, print_table};
use qdd_circuit::library;
use qdd_core::PackageConfig;
use qdd_sim::DdSimulator;
use std::time::{Duration, Instant};

const BUDGET: Duration = Duration::from_secs(15);

fn run(n: usize, tolerance: f64) -> (bool, Duration, usize, f64) {
    let qc = library::grover(n, (1 << n) - 1);
    let cfg = PackageConfig { tolerance, ..PackageConfig::default() };
    let mut sim = DdSimulator::with_config(qc, 1, cfg);
    let t0 = Instant::now();
    let mut finished = true;
    while sim.step().expect("simulation") {
        if t0.elapsed() > BUDGET {
            finished = false;
            break;
        }
    }
    let p = sim.amplitude((1 << n) - 1).norm_sqr();
    (finished, t0.elapsed(), sim.stats().peak_nodes, p)
}

fn main() {
    let mut rows = Vec::new();
    for n in [12usize, 13, 14, 16, 17, 18] {
        for tol in [1e-10f64, 1e-13] {
            let (finished, t, peak, p) = run(n, tol);
            rows.push(vec![
                n.to_string(),
                format!("{tol:.0e}"),
                if finished { fmt_duration(t) } else { format!(">{}s (aborted)", BUDGET.as_secs()) },
                peak.to_string(),
                if finished { format!("{p:.4}") } else { "—".to_string() },
            ]);
        }
    }
    print_table(
        "T-E — interning-tolerance precision wall (Grover, marked = all-ones)",
        &["n", "tolerance", "time", "peak nodes", "P(marked)"],
        &rows,
    );
    println!(
        "\nExpected shape: with tol = 1e-10 the diagram fragments from n = 14 on;\n\
         with tol = 1e-13 it stays at ~2n nodes until n = 18, where the genuine\n\
         weight differences themselves approach the tolerance. The fix is not a\n\
         coarser tolerance — that injects *more* snapping noise — but higher\n\
         weight precision (the limit the paper's \"strengths and limits\" framing\n\
         anticipates)."
    );
}
