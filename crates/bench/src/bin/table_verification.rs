//! Experiment T-C: equivalence-checking strategies compared — full
//! construction vs the advanced alternating schemes of paper ref \[20\] —
//! on the QFT-vs-compiled flow (Example 12 generalized to larger n),
//! plus negative cases that must be caught.

use qdd_bench::workloads::qft_pair;
use qdd_bench::{fmt_duration, print_table};
use qdd_circuit::library;
use qdd_verify::{EquivalenceChecker, Strategy};
use std::time::Instant;

const STRATEGIES: [Strategy; 5] = [
    Strategy::Construction,
    Strategy::OneToOne,
    Strategy::Proportional,
    Strategy::BarrierGuided,
    Strategy::Lookahead,
];

fn main() {
    // Positive cases: the compilation-flow verification of Fig. 5.
    let mut rows = Vec::new();
    for n in [3usize, 5, 7, 9] {
        let (qft, compiled) = qft_pair(n);
        for strategy in STRATEGIES {
            let mut checker = EquivalenceChecker::new();
            let t0 = Instant::now();
            let report = checker.check(&qft, &compiled, strategy).expect("valid");
            let elapsed = t0.elapsed();
            assert!(report.result.is_equivalent(), "qft pair must verify");
            rows.push(vec![
                n.to_string(),
                strategy.to_string(),
                report.peak_nodes.to_string(),
                fmt_duration(elapsed),
                (report.applied_left + report.applied_right).to_string(),
            ]);
        }
    }
    print_table(
        "T-C.1 — verifying QFT(n) against its compiled form",
        &["n", "strategy", "peak nodes", "time", "gates applied"],
        &rows,
    );

    // Negative cases: a single faulty gate must be caught by every strategy.
    let mut rows = Vec::new();
    for n in [4usize, 6] {
        let good = library::random_circuit(n, 3 * n, 11);
        let mut bad = good.clone();
        bad.x(n / 2);
        for strategy in STRATEGIES {
            let mut checker = EquivalenceChecker::new();
            let t0 = Instant::now();
            let report = checker.check(&good, &bad, strategy).expect("valid");
            let elapsed = t0.elapsed();
            rows.push(vec![
                n.to_string(),
                strategy.to_string(),
                format!("{:?}", report.result),
                report
                    .counterexample
                    .map(|c| format!("({}, {})", c.row, c.col))
                    .unwrap_or_else(|| "—".to_string()),
                fmt_duration(elapsed),
            ]);
            assert!(!report.result.is_equivalent(), "fault must be detected");
        }
    }
    print_table(
        "T-C.2 — detecting an injected fault (random circuit + stray X)",
        &["n", "strategy", "verdict", "witness (row, col)", "time"],
        &rows,
    );

    println!(
        "\nExpected shape: for the compilation flow, alternating strategies keep\n\
         the working diagram near the identity (peak ≈ n+1..2n nodes) while full\n\
         construction peaks at the QFT functionality size, growing with 2^n —\n\
         Example 12's 9-vs-21 generalized."
    );
}
