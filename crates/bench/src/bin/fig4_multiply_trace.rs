//! Regenerates paper Fig. 4 / Example 9: the recursive decomposition of
//! matrix–vector multiplication. Traces the Bell evolution of Example 5,
//! reporting compute-table activity (the sub-computations of Fig. 4) and
//! the per-step diagram sizes.

use qdd_bench::print_table;
use qdd_core::{gates, Control, DdPackage};

fn main() {
    let mut dd = DdPackage::new();
    let mut rows = Vec::new();

    let mut state = dd.zero_state(2).expect("|00⟩");
    let mut record = |dd: &DdPackage, label: &str, state| {
        let s = dd.stats();
        rows.push(vec![
            label.to_string(),
            dd.vec_node_count(state).to_string(),
            s.cache_lookups.to_string(),
            s.cache_hits.to_string(),
            s.complex_entries.to_string(),
        ]);
    };
    record(&dd, "|00⟩", state);

    let h = dd.gate_dd(gates::H, &[], 1, 2).expect("H ⊗ I₂");
    state = dd.mat_vec(h, state);
    record(&dd, "after (H ⊗ I₂)·|ϕ⟩", state);

    let cx = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).expect("CNOT");
    state = dd.mat_vec(cx, state);
    record(&dd, "after CNOT·|ϕ⟩", state);

    print_table(
        "Fig. 4 — recursive multiplication trace (Example 5/9)",
        &["step", "state nodes", "cache lookups", "cache hits", "complex entries"],
        &rows,
    );

    println!("\nfinal amplitudes:");
    for (i, a) in dd.to_dense_vector(state, 2).iter().enumerate() {
        println!("  |{:02b}⟩ : {}", i, a.to_label());
    }

    // The decomposition identity of Fig. 4, demonstrated numerically:
    // (U·v)_i = U_{i0}·v_0 + U_{i1}·v_1 on the block level.
    println!("\nblock identity check (top level of CNOT · Bell-precursor):");
    let top_m = dd.mnode(cx.node);
    println!(
        "  root of U has {} non-zero blocks; recursion branches into {} sub-multiplications + additions",
        top_m.children.iter().filter(|c| !c.is_zero()).count(),
        2 * top_m.children.iter().filter(|c| !c.is_zero()).count(),
    );
}
