//! Regenerates paper Fig. 7: the visualization options — (a) the "classic"
//! mode with explicit weight labels, (b) the HLS color wheel, (c) colored
//! edge weights — applied to a representative superposition state.

use qdd_bench::out_dir;
use qdd_core::{gates, Control, DdPackage};
use qdd_viz::{color, dot, style::VizStyle, svg};
use std::f64::consts::PI;

fn main() {
    let mut dd = DdPackage::new();
    // A state with non-trivial phases: H on both qubits, then T and CZ.
    let z = dd.zero_state(2).expect("|00⟩");
    let s = dd.apply_gate(z, gates::H, &[], 1).expect("H q1");
    let s = dd.apply_gate(s, gates::H, &[], 0).expect("H q0");
    let s = dd.apply_gate(s, gates::t(), &[], 0).expect("T q0");
    let state = dd
        .apply_gate(s, gates::Z, &[Control::pos(1)], 0)
        .expect("CZ");

    let out = out_dir();

    // (a) classic mode.
    let classic = VizStyle::classic();
    std::fs::write(out.join("fig7a_classic.svg"), svg::vector_to_svg(&dd, state, &classic)).unwrap();
    std::fs::write(out.join("fig7a_classic.dot"), dot::vector_to_dot(&dd, state, &classic)).unwrap();

    // (b) the HLS color wheel.
    std::fs::write(out.join("fig7b_color_wheel.svg"), svg::color_wheel_svg(36, 80.0)).unwrap();

    // (c) colored edge weights.
    let colored = VizStyle::colored();
    std::fs::write(out.join("fig7c_colored.svg"), svg::vector_to_svg(&dd, state, &colored)).unwrap();

    // Bonus: the "modern" node look mentioned in §IV-A.
    let modern = VizStyle::modern();
    std::fs::write(out.join("fig7_modern.svg"), svg::vector_to_svg(&dd, state, &modern)).unwrap();

    println!("Fig. 7  visualization styles on a 2-qubit phased superposition");
    println!("  state nodes: {}", dd.vec_node_count(state));
    println!("  phase → color samples (HLS wheel of Fig. 7(b)):");
    for k in 0..8 {
        let phase = k as f64 * PI / 4.0;
        println!(
            "    phase {:>6.3} rad → {}",
            phase,
            color::phase_to_color(phase).to_hex()
        );
    }
    println!("\nArtifacts written to {}", out.display());
}
