//! Regenerates paper Fig. 8: the four screenshots of simulating the Bell
//! circuit in the tool — initial |00⟩, the Bell state, the measurement
//! dialog for q0, and the post-measurement |11⟩. Emits one SVG per frame
//! and a self-contained HTML explorer.

use qdd_bench::out_dir;
use qdd_circuit::library;
use qdd_core::MeasurementOutcome;
use qdd_sim::StepOutcome;
use qdd_viz::{html, style::VizStyle, SimulationExplorer};

fn main() {
    let mut circuit = library::bell();
    circuit.add_creg("c", 1);
    circuit.measure(0, 0);

    let mut explorer = SimulationExplorer::new(circuit, VizStyle::classic());
    // (a) → (b): apply H and CNOT.
    explorer.step_forward().expect("H");
    explorer.step_forward().expect("CNOT");
    // (c): the measurement dialog.
    let outcome = explorer.step_forward().expect("measure");
    match outcome {
        StepOutcome::NeedsChoice(p) => {
            println!(
                "Fig. 8(c)  measurement dialog on q{}: p(|0⟩) = {:.2}, p(|1⟩) = {:.2}",
                p.qubit, p.p0, p.p1
            );
        }
        other => panic!("expected a dialog, got {other:?}"),
    }
    // (d): the user chooses |1⟩ — the paper's walk-through.
    explorer.choose(MeasurementOutcome::One).expect("collapse");

    println!("\nframe log:");
    for frame in explorer.frames() {
        println!("  [{}] {} ({} nodes)", frame.index, frame.title, frame.node_count);
    }

    let out = out_dir();
    explorer.write_frames(&out.join("fig8_frames")).expect("write frames");
    html::write_explorer(
        &out.join("fig8_simulation.html"),
        "Fig. 8 — simulating the Bell circuit",
        explorer.frames(),
    )
    .expect("write html");
    println!("\nArtifacts written to {}", out.display());
}
