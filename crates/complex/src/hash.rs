//! A small, fast, non-cryptographic hasher for table-heavy DD workloads.
//!
//! Decision-diagram packages hash millions of small keys (node ids, interned
//! complex indices). `std`'s default SipHash is robust against adversarial
//! keys but needlessly slow here; this module provides the well-known
//! Fx/Firefox multiply-rotate hash, hand-rolled to avoid an external
//! dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash algorithm (2^64 / golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-rotate [`Hasher`] in the style of rustc's FxHash.
///
/// Not resistant to hash-flooding; only use for internal tables keyed by
/// trusted data (node indices, interned weight handles).
#[derive(Default, Clone, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// A [`HashMap`] using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A [`HashSet`] using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn unaligned_byte_writes() {
        // Exercises the chunk remainder path.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(hash_of(&[0u8; 9][..]), hash_of(&[0u8; 10][..]));
    }
}
