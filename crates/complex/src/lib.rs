//! Complex arithmetic and complex-number interning for quantum decision diagrams.
//!
//! Decision-diagram packages for quantum computing attach complex weights to
//! edges. Canonicity of the diagrams — the property that lets two circuits be
//! compared by a single root-pointer comparison — requires that numerically
//! equal weights are *identical* objects. This crate provides the two pieces
//! that make that work:
//!
//! * [`Complex`] — a plain `f64`-pair complex number with full arithmetic,
//!   polar helpers and tolerance-aware comparisons;
//! * [`ComplexTable`] — an interning table mapping values to stable
//!   [`ComplexIdx`] handles, with tolerance-bucketed lookup so values that
//!   differ only by floating-point noise collapse to one handle (the
//!   technique of Zulehner, Hillmich & Wille, *How to efficiently handle
//!   complex values? Implementing decision diagrams for quantum computing*,
//!   ICCAD 2019 — reference \[14\] of the reproduced paper).
//!
//! # Examples
//!
//! ```
//! use qdd_complex::{Complex, ComplexTable};
//!
//! let mut table = ComplexTable::new();
//! let a = table.lookup(Complex::new(0.5, -0.5));
//! // A value within tolerance interns to the same handle:
//! let b = table.lookup(Complex::new(0.5 + 1e-14, -0.5));
//! assert_eq!(a, b);
//! assert!((table.value(a) - Complex::new(0.5, -0.5)).abs() < 1e-12);
//! ```

mod complex;
mod hash;
mod slotvec;
mod table;
mod visit;

pub use complex::Complex;
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use slotvec::SlotVec;
pub use table::{ComplexIdx, ComplexTable, ComplexTableStats, FrontCache, C_ONE, C_ZERO};
pub use visit::{ScratchGuard, ScratchPool, VisitSet, WalkScratch};

/// Default tolerance used for interning and approximate comparisons.
///
/// Two forces pull in opposite directions:
///
/// * it must sit comfortably **above** accumulated floating-point noise
///   (~1e-16 per operation), so weights produced by different but
///   equivalent gate sequences (e.g. a textbook QFT vs. its compiled form)
///   collapse to the same interned value — the canonicity requirement;
/// * it must be **small**, because interning itself perturbs values by up
///   to the tolerance, and when that snapping noise is fed back through
///   arithmetic it produces values that straddle later merge windows. With
///   a coarse tolerance (say 1e-10) this feedback loop visibly *fragments*
///   structured diagrams: Grover diagrams beyond 13 qubits explode from
///   `2n` nodes into thousands, independent of how much further the
///   tolerance is widened.
///
/// `1e-13` (a few hundred ULPs at magnitude 1, the same scale the MQT DD
/// package uses) satisfies both in practice; the regression tests in
/// `qdd-sim` pin the compact-Grover behaviour.
pub const DEFAULT_TOLERANCE: f64 = 1e-13;

/// Returns `true` if `a` and `b` differ by at most `tol` in both components.
///
/// # Examples
///
/// ```
/// assert!(qdd_complex::approx_eq(1.0, 1.0 + 1e-12, 1e-10));
/// assert!(!qdd_complex::approx_eq(1.0, 1.1, 1e-10));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
