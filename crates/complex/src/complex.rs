//! A minimal, dependency-free complex number type.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// This is the scalar type underlying all decision-diagram edge weights and
/// dense state vectors in the workspace. It deliberately mirrors the subset
/// of `num_complex::Complex64` that quantum simulation needs, so no external
/// dependency is required.
///
/// # Examples
///
/// ```
/// use qdd_complex::Complex;
///
/// let i = Complex::I;
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// let h = Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
/// assert!((h * h * 2.0 - Complex::ONE).abs() < 1e-15);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };
    /// `1/√2`, the Hadamard amplitude.
    pub const SQRT1_2: Complex = Complex {
        re: std::f64::consts::FRAC_1_SQRT_2,
        im: 0.0,
    };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qdd_complex::Complex;
    /// let v = Complex::from_polar(1.0, std::f64::consts::FRAC_PI_2);
    /// assert!((v - Complex::I).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Returns `e^{iθ}`, a unit-magnitude phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The complex conjugate `re - im·i`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// The squared magnitude `re² + im²`.
    ///
    /// For a normalized quantum amplitude this is the measurement
    /// probability of the associated basis state.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The multiplicative inverse `1/z`.
    ///
    /// Returns `NaN` components when `self` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Returns `true` if both components are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Returns `true` if the value is within `tol` of zero.
    #[inline]
    pub fn is_zero(self, tol: f64) -> bool {
        self.re.abs() <= tol && self.im.abs() <= tol
    }

    /// Returns `true` if the value is within `tol` of one.
    #[inline]
    pub fn is_one(self, tol: f64) -> bool {
        (self.re - 1.0).abs() <= tol && self.im.abs() <= tol
    }

    /// Returns `true` if either component is NaN or infinite.
    #[inline]
    pub fn is_non_finite(self) -> bool {
        !self.re.is_finite() || !self.im.is_finite()
    }

    /// Square root on the principal branch.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// A compact human-readable label, used for decision-diagram edge
    /// annotations ("classic" visualization style).
    ///
    /// Recognizes a handful of amplitudes ubiquitous in quantum computing
    /// (±1, ±i, ±1/√2, ±i/√2, ±½) and falls back to trimmed decimals.
    ///
    /// # Examples
    ///
    /// ```
    /// use qdd_complex::Complex;
    /// assert_eq!(Complex::SQRT1_2.to_label(), "1/√2");
    /// assert_eq!(Complex::new(0.0, -1.0).to_label(), "-i");
    /// assert_eq!(Complex::new(0.25, 0.0).to_label(), "0.25");
    /// ```
    pub fn to_label(self) -> String {
        const TOL: f64 = 1e-9;
        const NAMED: &[(f64, &str, &str)] = &[
            (1.0, "1", "i"),
            (std::f64::consts::FRAC_1_SQRT_2, "1/√2", "i/√2"),
            (0.5, "1/2", "i/2"),
        ];
        let fmt_part = |v: f64, one: &str| -> Option<String> {
            if (v - 1.0).abs() <= TOL {
                return Some(one.to_string());
            }
            if (v + 1.0).abs() <= TOL {
                return Some(format!("-{one}"));
            }
            for &(mag, re_name, im_name) in NAMED {
                let name = if one == "1" { re_name } else { im_name };
                if (v - mag).abs() <= TOL {
                    return Some(name.to_string());
                }
                if (v + mag).abs() <= TOL {
                    return Some(format!("-{name}"));
                }
            }
            None
        };
        let re_zero = self.re.abs() <= TOL;
        let im_zero = self.im.abs() <= TOL;
        match (re_zero, im_zero) {
            (true, true) => "0".to_string(),
            (false, true) => {
                fmt_part(self.re, "1").unwrap_or_else(|| trim_decimal(self.re))
            }
            (true, false) => fmt_part(self.im, "i")
                .unwrap_or_else(|| format!("{}i", trim_decimal(self.im))),
            (false, false) => {
                let re = fmt_part(self.re, "1").unwrap_or_else(|| trim_decimal(self.re));
                let im_abs = self.im.abs();
                let im = fmt_part(im_abs, "i")
                    .unwrap_or_else(|| format!("{}i", trim_decimal(im_abs)));
                let sign = if self.im < 0.0 { "-" } else { "+" };
                format!("{re}{sign}{im}")
            }
        }
    }
}

/// Formats an `f64` with four decimals and trimmed trailing zeros.
fn trim_decimal(v: f64) -> String {
    let s = format!("{v:.4}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im == 0.0 {
            write!(f, "{}", self.re)
        } else if self.re == 0.0 {
            write!(f, "{}i", self.im)
        } else if self.im < 0.0 {
            write!(f, "{}{}i", self.re, self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Complex {
        Complex::real(re)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl Product for Complex {
    fn product<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert!((z / z - Complex::ONE).abs() < 1e-15);
    }

    #[test]
    fn magnitude_and_phase() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!((Complex::I.arg() - FRAC_PI_2).abs() < 1e-15);
        assert!((Complex::new(-1.0, 0.0).arg() - PI).abs() < 1e-15);
    }

    #[test]
    fn conjugate_multiplication_gives_norm() {
        let z = Complex::new(1.5, 2.5);
        let zz = z * z.conj();
        assert!((zz.re - z.norm_sqr()).abs() < 1e-12);
        assert!(zz.im.abs() < 1e-12);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, FRAC_PI_4);
        assert!((z.abs() - 2.0).abs() < 1e-15);
        assert!((z.arg() - FRAC_PI_4).abs() < 1e-15);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * PI / 8.0;
            assert!((Complex::cis(theta).abs() - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn sqrt_of_i() {
        // √i = (1+i)/√2, the ω = e^{iπ/4} of the paper's QFT matrix.
        let s = Complex::I.sqrt();
        let omega = Complex::cis(FRAC_PI_4);
        assert!((s - omega).abs() < 1e-15);
    }

    #[test]
    fn inverse_of_zero_is_nan() {
        assert!(Complex::ZERO.inv().re.is_nan());
    }

    #[test]
    fn labels_for_common_amplitudes() {
        assert_eq!(Complex::ONE.to_label(), "1");
        assert_eq!((-Complex::ONE).to_label(), "-1");
        assert_eq!(Complex::I.to_label(), "i");
        assert_eq!(Complex::ZERO.to_label(), "0");
        assert_eq!(Complex::SQRT1_2.to_label(), "1/√2");
        assert_eq!((-Complex::SQRT1_2).to_label(), "-1/√2");
        assert_eq!(Complex::new(0.5, 0.5).to_label(), "1/2+i/2");
        assert_eq!(Complex::new(0.0, -0.5).to_label(), "-i/2");
        assert_eq!(Complex::new(0.1234, 0.0).to_label(), "0.1234");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Complex::new(1.0, 0.0).to_string(), "1");
        assert_eq!(Complex::new(0.0, -2.0).to_string(), "-2i");
        assert_eq!(Complex::new(1.0, 1.0).to_string(), "1+1i");
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1-1i");
    }

    #[test]
    fn sum_and_product_impls() {
        let vals = [Complex::ONE, Complex::I, Complex::new(2.0, 0.0)];
        let s: Complex = vals.iter().copied().sum();
        assert_eq!(s, Complex::new(3.0, 1.0));
        let p: Complex = vals.iter().copied().product();
        assert_eq!(p, Complex::new(0.0, 2.0));
    }
}
