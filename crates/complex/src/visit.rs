//! Epoch-stamped visited sets for allocation-free graph traversals.
//!
//! A decision-diagram walk needs a "have I seen this arena slot?" set, and
//! drivers run such walks per simulation step — so the set must not allocate
//! or rehash on the hot path. The trick: one `u32` stamp per slot and a
//! traversal epoch. A slot is *visited in this traversal* iff its stamp
//! equals the current epoch; bumping the epoch resets the whole set in O(1).
//!
//! [`VisitSet::begin`] owns the epoch bump, the lazy resize, and the
//! wrap-around refill, so a traversal that goes through it cannot observe
//! stale marks from an earlier walk — the reset-between-traversals hazard is
//! impossible by construction rather than by caller discipline.

/// An epoch-stamped membership set over dense `usize` keys (arena slots).
#[derive(Clone, Debug, Default)]
pub struct VisitSet {
    /// Per-slot stamp; the slot is visited iff `stamp[i] == epoch`.
    stamp: Vec<u32>,
    /// Current traversal epoch. `0` never marks anything (slots start at 0),
    /// so a fresh set is empty without initialization.
    epoch: u32,
}

impl VisitSet {
    /// Starts a new traversal over slots `0..len`: grows the stamp array if
    /// the arena grew, handles epoch wrap-around, and bumps the epoch so
    /// every slot reads as unvisited.
    pub fn begin(&mut self, len: usize) {
        if self.stamp.len() < len {
            self.stamp.resize(len, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks slot `i` visited. Returns `true` if it was unvisited (first
    /// visit this traversal), `false` if already marked.
    #[inline]
    pub fn visit(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.epoch {
            false
        } else {
            self.stamp[i] = self.epoch;
            true
        }
    }

    /// Whether slot `i` is marked in the current traversal (without
    /// marking it).
    #[inline]
    pub fn seen(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }
}

/// Reusable traversal state: a [`VisitSet`] plus a worklist vector, bundled
/// so a walker borrows both with one `RefCell` borrow.
#[derive(Clone, Debug, Default)]
pub struct WalkScratch {
    /// The visited set.
    pub set: VisitSet,
    /// Reusable DFS stack / BFS queue of raw arena slots.
    pub stack: Vec<u32>,
}

impl WalkScratch {
    /// Starts a new traversal: bumps the epoch (see [`VisitSet::begin`])
    /// and clears the worklist.
    pub fn begin(&mut self, len: usize) {
        self.set.begin(len);
        self.stack.clear();
    }
}

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// A shared pool of [`WalkScratch`] buffers.
///
/// Traversals used to borrow one `RefCell<WalkScratch>` per store, which made
/// the store `!Sync` and forbade same-arity nested walks. A pool hands each
/// concurrent (or nested) traversal its own scratch buffer: [`Self::acquire`]
/// pops a warm buffer (or allocates a fresh one on first use / under nesting)
/// and the [`ScratchGuard`] returns it on drop, so steady-state walks stay
/// allocation-free.
#[derive(Debug, Default)]
pub struct ScratchPool {
    pool: Mutex<Vec<WalkScratch>>,
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks a scratch buffer out of the pool.
    pub fn acquire(&self) -> ScratchGuard<'_> {
        let scratch = self.pool.lock().unwrap().pop().unwrap_or_default();
        ScratchGuard { pool: self, scratch: Some(scratch) }
    }
}

impl Clone for ScratchPool {
    /// Clones as an empty pool — scratch buffers are transient caches, not
    /// state.
    fn clone(&self) -> Self {
        Self::new()
    }
}

/// An exclusively-owned [`WalkScratch`] checked out of a [`ScratchPool`];
/// returned to the pool on drop.
#[derive(Debug)]
pub struct ScratchGuard<'a> {
    pool: &'a ScratchPool,
    scratch: Option<WalkScratch>,
}

impl Deref for ScratchGuard<'_> {
    type Target = WalkScratch;
    #[inline]
    fn deref(&self) -> &WalkScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl DerefMut for ScratchGuard<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut WalkScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.scratch.take() {
            self.pool.pool.lock().unwrap().push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_set_is_empty() {
        let mut vs = VisitSet::default();
        vs.begin(4);
        assert!(!vs.seen(0));
        assert!(vs.visit(0));
        assert!(!vs.visit(0));
        assert!(vs.seen(0));
    }

    #[test]
    fn begin_resets_in_constant_time() {
        let mut vs = VisitSet::default();
        vs.begin(3);
        assert!(vs.visit(1));
        vs.begin(3);
        assert!(!vs.seen(1), "epoch bump must clear earlier marks");
        assert!(vs.visit(1));
    }

    #[test]
    fn begin_grows_with_the_arena() {
        let mut vs = VisitSet::default();
        vs.begin(2);
        vs.visit(1);
        vs.begin(8);
        assert!(vs.visit(7));
    }

    #[test]
    fn epoch_wraparound_refills() {
        let mut vs = VisitSet::default();
        vs.begin(2);
        vs.visit(0);
        // Force the wrap-around path.
        vs.epoch = u32::MAX;
        vs.begin(2);
        assert!(!vs.seen(0));
        assert!(vs.visit(0));
    }

    #[test]
    fn scratch_clears_worklist() {
        let mut s = WalkScratch::default();
        s.stack.push(7);
        s.begin(1);
        assert!(s.stack.is_empty());
        assert!(s.set.visit(0));
    }

    #[test]
    fn pool_reuses_returned_buffers() {
        let pool = ScratchPool::new();
        let warmed = {
            let mut g = pool.acquire();
            g.begin(100);
            g.set.visit(42);
            g.stack.capacity()
        };
        let _ = warmed;
        // The returned buffer comes back warm (stamp array already sized).
        let mut g2 = pool.acquire();
        g2.begin(100);
        assert!(!g2.set.seen(42), "epoch bump isolates traversals");
    }

    #[test]
    fn pool_supports_nested_acquires() {
        let pool = ScratchPool::new();
        let mut outer = pool.acquire();
        outer.begin(4);
        outer.set.visit(1);
        {
            let mut inner = pool.acquire();
            inner.begin(4);
            assert!(inner.set.visit(1), "nested walk has independent state");
        }
        assert!(outer.set.seen(1));
    }
}
