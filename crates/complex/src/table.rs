//! Tolerance-based interning of complex edge weights.
//!
//! Every edge weight occurring in a decision diagram is stored exactly once
//! in a [`ComplexTable`] and referred to by a compact [`ComplexIdx`] handle.
//! Handle equality *is* value equality (up to the table's tolerance), which
//! makes node hashing exact and decision diagrams canonical — the scheme of
//! reference \[14\] of the reproduced paper.
//!
//! Interning is the innermost loop of the whole package (every normalization
//! step interns one or more weights), and since the concurrency rework it is
//! also *shareable*:
//!
//! * value storage is an append-friendly [`SlotVec`]: slots never move, so
//!   [`ComplexTable::value`] is a lock-free read from any thread;
//! * the tolerance-grid index is striped over `RwLock`-guarded cell maps.
//!   The exclusive (`&mut self`) hot path bypasses the locks entirely via
//!   `get_mut`, so single-threaded interning pays nothing for shareability;
//!   the shared (`&self`) path takes brief read locks per probed cell and a
//!   single global insert lock on a miss;
//! * repeats of the handful of hot constants (±1/√2, phase factors, …) are
//!   answered from an exact-bits front cache without touching the grid — a
//!   table-owned one on the exclusive path, a caller-owned per-thread
//!   [`FrontCache`] on the shared path;
//! * reclamation ([`ComplexTable::retain_referenced`]) remains a
//!   stop-the-world (`&mut self`) epoch and keeps surviving handles stable.
//!
//! A table can also be an **overlay** over a frozen base table
//! ([`ComplexTable::overlay`]): lookups consult the (immutable, `Arc`-shared)
//! base first, inserts go to overlay-local slots whose handles are offset
//! past the base handle space. This is what lets many worker packages share
//! one warm table without any synchronization on the base.

use crate::complex::Complex;
use crate::hash::{FxHashMap, FxHasher};
use crate::slotvec::SlotVec;
use crate::DEFAULT_TOLERANCE;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A stable handle to an interned complex value in a [`ComplexTable`].
///
/// Two handles from the same table are equal iff they denote the same
/// (tolerance-collapsed) value; handles are meaningless across tables. An
/// overlay table and its frozen base share a handle space: base handles are
/// valid in the overlay.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComplexIdx(u32);

/// The handle of the interned value `0`, identical in every table.
pub const C_ZERO: ComplexIdx = ComplexIdx(0);
/// The handle of the interned value `1`, identical in every table.
pub const C_ONE: ComplexIdx = ComplexIdx(1);

impl ComplexIdx {
    /// Returns the raw table slot, mainly useful for diagnostics.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is the interned zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == C_ZERO
    }

    /// Returns `true` if this is the interned one.
    #[inline]
    pub fn is_one(self) -> bool {
        self == C_ONE
    }
}

/// Aggregate statistics of a [`ComplexTable`], for diagnostics and the
/// ablation experiments.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ComplexTableStats {
    /// Number of distinct interned values (including the frozen base's for
    /// overlay tables).
    pub entries: usize,
    /// Total `lookup` calls.
    pub lookups: u64,
    /// Lookups answered by an existing entry.
    pub hits: u64,
    /// Approximate heap footprint of the table (value storage plus grid
    /// index), for resource diagnostics.
    pub approx_bytes: usize,
    /// Total value slots reclaimed by [`ComplexTable::retain_referenced`]
    /// over the table's lifetime.
    pub reclaimed: u64,
    /// Lookups answered by the inline front cache alone (exact bit-pattern
    /// repeats that skipped the grid probe); a subset of `hits`.
    pub front_hits: u64,
}

/// One slot of a front cache: exact bit patterns of a recently interned
/// value and its handle.
#[derive(Copy, Clone, Debug)]
struct RecentEntry {
    re_bits: u64,
    im_bits: u64,
    idx: u32,
}

const EMPTY: u32 = u32::MAX;

impl RecentEntry {
    const VACANT: RecentEntry = RecentEntry { re_bits: 0, im_bits: 0, idx: EMPTY };
}

/// Size of a front cache (direct-mapped on the value's bit hash).
const RECENT_SLOTS: usize = 8;

/// A small per-thread exact-bits cache in front of the shared interning
/// grid, handed out by the package to worker threads. Repeats of a hot
/// value skip the striped probe entirely. Remembered handles stay correct
/// for the lifetime of the table epoch; the owner must drop or
/// [`FrontCache::flush`] it across a reclamation
/// ([`ComplexTable::retain_referenced`]).
#[derive(Clone, Debug)]
pub struct FrontCache {
    recent: [RecentEntry; RECENT_SLOTS],
}

impl FrontCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        FrontCache { recent: [RecentEntry::VACANT; RECENT_SLOTS] }
    }

    /// Forgets every remembered handle.
    pub fn flush(&mut self) {
        self.recent = [RecentEntry::VACANT; RECENT_SLOTS];
    }

    #[inline]
    fn slot_of(re_bits: u64, im_bits: u64) -> usize {
        (re_bits ^ im_bits.rotate_left(32)) as usize % RECENT_SLOTS
    }

    #[inline]
    fn get(&self, re_bits: u64, im_bits: u64) -> Option<u32> {
        let r = self.recent[Self::slot_of(re_bits, im_bits)];
        (r.idx != EMPTY && r.re_bits == re_bits && r.im_bits == im_bits).then_some(r.idx)
    }

    #[inline]
    fn put(&mut self, re_bits: u64, im_bits: u64, idx: u32) {
        self.recent[Self::slot_of(re_bits, im_bits)] = RecentEntry { re_bits, im_bits, idx };
    }
}

impl Default for FrontCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Number of index stripes (power of two). Each stripe guards a cell map;
/// a probe locks only the stripes its nine candidate cells hash to.
const NSTRIPES: usize = 16;

/// An interned value plus its home grid cell (for index rebuilds).
#[derive(Clone, Debug)]
struct CEntry {
    v: Complex,
    cell: (i64, i64),
}

#[inline]
fn cell_hash(cell: (i64, i64)) -> usize {
    let mut h = FxHasher::default();
    cell.hash(&mut h);
    h.finish() as usize
}

#[inline]
fn stripe_of(cell: (i64, i64)) -> usize {
    // Decouple the stripe choice from the map's bucket choice by mixing the
    // top bits.
    (cell_hash(cell) >> 48) & (NSTRIPES - 1)
}

/// The nine probe cells around `(cr, ci)` in the fixed scan order.
///
/// The order is load-bearing: which in-tolerance representative wins
/// determines how drifting intermediate values snap back, and a different
/// preference lets near-tolerance noise fragment diagrams (see
/// `grover_16_stays_compact`). Saturating adds: astronomically large values
/// (overflow products of degenerate inputs) quantize to the clamped edge
/// cells instead of wrapping the cell coordinate space.
#[inline]
fn probe_cells(cr: i64, ci: i64) -> [(i64, i64); 9] {
    let mut out = [(0i64, 0i64); 9];
    let mut k = 0;
    for dr in -1..=1i64 {
        for di in -1..=1i64 {
            out[k] = (cr.saturating_add(dr), ci.saturating_add(di));
            k += 1;
        }
    }
    out
}

/// One stripe of the grid index: cell → value slots quantizing there.
///
/// Because the cell size equals the tolerance, two values in one cell are
/// always within tolerance of each other, so a cell holds at most one slot —
/// except for the degenerate clamped edge cells, hence the tiny `Vec`.
type Stripe = FxHashMap<(i64, i64), Vec<u32>>;

/// An interning table for complex numbers with tolerance-bucketed lookup.
///
/// Values are quantized onto a grid of cell size equal to the tolerance;
/// a lookup probes the value's cell and the eight neighbouring cells, so any
/// stored value within the tolerance ball is found. Slots `0` and `1` are
/// pre-seeded with the constants `0` and `1` ([`C_ZERO`], [`C_ONE`]).
///
/// # Examples
///
/// ```
/// use qdd_complex::{Complex, ComplexTable, C_ONE, C_ZERO};
///
/// let mut t = ComplexTable::new();
/// assert_eq!(t.lookup(Complex::ZERO), C_ZERO);
/// assert_eq!(t.lookup(Complex::ONE), C_ONE);
/// let a = t.lookup(Complex::new(0.25, 0.75));
/// assert_eq!(t.lookup(Complex::new(0.25, 0.75)), a);
/// ```
#[derive(Debug)]
pub struct ComplexTable {
    /// Local value storage; global handle = `base_len + local slot`.
    values: SlotVec<CEntry>,
    /// Reclaimed local slots available for reuse. Doubles as the global
    /// insert lock for the shared path: a shared insert holds this mutex
    /// from re-probe to index publication, so concurrent interns of the
    /// same value collapse to one slot.
    free: Mutex<Vec<u32>>,
    /// Count of entries in `free` (so `len` stays lock-free).
    free_count: AtomicU32,
    /// Striped grid index over local values.
    stripes: Box<[RwLock<Stripe>]>,
    /// Exclusive-path front cache (the shared path uses a caller-owned
    /// [`FrontCache`] instead).
    recent: FrontCache,
    /// Frozen base table this one overlays, if any.
    base: Option<Arc<ComplexTable>>,
    /// Handle-space offset: local slot `i` is handle `base_len + i`.
    base_len: u32,
    tolerance: f64,
    lookups: AtomicU64,
    hits: AtomicU64,
    reclaimed: AtomicU64,
    front_hits: AtomicU64,
}

impl ComplexTable {
    /// Creates a table with the [`DEFAULT_TOLERANCE`].
    pub fn new() -> Self {
        Self::with_tolerance(DEFAULT_TOLERANCE)
    }

    /// Creates a table collapsing values within `tolerance` of each other.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not finite and positive.
    pub fn with_tolerance(tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance > 0.0,
            "tolerance must be finite and positive"
        );
        let mut table = Self::bare(tolerance, None, 0);
        table.seed_constants();
        table
    }

    fn bare(tolerance: f64, base: Option<Arc<ComplexTable>>, base_len: u32) -> Self {
        ComplexTable {
            values: SlotVec::new(),
            free: Mutex::new(Vec::new()),
            free_count: AtomicU32::new(0),
            stripes: (0..NSTRIPES).map(|_| RwLock::new(Stripe::default())).collect(),
            recent: FrontCache::new(),
            base,
            base_len,
            tolerance,
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            front_hits: AtomicU64::new(0),
        }
    }

    /// Stores the constants `0` and `1` at their fixed slots, bypassing the
    /// constant fast path (which answers without inserting).
    fn seed_constants(&mut self) {
        let mut free = std::mem::take(self.free.get_mut().unwrap());
        let zero = self.insert_locked(Complex::ZERO, &mut free);
        let one = self.insert_locked(Complex::ONE, &mut free);
        *self.free.get_mut().unwrap() = free;
        debug_assert_eq!(zero, C_ZERO);
        debug_assert_eq!(one, C_ONE);
    }

    /// Creates an empty overlay over a frozen `base` table. The overlay
    /// resolves every base handle (lock-free), prefers base representatives
    /// on lookup, and appends new values to overlay-local slots — the base
    /// is never mutated.
    pub fn overlay(base: Arc<ComplexTable>) -> Self {
        let base_len = (base.base_len as usize + base.values.len()) as u32;
        Self::bare(base.tolerance, Some(base), base_len)
    }

    /// The interning tolerance.
    #[inline]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The number of distinct live interned values (including the frozen
    /// base's for an overlay).
    #[inline]
    pub fn len(&self) -> usize {
        let local = self.values.len() - self.free_count.load(Ordering::Relaxed) as usize;
        match &self.base {
            Some(b) => b.len() + local,
            None => local,
        }
    }

    /// Returns `true` if the table holds only the seeded constants.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() <= 2
    }

    /// Current statistics snapshot (constant time). For an overlay the
    /// counters are local; `entries` includes the base.
    pub fn stats(&self) -> ComplexTableStats {
        ComplexTableStats {
            entries: self.len(),
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            approx_bytes: self.len()
                * (std::mem::size_of::<CEntry>() + 32 + std::mem::size_of::<u32>()),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
            front_hits: self.front_hits.load(Ordering::Relaxed),
        }
    }

    /// Returns the value behind a handle. Lock-free; callable from any
    /// thread that shares the table.
    ///
    /// # Panics
    ///
    /// Panics if `idx` did not come from this table (or its base).
    #[inline]
    pub fn value(&self, idx: ComplexIdx) -> Complex {
        if idx.0 < self.base_len {
            return self.base.as_ref().expect("foreign handle").value(idx);
        }
        self.values.get_expect((idx.0 - self.base_len) as usize).v
    }

    #[inline]
    fn cell(&self, v: Complex) -> (i64, i64) {
        (
            (v.re / self.tolerance).round() as i64,
            (v.im / self.tolerance).round() as i64,
        )
    }

    /// Scans one local cell for a slot matching `v` within tolerance.
    #[inline]
    fn scan_cell(&self, stripe: &Stripe, cell: (i64, i64), v: Complex) -> Option<u32> {
        for &slot in stripe.get(&cell)?.iter() {
            if self.values.get_expect(slot as usize).v.approx_eq(v, self.tolerance) {
                return Some(self.base_len + slot);
            }
        }
        None
    }

    /// Finds a stored handle for `v`, consulting the frozen base first
    /// (earliest representative wins) and then the local stripes, taking
    /// read locks per probed cell. Shared-path safe.
    fn find_shared(&self, v: Complex) -> Option<ComplexIdx> {
        if let Some(base) = &self.base {
            if let Some(idx) = base.find_shared(v) {
                return Some(idx);
            }
        }
        let (cr, ci) = self.cell(v);
        for cell in probe_cells(cr, ci) {
            let stripe = self.stripes[stripe_of(cell)].read().unwrap();
            if let Some(raw) = self.scan_cell(&stripe, cell, v) {
                return Some(ComplexIdx(raw));
            }
        }
        None
    }

    /// Exclusive-path variant of [`Self::find_shared`]: identical probe
    /// order, no lock traffic on the local stripes.
    fn find_mut(&mut self, v: Complex) -> Option<ComplexIdx> {
        if let Some(base) = &self.base {
            if let Some(idx) = base.find_shared(v) {
                return Some(idx);
            }
        }
        let (cr, ci) = self.cell(v);
        for cell in probe_cells(cr, ci) {
            // Split borrows: read the candidate list out of the stripe, then
            // compare against `values` without holding the map borrow.
            let mut candidates = [0u32; 4];
            let mut ncand = 0;
            {
                let stripe = self.stripes[stripe_of(cell)].get_mut().unwrap();
                if let Some(slots) = stripe.get(&cell) {
                    for &s in slots.iter() {
                        if ncand < candidates.len() {
                            candidates[ncand] = s;
                            ncand += 1;
                        }
                    }
                }
            }
            for &slot in &candidates[..ncand] {
                if self.values.get_expect(slot as usize).v.approx_eq(v, self.tolerance) {
                    return Some(ComplexIdx(self.base_len + slot));
                }
            }
        }
        None
    }

    /// Allocates a local slot for `v` and publishes it in the grid index.
    /// The caller must hold the insert lock (shared path) or `&mut self`
    /// (exclusive path, where `free` is accessed via the same mutex).
    fn insert_locked(&self, v: Complex, free: &mut Vec<u32>) -> ComplexIdx {
        let cell = self.cell(v);
        let slot = match free.pop() {
            Some(slot) => {
                self.free_count.fetch_sub(1, Ordering::Relaxed);
                self.values.set(slot, CEntry { v, cell });
                slot
            }
            None => {
                let slot = self.values.claim();
                self.values.set(slot, CEntry { v, cell });
                slot
            }
        };
        self.stripes[stripe_of(cell)]
            .write()
            .unwrap()
            .entry(cell)
            .or_default()
            .push(slot);
        ComplexIdx(self.base_len + slot)
    }

    /// Reclaims every interned value whose handle fails `keep`, except the
    /// seeded constants `0` and `1` (for an overlay, the frozen base is
    /// untouched by construction — only overlay-local slots are examined).
    ///
    /// Kept handles stay valid and keep denoting bit-identical values;
    /// reclaimed slots are recycled by later insertions. The grid index is
    /// rebuilt over the survivors (shrinking it back towards cache-resident
    /// size) and the front cache is flushed, since it may remember
    /// reclaimed handles. This is a stop-the-world epoch: it requires
    /// `&mut self`, so no reader can hold a handle-resolution borrow across
    /// it, and per-thread [`FrontCache`]s handed out for the shared path
    /// must be flushed by their owners.
    ///
    /// Returns the number of slots reclaimed.
    pub fn retain_referenced(&mut self, keep: impl Fn(ComplexIdx) -> bool) -> usize {
        let protect = if self.base.is_none() { 2 } else { 0 };
        let mut freed = 0usize;
        let base_len = self.base_len;
        let free = self.free.get_mut().unwrap();
        for slot in protect..self.values.len() {
            let handle = ComplexIdx(base_len + slot as u32);
            if self.values.get(slot).is_some() && !keep(handle) {
                self.values.take(slot);
                free.push(slot as u32);
                freed += 1;
            }
        }
        *self.free_count.get_mut() += freed as u32;
        *self.reclaimed.get_mut() += freed as u64;
        // Rebuild the stripes over the survivors.
        for stripe in self.stripes.iter_mut() {
            let s = stripe.get_mut().unwrap();
            s.clear();
            s.shrink_to_fit();
        }
        for (slot, e) in self.values.iter_present() {
            self.stripes[stripe_of(e.cell)]
                .get_mut()
                .unwrap()
                .entry(e.cell)
                .or_default()
                .push(slot as u32);
        }
        self.recent.flush();
        freed
    }

    /// Drops every overlay-local value, returning the table to the frozen
    /// base's state. No-op effect on non-overlay tables beyond clearing
    /// everything but the re-seeded constants.
    pub fn clear_local(&mut self) {
        self.values.clear();
        self.free.get_mut().unwrap().clear();
        *self.free_count.get_mut() = 0;
        for stripe in self.stripes.iter_mut() {
            stripe.get_mut().unwrap().clear();
        }
        self.recent.flush();
        if self.base.is_none() {
            self.seed_constants();
        }
    }

    #[inline]
    fn constant_fast_path(&self, v: Complex) -> Option<ComplexIdx> {
        if v.is_zero(self.tolerance) {
            return Some(C_ZERO);
        }
        if v.is_one(self.tolerance) {
            return Some(C_ONE);
        }
        None
    }

    /// Interns `v`, returning the handle of an existing value within
    /// tolerance if there is one. Exclusive fast path: no lock traffic.
    ///
    /// # Panics
    ///
    /// Panics if `v` has a NaN or infinite component — such weights indicate
    /// a bug upstream (e.g. normalizing an all-zero node) and must never be
    /// interned.
    pub fn lookup(&mut self, v: Complex) -> ComplexIdx {
        assert!(
            !v.is_non_finite(),
            "cannot intern non-finite complex value {v:?}"
        );
        *self.lookups.get_mut() += 1;
        if let Some(c) = self.constant_fast_path(v) {
            *self.hits.get_mut() += 1;
            return c;
        }
        // Front cache: repeats of a hot value (exact bit pattern) skip the
        // grid probe entirely. Interning is deterministic and the cache is
        // flushed whenever entries are reclaimed, so a remembered handle
        // stays correct.
        let (re_bits, im_bits) = (v.re.to_bits(), v.im.to_bits());
        if let Some(raw) = self.recent.get(re_bits, im_bits) {
            *self.hits.get_mut() += 1;
            *self.front_hits.get_mut() += 1;
            return ComplexIdx(raw);
        }
        let idx = match self.find_mut(v) {
            Some(idx) => {
                *self.hits.get_mut() += 1;
                idx
            }
            None => {
                let mut free = std::mem::take(self.free.get_mut().unwrap());
                let idx = self.insert_locked(v, &mut free);
                *self.free.get_mut().unwrap() = free;
                idx
            }
        };
        self.recent.put(re_bits, im_bits, idx.0);
        idx
    }

    /// Shared-path interning: identical semantics to [`Self::lookup`], but
    /// callable from many threads at once on a shared `&ComplexTable`.
    /// `front` is the caller's per-thread front cache. Hot-path lookups take
    /// only brief per-cell read locks; a genuine miss serializes on the
    /// table's single insert lock and re-probes before inserting, so
    /// concurrent interns of the same value collapse to one handle.
    ///
    /// # Panics
    ///
    /// Panics if `v` has a NaN or infinite component.
    pub fn lookup_shared(&self, v: Complex, front: &mut FrontCache) -> ComplexIdx {
        assert!(
            !v.is_non_finite(),
            "cannot intern non-finite complex value {v:?}"
        );
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = self.constant_fast_path(v) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return c;
        }
        let (re_bits, im_bits) = (v.re.to_bits(), v.im.to_bits());
        if let Some(raw) = front.get(re_bits, im_bits) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.front_hits.fetch_add(1, Ordering::Relaxed);
            return ComplexIdx(raw);
        }
        let idx = match self.find_shared(v) {
            Some(idx) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                idx
            }
            None => {
                let mut free = self.free.lock().unwrap();
                // Re-probe under the insert lock: another thread may have
                // inserted the same value since the optimistic scan.
                match self.find_shared(v) {
                    Some(idx) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        idx
                    }
                    None => self.insert_locked(v, &mut free),
                }
            }
        };
        front.put(re_bits, im_bits, idx.0);
        idx
    }

    /// Interns the product of two handles.
    pub fn mul(&mut self, a: ComplexIdx, b: ComplexIdx) -> ComplexIdx {
        if a.is_zero() || b.is_zero() {
            return C_ZERO;
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        let v = self.value(a) * self.value(b);
        self.lookup(v)
    }

    /// Interns the sum of two handles.
    pub fn add(&mut self, a: ComplexIdx, b: ComplexIdx) -> ComplexIdx {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let v = self.value(a) + self.value(b);
        self.lookup(v)
    }

    /// Interns the quotient `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is the interned zero.
    pub fn div(&mut self, a: ComplexIdx, b: ComplexIdx) -> ComplexIdx {
        assert!(!b.is_zero(), "division by interned zero");
        if a.is_zero() {
            return C_ZERO;
        }
        if b.is_one() {
            return a;
        }
        if a == b {
            return C_ONE;
        }
        let v = self.value(a) / self.value(b);
        self.lookup(v)
    }

    /// Interns the negation of a handle.
    pub fn neg(&mut self, a: ComplexIdx) -> ComplexIdx {
        if a.is_zero() {
            return C_ZERO;
        }
        let v = -self.value(a);
        self.lookup(v)
    }

    /// Interns the complex conjugate of a handle.
    pub fn conj(&mut self, a: ComplexIdx) -> ComplexIdx {
        let v = self.value(a);
        if v.im == 0.0 {
            return a;
        }
        self.lookup(v.conj())
    }

    /// Returns `true` if the two handles denote values within tolerance.
    ///
    /// Because interning already collapses such values, this is simply
    /// handle equality — exposed as a named method for readability at call
    /// sites that check canonicity.
    #[inline]
    pub fn approx_equal(&self, a: ComplexIdx, b: ComplexIdx) -> bool {
        a == b
    }
}

impl Default for ComplexTable {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for ComplexTable {
    fn clone(&self) -> Self {
        ComplexTable {
            values: self.values.clone(),
            free: Mutex::new(self.free.lock().unwrap().clone()),
            free_count: AtomicU32::new(self.free_count.load(Ordering::Relaxed)),
            stripes: self
                .stripes
                .iter()
                .map(|s| RwLock::new(s.read().unwrap().clone()))
                .collect(),
            recent: self.recent.clone(),
            base: self.base.clone(),
            base_len: self.base_len,
            tolerance: self.tolerance,
            lookups: AtomicU64::new(self.lookups.load(Ordering::Relaxed)),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            reclaimed: AtomicU64::new(self.reclaimed.load(Ordering::Relaxed)),
            front_hits: AtomicU64::new(self.front_hits.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_zero_and_one() {
        let mut t = ComplexTable::new();
        assert_eq!(t.lookup(Complex::ZERO), C_ZERO);
        assert_eq!(t.lookup(Complex::ONE), C_ONE);
        assert_eq!(t.value(C_ZERO), Complex::ZERO);
        assert_eq!(t.value(C_ONE), Complex::ONE);
    }

    #[test]
    fn collapses_values_within_tolerance() {
        let mut t = ComplexTable::with_tolerance(1e-10);
        let a = t.lookup(Complex::new(0.3, 0.4));
        let b = t.lookup(Complex::new(0.3 + 4e-11, 0.4 - 4e-11));
        assert_eq!(a, b);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn distinguishes_values_beyond_tolerance() {
        let mut t = ComplexTable::with_tolerance(1e-10);
        let a = t.lookup(Complex::new(0.3, 0.4));
        let b = t.lookup(Complex::new(0.3 + 1e-6, 0.4));
        assert_ne!(a, b);
    }

    #[test]
    fn near_zero_and_near_one_snap_to_constants() {
        let mut t = ComplexTable::new();
        assert_eq!(t.lookup(Complex::new(1e-14, -1e-14)), C_ZERO);
        assert_eq!(t.lookup(Complex::new(1.0 + 1e-14, 1e-14)), C_ONE);
    }

    #[test]
    fn arithmetic_shortcuts() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.5, 0.5));
        assert_eq!(t.mul(a, C_ZERO), C_ZERO);
        assert_eq!(t.mul(a, C_ONE), a);
        assert_eq!(t.add(a, C_ZERO), a);
        assert_eq!(t.div(a, C_ONE), a);
        assert_eq!(t.neg(C_ZERO), C_ZERO);
    }

    #[test]
    fn mul_and_div_are_inverse() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.6, -0.8));
        let b = t.lookup(Complex::new(0.1, 0.2));
        let prod = t.mul(a, b);
        assert_eq!(t.div(prod, b), a);
    }

    #[test]
    fn conj_of_real_is_identity_handle() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.7, 0.0));
        assert_eq!(t.conj(a), a);
        let b = t.lookup(Complex::new(0.0, 0.7));
        let bc = t.conj(b);
        assert_eq!(t.value(bc), Complex::new(0.0, -0.7));
    }

    #[test]
    fn stats_track_hits() {
        let mut t = ComplexTable::new();
        let v = Complex::new(0.33, 0.44);
        t.lookup(v);
        t.lookup(v);
        let s = t.stats();
        assert_eq!(s.entries, 3);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        // Bytes: at least the value storage.
        assert!(s.approx_bytes >= 3 * std::mem::size_of::<Complex>());
        t.lookup(Complex::new(0.1, 0.9));
        let s2 = t.stats();
        assert_eq!(s2.entries, 4);
        assert!(s2.approx_bytes >= s.approx_bytes);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let mut t = ComplexTable::new();
        t.lookup(Complex::new(f64::NAN, 0.0));
    }

    #[test]
    #[should_panic(expected = "division by interned zero")]
    fn rejects_division_by_zero_handle() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.5, 0.0));
        t.div(a, C_ZERO);
    }

    #[test]
    fn boundary_values_across_grid_cells_collapse() {
        // Two values straddling a grid-cell boundary but within tolerance
        // must still collapse (exercises the neighbour probing).
        let tol = 1e-10;
        let mut t = ComplexTable::with_tolerance(tol);
        let base = 0.25 + tol * 0.49;
        let a = t.lookup(Complex::new(base, 0.5));
        let b = t.lookup(Complex::new(base + tol * 0.9, 0.5));
        assert_eq!(a, b);
    }

    #[test]
    fn index_grows_past_initial_capacity() {
        // Intern well past any initial capacity; handles must stay unique
        // and resolvable.
        let mut t = ComplexTable::new();
        let mut handles = Vec::new();
        for i in 0..2000 {
            let v = Complex::new(0.001 * i as f64 + 0.1, 0.5);
            handles.push((v, t.lookup(v)));
        }
        assert_eq!(t.len(), 2002);
        for (v, h) in handles {
            assert_eq!(t.lookup(v), h, "re-interning must return the same handle");
            assert_eq!(t.value(h), v);
        }
    }

    #[test]
    fn inline_cache_survives_table_growth() {
        let mut t = ComplexTable::new();
        let hot = Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
        let h = t.lookup(hot);
        for i in 0..500 {
            let _ = t.lookup(Complex::new(0.002 * i as f64 + 0.2, 0.7));
            assert_eq!(t.lookup(hot), h);
        }
    }

    #[test]
    fn retain_keeps_handles_stable_and_recycles_slots() {
        let mut t = ComplexTable::new();
        let keep_v = Complex::new(0.3, 0.4);
        let kept = t.lookup(keep_v);
        let dropped: Vec<ComplexIdx> = (0..100)
            .map(|i| t.lookup(Complex::new(0.01 * i as f64 + 1.5, -0.5)))
            .collect();
        let freed = t.retain_referenced(|idx| idx == kept);
        assert_eq!(freed, 100);
        assert_eq!(t.len(), 3, "0, 1 and the kept value survive");
        assert_eq!(t.stats().reclaimed, 100);
        // The kept handle still resolves and re-interning finds it.
        assert_eq!(t.value(kept), keep_v);
        assert_eq!(t.lookup(keep_v), kept);
        assert_eq!(t.lookup(Complex::ZERO), C_ZERO);
        assert_eq!(t.lookup(Complex::ONE), C_ONE);
        // Reclaimed slots are recycled before the value arena grows.
        let recycled = t.lookup(Complex::new(-0.9, 0.9));
        assert!(
            dropped.contains(&recycled),
            "new value should land in a reclaimed slot"
        );
    }

    #[test]
    fn retain_shrinks_the_probe_index() {
        let mut t = ComplexTable::new();
        for i in 0..5000 {
            let _ = t.lookup(Complex::new(0.001 * i as f64 + 0.1, 0.6));
        }
        let before = t.stats().approx_bytes;
        t.retain_referenced(|_| false);
        assert_eq!(t.len(), 2);
        assert!(
            t.stats().approx_bytes < before,
            "index should shrink back after reclamation"
        );
        // The table keeps working after a full sweep.
        let a = t.lookup(Complex::new(0.123, 0.456));
        assert_eq!(t.lookup(Complex::new(0.123, 0.456)), a);
    }

    #[test]
    fn shared_lookup_agrees_with_exclusive() {
        let mut t = ComplexTable::new();
        let vals: Vec<Complex> = (0..200)
            .map(|i| Complex::new(0.003 * i as f64 - 0.3, 0.001 * i as f64))
            .collect();
        let exclusive: Vec<ComplexIdx> = vals.iter().map(|&v| t.lookup(v)).collect();
        let mut front = FrontCache::new();
        for (v, h) in vals.iter().zip(&exclusive) {
            assert_eq!(t.lookup_shared(*v, &mut front), *h);
        }
        // Consecutive repeats of a hot value hit the caller-owned front
        // cache (direct-mapped, so only un-evicted repeats can hit).
        let hot = vals[7];
        let before = t.stats().front_hits;
        let h = t.lookup_shared(hot, &mut front);
        for _ in 0..10 {
            assert_eq!(t.lookup_shared(hot, &mut front), h);
        }
        assert!(t.stats().front_hits >= before + 10);
    }

    #[test]
    fn concurrent_shared_interning_is_canonical() {
        let t = ComplexTable::new();
        let handles: Vec<Vec<ComplexIdx>> = std::thread::scope(|s| {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let t = &t;
                    s.spawn(move || {
                        let mut front = FrontCache::new();
                        (0..500)
                            .map(|i| {
                                t.lookup_shared(
                                    Complex::new(0.002 * (i % 250) as f64 + 0.1, 0.4),
                                    &mut front,
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        // Same value interned on any thread yields the same handle.
        for w in &handles[1..] {
            assert_eq!(w, &handles[0]);
        }
        // 250 distinct values + the two constants, no duplicates.
        assert_eq!(t.len(), 252);
    }

    #[test]
    fn overlay_resolves_base_handles_and_appends_locally() {
        let mut base = ComplexTable::new();
        let hot = Complex::new(0.6, -0.2);
        let h = base.lookup(hot);
        let base = Arc::new(base);
        let mut over = ComplexTable::overlay(base.clone());
        // Base representative wins on lookup.
        assert_eq!(over.lookup(hot), h);
        assert_eq!(over.value(h), hot);
        assert_eq!(over.lookup(Complex::ZERO), C_ZERO);
        // New values get handles past the base space.
        let novel = over.lookup(Complex::new(0.11, 0.22));
        assert!(novel.index() >= base.len());
        assert_eq!(over.value(novel), Complex::new(0.11, 0.22));
        // Clearing the overlay forgets local values, keeps the base.
        over.clear_local();
        assert_eq!(over.lookup(hot), h);
        let again = over.lookup(Complex::new(0.11, 0.22));
        assert_eq!(again, novel, "slot reuse makes the re-intern deterministic");
    }

    use proptest::prelude::*;

    proptest! {
        /// Interning is idempotent and the stored value is within tolerance
        /// of the request, for arbitrary inputs.
        #[test]
        fn interning_is_idempotent(
            re in -2.0f64..2.0,
            im in -2.0f64..2.0,
        ) {
            let mut t = ComplexTable::new();
            let v = Complex::new(re, im);
            let a = t.lookup(v);
            let b = t.lookup(v);
            prop_assert_eq!(a, b);
            let stored = t.value(a);
            prop_assert!((stored.re - re).abs() <= t.tolerance());
            prop_assert!((stored.im - im).abs() <= t.tolerance());
        }

        /// Handles behave like tolerance-collapsed values: after interning a
        /// batch, re-interning each original value returns its handle, and
        /// distinct handles denote values farther apart than the tolerance.
        #[test]
        fn handles_partition_values(
            vals in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 1..100)
        ) {
            let mut t = ComplexTable::new();
            let handles: Vec<ComplexIdx> = vals
                .iter()
                .map(|&(re, im)| t.lookup(Complex::new(re, im)))
                .collect();
            for (&(re, im), &h) in vals.iter().zip(&handles) {
                prop_assert_eq!(t.lookup(Complex::new(re, im)), h);
            }
            // Distinct handles must denote distinguishable values.
            for (i, &a) in handles.iter().enumerate() {
                for &b in &handles[i + 1..] {
                    if a != b {
                        let va = t.value(a);
                        let vb = t.value(b);
                        prop_assert!(!va.approx_eq(vb, t.tolerance() * 0.5));
                    }
                }
            }
        }

        /// Exclusive and shared interning agree handle-for-handle.
        #[test]
        fn shared_path_matches_exclusive(
            vals in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 1..60)
        ) {
            let mut t = ComplexTable::new();
            let mut front = FrontCache::new();
            for &(re, im) in &vals {
                let v = Complex::new(re, im);
                let a = t.lookup(v);
                let b = t.lookup_shared(v, &mut front);
                prop_assert_eq!(a, b);
            }
        }
    }
}
