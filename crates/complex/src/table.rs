//! Tolerance-based interning of complex edge weights.
//!
//! Every edge weight occurring in a decision diagram is stored exactly once
//! in a [`ComplexTable`] and referred to by a compact [`ComplexIdx`] handle.
//! Handle equality *is* value equality (up to the table's tolerance), which
//! makes node hashing exact and decision diagrams canonical — the scheme of
//! reference \[14\] of the reproduced paper.
//!
//! Interning is the innermost loop of the whole package (every normalization
//! step interns one or more weights), so the value index is a flat
//! open-addressed table over grid cells rather than a general hash map of
//! bucket vectors: one multiply-rotate hash and a couple of array reads per
//! probe, no per-insert allocation. An inline cache in front of it answers
//! repeats of the handful of hot constants (±1/√2, phase factors, …) from
//! their exact bit patterns without touching the grid at all.

use crate::complex::Complex;
use crate::hash::FxHasher;
use crate::DEFAULT_TOLERANCE;
use std::hash::{Hash, Hasher};

/// A stable handle to an interned complex value in a [`ComplexTable`].
///
/// Two handles from the same table are equal iff they denote the same
/// (tolerance-collapsed) value; handles are meaningless across tables.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComplexIdx(u32);

/// The handle of the interned value `0`, identical in every table.
pub const C_ZERO: ComplexIdx = ComplexIdx(0);
/// The handle of the interned value `1`, identical in every table.
pub const C_ONE: ComplexIdx = ComplexIdx(1);

impl ComplexIdx {
    /// Returns the raw table slot, mainly useful for diagnostics.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is the interned zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == C_ZERO
    }

    /// Returns `true` if this is the interned one.
    #[inline]
    pub fn is_one(self) -> bool {
        self == C_ONE
    }
}

/// Aggregate statistics of a [`ComplexTable`], for diagnostics and the
/// ablation experiments.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ComplexTableStats {
    /// Number of distinct interned values.
    pub entries: usize,
    /// Total `lookup` calls.
    pub lookups: u64,
    /// Lookups answered by an existing entry.
    pub hits: u64,
    /// Approximate heap footprint of the table (value storage plus grid
    /// index), for resource diagnostics.
    pub approx_bytes: usize,
    /// Total value slots reclaimed by [`ComplexTable::retain_referenced`]
    /// over the table's lifetime.
    pub reclaimed: u64,
    /// Lookups answered by the inline front cache alone (exact bit-pattern
    /// repeats that skipped the grid probe); a subset of `hits`.
    pub front_hits: u64,
}

/// One slot of the open-addressed grid index: the cell coordinates plus the
/// value slot it points at (`EMPTY` when unoccupied).
#[derive(Copy, Clone, Debug)]
struct IndexEntry {
    cr: i64,
    ci: i64,
    slot: u32,
}

const EMPTY: u32 = u32::MAX;

impl IndexEntry {
    const VACANT: IndexEntry = IndexEntry { cr: 0, ci: 0, slot: EMPTY };
}

/// One slot of the inline front cache: exact bit patterns of a recently
/// interned value and its handle.
#[derive(Copy, Clone, Debug)]
struct RecentEntry {
    re_bits: u64,
    im_bits: u64,
    idx: u32,
}

/// Size of the inline front cache (direct-mapped on the value's bit hash).
const RECENT_SLOTS: usize = 8;

/// Initial grid-index capacity (power of two).
const INITIAL_INDEX_CAP: usize = 256;

#[inline]
fn cell_hash(cr: i64, ci: i64) -> usize {
    let mut h = FxHasher::default();
    (cr, ci).hash(&mut h);
    h.finish() as usize
}

/// An interning table for complex numbers with tolerance-bucketed lookup.
///
/// Values are quantized onto a grid of cell size equal to the tolerance;
/// a lookup probes the value's cell and the eight neighbouring cells, so any
/// stored value within the tolerance ball is found. Because the cell size
/// equals the tolerance, two values quantizing to the same cell always
/// collapse, so each cell indexes at most one value. Slots `0` and `1` are
/// pre-seeded with the constants `0` and `1` ([`C_ZERO`], [`C_ONE`]).
///
/// # Examples
///
/// ```
/// use qdd_complex::{Complex, ComplexTable, C_ONE, C_ZERO};
///
/// let mut t = ComplexTable::new();
/// assert_eq!(t.lookup(Complex::ZERO), C_ZERO);
/// assert_eq!(t.lookup(Complex::ONE), C_ONE);
/// let a = t.lookup(Complex::new(0.25, 0.75));
/// assert_eq!(t.lookup(Complex::new(0.25, 0.75)), a);
/// ```
#[derive(Clone, Debug)]
pub struct ComplexTable {
    values: Vec<Complex>,
    /// Home cell of each value, parallel to `values` (for index rebuilds).
    cells: Vec<(i64, i64)>,
    /// Liveness of each value slot, parallel to `values`. Slots are killed
    /// only by [`Self::retain_referenced`] and reused by later insertions,
    /// so live handles stay stable across reclamation.
    live: Vec<bool>,
    /// Dead value slots available for reuse.
    free: Vec<u32>,
    /// Open-addressed (linear probing) grid index; capacity is a power of
    /// two, grown at ~70% load.
    index: Vec<IndexEntry>,
    recent: [RecentEntry; RECENT_SLOTS],
    tolerance: f64,
    lookups: u64,
    hits: u64,
    reclaimed: u64,
    front_hits: u64,
}

impl ComplexTable {
    /// Creates a table with the [`DEFAULT_TOLERANCE`].
    pub fn new() -> Self {
        Self::with_tolerance(DEFAULT_TOLERANCE)
    }

    /// Creates a table collapsing values within `tolerance` of each other.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not finite and positive.
    pub fn with_tolerance(tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance > 0.0,
            "tolerance must be finite and positive"
        );
        let mut table = ComplexTable {
            values: Vec::with_capacity(64),
            cells: Vec::with_capacity(64),
            live: Vec::with_capacity(64),
            free: Vec::new(),
            index: vec![IndexEntry::VACANT; INITIAL_INDEX_CAP],
            recent: [RecentEntry { re_bits: 0, im_bits: 0, idx: EMPTY }; RECENT_SLOTS],
            tolerance,
            lookups: 0,
            hits: 0,
            reclaimed: 0,
            front_hits: 0,
        };
        // Seed the two ubiquitous constants at fixed slots.
        let zero = table.insert(Complex::ZERO);
        let one = table.insert(Complex::ONE);
        debug_assert_eq!(zero, C_ZERO);
        debug_assert_eq!(one, C_ONE);
        table
    }

    /// The interning tolerance.
    #[inline]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The number of distinct live interned values.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len() - self.free.len()
    }

    /// Returns `true` if the table holds only the seeded constants.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() <= 2
    }

    /// Current statistics snapshot (constant time).
    pub fn stats(&self) -> ComplexTableStats {
        ComplexTableStats {
            entries: self.len(),
            lookups: self.lookups,
            hits: self.hits,
            approx_bytes: self.values.capacity() * std::mem::size_of::<Complex>()
                + self.cells.capacity() * std::mem::size_of::<(i64, i64)>()
                + self.index.capacity() * std::mem::size_of::<IndexEntry>(),
            reclaimed: self.reclaimed,
            front_hits: self.front_hits,
        }
    }

    /// Returns the value behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `idx` did not come from this table.
    #[inline]
    pub fn value(&self, idx: ComplexIdx) -> Complex {
        self.values[idx.0 as usize]
    }

    fn cell(&self, v: Complex) -> (i64, i64) {
        (
            (v.re / self.tolerance).round() as i64,
            (v.im / self.tolerance).round() as i64,
        )
    }

    /// Walks the probe chain of `(cr, ci)` and returns the slot of a stored
    /// value in that cell matching `v` within tolerance, if any.
    #[inline]
    fn find_in_cell(&self, cr: i64, ci: i64, v: Complex) -> Option<u32> {
        let mask = self.index.len() - 1;
        let mut i = cell_hash(cr, ci) & mask;
        loop {
            let e = self.index[i];
            if e.slot == EMPTY {
                return None;
            }
            if e.cr == cr
                && e.ci == ci
                && self.values[e.slot as usize].approx_eq(v, self.tolerance)
            {
                return Some(e.slot);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `slot` under `(cr, ci)` into the grid index (linear probing).
    fn index_insert(index: &mut [IndexEntry], cr: i64, ci: i64, slot: u32) {
        let mask = index.len() - 1;
        let mut i = cell_hash(cr, ci) & mask;
        while index[i].slot != EMPTY {
            i = (i + 1) & mask;
        }
        index[i] = IndexEntry { cr, ci, slot };
    }

    fn insert(&mut self, v: Complex) -> ComplexIdx {
        // Grow before the load factor would degrade probing (index length
        // is a power of two; grow at ~70%).
        if (self.len() + 1) * 10 >= self.index.len() * 7 {
            let mut bigger = vec![IndexEntry::VACANT; self.index.len() * 2];
            for (slot, &(cr, ci)) in self.cells.iter().enumerate() {
                if self.live[slot] {
                    Self::index_insert(&mut bigger, cr, ci, slot as u32);
                }
            }
            self.index = bigger;
        }
        let (cr, ci) = self.cell(v);
        let idx = match self.free.pop() {
            Some(slot) => {
                self.values[slot as usize] = v;
                self.cells[slot as usize] = (cr, ci);
                self.live[slot as usize] = true;
                slot
            }
            None => {
                let slot = self.values.len() as u32;
                self.values.push(v);
                self.cells.push((cr, ci));
                self.live.push(true);
                slot
            }
        };
        Self::index_insert(&mut self.index, cr, ci, idx);
        ComplexIdx(idx)
    }

    /// Reclaims every interned value whose handle fails `keep`, except the
    /// seeded constants `0` and `1`.
    ///
    /// Kept handles stay valid and keep denoting bit-identical values;
    /// reclaimed slots are recycled by later insertions. The grid index is
    /// rebuilt over the survivors (shrinking it back towards
    /// cache-resident size) and the inline front cache is flushed, since it
    /// may remember reclaimed handles.
    ///
    /// This is the complex-table half of garbage collection: a long run
    /// interns a fresh set of amplitudes per applied gate, and without
    /// reclamation the probe index grows until every lookup is a cache
    /// miss. The caller supplies liveness (weights referenced by live DD
    /// nodes and registered roots). Returns the number of slots reclaimed.
    pub fn retain_referenced(&mut self, keep: impl Fn(ComplexIdx) -> bool) -> usize {
        let mut freed = 0usize;
        for slot in 2..self.values.len() {
            if self.live[slot] && !keep(ComplexIdx(slot as u32)) {
                self.live[slot] = false;
                self.free.push(slot as u32);
                freed += 1;
            }
        }
        self.reclaimed += freed as u64;
        // Rebuild the index sized for the survivors at < 70% load.
        let mut cap = INITIAL_INDEX_CAP;
        while (self.len() + 1) * 10 >= cap * 7 {
            cap *= 2;
        }
        let mut index = vec![IndexEntry::VACANT; cap];
        for (slot, &(cr, ci)) in self.cells.iter().enumerate() {
            if self.live[slot] {
                Self::index_insert(&mut index, cr, ci, slot as u32);
            }
        }
        self.index = index;
        self.recent = [RecentEntry { re_bits: 0, im_bits: 0, idx: EMPTY }; RECENT_SLOTS];
        freed
    }

    /// Interns `v`, returning the handle of an existing value within
    /// tolerance if there is one.
    ///
    /// # Panics
    ///
    /// Panics if `v` has a NaN or infinite component — such weights indicate
    /// a bug upstream (e.g. normalizing an all-zero node) and must never be
    /// interned.
    pub fn lookup(&mut self, v: Complex) -> ComplexIdx {
        assert!(
            !v.is_non_finite(),
            "cannot intern non-finite complex value {v:?}"
        );
        self.lookups += 1;
        // Fast paths for the seeded constants.
        if v.is_zero(self.tolerance) {
            self.hits += 1;
            return C_ZERO;
        }
        if v.is_one(self.tolerance) {
            self.hits += 1;
            return C_ONE;
        }
        // Inline front cache: repeats of a hot value (exact bit pattern)
        // skip the grid probe entirely. Interning is deterministic and the
        // cache is flushed whenever entries are reclaimed, so a remembered
        // handle stays correct.
        let (re_bits, im_bits) = (v.re.to_bits(), v.im.to_bits());
        let rslot = (re_bits ^ im_bits.rotate_left(32)) as usize % RECENT_SLOTS;
        let r = self.recent[rslot];
        if r.idx != EMPTY && r.re_bits == re_bits && r.im_bits == im_bits {
            self.hits += 1;
            self.front_hits += 1;
            return ComplexIdx(r.idx);
        }

        let (cr, ci) = self.cell(v);
        // Probe the home cell and its eight neighbours in a fixed scan
        // order. The order is load-bearing: which in-tolerance
        // representative wins determines how drifting intermediate values
        // snap back, and a different preference lets near-tolerance noise
        // fragment diagrams (see `grover_16_stays_compact`).
        let mut found = None;
        // Saturating adds: astronomically large values (overflow products of
        // degenerate inputs) quantize to the clamped edge cells instead of
        // wrapping the cell coordinate space.
        'probe: for dr in -1..=1i64 {
            for di in -1..=1i64 {
                if let Some(slot) = self.find_in_cell(cr.saturating_add(dr), ci.saturating_add(di), v) {
                    found = Some(slot);
                    break 'probe;
                }
            }
        }
        let idx = match found {
            Some(slot) => {
                self.hits += 1;
                ComplexIdx(slot)
            }
            None => self.insert(v),
        };
        self.recent[rslot] = RecentEntry { re_bits, im_bits, idx: idx.0 };
        idx
    }

    /// Interns the product of two handles.
    pub fn mul(&mut self, a: ComplexIdx, b: ComplexIdx) -> ComplexIdx {
        if a.is_zero() || b.is_zero() {
            return C_ZERO;
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        let v = self.value(a) * self.value(b);
        self.lookup(v)
    }

    /// Interns the sum of two handles.
    pub fn add(&mut self, a: ComplexIdx, b: ComplexIdx) -> ComplexIdx {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let v = self.value(a) + self.value(b);
        self.lookup(v)
    }

    /// Interns the quotient `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is the interned zero.
    pub fn div(&mut self, a: ComplexIdx, b: ComplexIdx) -> ComplexIdx {
        assert!(!b.is_zero(), "division by interned zero");
        if a.is_zero() {
            return C_ZERO;
        }
        if b.is_one() {
            return a;
        }
        if a == b {
            return C_ONE;
        }
        let v = self.value(a) / self.value(b);
        self.lookup(v)
    }

    /// Interns the negation of a handle.
    pub fn neg(&mut self, a: ComplexIdx) -> ComplexIdx {
        if a.is_zero() {
            return C_ZERO;
        }
        let v = -self.value(a);
        self.lookup(v)
    }

    /// Interns the complex conjugate of a handle.
    pub fn conj(&mut self, a: ComplexIdx) -> ComplexIdx {
        let v = self.value(a);
        if v.im == 0.0 {
            return a;
        }
        self.lookup(v.conj())
    }

    /// Returns `true` if the two handles denote values within tolerance.
    ///
    /// Because interning already collapses such values, this is simply
    /// handle equality — exposed as a named method for readability at call
    /// sites that check canonicity.
    #[inline]
    pub fn approx_equal(&self, a: ComplexIdx, b: ComplexIdx) -> bool {
        a == b
    }
}

impl Default for ComplexTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_zero_and_one() {
        let mut t = ComplexTable::new();
        assert_eq!(t.lookup(Complex::ZERO), C_ZERO);
        assert_eq!(t.lookup(Complex::ONE), C_ONE);
        assert_eq!(t.value(C_ZERO), Complex::ZERO);
        assert_eq!(t.value(C_ONE), Complex::ONE);
    }

    #[test]
    fn collapses_values_within_tolerance() {
        let mut t = ComplexTable::with_tolerance(1e-10);
        let a = t.lookup(Complex::new(0.3, 0.4));
        let b = t.lookup(Complex::new(0.3 + 4e-11, 0.4 - 4e-11));
        assert_eq!(a, b);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn distinguishes_values_beyond_tolerance() {
        let mut t = ComplexTable::with_tolerance(1e-10);
        let a = t.lookup(Complex::new(0.3, 0.4));
        let b = t.lookup(Complex::new(0.3 + 1e-6, 0.4));
        assert_ne!(a, b);
    }

    #[test]
    fn near_zero_and_near_one_snap_to_constants() {
        let mut t = ComplexTable::new();
        assert_eq!(t.lookup(Complex::new(1e-14, -1e-14)), C_ZERO);
        assert_eq!(t.lookup(Complex::new(1.0 + 1e-14, 1e-14)), C_ONE);
    }

    #[test]
    fn arithmetic_shortcuts() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.5, 0.5));
        assert_eq!(t.mul(a, C_ZERO), C_ZERO);
        assert_eq!(t.mul(a, C_ONE), a);
        assert_eq!(t.add(a, C_ZERO), a);
        assert_eq!(t.div(a, C_ONE), a);
        assert_eq!(t.neg(C_ZERO), C_ZERO);
    }

    #[test]
    fn mul_and_div_are_inverse() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.6, -0.8));
        let b = t.lookup(Complex::new(0.1, 0.2));
        let prod = t.mul(a, b);
        assert_eq!(t.div(prod, b), a);
    }

    #[test]
    fn conj_of_real_is_identity_handle() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.7, 0.0));
        assert_eq!(t.conj(a), a);
        let b = t.lookup(Complex::new(0.0, 0.7));
        let bc = t.conj(b);
        assert_eq!(t.value(bc), Complex::new(0.0, -0.7));
    }

    #[test]
    fn stats_track_hits() {
        let mut t = ComplexTable::new();
        let v = Complex::new(0.33, 0.44);
        t.lookup(v);
        t.lookup(v);
        let s = t.stats();
        assert_eq!(s.entries, 3);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        // Bytes: at least the value storage; capacity-based, so it never
        // shrinks as entries are added.
        assert!(s.approx_bytes >= 3 * std::mem::size_of::<Complex>());
        t.lookup(Complex::new(0.1, 0.9));
        let s2 = t.stats();
        assert_eq!(s2.entries, 4);
        assert!(s2.approx_bytes >= s.approx_bytes);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let mut t = ComplexTable::new();
        t.lookup(Complex::new(f64::NAN, 0.0));
    }

    #[test]
    #[should_panic(expected = "division by interned zero")]
    fn rejects_division_by_zero_handle() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.5, 0.0));
        t.div(a, C_ZERO);
    }

    #[test]
    fn boundary_values_across_grid_cells_collapse() {
        // Two values straddling a grid-cell boundary but within tolerance
        // must still collapse (exercises the neighbour probing).
        let tol = 1e-10;
        let mut t = ComplexTable::with_tolerance(tol);
        let base = 0.25 + tol * 0.49;
        let a = t.lookup(Complex::new(base, 0.5));
        let b = t.lookup(Complex::new(base + tol * 0.9, 0.5));
        assert_eq!(a, b);
    }

    #[test]
    fn index_grows_past_initial_capacity() {
        // Intern well past the initial grid-index capacity; handles must
        // stay unique and resolvable.
        let mut t = ComplexTable::new();
        let mut handles = Vec::new();
        for i in 0..2000 {
            let v = Complex::new(0.001 * i as f64 + 0.1, 0.5);
            handles.push((v, t.lookup(v)));
        }
        assert_eq!(t.len(), 2002);
        for (v, h) in handles {
            assert_eq!(t.lookup(v), h, "re-interning must return the same handle");
            assert_eq!(t.value(h), v);
        }
    }

    #[test]
    fn inline_cache_survives_table_growth() {
        let mut t = ComplexTable::new();
        let hot = Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
        let h = t.lookup(hot);
        for i in 0..500 {
            let _ = t.lookup(Complex::new(0.002 * i as f64 + 0.2, 0.7));
            assert_eq!(t.lookup(hot), h);
        }
    }

    #[test]
    fn retain_keeps_handles_stable_and_recycles_slots() {
        let mut t = ComplexTable::new();
        let keep_v = Complex::new(0.3, 0.4);
        let kept = t.lookup(keep_v);
        let dropped: Vec<ComplexIdx> = (0..100)
            .map(|i| t.lookup(Complex::new(0.01 * i as f64 + 1.5, -0.5)))
            .collect();
        let freed = t.retain_referenced(|idx| idx == kept);
        assert_eq!(freed, 100);
        assert_eq!(t.len(), 3, "0, 1 and the kept value survive");
        assert_eq!(t.stats().reclaimed, 100);
        // The kept handle still resolves and re-interning finds it.
        assert_eq!(t.value(kept), keep_v);
        assert_eq!(t.lookup(keep_v), kept);
        assert_eq!(t.lookup(Complex::ZERO), C_ZERO);
        assert_eq!(t.lookup(Complex::ONE), C_ONE);
        // Reclaimed slots are recycled before the value vec grows.
        let recycled = t.lookup(Complex::new(-0.9, 0.9));
        assert!(
            dropped.contains(&recycled),
            "new value should land in a reclaimed slot"
        );
    }

    #[test]
    fn retain_shrinks_the_probe_index() {
        let mut t = ComplexTable::new();
        for i in 0..5000 {
            let _ = t.lookup(Complex::new(0.001 * i as f64 + 0.1, 0.6));
        }
        let before = t.stats().approx_bytes;
        t.retain_referenced(|_| false);
        assert_eq!(t.len(), 2);
        assert!(
            t.stats().approx_bytes < before,
            "index should shrink back after reclamation"
        );
        // The table keeps working after a full sweep.
        let a = t.lookup(Complex::new(0.123, 0.456));
        assert_eq!(t.lookup(Complex::new(0.123, 0.456)), a);
    }

    use proptest::prelude::*;

    proptest! {
        /// Interning is idempotent and the stored value is within tolerance
        /// of the request, for arbitrary inputs.
        #[test]
        fn interning_is_idempotent(
            re in -2.0f64..2.0,
            im in -2.0f64..2.0,
        ) {
            let mut t = ComplexTable::new();
            let v = Complex::new(re, im);
            let a = t.lookup(v);
            let b = t.lookup(v);
            prop_assert_eq!(a, b);
            let stored = t.value(a);
            prop_assert!((stored.re - re).abs() <= t.tolerance());
            prop_assert!((stored.im - im).abs() <= t.tolerance());
        }

        /// Handles behave like tolerance-collapsed values: after interning a
        /// batch, re-interning each original value returns its handle, and
        /// distinct handles denote values farther apart than the tolerance.
        #[test]
        fn handles_partition_values(
            vals in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 1..100)
        ) {
            let mut t = ComplexTable::new();
            let handles: Vec<ComplexIdx> = vals
                .iter()
                .map(|&(re, im)| t.lookup(Complex::new(re, im)))
                .collect();
            for (&(re, im), &h) in vals.iter().zip(&handles) {
                prop_assert_eq!(t.lookup(Complex::new(re, im)), h);
            }
            // Distinct handles must denote distinguishable values.
            for (i, &a) in handles.iter().enumerate() {
                for &b in &handles[i + 1..] {
                    if a != b {
                        let va = t.value(a);
                        let vb = t.value(b);
                        prop_assert!(!va.approx_eq(vb, t.tolerance() * 0.5));
                    }
                }
            }
        }
    }
}
