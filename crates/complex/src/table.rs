//! Tolerance-based interning of complex edge weights.
//!
//! Every edge weight occurring in a decision diagram is stored exactly once
//! in a [`ComplexTable`] and referred to by a compact [`ComplexIdx`] handle.
//! Handle equality *is* value equality (up to the table's tolerance), which
//! makes node hashing exact and decision diagrams canonical — the scheme of
//! reference \[14\] of the reproduced paper.

use crate::complex::Complex;
use crate::hash::FxHashMap;
use crate::DEFAULT_TOLERANCE;

/// A stable handle to an interned complex value in a [`ComplexTable`].
///
/// Two handles from the same table are equal iff they denote the same
/// (tolerance-collapsed) value; handles are meaningless across tables.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComplexIdx(u32);

/// The handle of the interned value `0`, identical in every table.
pub const C_ZERO: ComplexIdx = ComplexIdx(0);
/// The handle of the interned value `1`, identical in every table.
pub const C_ONE: ComplexIdx = ComplexIdx(1);

impl ComplexIdx {
    /// Returns the raw table slot, mainly useful for diagnostics.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is the interned zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == C_ZERO
    }

    /// Returns `true` if this is the interned one.
    #[inline]
    pub fn is_one(self) -> bool {
        self == C_ONE
    }
}

/// Aggregate statistics of a [`ComplexTable`], for diagnostics and the
/// ablation experiments.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ComplexTableStats {
    /// Number of distinct interned values.
    pub entries: usize,
    /// Total `lookup` calls.
    pub lookups: u64,
    /// Lookups answered by an existing entry.
    pub hits: u64,
    /// Approximate heap footprint of the table (value storage plus bucket
    /// index), for resource diagnostics.
    pub approx_bytes: usize,
}

/// An interning table for complex numbers with tolerance-bucketed lookup.
///
/// Values are quantized onto a grid of cell size equal to the tolerance;
/// a lookup probes the value's cell and the eight neighbouring cells, so any
/// stored value within the tolerance ball is found. Slots `0` and `1` are
/// pre-seeded with the constants `0` and `1` ([`C_ZERO`], [`C_ONE`]).
///
/// # Examples
///
/// ```
/// use qdd_complex::{Complex, ComplexTable, C_ONE, C_ZERO};
///
/// let mut t = ComplexTable::new();
/// assert_eq!(t.lookup(Complex::ZERO), C_ZERO);
/// assert_eq!(t.lookup(Complex::ONE), C_ONE);
/// let a = t.lookup(Complex::new(0.25, 0.75));
/// assert_eq!(t.lookup(Complex::new(0.25, 0.75)), a);
/// ```
#[derive(Clone, Debug)]
pub struct ComplexTable {
    values: Vec<Complex>,
    buckets: FxHashMap<(i64, i64), Vec<u32>>,
    tolerance: f64,
    lookups: u64,
    hits: u64,
}

impl ComplexTable {
    /// Creates a table with the [`DEFAULT_TOLERANCE`].
    pub fn new() -> Self {
        Self::with_tolerance(DEFAULT_TOLERANCE)
    }

    /// Creates a table collapsing values within `tolerance` of each other.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not finite and positive.
    pub fn with_tolerance(tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance > 0.0,
            "tolerance must be finite and positive"
        );
        let mut table = ComplexTable {
            values: Vec::with_capacity(64),
            buckets: FxHashMap::default(),
            tolerance,
            lookups: 0,
            hits: 0,
        };
        // Seed the two ubiquitous constants at fixed slots.
        let zero = table.insert(Complex::ZERO);
        let one = table.insert(Complex::ONE);
        debug_assert_eq!(zero, C_ZERO);
        debug_assert_eq!(one, C_ONE);
        table
    }

    /// The interning tolerance.
    #[inline]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The number of distinct interned values.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the table holds only the seeded constants.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.len() <= 2
    }

    /// Current statistics snapshot. The byte estimate walks the bucket
    /// index, so this is O(entries) — call it for diagnostics, not in hot
    /// loops.
    pub fn stats(&self) -> ComplexTableStats {
        let bucket_bytes: usize = self
            .buckets
            .values()
            .map(|b| b.capacity() * std::mem::size_of::<u32>())
            .sum::<usize>()
            + self.buckets.len()
                * std::mem::size_of::<((i64, i64), Vec<u32>)>();
        ComplexTableStats {
            entries: self.values.len(),
            lookups: self.lookups,
            hits: self.hits,
            approx_bytes: self.values.capacity() * std::mem::size_of::<Complex>() + bucket_bytes,
        }
    }

    /// Returns the value behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `idx` did not come from this table.
    #[inline]
    pub fn value(&self, idx: ComplexIdx) -> Complex {
        self.values[idx.0 as usize]
    }

    fn cell(&self, v: Complex) -> (i64, i64) {
        (
            (v.re / self.tolerance).round() as i64,
            (v.im / self.tolerance).round() as i64,
        )
    }

    fn insert(&mut self, v: Complex) -> ComplexIdx {
        let idx = self.values.len() as u32;
        self.values.push(v);
        let cell = self.cell(v);
        self.buckets.entry(cell).or_default().push(idx);
        ComplexIdx(idx)
    }

    /// Interns `v`, returning the handle of an existing value within
    /// tolerance if there is one.
    ///
    /// # Panics
    ///
    /// Panics if `v` has a NaN or infinite component — such weights indicate
    /// a bug upstream (e.g. normalizing an all-zero node) and must never be
    /// interned.
    pub fn lookup(&mut self, v: Complex) -> ComplexIdx {
        assert!(
            !v.is_non_finite(),
            "cannot intern non-finite complex value {v:?}"
        );
        self.lookups += 1;
        // Fast paths for the seeded constants.
        if v.is_zero(self.tolerance) {
            self.hits += 1;
            return C_ZERO;
        }
        if v.is_one(self.tolerance) {
            self.hits += 1;
            return C_ONE;
        }
        let (cr, ci) = self.cell(v);
        for dr in -1..=1 {
            for di in -1..=1 {
                if let Some(bucket) = self.buckets.get(&(cr + dr, ci + di)) {
                    for &slot in bucket {
                        if self.values[slot as usize].approx_eq(v, self.tolerance) {
                            self.hits += 1;
                            return ComplexIdx(slot);
                        }
                    }
                }
            }
        }
        self.insert(v)
    }

    /// Interns the product of two handles.
    pub fn mul(&mut self, a: ComplexIdx, b: ComplexIdx) -> ComplexIdx {
        if a.is_zero() || b.is_zero() {
            return C_ZERO;
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        let v = self.value(a) * self.value(b);
        self.lookup(v)
    }

    /// Interns the sum of two handles.
    pub fn add(&mut self, a: ComplexIdx, b: ComplexIdx) -> ComplexIdx {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let v = self.value(a) + self.value(b);
        self.lookup(v)
    }

    /// Interns the quotient `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is the interned zero.
    pub fn div(&mut self, a: ComplexIdx, b: ComplexIdx) -> ComplexIdx {
        assert!(!b.is_zero(), "division by interned zero");
        if a.is_zero() {
            return C_ZERO;
        }
        if b.is_one() {
            return a;
        }
        let v = self.value(a) / self.value(b);
        self.lookup(v)
    }

    /// Interns the negation of a handle.
    pub fn neg(&mut self, a: ComplexIdx) -> ComplexIdx {
        if a.is_zero() {
            return C_ZERO;
        }
        let v = -self.value(a);
        self.lookup(v)
    }

    /// Interns the complex conjugate of a handle.
    pub fn conj(&mut self, a: ComplexIdx) -> ComplexIdx {
        let v = self.value(a);
        if v.im == 0.0 {
            return a;
        }
        self.lookup(v.conj())
    }

    /// Returns `true` if the two handles denote values within tolerance.
    ///
    /// Because interning already collapses such values, this is simply
    /// handle equality — exposed as a named method for readability at call
    /// sites that check canonicity.
    #[inline]
    pub fn approx_equal(&self, a: ComplexIdx, b: ComplexIdx) -> bool {
        a == b
    }
}

impl Default for ComplexTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_zero_and_one() {
        let mut t = ComplexTable::new();
        assert_eq!(t.lookup(Complex::ZERO), C_ZERO);
        assert_eq!(t.lookup(Complex::ONE), C_ONE);
        assert_eq!(t.value(C_ZERO), Complex::ZERO);
        assert_eq!(t.value(C_ONE), Complex::ONE);
    }

    #[test]
    fn collapses_values_within_tolerance() {
        let mut t = ComplexTable::with_tolerance(1e-10);
        let a = t.lookup(Complex::new(0.3, 0.4));
        let b = t.lookup(Complex::new(0.3 + 4e-11, 0.4 - 4e-11));
        assert_eq!(a, b);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn distinguishes_values_beyond_tolerance() {
        let mut t = ComplexTable::with_tolerance(1e-10);
        let a = t.lookup(Complex::new(0.3, 0.4));
        let b = t.lookup(Complex::new(0.3 + 1e-6, 0.4));
        assert_ne!(a, b);
    }

    #[test]
    fn near_zero_and_near_one_snap_to_constants() {
        let mut t = ComplexTable::new();
        assert_eq!(t.lookup(Complex::new(1e-14, -1e-14)), C_ZERO);
        assert_eq!(t.lookup(Complex::new(1.0 + 1e-14, 1e-14)), C_ONE);
    }

    #[test]
    fn arithmetic_shortcuts() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.5, 0.5));
        assert_eq!(t.mul(a, C_ZERO), C_ZERO);
        assert_eq!(t.mul(a, C_ONE), a);
        assert_eq!(t.add(a, C_ZERO), a);
        assert_eq!(t.div(a, C_ONE), a);
        assert_eq!(t.neg(C_ZERO), C_ZERO);
    }

    #[test]
    fn mul_and_div_are_inverse() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.6, -0.8));
        let b = t.lookup(Complex::new(0.1, 0.2));
        let prod = t.mul(a, b);
        assert_eq!(t.div(prod, b), a);
    }

    #[test]
    fn conj_of_real_is_identity_handle() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.7, 0.0));
        assert_eq!(t.conj(a), a);
        let b = t.lookup(Complex::new(0.0, 0.7));
        let bc = t.conj(b);
        assert_eq!(t.value(bc), Complex::new(0.0, -0.7));
    }

    #[test]
    fn stats_track_hits() {
        let mut t = ComplexTable::new();
        let v = Complex::new(0.33, 0.44);
        t.lookup(v);
        t.lookup(v);
        let s = t.stats();
        assert_eq!(s.entries, 3);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        // Bytes: at least the value storage, and growing with entries.
        assert!(s.approx_bytes >= 3 * std::mem::size_of::<Complex>());
        t.lookup(Complex::new(0.1, 0.9));
        assert!(t.stats().approx_bytes > s.approx_bytes || t.stats().entries == s.entries);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let mut t = ComplexTable::new();
        t.lookup(Complex::new(f64::NAN, 0.0));
    }

    #[test]
    #[should_panic(expected = "division by interned zero")]
    fn rejects_division_by_zero_handle() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.5, 0.0));
        t.div(a, C_ZERO);
    }

    #[test]
    fn boundary_values_across_grid_cells_collapse() {
        // Two values straddling a grid-cell boundary but within tolerance
        // must still collapse (exercises the neighbour probing).
        let tol = 1e-10;
        let mut t = ComplexTable::with_tolerance(tol);
        let base = 0.25 + tol * 0.49;
        let a = t.lookup(Complex::new(base, 0.5));
        let b = t.lookup(Complex::new(base + tol * 0.9, 0.5));
        assert_eq!(a, b);
    }
}
