//! A segmented slot arena with lock-free reads and append-friendly shared
//! writes — the storage primitive behind the concurrent complex table and
//! node stores.
//!
//! The classic obstacle to sharing an interning table or node arena across
//! threads is `Vec` reallocation: a concurrent reader holding `&T` into the
//! old buffer is undefined behaviour the moment another thread grows the
//! vector. A [`SlotVec`] never moves a slot once created: storage is a spine
//! of doubling segments (1024, 1024, 2048, 4096, … slots), each allocated at
//! most once behind a [`OnceLock`], and each slot is itself a `OnceLock<T>`.
//! The result:
//!
//! * `get` is lock-free and returns a plain `&T` that stays valid for the
//!   borrow's lifetime regardless of concurrent appends;
//! * `set` publishes a slot through `OnceLock::set`, so readers observe
//!   fully-initialized values (release/acquire ordering is the lock's);
//! * slots are reclaimed only under `&mut self` ([`SlotVec::take`]) — the
//!   stop-the-world epoch that garbage collection already is — after which
//!   the emptied `OnceLock` can be re-`set` from any thread, giving
//!   handle-stable slot reuse.
//!
//! Capacity never shrinks; `clear` (also `&mut`) resets the arena for
//! overlay reuse without deallocating the spine.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// log2 of the first segment's slot count.
const SEG0_BITS: u32 = 10;
/// Number of spine entries: segment 0 holds `2^SEG0_BITS` slots, segment
/// `k ≥ 1` holds `2^(SEG0_BITS + k - 1)`, so 23 segments address the full
/// `u32` slot space.
const NSEGS: usize = (32 - SEG0_BITS) as usize + 1;

/// Maps a slot index to `(segment, offset, segment_len)`.
#[inline]
fn locate(i: u32) -> (usize, usize, usize) {
    if i < (1 << SEG0_BITS) {
        (0, i as usize, 1 << SEG0_BITS)
    } else {
        let top = 31 - i.leading_zeros(); // >= SEG0_BITS
        let seg = (top - SEG0_BITS + 1) as usize;
        let start = 1u32 << top;
        ((seg), (i - start) as usize, start as usize)
    }
}

/// One lazily-published segment: a boxed run of `OnceLock` slots.
type Segment<T> = OnceLock<Box<[OnceLock<T>]>>;

/// A segmented arena of `OnceLock` slots (see the module docs).
pub struct SlotVec<T> {
    segs: Box<[Segment<T>]>,
    /// High-water mark of claimed slots (not necessarily all `set` yet).
    len: AtomicU32,
}

impl<T> SlotVec<T> {
    /// Creates an empty arena (no segments allocated).
    pub fn new() -> Self {
        SlotVec {
            segs: (0..NSEGS).map(|_| OnceLock::new()).collect(),
            len: AtomicU32::new(0),
        }
    }

    /// Number of claimed slots (present or emptied).
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) as usize
    }

    /// Returns `true` if no slot was ever claimed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn segment(&self, seg: usize, seg_len: usize) -> &[OnceLock<T>] {
        self.segs[seg].get_or_init(|| (0..seg_len).map(|_| OnceLock::new()).collect())
    }

    /// Lock-free read of slot `i`; `None` for never-set or taken slots.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        debug_assert!(i < u32::MAX as usize);
        if i >= self.len() {
            return None;
        }
        let (seg, off, _) = locate(i as u32);
        self.segs[seg].get()?.get(off)?.get()
    }

    /// Like [`Self::get`] but panics on an empty slot.
    #[inline]
    pub fn get_expect(&self, i: usize) -> &T {
        self.get(i).expect("access to an empty arena slot")
    }

    /// Claims a fresh slot index at the end of the arena. The caller must
    /// [`Self::set`] it before publishing the index to other readers.
    #[inline]
    pub fn claim(&self) -> u32 {
        let i = self.len.fetch_add(1, Ordering::AcqRel);
        assert!(i < u32::MAX, "slot arena exhausted");
        i
    }

    /// Fills slot `i` (previously [`Self::claim`]ed or [`Self::take`]n).
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied.
    pub fn set(&self, i: u32, value: T) {
        let (seg, off, seg_len) = locate(i);
        let slot = &self.segment(seg, seg_len)[off];
        if slot.set(value).is_err() {
            panic!("slot {i} set twice without an intervening take");
        }
    }

    /// Exclusive access to slot `i`.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        if i >= self.len() {
            return None;
        }
        let (seg, off, _) = locate(i as u32);
        self.segs[seg].get_mut()?.get_mut(off)?.get_mut()
    }

    /// Empties slot `i`, returning its value. Requires `&mut self`: slot
    /// reclamation is a stop-the-world operation by design.
    pub fn take(&mut self, i: usize) -> Option<T> {
        if i >= self.len() {
            return None;
        }
        let (seg, off, _) = locate(i as u32);
        self.segs[seg].get_mut()?.get_mut(off)?.take()
    }

    /// Empties every slot and resets the length; keeps segment storage.
    pub fn clear(&mut self) {
        let len = *self.len.get_mut() as usize;
        for i in 0..len {
            let (seg, off, _) = locate(i as u32);
            if let Some(s) = self.segs[seg].get_mut() {
                s[off].take();
            }
        }
        *self.len.get_mut() = 0;
    }

    /// Iterates `(index, &value)` over present slots, in index order.
    pub fn iter_present(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        (0..self.len()).filter_map(move |i| self.get(i).map(|v| (i, v)))
    }
}

impl<T> Default for SlotVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Clone for SlotVec<T> {
    fn clone(&self) -> Self {
        let out = SlotVec::new();
        out.len.store(self.len() as u32, Ordering::Release);
        for (i, v) in self.iter_present() {
            out.set(i as u32, v.clone());
        }
        out
    }
}

impl<T: fmt::Debug> fmt::Debug for SlotVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotVec").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_covers_doubling_segments() {
        assert_eq!(locate(0), (0, 0, 1024));
        assert_eq!(locate(1023), (0, 1023, 1024));
        assert_eq!(locate(1024), (1, 0, 1024));
        assert_eq!(locate(2047), (1, 1023, 1024));
        assert_eq!(locate(2048), (2, 0, 2048));
        assert_eq!(locate(4095), (2, 2047, 2048));
        assert_eq!(locate(4096), (3, 0, 4096));
        assert_eq!(locate(u32::MAX - 1).0, NSEGS - 1);
    }

    #[test]
    fn claim_set_get_round_trip() {
        let v: SlotVec<u64> = SlotVec::new();
        for k in 0..3000u64 {
            let i = v.claim();
            v.set(i, k * 7);
        }
        assert_eq!(v.len(), 3000);
        for k in 0..3000usize {
            assert_eq!(v.get(k), Some(&(k as u64 * 7)));
        }
        assert_eq!(v.get(3000), None);
    }

    #[test]
    fn take_then_reset_reuses_slot() {
        let mut v: SlotVec<String> = SlotVec::new();
        let i = v.claim();
        v.set(i, "a".into());
        assert_eq!(v.take(i as usize), Some("a".into()));
        assert_eq!(v.get(i as usize), None);
        v.set(i, "b".into());
        assert_eq!(v.get(i as usize).map(String::as_str), Some("b"));
    }

    #[test]
    fn clear_keeps_capacity_resets_len() {
        let mut v: SlotVec<u32> = SlotVec::new();
        for _ in 0..10 {
            let i = v.claim();
            v.set(i, i);
        }
        v.clear();
        assert_eq!(v.len(), 0);
        let i = v.claim();
        v.set(i, 42);
        assert_eq!(v.get(0), Some(&42));
    }

    #[test]
    fn concurrent_append_and_read() {
        use std::sync::atomic::AtomicBool;
        let v: SlotVec<u32> = SlotVec::new();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let v = &v;
                s.spawn(move || {
                    for k in 0..2000 {
                        let i = v.claim();
                        v.set(i, t * 10_000 + k);
                    }
                });
            }
            {
                let v = &v;
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let n = v.len();
                        for i in 0..n {
                            // Claimed-but-not-yet-set slots read as None.
                            let _ = v.get(i);
                        }
                    }
                });
            }
            for t in 0..4u32 {
                let v = &v;
                s.spawn(move || {
                    for k in 0..2000 {
                        let i = v.claim();
                        v.set(i, 100_000 + t * 10_000 + k);
                    }
                });
            }
            // Writers finish before scope joins the reader.
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(v.len(), 16_000);
        let mut seen: Vec<u32> = (0..16_000).map(|i| *v.get_expect(i)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 16_000, "every write landed in a distinct slot");
    }
}
