//! `qdd-serve` — simulation-as-a-service over the decision-diagram engine.
//!
//! The paper's tool family (§II) runs interactively on one circuit at a
//! time; this crate wraps the same engine surfaces — simulate, sample,
//! verify, step/play — behind a long-lived HTTP daemon so many clients can
//! share one warm process. The design goals, in order:
//!
//! 1. **Zero dependencies.** The transport is a hand-rolled HTTP/1.1
//!    subset over [`std::net::TcpListener`] ([`http`]); JSON reuses the
//!    workspace's own parser and writer conventions ([`json`]). Nothing is
//!    added to the dependency tree.
//! 2. **Panic containment.** A request may not take the daemon down. The
//!    shot engine contains worker panics as
//!    [`SimError::WorkerPanicked`](qdd_sim::SimError) (returned as a typed
//!    500), and every connection runs on its own thread, so an unexpected
//!    handler panic kills one connection, never the accept loop.
//! 3. **Per-tenant budgets under server ceilings.** Requests carry their
//!    own [`Limits`] asks; the operator's
//!    [`Quota`] clamps them ([`quota`] documents the
//!    reject-vs-clamp contract). Exceeding a budget is a typed 422/429,
//!    and fidelity-bounded degradation surfaces as `"degraded":
//!    "approximate"` in the response — the HTTP rendition of the CLI's
//!    exit code 4.
//! 4. **Warm sharing.** Compiled circuits and their gate-DD warm bases are
//!    interned in a [`cache::CircuitCache`] keyed by QASM hash ⊕
//!    structural config, `Arc`-shared across concurrent requests through
//!    the frozen-base overlay machinery (DESIGN.md §15).
//!
//! Endpoints: `POST /v1/simulate`, `POST /v1/shots` (chunked JSONL
//! stream), `POST /v1/verify`, and the session family `POST /v1/sessions`,
//! `POST /v1/sessions/{id}/step`, `POST /v1/sessions/{id}/play`,
//! `DELETE /v1/sessions/{id}` mirroring the tool's step/play state
//! machine. Every response embeds the request's merged telemetry snapshot
//! (scoped per request via [`qdd_telemetry::set_scope`]).

pub mod cache;
pub mod http;
pub mod json;
pub mod quota;
pub mod session;

use crate::cache::CircuitCache;
use crate::http::{ChunkedWriter, ParseError, Request};
use crate::json::{get_bool, get_str, get_u64, num, parse_json, snapshot_json, JsonValue};
use crate::quota::{ApiError, Quota};
use crate::session::SessionStore;
use qdd_core::{Limits, MeasurementOutcome, PackageConfig};
use qdd_sim::{shots, DdSimulator, ShotOptions, SimError, StepOutcome};
use qdd_verify::{Equivalence, EquivalenceChecker, Strategy, VerifyError};
use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Operator-facing daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Per-tenant ceilings (see [`Quota`]).
    pub quota: Quota,
    /// Compiled circuits kept warm (FIFO-evicted beyond this).
    pub cache_capacity: usize,
    /// Default shot-engine worker threads (`0` = one per CPU); requests
    /// may ask for fewer.
    pub threads: usize,
    /// Honors the `test_panic_at_shot` request field, which forces a shot
    /// worker to panic — for exercising the panic-containment path from
    /// integration suites. Never enable in production.
    pub enable_test_hooks: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            quota: Quota::default(),
            cache_capacity: 32,
            threads: 0,
            enable_test_hooks: false,
        }
    }
}

/// Shared state every connection thread sees.
struct ServerState {
    quota: Quota,
    cache: CircuitCache,
    sessions: SessionStore,
    threads: usize,
    test_hooks: bool,
}

/// The daemon: a bound listener plus shared state. [`Server::run`]
/// consumes it into the accept loop.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener (use port `0` for an ephemeral port in tests).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(ServerState {
            cache: CircuitCache::new(config.cache_capacity),
            sessions: SessionStore::new(config.quota.max_sessions),
            threads: config.threads,
            test_hooks: config.enable_test_hooks,
            quota: config.quota,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (reports the ephemeral port after `bind(":0")`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever: one thread per connection, one request per
    /// connection. Accept errors are transient (connection reset during
    /// the handshake) and are skipped rather than fatal.
    pub fn run(self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            let Ok(stream) = conn else { continue };
            let state = Arc::clone(&self.state);
            thread::spawn(move || handle_connection(stream, state));
        }
        Ok(())
    }
}

/// Reads, routes, and answers one request, then closes the connection.
fn handle_connection(mut stream: TcpStream, state: Arc<ServerState>) {
    let req = match http::read_request(&mut stream, state.quota.max_body_bytes) {
        Ok(req) => req,
        // Both rejections can leave unread request bytes on the socket;
        // drain them after responding so the close does not RST away the
        // error before the client reads it.
        Err(ParseError::BodyTooLarge { declared, cap }) => {
            let e = ApiError::over_quota(
                "body_bytes",
                format!("declared body of {declared} bytes exceeds the {cap}-byte cap"),
            );
            let _ = http::write_response(&mut stream, e.status, "application/json", e.to_json().as_bytes());
            http::drain_before_close(&mut stream);
            return;
        }
        Err(ParseError::Malformed(why)) => {
            let e = ApiError::bad_request(format!("malformed request: {why}"));
            let _ = http::write_response(&mut stream, e.status, "application/json", e.to_json().as_bytes());
            http::drain_before_close(&mut stream);
            return;
        }
        Err(ParseError::Io(_)) => return,
    };
    // Telemetry emitted while serving this request lands in its own scope,
    // so concurrent requests do not bleed counters into each other's
    // response snapshots. Collection is per-thread opt-in; this thread
    // serves exactly one request, so enable it for the duration.
    qdd_telemetry::set_enabled(true);
    qdd_telemetry::set_scope(qdd_telemetry::next_scope_id());
    let result = route(&req, &mut stream, &state);
    if result.is_err() {
        // Drain the request scope so error paths do not leak snapshots.
        let _ = qdd_telemetry::take_merged_snapshot();
    }
    qdd_telemetry::set_scope(0);
    match result {
        Ok(Some((status, body))) => {
            let _ = http::write_response(&mut stream, status, "application/json", body.as_bytes());
        }
        Ok(None) => {} // the handler streamed its own response
        Err(e) => {
            let _ = http::write_response(&mut stream, e.status, "application/json", e.to_json().as_bytes());
        }
    }
}

/// Routing table. `Ok(Some)` is a fixed JSON response; `Ok(None)` means
/// the handler wrote the response itself (the streaming path).
fn route(
    req: &Request,
    stream: &mut TcpStream,
    state: &ServerState,
) -> Result<Option<(u16, String)>, ApiError> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Ok(Some((
            200,
            format!(
                "{{\"ok\":true,\"cached_circuits\":{},\"live_sessions\":{}}}",
                state.cache.len(),
                state.sessions.len()
            ),
        ))),
        ("POST", ["v1", "simulate"]) => handle_simulate(&body_json(req)?, state).map(Some),
        ("POST", ["v1", "shots"]) => handle_shots(&body_json(req)?, stream, state),
        ("POST", ["v1", "verify"]) => handle_verify(&body_json(req)?, state).map(Some),
        ("POST", ["v1", "sessions"]) => handle_session_create(&body_json(req)?, state).map(Some),
        ("POST", ["v1", "sessions", id, "step"]) => {
            handle_session_step(parse_id(id)?, &body_json(req)?, state).map(Some)
        }
        ("POST", ["v1", "sessions", id, "play"]) => {
            handle_session_play(parse_id(id)?, &body_json(req)?, state).map(Some)
        }
        ("DELETE", ["v1", "sessions", id]) => {
            state.sessions.delete(parse_id(id)?)?;
            Ok(Some((200, format!("{{\"deleted\":{id}}}"))))
        }
        (_, ["healthz"])
        | (_, ["v1", "simulate" | "shots" | "verify" | "sessions"])
        | (_, ["v1", "sessions", _, "step" | "play"])
        | (_, ["v1", "sessions", _]) => Err(ApiError {
            status: 405,
            code: "method_not_allowed",
            message: format!("{} is not supported on {}", req.method, req.path),
            budget: None,
        }),
        _ => Err(ApiError::not_found(format!("no route for {}", req.path))),
    }
}

/// Parses the request body as JSON (an empty body reads as `{}`).
fn body_json(req: &Request) -> Result<JsonValue, ApiError> {
    if req.body.is_empty() {
        return parse_json("{}").map_err(ApiError::bad_request);
    }
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    parse_json(text).map_err(|e| ApiError::bad_request(format!("request body is not JSON: {e}")))
}

fn parse_id(raw: &str) -> Result<u64, ApiError> {
    raw.parse()
        .map_err(|_| ApiError::bad_request(format!("'{raw}' is not a session id")))
}

/// Pulls the mandatory `qasm` string out of a body.
fn require_qasm<'a>(body: &'a JsonValue, key: &str) -> Result<&'a str, ApiError> {
    get_str(body, key).ok_or_else(|| ApiError::bad_request(format!("missing string field '{key}'")))
}

/// Maps engine errors onto the API's status contract: budget/deadline
/// exhaustion is a 422 (the request was valid, the leash was short),
/// contained worker panics are a typed 500, anything else is the
/// request's fault. [`SimError::Cancelled`] never reaches this — callers
/// drop the connection instead.
fn map_sim_error(e: SimError) -> ApiError {
    match &e {
        SimError::Dd(d) if d.is_resource() => ApiError {
            status: 422,
            code: "resource_exhausted",
            message: e.to_string(),
            budget: None,
        },
        SimError::WorkerPanicked { .. } => ApiError {
            status: 500,
            code: "worker_panicked",
            message: e.to_string(),
            budget: None,
        },
        _ => ApiError::bad_request(e.to_string()),
    }
}

fn map_verify_error(e: VerifyError) -> ApiError {
    match &e {
        VerifyError::Dd(d) if d.is_resource() => ApiError {
            status: 422,
            code: "resource_exhausted",
            message: e.to_string(),
            budget: None,
        },
        _ => ApiError::bad_request(e.to_string()),
    }
}

/// The `"degraded"` response field: the HTTP rendition of the CLI's
/// exit-code-4 (approximate) and dense-fallback degradation signals.
fn degraded_field(approximate: bool, dense: bool) -> &'static str {
    if approximate {
        "\"approximate\""
    } else if dense {
        "\"dense\""
    } else {
        "null"
    }
}

/// Builds this request's package config from its clamped limits.
fn request_config(limits: Limits) -> PackageConfig {
    PackageConfig {
        limits,
        ..PackageConfig::default()
    }
}

/// Whether a request may run on the shared frozen warm base. Mirrors the
/// shot engine's rule: hard node/complex budgets need a private package
/// for exact budget semantics.
fn overlay_applies(limits: &Limits) -> bool {
    limits.max_nodes.is_none() && limits.max_complex_entries.is_none()
}

// --- /v1/simulate ---------------------------------------------------------

/// Runs the full circuit once (measurements resolved by the seeded
/// stream) and returns final-state facts plus stats and telemetry.
fn handle_simulate(body: &JsonValue, state: &ServerState) -> Result<(u16, String), ApiError> {
    let qasm = require_qasm(body, "qasm")?;
    let seed = get_u64(body, "seed").unwrap_or(1);
    let limits = state.quota.clamp_limits(body)?;
    let config = request_config(limits);
    let outcome = state.cache.get_or_build(qasm, config)?;
    let entry = &outcome.entry;
    let mut sim = if overlay_applies(&limits) {
        let mut s = DdSimulator::with_frozen_base(entry.circuit.clone(), seed, &entry.base);
        // The overlay copies the base's (deadline-free) config; arm this
        // request's budget explicitly.
        if let Some(budget) = limits.deadline {
            s.package_mut().arm_deadline_for(budget);
        }
        s
    } else {
        DdSimulator::with_config(entry.circuit.clone(), seed, config)
    };
    if let Some(fallback) = get_bool(body, "dense_fallback") {
        sim.set_dense_fallback(fallback);
    }
    sim.run().map_err(map_sim_error)?;
    let stats = sim.stats().clone();
    let nodes = sim.node_count();
    let bits: Vec<String> = sim
        .classical_bits()
        .iter()
        .map(|&b| if b { "1".into() } else { "0".into() })
        .collect();
    let amplitudes = if get_bool(body, "include_amplitudes") == Some(true) {
        const AMPLITUDE_CAP_QUBITS: usize = 12;
        let n = entry.circuit.num_qubits();
        if n > AMPLITUDE_CAP_QUBITS {
            return Err(ApiError::bad_request(format!(
                "include_amplitudes is supported up to {AMPLITUDE_CAP_QUBITS} qubits, circuit has {n}"
            )));
        }
        let dense = sim.dense_state();
        let mut s = String::from(",\"amplitudes\":[");
        for (i, a) in dense.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{},{}]", num(a.re), num(a.im));
        }
        s.push(']');
        s
    } else {
        String::new()
    };
    let snap = qdd_telemetry::take_merged_snapshot();
    let body = format!(
        "{{\"qubits\":{},\"applied_ops\":{},\"nodes\":{},\"peak_nodes\":{},\
         \"fidelity_lower_bound\":{},\"degraded\":{},\"classical_bits\":[{}],\
         \"cache\":{{\"hit\":{},\"key\":\"{:016x}\"}},\
         \"gate_cache\":{{\"lookups\":{},\"hits\":{}}}{}\
         ,\"telemetry\":{}}}",
        entry.circuit.num_qubits(),
        stats.applied_ops,
        nodes,
        stats.peak_nodes,
        num(stats.fidelity_lower_bound),
        degraded_field(stats.is_approximate(), sim.degraded_to_dense()),
        bits.join(","),
        outcome.hit,
        outcome.key,
        sim.package().gate_cache_lookups(),
        sim.package().gate_cache_hits(),
        amplitudes,
        snapshot_json(&snap),
    );
    Ok((200, body))
}

// --- /v1/shots ------------------------------------------------------------

/// Runs a sampling job and streams the histogram as chunked JSONL: a
/// header line, one line per outcome (byte-identical to the CLI's
/// `--histogram-out` lines), and a trailer with stats + telemetry. While
/// the engine runs, the handler watches the connection: a client that
/// goes away flips the job's cooperative cancel flag so abandoned work
/// stops at the next shot boundary instead of burning the quota.
fn handle_shots(
    body: &JsonValue,
    stream: &mut TcpStream,
    state: &ServerState,
) -> Result<Option<(u16, String)>, ApiError> {
    let qasm = require_qasm(body, "qasm")?;
    let shots_requested = get_u64(body, "shots").unwrap_or(1024);
    state.quota.check_shots(shots_requested)?;
    let limits = state.quota.clamp_limits(body)?;
    let config = request_config(limits);
    let outcome = state.cache.get_or_build(qasm, config)?;
    let entry = &outcome.entry;
    let cancel = Arc::new(AtomicBool::new(false));
    // A request may ask for *fewer* workers than the server default, never
    // more: `threads` is an OS-resource ask, and honoring a huge value
    // (`"threads": 1000000`) would let one request exhaust the host with
    // thread spawns — the one work-size dimension the shots quota does not
    // cover. Resolve the server default (0 = per-CPU) and cap there.
    let thread_cap = qdd_sim::resolve_threads(state.threads);
    let mut opts = ShotOptions {
        shots: shots_requested,
        seed: get_u64(body, "seed").unwrap_or(1),
        threads: get_u64(body, "threads")
            .map(|t| (t as usize).clamp(1, thread_cap))
            .unwrap_or(state.threads),
        config,
        cancel: Some(Arc::clone(&cancel)),
        warm_base: Some(Arc::clone(&entry.base)),
        ..ShotOptions::default()
    };
    if let Some(fallback) = get_bool(body, "dense_fallback") {
        opts.dense_fallback = fallback;
    }
    if state.test_hooks {
        opts.panic_at_shot = get_u64(body, "test_panic_at_shot");
    }

    // Run the engine on its own thread (inside this request's telemetry
    // scope) while this thread watches for the client hanging up.
    let scope = qdd_telemetry::scope_id();
    let (result, client_gone) = thread::scope(|s| {
        let handle = s.spawn(|| {
            qdd_telemetry::set_enabled(true);
            qdd_telemetry::set_scope(scope);
            let r = shots::run(&entry.circuit, &opts);
            qdd_telemetry::publish();
            r
        });
        let mut gone = false;
        while !handle.is_finished() {
            if !gone && http::peer_disconnected(stream) {
                cancel.store(true, Ordering::Relaxed);
                gone = true;
            }
            thread::sleep(Duration::from_millis(2));
        }
        let result = handle.join().unwrap_or_else(|_| {
            Err(SimError::WorkerPanicked {
                worker: 0,
                payload: "shot coordinator panicked".to_string(),
            })
        });
        (result, gone)
    });
    let report = match result {
        Ok(report) => report,
        // A cancelled job means the client hung up: nobody is listening,
        // so there is no response to write.
        Err(SimError::Cancelled) => return Ok(None),
        Err(e) => return Err(map_sim_error(e)),
    };
    if client_gone {
        return Ok(None);
    }

    let snap = qdd_telemetry::take_merged_snapshot();
    let kind = match report.kind {
        qdd_sim::HistogramKind::BasisStates => "basis_states",
        qdd_sim::HistogramKind::ClassicalBits => "classical_bits",
    };
    let header = format!(
        "{{\"schema\":\"qdd-histogram-v1\",\"kind\":\"{kind}\",\"shots\":{}}}",
        report.shots
    );
    // The request that *built* the warm base pays its construction misses;
    // requests served from the already-warm base do not — so a warm
    // request's hit rate is strictly higher than the cold one's.
    let (gate_lookups, gate_hits) = if outcome.hit {
        (report.gate_cache_lookups, report.gate_cache_hits)
    } else {
        (
            report.gate_cache_lookups + entry.build_lookups,
            report.gate_cache_hits + entry.build_hits,
        )
    };
    let gate_hit_rate = if gate_lookups == 0 {
        0.0
    } else {
        gate_hits as f64 / gate_lookups as f64
    };
    let worker_shots: Vec<String> = report.worker_shots.iter().map(|n| n.to_string()).collect();
    let trailer = format!(
        "{{\"stats\":{{\"regime\":\"{}\",\"threads_used\":{},\"elapsed_ms\":{},\
         \"fidelity_lower_bound\":{},\"gate_cache_lookups\":{},\"gate_cache_hits\":{},\
         \"gate_cache_hit_rate\":{},\"worker_shots\":[{}]}},\"degraded\":{},\
         \"cache\":{{\"hit\":{},\"key\":\"{:016x}\"}},\"telemetry\":{}}}",
        report.regime.name(),
        report.threads_used,
        report.elapsed.as_millis(),
        num(report.fidelity_lower_bound),
        gate_lookups,
        gate_hits,
        num(gate_hit_rate),
        worker_shots.join(","),
        degraded_field(report.is_approximate(), false),
        outcome.hit,
        outcome.key,
        snapshot_json(&snap),
    );
    // From here any write failure means the client vanished mid-stream;
    // there is nothing useful to do but stop.
    let _ = (|| -> io::Result<()> {
        let mut w = ChunkedWriter::begin(stream, 200, "application/jsonl")?;
        w.write_line(&header)?;
        for line in report.histogram_lines() {
            w.write_line(&line)?;
        }
        w.write_line(&trailer)?;
        w.finish()
    })();
    Ok(None)
}

// --- /v1/verify -----------------------------------------------------------

fn parse_strategy(name: Option<&str>) -> Result<Strategy, ApiError> {
    match name.unwrap_or("proportional") {
        "construction" => Ok(Strategy::Construction),
        "one-to-one" => Ok(Strategy::OneToOne),
        "proportional" => Ok(Strategy::Proportional),
        "barrier-guided" => Ok(Strategy::BarrierGuided),
        "lookahead" => Ok(Strategy::Lookahead),
        other => Err(ApiError::bad_request(format!(
            "unknown strategy '{other}' (expected construction, one-to-one, proportional, barrier-guided, or lookahead)"
        ))),
    }
}

/// Equivalence-checks two circuits under the request's (clamped) budgets.
fn handle_verify(body: &JsonValue, state: &ServerState) -> Result<(u16, String), ApiError> {
    let left_src = require_qasm(body, "left")?;
    let right_src = require_qasm(body, "right")?;
    let strategy = parse_strategy(get_str(body, "strategy"))?;
    let left = qdd_circuit::qasm::parse(left_src)
        .map_err(|e| ApiError::bad_request(format!("left circuit: QASM parse error: {e}")))?;
    let right = qdd_circuit::qasm::parse(right_src)
        .map_err(|e| ApiError::bad_request(format!("right circuit: QASM parse error: {e}")))?;
    let limits = state.quota.clamp_limits(body)?;
    let mut checker = EquivalenceChecker::with_config(request_config(limits));
    let report = checker.check(&left, &right, strategy).map_err(map_verify_error)?;
    let (verdict, phase) = match report.result {
        Equivalence::Equivalent => ("equivalent", String::from("null")),
        Equivalence::EquivalentUpToGlobalPhase { phase } => {
            ("equivalent_up_to_global_phase", num(phase))
        }
        Equivalence::NotEquivalent => ("not_equivalent", String::from("null")),
    };
    let counterexample = match report.counterexample {
        Some(c) => format!("{{\"row\":{},\"col\":{}}}", c.row, c.col),
        None => String::from("null"),
    };
    let snap = qdd_telemetry::take_merged_snapshot();
    let body = format!(
        "{{\"equivalent\":{},\"verdict\":\"{}\",\"phase\":{},\"strategy\":\"{}\",\
         \"peak_nodes\":{},\"applied_left\":{},\"applied_right\":{},\
         \"counterexample\":{},\"telemetry\":{}}}",
        report.result.is_equivalent(),
        verdict,
        phase,
        report.strategy,
        report.peak_nodes,
        report.applied_left,
        report.applied_right,
        counterexample,
        snapshot_json(&snap),
    );
    Ok((200, body))
}

// --- sessions -------------------------------------------------------------

fn handle_session_create(body: &JsonValue, state: &ServerState) -> Result<(u16, String), ApiError> {
    let qasm = require_qasm(body, "qasm")?;
    let circuit = qdd_circuit::qasm::parse(qasm)
        .map_err(|e| ApiError::bad_request(format!("QASM parse error: {e}")))?;
    let qubits = circuit.num_qubits();
    let ops = circuit.ops().len();
    // Sessions run under the same quota-clamped per-tenant budgets as
    // batch requests: step/play do governed work and must trip the node /
    // complex ceilings as typed errors. The deadline ceiling is the one
    // exception — it is a per-run wall-clock leash, meaningless across an
    // interactive session's idle gaps, and is enforced by idle expiry
    // instead.
    let limits = state.quota.clamp_limits(body)?;
    let config = request_config(Limits {
        deadline: None,
        ..limits
    });
    let id = state.sessions.create(circuit, config)?;
    let snap = qdd_telemetry::take_merged_snapshot();
    Ok((
        201,
        format!(
            "{{\"session\":{id},\"qubits\":{qubits},\"ops\":{ops},\"telemetry\":{}}}",
            snapshot_json(&snap)
        ),
    ))
}

/// The common tail of step/play responses: where the session stands.
fn session_position_json(position: usize, finished: bool, nodes: usize) -> String {
    format!("\"position\":{position},\"finished\":{finished},\"nodes\":{nodes}")
}

fn step_outcome_json(outcome: &StepOutcome) -> String {
    match outcome {
        StepOutcome::Applied { op_index } => {
            format!("\"outcome\":\"applied\",\"op_index\":{op_index}")
        }
        StepOutcome::NeedsChoice(p) => {
            let kind = match p.kind {
                qdd_sim::ChoiceKind::Measurement { bit } => {
                    format!("\"measurement\",\"bit\":{bit}")
                }
                qdd_sim::ChoiceKind::Reset => String::from("\"reset\""),
            };
            format!(
                "\"outcome\":\"needs_choice\",\"qubit\":{},\"p0\":{},\"p1\":{},\"kind\":{}",
                p.qubit,
                num(p.p0),
                num(p.p1),
                kind
            )
        }
        StepOutcome::AtEnd => String::from("\"outcome\":\"at_end\""),
    }
}

/// One step of the session state machine: advance, resolve an open
/// choice dialog (`{"choose": 0|1}`), or step backwards (`{"back":
/// true}`).
fn handle_session_step(
    id: u64,
    body: &JsonValue,
    state: &ServerState,
) -> Result<(u16, String), ApiError> {
    let fields = state.sessions.with(id, |s| -> Result<String, ApiError> {
        let outcome = if let Some(choice) = get_u64(body, "choose") {
            if choice > 1 {
                return Err(ApiError::bad_request(format!(
                    "'choose' must be 0 or 1, got {choice}"
                )));
            }
            s.choose(MeasurementOutcome::from(choice == 1))
                .map_err(map_sim_error)?;
            String::from("\"outcome\":\"chosen\"")
        } else if get_bool(body, "back") == Some(true) {
            format!("\"outcome\":\"stepped_back\",\"moved\":{}", s.step_back())
        } else {
            step_outcome_json(&s.step_forward().map_err(map_sim_error)?)
        };
        Ok(format!(
            "{},{}",
            outcome,
            session_position_json(s.position(), s.is_finished(), s.node_count())
        ))
    })??;
    let snap = qdd_telemetry::take_merged_snapshot();
    Ok((200, format!("{{{fields},\"telemetry\":{}}}", snapshot_json(&snap))))
}

/// Plays the session to the end, resolving every choice dialog from a
/// seeded random stream — the server-side analogue of the CLI's
/// non-interactive run.
fn handle_session_play(
    id: u64,
    body: &JsonValue,
    state: &ServerState,
) -> Result<(u16, String), ApiError> {
    let seed = get_u64(body, "seed").unwrap_or(1);
    let fields = state.sessions.with(id, |s| -> Result<String, ApiError> {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
        loop {
            match s.fast_forward().map_err(map_sim_error)? {
                StepOutcome::AtEnd => break,
                StepOutcome::NeedsChoice(p) => {
                    let one = rand::Rng::gen::<f64>(&mut rng) < p.p1;
                    s.choose(MeasurementOutcome::from(one)).map_err(map_sim_error)?;
                }
                StepOutcome::Applied { .. } => {}
            }
        }
        let bits: Vec<String> = s
            .classical_bits()
            .iter()
            .map(|&b| if b { "1".into() } else { "0".into() })
            .collect();
        Ok(format!(
            "{},\"classical_bits\":[{}]",
            session_position_json(s.position(), s.is_finished(), s.node_count()),
            bits.join(",")
        ))
    })??;
    let snap = qdd_telemetry::take_merged_snapshot();
    Ok((200, format!("{{{fields},\"telemetry\":{}}}", snapshot_json(&snap))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_round_trip() {
        for name in ["construction", "one-to-one", "proportional", "barrier-guided", "lookahead"] {
            let s = parse_strategy(Some(name)).unwrap();
            assert_eq!(s.to_string(), name);
        }
        assert!(parse_strategy(Some("bogus")).is_err());
        assert!(matches!(parse_strategy(None), Ok(Strategy::Proportional)));
    }

    #[test]
    fn degraded_field_prefers_approximate() {
        assert_eq!(degraded_field(true, true), "\"approximate\"");
        assert_eq!(degraded_field(false, true), "\"dense\"");
        assert_eq!(degraded_field(false, false), "null");
    }
}
