//! The shared compiled-circuit + warm gate-DD cache.
//!
//! Parsing QASM and constructing every gate operator of a circuit is
//! per-circuit work, not per-request work. The daemon interns both behind
//! a key of `fnv1a_64(qasm) ⊕ PackageConfig::structural_key()`: requests
//! for the same source under the same structural configuration share one
//! parsed [`QuantumCircuit`] and one frozen [`FrozenDd`] warm base
//! (`Arc`-shared, per DESIGN.md §15 overlay semantics). Warm bases are
//! built with **default limits** — resource budgets are per-request leashes
//! and must not be baked into a shared artifact (see
//! [`PackageConfig::structural_key`]).

use crate::quota::ApiError;
use qdd_circuit::QuantumCircuit;
use qdd_core::{fnv1a_64, FrozenDd, PackageConfig};
use qdd_sim::shots;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One interned circuit: source-derived artifacts every request reuses.
#[derive(Debug)]
pub struct CacheEntry {
    /// The exact QASM source this entry was built from. Lookups verify
    /// this against the probe before serving the entry: the 64-bit key is
    /// FNV-1a-based (non-cryptographic), and a collision — accidental or
    /// crafted — must cost a rebuild, never silently hand one tenant
    /// another tenant's circuit.
    qasm: String,
    /// The structural key the entry was built under (the other key half).
    structural: u64,
    /// The parsed circuit.
    pub circuit: QuantumCircuit,
    /// The frozen warm base (zero state + every gate DD).
    pub base: Arc<FrozenDd>,
    /// Gate-DD cache lookups construction cost (attributed to the building
    /// request only).
    pub build_lookups: u64,
    /// Gate-DD cache hits during construction.
    pub build_hits: u64,
    /// Times this entry served a request after its insertion.
    pub hits: AtomicU64,
}

/// A cache probe result.
#[derive(Debug)]
pub struct CacheOutcome {
    /// The (possibly just-built) entry.
    pub entry: Arc<CacheEntry>,
    /// Whether the entry existed before this request.
    pub hit: bool,
    /// The cache key, echoed in responses for observability.
    pub key: u64,
}

/// A bounded, FIFO-evicting intern table of compiled circuits.
#[derive(Debug)]
pub struct CircuitCache {
    entries: Mutex<CacheMap>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct CacheMap {
    by_key: HashMap<u64, Arc<CacheEntry>>,
    insertion_order: VecDeque<u64>,
}

impl CircuitCache {
    /// Creates a cache holding at most `capacity` compiled circuits.
    pub fn new(capacity: usize) -> Self {
        CircuitCache {
            entries: Mutex::new(CacheMap::default()),
            capacity: capacity.max(1),
        }
    }

    /// Returns the interned artifacts for `qasm` under `config`, parsing
    /// and warming on first sight. Construction happens under the cache
    /// lock: concurrent first-sight requests for one circuit build it once
    /// and the rest wait — slower than racing, but never duplicates a
    /// multi-hundred-megabyte warm base.
    pub fn get_or_build(
        &self,
        qasm: &str,
        config: PackageConfig,
    ) -> Result<CacheOutcome, ApiError> {
        let structural = config.structural_key();
        let key = fnv1a_64(qasm.as_bytes()) ^ structural;
        let mut map = self.entries.lock().unwrap();
        // A key match alone is not identity: the key is a 64-bit FNV-1a
        // xor, so distinct (qasm, config) pairs can collide. Verify the
        // stored source and structural key byte-for-byte before serving —
        // on mismatch this probe falls through to a private rebuild (the
        // resident entry keeps its slot; a collision costs the colliding
        // request a rebuild, never correctness and never eviction).
        let mut collided = false;
        if let Some(entry) = map.by_key.get(&key) {
            if entry.qasm == qasm && entry.structural == structural {
                entry.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(CacheOutcome {
                    entry: entry.clone(),
                    hit: true,
                    key,
                });
            }
            collided = true;
        }
        let circuit = qdd_circuit::qasm::parse(qasm)
            .map_err(|e| ApiError::bad_request(format!("QASM parse error: {e}")))?;
        // Structural config only: budgets stay per-request.
        let build_config = PackageConfig {
            limits: qdd_core::Limits::default(),
            ..config
        };
        let warm = shots::build_warm_base(&circuit, build_config)
            .map_err(|e| ApiError::bad_request(format!("circuit rejected: {e}")))?;
        let entry = Arc::new(CacheEntry {
            qasm: qasm.to_string(),
            structural,
            circuit,
            base: warm.frozen,
            build_lookups: warm.gate_cache_lookups,
            build_hits: warm.gate_cache_hits,
            hits: AtomicU64::new(0),
        });
        if !collided {
            if map.insertion_order.len() >= self.capacity {
                if let Some(oldest) = map.insertion_order.pop_front() {
                    map.by_key.remove(&oldest);
                }
            }
            map.by_key.insert(key, entry.clone());
            map.insertion_order.push_back(key);
        }
        Ok(CacheOutcome {
            entry,
            hit: false,
            key,
        })
    }

    /// Number of cached circuits.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().by_key.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BELL: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";

    #[test]
    fn repeat_requests_hit_and_share_the_base() {
        let cache = CircuitCache::new(4);
        let first = cache.get_or_build(BELL, PackageConfig::default()).unwrap();
        assert!(!first.hit);
        let second = cache.get_or_build(BELL, PackageConfig::default()).unwrap();
        assert!(second.hit);
        assert_eq!(first.key, second.key);
        assert!(Arc::ptr_eq(&first.entry, &second.entry));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn structural_config_partitions_the_key_space() {
        let cache = CircuitCache::new(4);
        let a = cache.get_or_build(BELL, PackageConfig::default()).unwrap();
        let no_skip = PackageConfig {
            identity_skip: false,
            ..PackageConfig::default()
        };
        let b = cache.get_or_build(BELL, no_skip).unwrap();
        assert!(!b.hit);
        assert_ne!(a.key, b.key);
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = CircuitCache::new(1);
        cache.get_or_build(BELL, PackageConfig::default()).unwrap();
        let ghz = "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n";
        cache.get_or_build(ghz, PackageConfig::default()).unwrap();
        assert_eq!(cache.len(), 1);
        // The bell entry was evicted; probing it again is a miss.
        assert!(!cache.get_or_build(BELL, PackageConfig::default()).unwrap().hit);
    }

    #[test]
    fn key_collisions_rebuild_instead_of_serving_the_wrong_circuit() {
        let cache = CircuitCache::new(4);
        let ghz = "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n";
        cache.get_or_build(ghz, PackageConfig::default()).unwrap();
        // Forge a 64-bit collision: re-file the resident 3-qubit GHZ entry
        // under BELL's key, as a crafted FNV-1a collision would.
        let structural = PackageConfig::default().structural_key();
        let ghz_key = fnv1a_64(ghz.as_bytes()) ^ structural;
        let bell_key = fnv1a_64(BELL.as_bytes()) ^ structural;
        {
            let mut map = cache.entries.lock().unwrap();
            let forged = map.by_key.remove(&ghz_key).unwrap();
            map.by_key.insert(bell_key, forged);
        }
        // The probe's key hits the forged entry, but source verification
        // catches the mismatch: the request gets its own correctly parsed
        // circuit (2 qubits, not the resident 3) and reads as a miss.
        let outcome = cache.get_or_build(BELL, PackageConfig::default()).unwrap();
        assert!(!outcome.hit);
        assert_eq!(outcome.key, bell_key);
        assert_eq!(outcome.entry.circuit.num_qubits(), 2);
        // The resident (colliding) entry keeps its slot: collisions cannot
        // be used to evict another tenant's warm entry.
        let map = cache.entries.lock().unwrap();
        assert_eq!(map.by_key.get(&bell_key).unwrap().circuit.num_qubits(), 3);
    }

    #[test]
    fn malformed_qasm_is_a_typed_400() {
        let cache = CircuitCache::new(4);
        let err = cache
            .get_or_build("OPENQASM 2.0;\nqreg q[2];\nfrobnicate q;\n", PackageConfig::default())
            .unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("QASM parse error"));
    }
}
