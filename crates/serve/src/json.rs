//! JSON helpers for the API: string escaping, compact writers, and typed
//! accessors over the workspace's hand-rolled parser.
//!
//! Parsing reuses [`qdd_viz::inspect::parse_json`] — the same minimal
//! recursive-descent parser the timeline inspector uses — so the daemon
//! adds no serialization dependency. Writing follows the `qdd-stats-v1`
//! conventions: single-line objects, manually escaped strings,
//! deterministic member order.

pub use qdd_viz::inspect::{parse_json, JsonValue};

use qdd_telemetry::Snapshot;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON document (quotes not
/// included) — the same escaping rules as the CLI's stats writer.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot carry).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A compact (single-line) rendition of a telemetry snapshot, embedded in
/// API responses. Carries the counters, gauges, and span aggregates of the
/// request's scope; histograms are summarized by their aggregate fields.
pub fn snapshot_json(snap: &Snapshot) -> String {
    let mut s = String::from("{\"schema\":\"qdd-metrics-v1\",\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":{}", esc(name), v);
    }
    s.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":{}", esc(name), num(*v));
    }
    s.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
            esc(name),
            h.count,
            h.sum,
            h.min,
            h.max
        );
    }
    s.push_str("},\"spans\":{");
    for (i, (name, a)) in snap.spans.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\"{}\":{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
            esc(name),
            a.count,
            a.total_ns,
            a.max_ns
        );
    }
    let _ = write!(s, "}},\"dropped_events\":{}}}", snap.dropped_events);
    s
}

/// Member lookup returning a `u64`, if present and numeric.
pub fn get_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key).and_then(JsonValue::as_u64)
}

/// Member lookup returning an `f64`, if present and numeric.
pub fn get_f64(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(JsonValue::as_f64)
}

/// Member lookup returning a string slice, if present and a string.
pub fn get_str<'a>(v: &'a JsonValue, key: &str) -> Option<&'a str> {
    v.get(key).and_then(JsonValue::as_str)
}

/// Member lookup returning a bool, if present and boolean.
pub fn get_bool(v: &JsonValue, key: &str) -> Option<bool> {
    match v.get(key) {
        Some(JsonValue::Bool(b)) => Some(*b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_the_parser() {
        let nasty = "qasm \"2.0\";\n\tinclude \\ control\u{1}";
        let doc = format!("{{\"s\":\"{}\"}}", esc(nasty));
        let parsed = parse_json(&doc).unwrap();
        assert_eq!(get_str(&parsed, "s"), Some(nasty));
    }

    #[test]
    fn snapshot_json_is_single_line_and_parseable() {
        let mut snap = Snapshot::default();
        snap.counters.push(("a.b".into(), 3));
        snap.gauges.push(("g".into(), 1.5));
        let json = snapshot_json(&snap);
        assert!(!json.contains('\n'));
        let parsed = parse_json(&json).unwrap();
        assert_eq!(
            get_str(&parsed, "schema"),
            Some("qdd-metrics-v1")
        );
        assert_eq!(get_u64(parsed.get("counters").unwrap(), "a.b"), Some(3));
    }
}
