//! Interactive sessions: the paper tool's step/play state machine over
//! HTTP.
//!
//! `POST /v1/sessions` opens a [`SteppableSimulation`]; `step` advances one
//! operation (returning the tool's measurement/reset *choice dialog* when
//! one opens), `play` runs to the end resolving dialogs with seeded
//! randomness, and `DELETE` releases the slot. Sessions hold live decision
//! diagrams, so the store enforces the `sessions` quota and expires
//! abandoned sessions to keep a long-lived daemon bounded.

use crate::quota::ApiError;
use qdd_circuit::QuantumCircuit;
use qdd_sim::SteppableSimulation;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How long an untouched session lives before the store may reap it.
pub const SESSION_IDLE_EXPIRY: Duration = Duration::from_secs(15 * 60);

struct Session {
    stepper: SteppableSimulation,
    last_touch: Instant,
}

/// A bounded registry of live interactive sessions.
pub struct SessionStore {
    sessions: Mutex<HashMap<u64, Session>>,
    next_id: AtomicU64,
    max_sessions: usize,
}

impl SessionStore {
    /// Creates a store admitting at most `max_sessions` live sessions.
    pub fn new(max_sessions: usize) -> Self {
        SessionStore {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            max_sessions: max_sessions.max(1),
        }
    }

    /// Opens a session on `circuit`, returning its id. Reaps expired
    /// sessions first; a full store yields a typed 429 naming the
    /// `sessions` budget.
    pub fn create(&self, circuit: QuantumCircuit) -> Result<u64, ApiError> {
        let mut sessions = self.sessions.lock().unwrap();
        let now = Instant::now();
        sessions.retain(|_, s| now.duration_since(s.last_touch) < SESSION_IDLE_EXPIRY);
        if sessions.len() >= self.max_sessions {
            return Err(ApiError::over_quota(
                "sessions",
                format!(
                    "all {} session slots are in use; DELETE one or retry later",
                    self.max_sessions
                ),
            ));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        sessions.insert(
            id,
            Session {
                stepper: SteppableSimulation::new(circuit),
                last_touch: now,
            },
        );
        Ok(id)
    }

    /// Runs `f` on the session's stepper under the store lock, refreshing
    /// its idle clock. Unknown ids yield a typed 404.
    pub fn with<R>(
        &self,
        id: u64,
        f: impl FnOnce(&mut SteppableSimulation) -> R,
    ) -> Result<R, ApiError> {
        let mut sessions = self.sessions.lock().unwrap();
        let session = sessions
            .get_mut(&id)
            .ok_or_else(|| ApiError::not_found(format!("no session {id}")))?;
        session.last_touch = Instant::now();
        Ok(f(&mut session.stepper))
    }

    /// Closes the session, releasing its slot. Unknown ids yield 404.
    pub fn delete(&self, id: u64) -> Result<(), ApiError> {
        let mut sessions = self.sessions.lock().unwrap();
        sessions
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| ApiError::not_found(format!("no session {id}")))
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_circuit::library;

    #[test]
    fn slots_are_bounded_and_released_by_delete() {
        let store = SessionStore::new(2);
        let a = store.create(library::bell()).unwrap();
        let _b = store.create(library::bell()).unwrap();
        let err = store.create(library::bell()).unwrap_err();
        assert_eq!(err.status, 429);
        assert_eq!(err.budget, Some("sessions"));
        store.delete(a).unwrap();
        assert!(store.create(library::bell()).is_ok());
        assert_eq!(store.delete(999).unwrap_err().status, 404);
    }

    #[test]
    fn with_steps_the_underlying_simulation() {
        let store = SessionStore::new(4);
        let id = store.create(library::bell()).unwrap();
        let outcome = store.with(id, |s| s.step_forward()).unwrap().unwrap();
        assert!(matches!(outcome, qdd_sim::StepOutcome::Applied { op_index: 0 }));
        assert_eq!(store.with(id, |s| s.position()).unwrap(), 1);
    }
}
