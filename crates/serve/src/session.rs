//! Interactive sessions: the paper tool's step/play state machine over
//! HTTP.
//!
//! `POST /v1/sessions` opens a [`SteppableSimulation`]; `step` advances one
//! operation (returning the tool's measurement/reset *choice dialog* when
//! one opens), `play` runs to the end resolving dialogs with seeded
//! randomness, and `DELETE` releases the slot. Sessions hold live decision
//! diagrams, so the store enforces the `sessions` quota, runs each session
//! under the request's quota-clamped [`PackageConfig`] (the same per-tenant
//! resource leash as batch requests), and expires abandoned sessions to
//! keep a long-lived daemon bounded.
//!
//! Locking: the store-wide mutex guards only the id → session map; each
//! session carries its own mutex. A long `play` on one session therefore
//! blocks further calls on *that* session, never create/step/delete on
//! other tenants' sessions.

use crate::quota::ApiError;
use qdd_circuit::QuantumCircuit;
use qdd_core::PackageConfig;
use qdd_sim::SteppableSimulation;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, TryLockError};
use std::time::{Duration, Instant};

/// How long an untouched session lives before the store may reap it.
pub const SESSION_IDLE_EXPIRY: Duration = Duration::from_secs(15 * 60);

struct Session {
    stepper: SteppableSimulation,
    last_touch: Instant,
}

/// A bounded registry of live interactive sessions.
pub struct SessionStore {
    sessions: Mutex<HashMap<u64, Arc<Mutex<Session>>>>,
    next_id: AtomicU64,
    max_sessions: usize,
}

impl SessionStore {
    /// Creates a store admitting at most `max_sessions` live sessions.
    pub fn new(max_sessions: usize) -> Self {
        SessionStore {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            max_sessions: max_sessions.max(1),
        }
    }

    /// Opens a session on `circuit` under `config` (already quota-clamped
    /// by the caller), returning its id. Reaps expired sessions first; a
    /// full store yields a typed 429 naming the `sessions` budget.
    pub fn create(
        &self,
        circuit: QuantumCircuit,
        config: PackageConfig,
    ) -> Result<u64, ApiError> {
        let mut sessions = self.sessions.lock().unwrap();
        let now = Instant::now();
        sessions.retain(|_, slot| match slot.try_lock() {
            Ok(s) => now.duration_since(s.last_touch) < SESSION_IDLE_EXPIRY,
            // Locked = a request is inside it right now: certainly live.
            Err(TryLockError::WouldBlock) => true,
            // Poisoned = a handler panicked mid-step; the session state is
            // suspect, so reclaim the slot.
            Err(TryLockError::Poisoned(_)) => false,
        });
        if sessions.len() >= self.max_sessions {
            return Err(ApiError::over_quota(
                "sessions",
                format!(
                    "all {} session slots are in use; DELETE one or retry later",
                    self.max_sessions
                ),
            ));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        sessions.insert(
            id,
            Arc::new(Mutex::new(Session {
                stepper: SteppableSimulation::with_config(circuit, config),
                last_touch: now,
            })),
        );
        Ok(id)
    }

    /// Runs `f` on the session's stepper under that session's own lock
    /// (the store lock is held only for the map lookup), refreshing its
    /// idle clock. Unknown ids yield a typed 404.
    pub fn with<R>(
        &self,
        id: u64,
        f: impl FnOnce(&mut SteppableSimulation) -> R,
    ) -> Result<R, ApiError> {
        let slot = {
            let sessions = self.sessions.lock().unwrap();
            sessions
                .get(&id)
                .cloned()
                .ok_or_else(|| ApiError::not_found(format!("no session {id}")))?
        };
        let mut session = slot.lock().map_err(|_| ApiError {
            status: 500,
            code: "session_poisoned",
            message: format!(
                "session {id} was abandoned by a failed request; DELETE it and create a new one"
            ),
            budget: None,
        })?;
        session.last_touch = Instant::now();
        Ok(f(&mut session.stepper))
    }

    /// Closes the session, releasing its slot. Unknown ids yield 404.
    pub fn delete(&self, id: u64) -> Result<(), ApiError> {
        let mut sessions = self.sessions.lock().unwrap();
        sessions
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| ApiError::not_found(format!("no session {id}")))
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_circuit::library;
    use qdd_core::Limits;

    fn default_create(store: &SessionStore) -> Result<u64, ApiError> {
        store.create(library::bell(), PackageConfig::default())
    }

    #[test]
    fn slots_are_bounded_and_released_by_delete() {
        let store = SessionStore::new(2);
        let a = default_create(&store).unwrap();
        let _b = default_create(&store).unwrap();
        let err = default_create(&store).unwrap_err();
        assert_eq!(err.status, 429);
        assert_eq!(err.budget, Some("sessions"));
        store.delete(a).unwrap();
        assert!(default_create(&store).is_ok());
        assert_eq!(store.delete(999).unwrap_err().status, 404);
    }

    #[test]
    fn with_steps_the_underlying_simulation() {
        let store = SessionStore::new(4);
        let id = default_create(&store).unwrap();
        let outcome = store.with(id, |s| s.step_forward()).unwrap().unwrap();
        assert!(matches!(outcome, qdd_sim::StepOutcome::Applied { op_index: 0 }));
        assert_eq!(store.with(id, |s| s.position()).unwrap(), 1);
    }

    #[test]
    fn sessions_run_under_the_caller_clamped_budgets() {
        // A node budget too small for the entangled state: creation
        // succeeds (the |0…0⟩ chain is budget-exempt structure), and the
        // budget trips as a typed error once stepping does governed work.
        let store = SessionStore::new(4);
        let config = PackageConfig {
            limits: Limits {
                max_nodes: Some(2),
                ..Limits::default()
            },
            ..PackageConfig::default()
        };
        let id = store.create(library::ghz(8), config).unwrap();
        let result = store.with(id, |s| {
            let mut last = Ok(qdd_sim::StepOutcome::AtEnd);
            for _ in 0..16 {
                last = s.step_forward();
                if last.is_err() {
                    break;
                }
            }
            last
        });
        let err = result.unwrap().unwrap_err();
        assert!(err.to_string().contains("node"), "unexpected error: {err}");
    }

    #[test]
    fn a_busy_session_does_not_block_the_store() {
        // One thread parks inside session A's callback; create, step on
        // session B, and delete must all proceed meanwhile — the store
        // lock is not held while a session runs.
        let store = Arc::new(SessionStore::new(4));
        let a = default_create(&store).unwrap();
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let store2 = Arc::clone(&store);
        let holder = std::thread::spawn(move || {
            store2
                .with(a, |_| {
                    tx.send(()).unwrap();
                    std::thread::sleep(Duration::from_millis(300));
                })
                .unwrap();
        });
        rx.recv().unwrap(); // A's lock is now held by the holder thread.
        let start = Instant::now();
        let b = default_create(&store).unwrap();
        store.with(b, |s| s.step_forward()).unwrap().unwrap();
        store.delete(b).unwrap();
        assert!(
            start.elapsed() < Duration::from_millis(250),
            "store operations blocked behind a busy session: {:?}",
            start.elapsed()
        );
        holder.join().unwrap();
    }
}
