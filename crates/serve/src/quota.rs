//! Server-side quota ceilings and per-request `Limits` clamping.
//!
//! Requests carry their own resource asks (`limits` object, `shots`
//! count); the operator sets hard ceilings with `--quota-*` flags. The
//! contract (DESIGN.md §18):
//!
//! * **Work-size asks** (`shots`, body bytes, live sessions) above the
//!   ceiling are *rejected* with a typed 429-style error naming the
//!   tripped budget — silently shrinking the job would return an answer to
//!   a different question than the client asked.
//! * **Resource budgets** (`max_nodes`, `max_complex_entries`,
//!   `deadline_ms`) are *clamped* to the ceiling: the request still means
//!   the same thing, just under a tighter leash, and the ceiling applies
//!   as the default when a request does not ask at all.

use crate::json::{get_f64, get_u64, JsonValue};
use qdd_core::Limits;
use std::time::Duration;

/// Operator-configured ceilings. `None` ceilings leave the dimension
/// unlimited.
#[derive(Clone, Debug)]
pub struct Quota {
    /// Most shots a single `/v1/shots` job may draw.
    pub max_shots: u64,
    /// Largest request body accepted, bytes.
    pub max_body_bytes: usize,
    /// Most concurrently live sessions.
    pub max_sessions: usize,
    /// Ceiling on a request's `max_nodes` budget (and the default when the
    /// request sets none).
    pub node_ceiling: Option<usize>,
    /// Ceiling on a request's `max_complex_entries` budget.
    pub complex_ceiling: Option<usize>,
    /// Ceiling on a request's `deadline_ms`.
    pub deadline_ms_ceiling: Option<u64>,
}

impl Default for Quota {
    fn default() -> Self {
        Quota {
            max_shots: 1_000_000,
            max_body_bytes: 1 << 20,
            max_sessions: 64,
            node_ceiling: None,
            complex_ceiling: None,
            deadline_ms_ceiling: None,
        }
    }
}

/// A typed API error: HTTP status plus a machine-readable JSON body. The
/// `budget` field names the tripped quota dimension on 429s.
#[derive(Clone, Debug)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable code (`over_quota`, `bad_request`, …).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// The tripped budget dimension, for `over_quota` errors.
    pub budget: Option<&'static str>,
}

impl ApiError {
    /// A 400 with code `bad_request`.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            code: "bad_request",
            message: message.into(),
            budget: None,
        }
    }

    /// A 404 with code `not_found`.
    pub fn not_found(message: impl Into<String>) -> Self {
        ApiError {
            status: 404,
            code: "not_found",
            message: message.into(),
            budget: None,
        }
    }

    /// A 429 with code `over_quota`, naming the tripped budget.
    pub fn over_quota(budget: &'static str, message: impl Into<String>) -> Self {
        ApiError {
            status: 429,
            code: "over_quota",
            message: message.into(),
            budget: Some(budget),
        }
    }

    /// The JSON body of the error response.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"error\":{{\"code\":\"{}\",\"message\":\"{}\"",
            self.code,
            crate::json::esc(&self.message)
        );
        if let Some(budget) = self.budget {
            s.push_str(&format!(",\"budget\":\"{budget}\""));
        }
        s.push_str("}}");
        s
    }
}

impl Quota {
    /// Validates a shot count against the ceiling.
    pub fn check_shots(&self, shots: u64) -> Result<(), ApiError> {
        if shots > self.max_shots {
            return Err(ApiError::over_quota(
                "shots",
                format!(
                    "requested {shots} shots exceeds the server quota of {}",
                    self.max_shots
                ),
            ));
        }
        Ok(())
    }

    /// Builds this request's [`Limits`] from its optional `limits` object,
    /// clamping every resource budget to the server ceilings (ceilings
    /// apply as defaults when the request does not ask).
    pub fn clamp_limits(&self, body: &JsonValue) -> Result<Limits, ApiError> {
        let mut limits = Limits::default();
        let requested = body.get("limits");
        let req = |key: &str| requested.and_then(|r| get_u64(r, key));
        limits.max_nodes = clamp_opt(req("max_nodes").map(|v| v as usize), self.node_ceiling);
        limits.max_complex_entries = clamp_opt(
            req("max_complex_entries").map(|v| v as usize),
            self.complex_ceiling,
        );
        let deadline_ms = clamp_opt(req("deadline_ms"), self.deadline_ms_ceiling);
        limits.deadline = deadline_ms.map(Duration::from_millis);
        if let Some(f) = requested.and_then(|r| get_f64(r, "min_fidelity")) {
            if !(f > 0.0 && f <= 1.0) {
                return Err(ApiError::bad_request(format!(
                    "limits.min_fidelity must be in (0, 1], got {f}"
                )));
            }
            limits.min_fidelity = Some(f);
        }
        Ok(limits)
    }
}

/// `min(requested, ceiling)`, with either side optional: no ceiling passes
/// the request through, no request adopts the ceiling.
fn clamp_opt<T: Ord + Copy>(requested: Option<T>, ceiling: Option<T>) -> Option<T> {
    match (requested, ceiling) {
        (Some(r), Some(c)) => Some(r.min(c)),
        (Some(r), None) => Some(r),
        (None, Some(c)) => Some(c),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    #[test]
    fn limits_clamp_to_ceilings_and_default_to_them() {
        let quota = Quota {
            node_ceiling: Some(1000),
            deadline_ms_ceiling: Some(500),
            ..Quota::default()
        };
        // Asks above the ceiling are clamped down.
        let body =
            parse_json("{\"limits\":{\"max_nodes\":999999,\"deadline_ms\":60000}}").unwrap();
        let limits = quota.clamp_limits(&body).unwrap();
        assert_eq!(limits.max_nodes, Some(1000));
        assert_eq!(limits.deadline, Some(Duration::from_millis(500)));
        // Asks below pass through.
        let body = parse_json("{\"limits\":{\"max_nodes\":10,\"deadline_ms\":20}}").unwrap();
        let limits = quota.clamp_limits(&body).unwrap();
        assert_eq!(limits.max_nodes, Some(10));
        assert_eq!(limits.deadline, Some(Duration::from_millis(20)));
        // No ask adopts the ceiling as the default.
        let body = parse_json("{}").unwrap();
        let limits = quota.clamp_limits(&body).unwrap();
        assert_eq!(limits.max_nodes, Some(1000));
        assert_eq!(limits.deadline, Some(Duration::from_millis(500)));
    }

    #[test]
    fn over_quota_shots_name_the_budget() {
        let quota = Quota {
            max_shots: 100,
            ..Quota::default()
        };
        assert!(quota.check_shots(100).is_ok());
        let err = quota.check_shots(101).unwrap_err();
        assert_eq!(err.status, 429);
        assert_eq!(err.budget, Some("shots"));
        assert!(err.to_json().contains("\"budget\":\"shots\""));
    }
}
