//! A minimal, dependency-free HTTP/1.1 server transport.
//!
//! The workspace carries no web framework; this module implements exactly
//! the subset `qdd serve` needs: request-line + header parsing,
//! `Content-Length` bodies with a hard cap, fixed responses, and chunked
//! transfer encoding for the JSONL shot streams. Every connection serves
//! one request (`Connection: close`), which keeps the daemon's concurrency
//! model one-thread-per-request with no keep-alive state machine.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed request: method, percent-unencoded path, and body bytes.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, `DELETE`).
    pub method: String,
    /// Request target path (query strings are not used by the API).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ParseError {
    /// Socket-level failure or premature close.
    Io(std::io::Error),
    /// The request line or headers were not HTTP.
    Malformed(&'static str),
    /// The declared body length exceeds the server's cap.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed(why) => write!(f, "malformed request: {why}"),
            ParseError::BodyTooLarge { declared, cap } => {
                write!(f, "declared body of {declared} bytes exceeds the {cap}-byte cap")
            }
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Longest request line or header line accepted, bytes (including CRLF).
/// Without a per-line cap, a client streaming bytes with no newline grows
/// the line buffer without bound.
const MAX_LINE_BYTES: usize = 8 * 1024;

/// Most header bytes accepted per request across all header lines. Bounds
/// a client sending endless (individually small) headers.
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Reads one `\n`-terminated line of at most `cap` bytes. A line still
/// unterminated at the cap is malformed — the connection is buying buffer
/// space the server will not grant.
fn read_line_capped<R: BufRead>(reader: &mut R, cap: usize) -> Result<String, ParseError> {
    let mut buf = Vec::new();
    reader
        .by_ref()
        .take(cap as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if buf.len() > cap {
        return Err(ParseError::Malformed("line exceeds the per-line byte cap"));
    }
    String::from_utf8(buf).map_err(|_| ParseError::Malformed("line is not UTF-8"))
}

/// Reads one request from the stream. `body_cap` bounds the bytes this
/// connection may make the server buffer; request-line and header reads
/// are bounded by [`MAX_LINE_BYTES`] / [`MAX_HEADER_BYTES`] so that *no*
/// phase of request parsing buffers unbounded client input.
pub fn read_request(stream: &mut TcpStream, body_cap: usize) -> Result<Request, ParseError> {
    read_request_from(&mut BufReader::new(stream), body_cap)
}

/// [`read_request`] over any buffered reader (unit-testable without a
/// socket).
fn read_request_from<R: BufRead>(reader: &mut R, body_cap: usize) -> Result<Request, ParseError> {
    let line = read_line_capped(reader, MAX_LINE_BYTES)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseError::Malformed("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(ParseError::Malformed("request line lacks a target"))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("not an HTTP/1.x request"));
    }
    let mut content_length = 0usize;
    let mut header_bytes = 0usize;
    loop {
        let header = read_line_capped(reader, MAX_LINE_BYTES)?;
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ParseError::Malformed("headers exceed the total byte cap"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::Malformed("header lacks a colon"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Malformed("unparseable Content-Length"))?;
        }
    }
    if content_length > body_cap {
        return Err(ParseError::BodyTooLarge {
            declared: content_length,
            cap: body_cap,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

/// Human phrase for the status codes the API uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response and flushes it.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// A chunked-transfer response body: each [`ChunkedWriter::write_line`]
/// leaves the wire immediately as its own chunk, so clients observe JSONL
/// lines as the server produces them.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Sends the status line + headers announcing a chunked body.
    pub fn begin(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<Self> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status),
            content_type,
        )?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Sends `line` plus a trailing newline as one flushed chunk.
    pub fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        write!(self.stream, "{:x}\r\n", line.len() + 1)?;
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n\r\n")?;
        self.stream.flush()
    }

    /// Sends the zero-length terminating chunk.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Reads and discards whatever else the client already sent. Called after
/// an early error response when the request was rejected *before* being
/// fully consumed (over-long line, over-cap body): closing a socket with
/// unread bytes in its receive queue raises a TCP RST, which can destroy
/// the in-flight error response before the client reads it. Bounded by
/// bytes and wall clock, best-effort — worst case the client sees the
/// reset it would have seen anyway.
pub fn drain_before_close(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    let start = std::time::Instant::now();
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
        if drained > (1 << 20) || start.elapsed() > std::time::Duration::from_millis(500) {
            break;
        }
    }
}

/// Whether the peer has closed the connection (EOF on read). Used while a
/// long job runs: the request was fully consumed, so any read yielding
/// `Ok(0)` means the client went away and the job should be cancelled.
/// Non-blocking via a short read timeout; stray pipelined bytes are
/// ignored.
pub fn peer_disconnected(stream: &TcpStream) -> bool {
    let mut probe = [0u8; 16];
    let previous = stream.read_timeout().ok().flatten();
    if stream
        .set_read_timeout(Some(std::time::Duration::from_millis(1)))
        .is_err()
    {
        return false;
    }
    let gone = matches!((&mut (&*stream)).read(&mut probe), Ok(0));
    let _ = stream.set_read_timeout(previous);
    gone
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        read_request_from(&mut Cursor::new(raw), 1 << 20)
    }

    #[test]
    fn well_formed_requests_parse() {
        let req = parse(b"POST /v1/simulate HTTP/1.1\r\nHost: qdd\r\nContent-Length: 2\r\n\r\nhi")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/simulate");
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn newline_free_request_line_is_rejected_at_the_line_cap() {
        // A client streaming bytes with no newline must hit the cap, not
        // grow the server's buffer indefinitely.
        let raw = vec![b'A'; MAX_LINE_BYTES * 4];
        assert!(matches!(parse(&raw), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn oversized_single_header_is_rejected() {
        let mut raw = b"GET /healthz HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(std::iter::repeat(b'x').take(MAX_LINE_BYTES * 2));
        raw.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(parse(&raw), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn endless_headers_are_rejected_at_the_total_cap() {
        let mut raw = b"GET /healthz HTTP/1.1\r\n".to_vec();
        // Individually small headers whose sum exceeds the total cap.
        for i in 0..(2 * MAX_HEADER_BYTES / 8) {
            raw.extend_from_slice(format!("X-{i}: y\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(parse(&raw), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn declared_body_over_the_cap_is_a_typed_error() {
        let raw = b"POST /v1/shots HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert!(matches!(
            read_request_from(&mut Cursor::new(&raw[..]), 1024),
            Err(ParseError::BodyTooLarge { declared: 999999999, cap: 1024 })
        ));
    }
}
