//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors the
//! slice of proptest's API its property tests use: the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_filter`, range / tuple / [`strategy::Just`] /
//! [`collection::vec`] strategies, the `prop_oneof!` union, the
//! [`proptest!`] test macro with `#![proptest_config(..)]`, and the
//! `prop_assert!` family.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the case number and the test's
//!   deterministic seed; re-running reproduces it exactly, but it is not
//!   minimized.
//! * **Deterministic by default.** Each test derives its RNG seed from its
//!   module path and name, so failures are stable across runs and machines.
//! * Generation is uniform rather than proptest's bias-towards-edge-cases.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of [`Strategy::Value`].
    ///
    /// `generate` returns `None` when a `prop_filter` rejects the candidate;
    /// the runner retries with fresh randomness.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, reason: reason.into(), f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        #[allow(dead_code)]
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.generate(rng).filter(|v| (self.f)(v))
        }
    }

    /// A boxed strategy, used by `prop_oneof!` to erase option types.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            (**self).generate(rng)
        }
    }

    /// Box a strategy for storage in a [`Union`].
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Uniform choice between several strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    Some((self.start as i128 + offset as i128) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> Option<f64> {
            assert!(self.start < self.end, "empty range strategy");
            Some(self.start + (self.end - self.start) * rng.unit_f64())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> Option<f32> {
            assert!(self.start < self.end, "empty range strategy");
            Some(self.start + (self.end - self.start) * rng.unit_f64() as f32)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident/$v:ident),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($v,)+) = self;
                    Some(($($v.generate(rng)?,)+))
                }
            }
        };
    }

    impl_tuple_strategy!(A/a);
    impl_tuple_strategy!(A/a, B/b);
    impl_tuple_strategy!(A/a, B/b, C/c);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + if span > 1 { rng.below(span) } else { 0 };
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed property within a test case; created by `prop_assert!`.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 stream; seeded from the test's name so
    /// failures reproduce across runs without a persisted failure file.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Seed derived by hashing an identifier (typically
        /// `module_path!::test_name`).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a property inside a [`proptest!`] body; failure aborts the case
/// with a [`test_runner::TestCaseError`] rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of `prop_assert!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Inequality assertion counterpart of `prop_assert!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Uniform choice among several strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Define property tests. Mirrors the real macro's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(0.0f64..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategies = ($($strategy,)+);
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                match strategies.generate(&mut rng) {
                    ::std::option::Option::None => {
                        rejected += 1;
                        if rejected > config.cases.saturating_mul(100) + 1_000 {
                            panic!(
                                "proptest '{}': too many filter rejections ({})",
                                stringify!($name),
                                rejected,
                            );
                        }
                    }
                    ::std::option::Option::Some(($($arg,)+)) => {
                        let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                            (move || {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                        if let ::std::result::Result::Err(err) = outcome {
                            panic!(
                                "proptest '{}' failed at case {}/{}: {}",
                                stringify!($name),
                                passed + 1,
                                config.cases,
                                err,
                            );
                        }
                        passed += 1;
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn map_filter_compose(
            v in prop::collection::vec((0usize..5, 0usize..5), 4)
                .prop_map(|pairs| pairs.into_iter().map(|(a, b)| a + b).collect::<Vec<_>>())
                .prop_filter("non-empty", |v: &Vec<usize>| !v.is_empty())
        ) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!(v.iter().all(|&x| x <= 8));
        }

        #[test]
        fn oneof_covers_options(k in prop_oneof![Just(1usize), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&k));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        // No `#[test]` meta here: the fn is local to this test body, and
        // `#[test]` on inner items is ignored with a warning.
        proptest! {
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
