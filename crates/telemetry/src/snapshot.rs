//! Serializable snapshot of the metrics registry.

use crate::metrics::{Histogram, HistogramSnapshot, SpanAgg};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A point-in-time copy of every recorded metric, suitable for embedding in
/// reports (`--metrics-out`, `BENCH_current.json`).
///
/// Construction sorts all names, so two snapshots of identical recordings
/// serialize byte-identically regardless of recording order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Named monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Named gauges (last/max value), sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Named histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Per-span wall-time aggregates, sorted by name.
    pub spans: Vec<(String, SpanAgg)>,
    /// Events dropped after the buffer cap was hit.
    pub dropped_events: u64,
}

impl Snapshot {
    pub(crate) fn build(
        counters: &BTreeMap<&'static str, u64>,
        gauges: &BTreeMap<&'static str, f64>,
        histograms: &BTreeMap<&'static str, Histogram>,
        spans: &BTreeMap<&'static str, SpanAgg>,
        dropped_events: u64,
    ) -> Self {
        Snapshot {
            counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            gauges: gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: histograms
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
            spans: spans.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            dropped_events,
        }
    }

    /// Folds another snapshot into this one — the cross-thread aggregation
    /// step behind [`crate::merged_snapshot`]. Semantics per kind:
    ///
    /// * **counters** — summed (they are monotonic totals);
    /// * **gauges** — the maximum wins (levels and rates; the conservative
    ///   merge for high-water marks, and a defined one for everything else);
    /// * **histograms** — bucket-wise sum, min/max combined;
    /// * **spans** — counts and totals summed, `max_ns` combined;
    /// * **dropped_events** — summed.
    ///
    /// Names stay sorted, so merging preserves deterministic serialization.
    pub fn merge(&mut self, other: &Snapshot) {
        merge_sorted(&mut self.counters, &other.counters, |a, b| *a += b);
        merge_sorted(&mut self.gauges, &other.gauges, |a, b| *a = a.max(b));
        merge_sorted(&mut self.histograms, &other.histograms, |a, b| {
            a.merge(&b);
        });
        merge_sorted(&mut self.spans, &other.spans, |a, b| {
            a.count += b.count;
            a.total_ns = a.total_ns.saturating_add(b.total_ns);
            a.max_ns = a.max_ns.max(b.max_ns);
        });
        self.dropped_events += other.dropped_events;
    }

    /// The value of a counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// The value of a gauge, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The aggregate of a span name, if recorded.
    pub fn span_stats(&self, name: &str) -> Option<&SpanAgg> {
        self.spans.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Serializes the snapshot as a self-contained JSON document.
    ///
    /// Layout (stable, checked by `scripts/check_trace.py`):
    ///
    /// ```json
    /// {
    ///   "schema": "qdd-metrics-v1",
    ///   "counters": {"name": 3},
    ///   "gauges": {"name": 0.97},
    ///   "histograms": {"name": {"count":2,"sum":9,"min":4,"max":5,
    ///                           "buckets":[[4,7,2]]}},
    ///   "spans": {"name": {"count":1,"total_ns":1200,"max_ns":1200}},
    ///   "dropped_events": 0
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"schema\": \"qdd-metrics-v1\",\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            write_json_string(&mut s, name);
            let _ = write!(s, ": {v}");
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            write_json_string(&mut s, name);
            s.push_str(": ");
            crate::Value::F64(*v).write_json(&mut s);
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            write_json_string(&mut s, name);
            let _ = write!(
                s,
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                h.count, h.sum, h.min, h.max
            );
            for (j, (lo, hi, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{lo},{hi},{c}]");
            }
            s.push_str("]}");
        }
        s.push_str("\n  },\n  \"spans\": {");
        for (i, (name, a)) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            write_json_string(&mut s, name);
            let _ = write!(
                s,
                ": {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                a.count, a.total_ns, a.max_ns
            );
        }
        let _ = write!(
            s,
            "\n  }},\n  \"dropped_events\": {}\n}}\n",
            self.dropped_events
        );
        s
    }
}

/// Merges the sorted name/value list `src` into the sorted list `dst`,
/// combining values for shared names with `fold` and inserting the rest.
/// Both lists stay sorted by name.
fn merge_sorted<V: Clone>(
    dst: &mut Vec<(String, V)>,
    src: &[(String, V)],
    mut fold: impl FnMut(&mut V, V),
) {
    for (name, value) in src {
        match dst.binary_search_by(|(k, _)| k.as_str().cmp(name.as_str())) {
            Ok(i) => fold(&mut dst[i].1, value.clone()),
            Err(i) => dst.insert(i, (name.clone(), value.clone())),
        }
    }
}

/// Appends `text` to `out` as a JSON string literal with the required
/// escapes.
pub(crate) fn write_json_string(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes() {
        let mut s = String::new();
        write_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn empty_snapshot_serializes() {
        let snap = Snapshot::default();
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"qdd-metrics-v1\""));
        assert!(json.contains("\"counters\": {"));
        assert!(json.contains("\"dropped_events\": 0"));
    }

    #[test]
    fn snapshot_is_deterministic_across_recording_order() {
        // Two collectors fed the same data in different orders must
        // serialize byte-identically: BTreeMap ordering is the contract.
        let mut a: BTreeMap<&'static str, u64> = BTreeMap::new();
        a.insert("zeta", 1);
        a.insert("alpha", 2);
        let mut b: BTreeMap<&'static str, u64> = BTreeMap::new();
        b.insert("alpha", 2);
        b.insert("zeta", 1);
        let empty_g = BTreeMap::new();
        let empty_h = BTreeMap::new();
        let empty_s = BTreeMap::new();
        let sa = Snapshot::build(&a, &empty_g, &empty_h, &empty_s, 0);
        let sb = Snapshot::build(&b, &empty_g, &empty_h, &empty_s, 0);
        assert_eq!(sa, sb);
        assert_eq!(sa.to_json(), sb.to_json());
        assert!(sa.to_json().find("alpha").unwrap() < sa.to_json().find("zeta").unwrap());
    }
}
