//! Time-resolved execution timeline: a bounded, thread-mergeable ring of
//! per-operation records.
//!
//! The metrics registry answers *how much* a run cost; the timeline answers
//! *when* — which op blew the diagram up, when GC and approximation fired
//! relative to the node curve, how per-level structure evolved. Each applied
//! operation contributes one [`TimelineRecord`] carrying delta-attributed
//! counters (nodes allocated/freed, compute/gate-cache hits and misses
//! between the op's start and end) plus absolute gauges (live nodes,
//! complex-table size), optional per-level histograms, folded-in engine
//! events (GC, approximation rounds, dense fallback), and — every
//! `snapshot_stride` ops — a full structural snapshot of the diagram as a
//! pre-serialized graph JSON document.
//!
//! # Discipline
//!
//! Recording follows the same contract as the metrics layer: off by
//! default, toggled per thread, and every probe pays exactly one
//! thread-local boolean branch when disabled ([`enabled`]). The buffer is
//! bounded at [`MAX_TIMELINE_RECORDS`]; past the cap, records are counted
//! as dropped (drop-newest) instead of stored.
//!
//! # Multi-threaded runs
//!
//! Worker threads record into thread-local buffers and [`publish`] them
//! before exiting; the coordinator calls [`merged_drain`], which combines
//! published and local records sorted by `(worker, run, seq)`. Worker ids
//! are assigned by the caller (the shot engine numbers workers by their
//! shot-range position), so the merged order is deterministic regardless
//! of thread scheduling.

use crate::event::Value;
use crate::snapshot::write_json_string;
use crate::Event;
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// Hard cap on buffered timeline records per thread; beyond it records are
/// counted as dropped instead of stored, bounding memory on very long runs.
pub const MAX_TIMELINE_RECORDS: usize = 1 << 16;

/// An engine event (GC run, approximation round, dense fallback) folded
/// into the op record it occurred under, with its original typed fields.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimelineEvent {
    /// Event kind, e.g. `"gc"`, `"approx"`, `"dense_fallback"`.
    pub kind: &'static str,
    /// Typed payload fields, in recording order.
    pub fields: Vec<(&'static str, Value)>,
}

/// One applied operation's worth of timeline data.
///
/// `seq`, `worker`, and `ts_us` are stamped by [`record`]; everything else
/// is filled by the recorder at the op boundary. Counter fields are
/// *deltas* over the op window (they telescope: summing a field across all
/// records of a run reproduces the run-level total), gauge fields are
/// absolute readings at the op's end.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimelineRecord {
    /// Per-thread monotonic sequence number (stamped by [`record`]).
    pub seq: u64,
    /// Worker id (0 = coordinator; shot workers are numbered from 1 in
    /// shot-range order). Stamped by [`record`] from [`set_worker`].
    pub worker: u32,
    /// Run (restart) index within the worker — distinguishes replays of
    /// the same circuit in shot loops.
    pub run: u32,
    /// Index of the op in the circuit's program order.
    pub op_index: u64,
    /// Op kind (gate name, `"measure"`, `"reset"`, `"barrier"`, …).
    pub op: &'static str,
    /// Qubits the op touches (target first, then controls).
    pub qubits: Vec<u16>,
    /// Microseconds since this thread's timeline epoch (stamped by
    /// [`record`]; monotonic per thread).
    pub ts_us: u64,
    /// Wall time the op took, in microseconds.
    pub dur_us: u64,
    /// Live vector nodes reachable from the state after the op.
    pub vec_nodes: u64,
    /// Live matrix nodes (absolute estimate) after the op.
    pub mat_nodes: u64,
    /// Package-wide live-node high-water mark after the op.
    pub peak_nodes: u64,
    /// Nodes created during the op (delta of the birth counter).
    pub nodes_allocated: u64,
    /// Nodes reclaimed during the op (births minus live-estimate growth).
    pub nodes_freed: u64,
    /// Distinct interned complex values after the op.
    pub complex_entries: u64,
    /// Compute-table hits attributed to this op (delta).
    pub compute_hits: u64,
    /// Compute-table misses attributed to this op (delta).
    pub compute_misses: u64,
    /// Gate-DD-cache hits attributed to this op (delta).
    pub gate_hits: u64,
    /// Gate-DD-cache misses attributed to this op (delta).
    pub gate_misses: u64,
    /// Per-level node counts after the op (`levels[i]` = nodes labelled
    /// qubit `i`); empty when level profiling is off.
    pub levels: Vec<u32>,
    /// Engine events that fired during the op window.
    pub events: Vec<TimelineEvent>,
    /// Structural snapshot: a pre-serialized graph JSON document
    /// (`DdGraph::to_json`), captured every `snapshot_stride` ops.
    pub snapshot: Option<String>,
}

/// Per-thread timeline state.
struct TimelineState {
    epoch: Instant,
    records: Vec<TimelineRecord>,
    dropped: u64,
    seq: u64,
    worker: u32,
    snapshot_stride: u32,
    runs: u32,
}

impl TimelineState {
    fn new() -> Self {
        TimelineState {
            epoch: Instant::now(),
            records: Vec::new(),
            dropped: 0,
            seq: 0,
            worker: 0,
            snapshot_stride: 0,
            runs: 0,
        }
    }
}

thread_local! {
    /// The hot-path toggle, split from the state so the disabled check is a
    /// plain `Cell` read with no `RefCell` borrow.
    static TL_ENABLED: Cell<bool> = const { Cell::new(false) };
    static TL_STATE: RefCell<TimelineState> = RefCell::new(TimelineState::new());
}

/// Records published by finished worker threads, with their dropped counts.
/// Off the hot path: touched only by [`publish`] and [`merged_drain`].
static PUBLISHED_RECORDS: Mutex<(Vec<TimelineRecord>, u64)> = Mutex::new((Vec::new(), 0));

/// Turns timeline recording on or off for the current thread. Enabling does
/// not clear previously recorded data; call [`reset`] for a fresh start.
pub fn set_enabled(on: bool) {
    TL_ENABLED.with(|e| e.set(on));
}

/// Whether timeline recording is on for the current thread — the single
/// branch every recording point pays when the timeline is off.
#[inline]
pub fn enabled() -> bool {
    TL_ENABLED.with(|e| e.get())
}

/// Clears all buffered records, restarts the timeline clock, and resets the
/// sequence counter, worker id, and snapshot stride. The enabled flag is
/// untouched.
pub fn reset() {
    TL_STATE.with(|s| *s.borrow_mut() = TimelineState::new());
}

/// Sets the worker id stamped onto subsequent records (0 = coordinator).
pub fn set_worker(worker: u32) {
    TL_STATE.with(|s| s.borrow_mut().worker = worker);
}

/// Sets the structural-snapshot stride: every `stride`-th op (counting from
/// the first) captures a full diagram snapshot. 0 disables snapshots.
pub fn set_snapshot_stride(stride: u32) {
    TL_STATE.with(|s| s.borrow_mut().snapshot_stride = stride);
}

/// Allocates the next run id on this thread. Recorders stamp one run id
/// per simulation pass so op indices stay monotonic within each
/// `(worker, run)` pair even when a thread executes several passes (the
/// initial run plus the shot engine, or per-shot re-execution). Returns 0
/// without consuming an id when recording is disabled.
pub fn next_run() -> u32 {
    if !enabled() {
        return 0;
    }
    TL_STATE.with(|s| {
        let mut s = s.borrow_mut();
        let run = s.runs;
        s.runs += 1;
        run
    })
}

/// The current thread's snapshot stride (0 = snapshots off).
pub fn snapshot_stride() -> u32 {
    if !enabled() {
        return 0;
    }
    TL_STATE.with(|s| s.borrow().snapshot_stride)
}

/// Microseconds since this thread's timeline epoch (monotonic per thread).
pub fn now_us() -> u64 {
    TL_STATE.with(|s| s.borrow().epoch.elapsed().as_micros() as u64)
}

/// Buffers one record, stamping its `seq`, `worker`, and `ts_us`. No-op
/// (one branch) when recording is disabled; counted as dropped past
/// [`MAX_TIMELINE_RECORDS`].
pub fn record(mut rec: TimelineRecord) {
    if !enabled() {
        return;
    }
    TL_STATE.with(|s| {
        let mut s = s.borrow_mut();
        rec.seq = s.seq;
        s.seq += 1;
        rec.worker = s.worker;
        rec.ts_us = s.epoch.elapsed().as_micros() as u64;
        if s.records.len() < MAX_TIMELINE_RECORDS {
            s.records.push(rec);
        } else {
            s.dropped += 1;
        }
    });
}

/// Number of records dropped on this thread after the buffer cap was hit.
pub fn dropped() -> u64 {
    TL_STATE.with(|s| s.borrow().dropped)
}

/// Removes and returns this thread's buffered records plus its dropped
/// count. The sequence counter keeps running, so later records still sort
/// after drained ones.
pub fn drain() -> (Vec<TimelineRecord>, u64) {
    TL_STATE.with(|s| {
        let mut s = s.borrow_mut();
        let recs = std::mem::take(&mut s.records);
        let dropped = std::mem::replace(&mut s.dropped, 0);
        (recs, dropped)
    })
}

/// Publishes this thread's buffered records into the process-wide registry
/// and clears them locally, so repeated publishing never double-counts.
/// Worker threads call this before exiting; the coordinator then sees their
/// records via [`merged_drain`].
pub fn publish() {
    let (recs, dropped) = drain();
    if recs.is_empty() && dropped == 0 {
        return;
    }
    let mut published = PUBLISHED_RECORDS.lock().unwrap();
    published.0.extend(recs);
    published.1 += dropped;
}

/// Drains everything published by workers plus the current thread's own
/// buffer, sorted by `(worker, run, seq)` — deterministic for any thread
/// schedule, because worker ids are assigned by shot-range position and
/// `seq` is per-thread monotonic. Returns the records and the total
/// dropped count.
pub fn merged_drain() -> (Vec<TimelineRecord>, u64) {
    let (mut recs, mut dropped) = {
        let mut published = PUBLISHED_RECORDS.lock().unwrap();
        (std::mem::take(&mut published.0), std::mem::replace(&mut published.1, 0))
    };
    let (local, local_dropped) = drain();
    recs.extend(local);
    dropped += local_dropped;
    recs.sort_by_key(|r| (r.worker, r.run, r.seq));
    (recs, dropped)
}

/// Clears the process-wide published registry. Thread-local buffers are
/// untouched; pair with [`reset`] for a fully fresh start.
pub fn reset_published() {
    let mut published = PUBLISHED_RECORDS.lock().unwrap();
    published.0.clear();
    published.1 = 0;
}

/// Run-level metadata for the JSONL header line.
#[derive(Clone, Debug, Default)]
pub struct TimelineMeta {
    /// Workload / circuit name.
    pub circuit: String,
    /// Number of qubits in the circuit.
    pub qubits: usize,
    /// Number of operations in the circuit program.
    pub ops: usize,
    /// Structural-snapshot stride the run used (0 = off).
    pub snapshot_stride: u32,
    /// Number of distinct workers that contributed records.
    pub workers: u32,
}

/// Serializes a merged timeline to the `qdd-timeline-v1` JSONL format.
///
/// Line 1 is the header:
///
/// ```json
/// {"schema":"qdd-timeline-v1","circuit":"qft16","qubits":16,"ops":152,
///  "snapshot_stride":16,"workers":1,"records":152,"dropped_records":0}
/// ```
///
/// followed by one line per record (`"type":"op"`), one line per
/// structural snapshot (`"type":"snapshot"`, referencing the op it was
/// taken after via `worker`/`run`/`op_index`, with the graph document
/// inlined under `"graph"`), and — when `spans` is non-empty — one line
/// per completed telemetry span (`"type":"span"`), the flamegraph source.
/// The stream is append-friendly: each line is a complete JSON document,
/// so `qdd serve` can tail it.
pub fn to_jsonl(meta: &TimelineMeta, records: &[TimelineRecord], dropped: u64, spans: &[Event]) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"qdd-timeline-v1\",\"circuit\":");
    write_json_string(&mut out, &meta.circuit);
    let _ = writeln!(
        out,
        ",\"qubits\":{},\"ops\":{},\"snapshot_stride\":{},\"workers\":{},\"records\":{},\"dropped_records\":{}}}",
        meta.qubits, meta.ops, meta.snapshot_stride, meta.workers, records.len(), dropped
    );
    for r in records {
        let _ = write!(
            out,
            "{{\"type\":\"op\",\"seq\":{},\"worker\":{},\"run\":{},\"op_index\":{},\"op\":",
            r.seq, r.worker, r.run, r.op_index
        );
        write_json_string(&mut out, r.op);
        out.push_str(",\"qubits\":[");
        for (i, q) in r.qubits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{q}");
        }
        let _ = write!(
            out,
            "],\"ts_us\":{},\"dur_us\":{},\"vec_nodes\":{},\"mat_nodes\":{},\"peak_nodes\":{},\
             \"nodes_allocated\":{},\"nodes_freed\":{},\"complex_entries\":{},\
             \"compute_hits\":{},\"compute_misses\":{},\"gate_hits\":{},\"gate_misses\":{}",
            r.ts_us,
            r.dur_us,
            r.vec_nodes,
            r.mat_nodes,
            r.peak_nodes,
            r.nodes_allocated,
            r.nodes_freed,
            r.complex_entries,
            r.compute_hits,
            r.compute_misses,
            r.gate_hits,
            r.gate_misses
        );
        if !r.levels.is_empty() {
            out.push_str(",\"levels\":[");
            for (i, n) in r.levels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{n}");
            }
            out.push(']');
        }
        if !r.events.is_empty() {
            out.push_str(",\"events\":[");
            for (i, ev) in r.events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"kind\":");
                write_json_string(&mut out, ev.kind);
                for (key, value) in &ev.fields {
                    out.push(',');
                    write_json_string(&mut out, key);
                    out.push(':');
                    value.write_json(&mut out);
                }
                out.push('}');
            }
            out.push(']');
        }
        out.push_str("}\n");
    }
    // Snapshot lines follow the op lines so a streaming validator has seen
    // the op a snapshot references by the time it reads it.
    for r in records {
        if let Some(graph) = &r.snapshot {
            let _ = writeln!(
                out,
                "{{\"type\":\"snapshot\",\"worker\":{},\"run\":{},\"op_index\":{},\"nodes\":{},\"graph\":{graph}}}",
                r.worker, r.run, r.op_index, r.vec_nodes
            );
        }
    }
    for ev in spans {
        let Some(dur_us) = ev.dur_us else { continue };
        let _ = write!(out, "{{\"type\":\"span\",\"name\":");
        write_json_string(&mut out, ev.name);
        let _ = writeln!(out, ",\"ts_us\":{},\"dur_us\":{dur_us},\"depth\":{}}}", ev.ts_us, ev.depth);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op_index: u64, op: &'static str) -> TimelineRecord {
        TimelineRecord {
            op_index,
            op,
            qubits: vec![0],
            vec_nodes: 3,
            ..TimelineRecord::default()
        }
    }

    #[test]
    fn disabled_records_nothing() {
        set_enabled(false);
        reset();
        record(rec(0, "h"));
        assert_eq!(drain().0.len(), 0);
        assert_eq!(dropped(), 0);
    }

    #[test]
    fn records_are_stamped_in_sequence() {
        set_enabled(true);
        reset();
        set_worker(2);
        record(rec(0, "h"));
        record(rec(1, "cx"));
        let (recs, dropped) = drain();
        set_enabled(false);
        assert_eq!(dropped, 0);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].seq, 1);
        assert!(recs[1].ts_us >= recs[0].ts_us, "timestamps are monotonic");
        assert_eq!(recs[0].worker, 2);
    }

    #[test]
    fn buffer_caps_and_counts_drops() {
        set_enabled(true);
        reset();
        TL_STATE.with(|s| {
            let mut s = s.borrow_mut();
            for _ in 0..MAX_TIMELINE_RECORDS {
                s.records.push(TimelineRecord::default());
            }
        });
        record(rec(0, "h"));
        assert_eq!(dropped(), 1);
        assert_eq!(drain().0.len(), MAX_TIMELINE_RECORDS);
        set_enabled(false);
    }

    #[test]
    fn publish_and_merged_drain_order_by_worker_then_seq() {
        set_enabled(true);
        reset();
        reset_published();
        let handles: Vec<_> = (1..=2u32)
            .map(|w| {
                std::thread::spawn(move || {
                    set_enabled(true);
                    set_worker(w);
                    record(rec(0, "h"));
                    record(rec(1, "cx"));
                    publish();
                    assert_eq!(drain().0.len(), 0, "publish drained the buffer");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        record(rec(0, "measure")); // coordinator's own record (worker 0)
        let (recs, dropped) = merged_drain();
        set_enabled(false);
        assert_eq!(dropped, 0);
        let order: Vec<(u32, u64)> = recs.iter().map(|r| (r.worker, r.seq)).collect();
        assert_eq!(order, vec![(0, 0), (1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn jsonl_has_header_ops_snapshots_and_spans() {
        let mut a = rec(0, "h");
        a.levels = vec![1, 2];
        a.events.push(TimelineEvent {
            kind: "gc",
            fields: vec![("nodes_freed", Value::U64(7))],
        });
        let mut b = rec(1, "cx");
        b.snapshot = Some("{\"kind\":\"vector\"}".to_string());
        let spans = vec![Event {
            ts_us: 5,
            dur_us: Some(11),
            name: "sim.run",
            depth: 0,
            fields: Vec::new(),
        }];
        let meta = TimelineMeta {
            circuit: "bell".to_string(),
            qubits: 2,
            ops: 2,
            snapshot_stride: 1,
            workers: 1,
        };
        let text = to_jsonl(&meta, &[a, b], 3, &spans);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "header + 2 ops + 1 snapshot + 1 span");
        assert!(lines[0].contains("\"schema\":\"qdd-timeline-v1\""));
        assert!(lines[0].contains("\"dropped_records\":3"));
        assert!(lines[1].contains("\"type\":\"op\""));
        assert!(lines[1].contains("\"levels\":[1,2]"));
        assert!(lines[1].contains("\"events\":[{\"kind\":\"gc\",\"nodes_freed\":7}]"));
        assert!(lines[3].contains("\"type\":\"snapshot\""));
        assert!(lines[3].contains("\"graph\":{\"kind\":\"vector\"}"));
        assert!(lines[4].contains("\"type\":\"span\""));
        // Every line is a complete JSON object (stream-appendable).
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }
}
