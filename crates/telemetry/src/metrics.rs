//! Metric primitives: log₂-bucketed histograms and span aggregates.

/// A log₂-bucketed histogram of `u64` observations.
///
/// Bucket `0` counts exact zeros; bucket `i ≥ 1` counts values in
/// `[2^(i-1), 2^i)`. Sixty-five buckets cover the full `u64` range, so
/// recording never saturates or clips.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

/// The bucket index of a value: 0 for 0, otherwise `1 + floor(log2 v)`.
#[inline]
pub(crate) fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The `[lo, hi]` value range a bucket index covers.
pub(crate) fn bucket_bounds(index: usize) -> (u64, u64) {
    if index == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (index - 1);
        let hi = if index >= 64 { u64::MAX } else { (1u64 << index) - 1 };
        (lo, hi)
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Serializable snapshot with only the populated buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| {
                    let (lo, hi) = bucket_bounds(i);
                    (lo, hi, c)
                })
                .collect(),
        }
    }
}

/// Snapshot of one histogram: summary statistics plus the non-empty
/// `(lo, hi, count)` buckets in ascending order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Populated buckets as `(lo, hi, count)`.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    /// Folds another snapshot of the same metric into this one: counts and
    /// sums add (saturating), min/max combine, and buckets merge by their
    /// `(lo, hi)` range, staying in ascending order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for &(lo, hi, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&lo, |&(l, _, _)| l) {
                Ok(i) => self.buckets[i].2 += c,
                Err(i) => self.buckets.insert(i, (lo, hi, c)),
            }
        }
    }
}

/// Wall-time aggregate of one span name.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Times the span was opened and closed.
    pub count: u64,
    /// Total nanoseconds across all closings (saturating).
    pub total_ns: u64,
    /// Longest single closing, nanoseconds.
    pub max_ns: u64,
}

impl SpanAgg {
    /// Folds one closed span into the aggregate.
    pub fn record(&mut self, elapsed_ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(elapsed_ns);
        self.max_ns = self.max_ns.max(elapsed_ns);
    }

    /// Mean nanoseconds per closing (0 when never closed).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact() {
        // The canonical edge cases: zero, one, powers of two and their
        // neighbours, and the extremes.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1 << 63), 64);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..=64usize {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_of(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_of(hi), i, "upper bound of bucket {i}");
            if lo > 1 {
                assert_eq!(bucket_of(lo - 1), i - 1, "below bucket {i}");
            }
        }
    }

    #[test]
    fn histogram_tracks_summary_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 5, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1007);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        // 0 → bucket 0; 1,1 → bucket 1; 5 → bucket 3; 1000 → bucket 10.
        assert_eq!(
            s.buckets,
            vec![(0, 0, 1), (1, 1, 2), (4, 7, 1), (512, 1023, 1)]
        );
    }

    #[test]
    fn histogram_saturates_instead_of_overflowing() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn span_agg_means() {
        let mut a = SpanAgg::default();
        assert_eq!(a.mean_ns(), 0);
        a.record(10);
        a.record(30);
        assert_eq!(a.count, 2);
        assert_eq!(a.total_ns, 40);
        assert_eq!(a.max_ns, 30);
        assert_eq!(a.mean_ns(), 20);
    }
}
