//! Structured events: a timestamp, a name, and typed key–value fields.

/// A typed field value on an [`Event`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Short string (gate names, outcome labels).
    Str(String),
}

impl Value {
    /// Serializes the value as a JSON literal into `out`.
    pub(crate) fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            // JSON has no NaN/Inf; encode as null rather than corrupt the
            // document.
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => crate::snapshot::write_json_string(out, s),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One recorded occurrence: an instant (measurement outcome, pressure GC)
/// or a closed span (with duration).
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Microseconds since the collector epoch (start of recording).
    pub ts_us: u64,
    /// `Some(duration)` for span events, `None` for instants.
    pub dur_us: Option<u64>,
    /// Stable event name (dot-separated, e.g. `"sim.op"`).
    pub name: &'static str,
    /// Span nesting depth at emission.
    pub depth: u16,
    /// Typed payload fields, in insertion order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// The value of a field, if present.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Builder returned by [`emit`](crate::emit); records the event when
/// dropped. Inert when telemetry is disabled.
pub struct EventBuilder {
    ev: Option<Event>,
}

impl EventBuilder {
    pub(crate) fn inert() -> Self {
        EventBuilder { ev: None }
    }

    pub(crate) fn new(ev: Event) -> Self {
        EventBuilder { ev: Some(ev) }
    }

    /// Attaches a typed field. The event is recorded when the builder
    /// drops, so discarding the return value ends the chain.
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if let Some(ev) = &mut self.ev {
            ev.fields.push((key, value.into()));
        }
        self
    }
}

impl Drop for EventBuilder {
    fn drop(&mut self) {
        if let Some(ev) = self.ev.take() {
            crate::record_event(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_json_forms() {
        let cases: &[(Value, &str)] = &[
            (Value::U64(7), "7"),
            (Value::I64(-3), "-3"),
            (Value::F64(1.5), "1.5"),
            (Value::F64(f64::NAN), "null"),
            (Value::Bool(true), "true"),
            (Value::Str("a\"b".into()), "\"a\\\"b\""),
        ];
        for (v, want) in cases {
            let mut out = String::new();
            v.write_json(&mut out);
            assert_eq!(&out, want);
        }
    }

    #[test]
    fn field_lookup() {
        let ev = Event {
            ts_us: 0,
            dur_us: None,
            name: "e",
            depth: 0,
            fields: vec![("a", Value::U64(1)), ("b", Value::Bool(false))],
        };
        assert_eq!(ev.field("a"), Some(&Value::U64(1)));
        assert_eq!(ev.field("missing"), None);
    }
}
