//! Output sinks: JSONL event streams, Chrome `trace_event` JSON, and the
//! human-readable profile table.

use crate::event::Event;
use crate::snapshot::{write_json_string, Snapshot};
use std::fmt::Write as _;

/// Renders events as JSON Lines: one self-contained JSON object per line,
/// suitable for `jq`, log shippers, or incremental parsing.
///
/// Line layout (checked by `scripts/check_trace.py`):
///
/// ```json
/// {"ts_us":12,"kind":"span","name":"core.mat_vec","depth":1,"dur_us":3,"args":{}}
/// {"ts_us":15,"kind":"instant","name":"sim.op","depth":0,"args":{"op_index":2}}
/// ```
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        out.push_str("{\"ts_us\":");
        let _ = write!(out, "{}", ev.ts_us);
        out.push_str(",\"kind\":");
        out.push_str(if ev.dur_us.is_some() {
            "\"span\""
        } else {
            "\"instant\""
        });
        out.push_str(",\"name\":");
        write_json_string(&mut out, ev.name);
        let _ = write!(out, ",\"depth\":{}", ev.depth);
        if let Some(dur) = ev.dur_us {
            let _ = write!(out, ",\"dur_us\":{dur}");
        }
        out.push_str(",\"args\":");
        write_args(&mut out, ev);
        out.push_str("}\n");
    }
    out
}

/// Renders events in the Chrome `trace_event` format (the
/// `{"traceEvents": […]}` object form), loadable in `chrome://tracing`,
/// Perfetto, or Speedscope for flamegraph-style inspection.
///
/// Spans become complete (`"ph":"X"`) events; instants become
/// thread-scoped instant (`"ph":"i"`) events.
pub fn events_to_chrome_trace(events: &[Event]) -> String {
    events_to_chrome_trace_named(events, None, &[])
}

/// [`events_to_chrome_trace`] plus Chrome metadata (`"ph":"M"`) records:
/// a `process_name` record naming the workload and `thread_name` records
/// for the coordinator (tid 1) and each registered worker (worker index
/// `i` becomes tid `i + 1`), so multi-threaded traces read with labelled
/// lanes in `chrome://tracing` / Perfetto.
pub fn events_to_chrome_trace_named(
    events: &[Event],
    process_name: Option<&str>,
    workers: &[(u32, String)],
) -> String {
    let mut out = String::with_capacity(events.len() * 112 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let meta = |out: &mut String, name: &str, tid: u64, value: &str, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        let _ = write!(out, "\n{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":");
        write_json_string(out, value);
        out.push_str("}}");
    };
    if let Some(process) = process_name {
        meta(&mut out, "process_name", 1, process, &mut first);
        meta(&mut out, "thread_name", 1, "coordinator", &mut first);
    }
    for (index, worker) in workers {
        meta(&mut out, "thread_name", u64::from(*index) + 1, worker, &mut first);
    }
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"name\":");
        write_json_string(&mut out, ev.name);
        match ev.dur_us {
            Some(dur) => {
                let _ = write!(out, ",\"ph\":\"X\",\"ts\":{},\"dur\":{}", ev.ts_us, dur);
            }
            None => {
                let _ = write!(out, ",\"ph\":\"i\",\"ts\":{},\"s\":\"t\"", ev.ts_us);
            }
        }
        out.push_str(",\"pid\":1,\"tid\":1,\"args\":");
        write_args(&mut out, ev);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

fn write_args(out: &mut String, ev: &Event) {
    out.push('{');
    for (i, (key, value)) in ev.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(out, key);
        out.push(':');
        value.write_json(out);
    }
    out.push('}');
}

/// Formats a nanosecond duration for the profile table (aligned, 4
/// significant-ish digits: `431ns`, `12.3µs`, `45.6ms`, `1.23s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Renders the per-phase profile summary table (`--profile`): span names
/// sorted by total wall time, with call counts, total, mean, and max.
pub fn render_profile(snapshot: &Snapshot) -> String {
    let mut rows: Vec<_> = snapshot.spans.iter().collect();
    rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));
    let name_w = rows
        .iter()
        .map(|(n, _)| n.len())
        .chain(std::iter::once("phase".len()))
        .max()
        .unwrap_or(5)
        .min(40);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$} {:>9} {:>10} {:>10} {:>10}",
        "phase", "calls", "total", "mean", "max"
    );
    for (name, agg) in rows {
        let _ = writeln!(
            out,
            "{:<name_w$} {:>9} {:>10} {:>10} {:>10}",
            name,
            agg.count,
            fmt_ns(agg.total_ns),
            fmt_ns(agg.mean_ns()),
            fmt_ns(agg.max_ns),
        );
    }
    if snapshot.spans.is_empty() {
        out.push_str("(no spans recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;
    use crate::metrics::SpanAgg;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                ts_us: 10,
                dur_us: Some(5),
                name: "core.mat_vec",
                depth: 1,
                fields: vec![("n", Value::U64(4))],
            },
            Event {
                ts_us: 20,
                dur_us: None,
                name: "sim.op",
                depth: 0,
                fields: vec![("gate", Value::Str("h".into()))],
            },
        ]
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let text = events_to_jsonl(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"span\""));
        assert!(lines[0].contains("\"dur_us\":5"));
        assert!(lines[1].contains("\"kind\":\"instant\""));
        assert!(lines[1].contains("\"gate\":\"h\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn chrome_trace_has_required_keys() {
        let text = events_to_chrome_trace(&sample_events());
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"pid\":1"));
        assert!(text.contains("\"ts\":10"));
        assert!(text.contains("\"dur\":5"));
    }

    #[test]
    fn chrome_trace_metadata_records_name_threads() {
        let workers = vec![(1, "shot-worker-1".to_string()), (2, "shot-worker-2".to_string())];
        let text = events_to_chrome_trace_named(&sample_events(), Some("qft16"), &workers);
        assert!(text.contains("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"qft16\"}"));
        assert!(text.contains("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"coordinator\"}"));
        assert!(text.contains("\"tid\":2,\"args\":{\"name\":\"shot-worker-1\"}"));
        assert!(text.contains("\"tid\":3,\"args\":{\"name\":\"shot-worker-2\"}"));
        // Span/instant events still present after the metadata prologue.
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"i\""));
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_ns(431), "431ns");
        assert_eq!(fmt_ns(12_300), "12.3µs");
        assert_eq!(fmt_ns(45_600_000), "45.6ms");
        assert_eq!(fmt_ns(1_230_000_000), "1.23s");
    }

    #[test]
    fn profile_table_sorts_by_total_time() {
        let snap = Snapshot {
            spans: vec![
                (
                    "fast".to_string(),
                    SpanAgg { count: 10, total_ns: 1_000, max_ns: 200 },
                ),
                (
                    "slow".to_string(),
                    SpanAgg { count: 1, total_ns: 9_000_000, max_ns: 9_000_000 },
                ),
            ],
            ..Snapshot::default()
        };
        let table = render_profile(&snap);
        let slow_at = table.find("slow").unwrap();
        let fast_at = table.find("fast").unwrap();
        assert!(slow_at < fast_at, "slowest phase first:\n{table}");
        assert!(table.contains("calls"));
    }
}
