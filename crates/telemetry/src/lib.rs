//! Structured tracing, metrics, and profiling hooks for the qdd engine.
//!
//! Decision-diagram performance is dominated by invisible dynamics — unique
//! and compute-table hit rates, garbage-collection pauses, complex-table
//! growth — that wall time alone cannot explain. This crate gives every
//! layer of the engine one uniform observability surface:
//!
//! * a **metrics registry** of named counters, gauges, and log₂-bucketed
//!   histograms ([`counter_add`], [`gauge_set`], [`observe`]);
//! * lightweight **spans** — RAII guards over a monotonic clock that
//!   aggregate per-phase wall time and emit structured events
//!   ([`span()`]);
//! * structured **events** with typed fields ([`emit`]), drained into
//!   pluggable sinks: JSONL ([`sink::events_to_jsonl`]), Chrome
//!   `trace_event` JSON ([`sink::events_to_chrome_trace`]), and a
//!   human-readable profile table ([`sink::render_profile`]).
//!
//! # Runtime toggle and overhead
//!
//! Recording is off by default. Every recording entry point starts with a
//! single thread-local boolean check ([`enabled`]); with telemetry off, the
//! instrumented hot paths pay exactly that branch — no clock reads, no map
//! lookups, no allocation. Enabling is per-thread ([`set_enabled`]), which
//! keeps parallel test runs isolated from one another.
//!
//! # Multi-threaded runs
//!
//! Worker threads record into their own thread-local registries — no locks
//! or shared state on the hot path. Before exiting, a worker calls
//! [`publish`] to fold its metrics into a process-wide merged registry; the
//! coordinating thread then reads [`merged_snapshot`], which combines the
//! published registry with its own thread-local recordings. Counters and
//! histogram/span aggregates add across threads, gauges take the maximum
//! (see [`Snapshot::merge`]). Events stay thread-local: their timestamps
//! are relative to each thread's own epoch and cannot be interleaved
//! meaningfully.
//!
//! # Example
//!
//! ```
//! qdd_telemetry::set_enabled(true);
//! {
//!     let mut s = qdd_telemetry::span("phase.work");
//!     s.field("items", 3u64);
//!     qdd_telemetry::counter_add("work.items", 3);
//! }
//! let snap = qdd_telemetry::snapshot();
//! assert_eq!(snap.counter("work.items"), Some(3));
//! assert_eq!(snap.span_stats("phase.work").unwrap().count, 1);
//! let events = qdd_telemetry::drain_events();
//! assert_eq!(events.len(), 1);
//! qdd_telemetry::set_enabled(false);
//! ```

mod event;
mod metrics;
pub mod sink;
mod snapshot;
pub mod timeline;

pub use event::{Event, EventBuilder, Value};
pub use metrics::{Histogram, HistogramSnapshot, SpanAgg};
pub use snapshot::Snapshot;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Hard cap on buffered events; beyond it events are counted as dropped
/// instead of stored, bounding memory on very long traced runs.
pub const MAX_EVENTS: usize = 1 << 20;

/// Process-wide registry of metrics published by finished worker threads,
/// keyed by publication **scope** (see [`set_scope`]). Scope `0` is the
/// default process-wide scope; servers give each request its own scope so
/// concurrent jobs' metrics never bleed into each other's snapshots. Off
/// the hot path: touched only by [`publish`] and the snapshot readers.
static PUBLISHED: Mutex<BTreeMap<u64, Snapshot>> = Mutex::new(BTreeMap::new());

/// Source of fresh scope ids ([`next_scope_id`]); `0` stays the default.
static NEXT_SCOPE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

thread_local! {
    /// The hot-path toggle, split from the collector so the disabled check
    /// is a plain `Cell` read with no `RefCell` borrow.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    /// The scope this thread publishes into and reads merged snapshots
    /// from. Coordinators propagate it to their workers.
    static SCOPE: Cell<u64> = const { Cell::new(0) };
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::new());
}

/// Per-thread telemetry state: metric maps, span aggregates, event buffer.
struct Collector {
    /// Zero point of all event timestamps.
    epoch: Instant,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<&'static str, SpanAgg>,
    /// Current span nesting depth (for trace viewers).
    depth: u16,
    events: Vec<Event>,
    dropped_events: u64,
}

impl Collector {
    fn new() -> Self {
        Collector {
            epoch: Instant::now(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: BTreeMap::new(),
            depth: 0,
            events: Vec::new(),
            dropped_events: 0,
        }
    }

    fn push_event(&mut self, ev: Event) {
        if self.events.len() < MAX_EVENTS {
            self.events.push(ev);
        } else {
            self.dropped_events += 1;
        }
    }
}

/// Turns recording on or off for the current thread.
///
/// Enabling does not clear previously recorded data; call [`reset`] for a
/// fresh start.
pub fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Whether recording is on for the current thread — the single branch every
/// instrumentation point pays when telemetry is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Clears all recorded metrics, span aggregates, and buffered events, and
/// restarts the event clock. The enabled flag is untouched.
pub fn reset() {
    COLLECTOR.with(|c| *c.borrow_mut() = Collector::new());
}

/// Adds `delta` to the named counter (creating it at zero).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        *c.borrow_mut().counters.entry(name).or_insert(0) += delta;
    });
}

/// Sets the named gauge to `value`.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        c.borrow_mut().gauges.insert(name, value);
    });
}

/// Raises the named gauge to `value` if it is higher than the current
/// reading (high-water marks).
#[inline]
pub fn gauge_max(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let g = c.gauges.entry(name).or_insert(f64::NEG_INFINITY);
        if value > *g {
            *g = value;
        }
    });
}

/// Records `value` into the named log₂-bucketed histogram.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        c.borrow_mut()
            .histograms
            .entry(name)
            .or_default()
            .record(value);
    });
}

/// An RAII span guard. While alive it marks a phase; on drop it adds the
/// elapsed wall time to the per-name aggregate and emits one span event.
///
/// Created inert (no clock read, no recording) when telemetry is disabled.
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    ts_us: u64,
    depth: u16,
    fields: Vec<(&'static str, Value)>,
}

/// Opens a span named `name`. Bind the guard (`let _span = …`) so it lives
/// to the end of the phase; an unbound guard closes immediately.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    let (ts_us, depth) = COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let ts = c.epoch.elapsed().as_micros() as u64;
        let depth = c.depth;
        c.depth = c.depth.saturating_add(1);
        (ts, depth)
    });
    Span {
        active: Some(ActiveSpan {
            name,
            start: Instant::now(),
            ts_us,
            depth,
            fields: Vec::new(),
        }),
    }
}

impl Span {
    /// Attaches a typed field to the span's closing event. No-op on an
    /// inert (telemetry-disabled) span.
    pub fn field(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(a) = &mut self.active {
            a.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        let elapsed_ns = a.start.elapsed().as_nanos() as u64;
        COLLECTOR.with(|c| {
            let mut c = c.borrow_mut();
            c.depth = c.depth.saturating_sub(1);
            c.spans.entry(a.name).or_default().record(elapsed_ns);
            c.push_event(Event {
                ts_us: a.ts_us,
                dur_us: Some(elapsed_ns / 1_000),
                name: a.name,
                depth: a.depth,
                fields: a.fields,
            });
        });
    }
}

/// Opens a span named `$name`; with extra arguments, formats them into
/// nothing — the macro form exists so call sites read as annotations:
/// `let _s = qdd_telemetry::span!("core.mat_vec");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Starts an instant (zero-duration) structured event. Chain `.field(…)`
/// calls; the event is recorded when the builder drops:
///
/// ```
/// qdd_telemetry::set_enabled(true);
/// qdd_telemetry::emit("sim.op").field("op_index", 3u64).field("gate", "h");
/// # qdd_telemetry::set_enabled(false);
/// # qdd_telemetry::drain_events();
/// ```
#[inline]
pub fn emit(name: &'static str) -> EventBuilder {
    if !enabled() {
        return EventBuilder::inert();
    }
    let (ts_us, depth) = COLLECTOR.with(|c| {
        let c = c.borrow();
        (c.epoch.elapsed().as_micros() as u64, c.depth)
    });
    EventBuilder::new(Event {
        ts_us,
        dur_us: None,
        name,
        depth,
        fields: Vec::new(),
    })
}

pub(crate) fn record_event(ev: Event) {
    COLLECTOR.with(|c| c.borrow_mut().push_event(ev));
}

/// A consistent snapshot of every metric and span aggregate recorded on
/// this thread. Deterministic: names are reported in sorted order, so two
/// identical recordings serialize identically.
pub fn snapshot() -> Snapshot {
    COLLECTOR.with(|c| {
        let c = c.borrow();
        Snapshot::build(
            &c.counters,
            &c.gauges,
            &c.histograms,
            &c.spans,
            c.dropped_events,
        )
    })
}

/// Publishes this thread's recorded metrics into the process-wide merged
/// registry and clears them from the thread-local collector, so repeated
/// publishing never double-counts. Worker threads call this before exiting;
/// the coordinating thread then sees their work via [`merged_snapshot`].
///
/// Buffered events are *not* published — their timestamps are relative to
/// this thread's own epoch — and stay drainable locally.
pub fn publish() {
    let snap = COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let snap = Snapshot::build(
            &c.counters,
            &c.gauges,
            &c.histograms,
            &c.spans,
            c.dropped_events,
        );
        c.counters.clear();
        c.gauges.clear();
        c.histograms.clear();
        c.spans.clear();
        c.dropped_events = 0;
        snap
    });
    if snap == Snapshot::default() {
        return;
    }
    PUBLISHED
        .lock()
        .unwrap()
        .entry(scope_id())
        .or_default()
        .merge(&snap);
}

/// A snapshot combining everything published into this thread's scope by
/// worker threads ([`publish`]) with the current thread's own recordings.
/// Reading does not consume either side, so repeated calls are consistent.
/// Deterministic: names stay sorted and all merge operations are
/// commutative.
pub fn merged_snapshot() -> Snapshot {
    let mut snap = PUBLISHED
        .lock()
        .unwrap()
        .get(&scope_id())
        .cloned()
        .unwrap_or_default();
    snap.merge(&snapshot());
    snap
}

/// Consumes and returns this thread's scope: the local collector is folded
/// in (and cleared) and the scope's published entry is removed from the
/// process-wide registry. This is the per-request read a server makes once
/// a job finishes — the returned snapshot covers exactly that request's
/// coordinator and workers, and the registry does not leak per-request
/// entries.
pub fn take_merged_snapshot() -> Snapshot {
    publish();
    PUBLISHED
        .lock()
        .unwrap()
        .remove(&scope_id())
        .unwrap_or_default()
}

/// The publication scope of the current thread (`0` = process-wide
/// default).
pub fn scope_id() -> u64 {
    SCOPE.with(|s| s.get())
}

/// Sets the publication scope of the current thread. Coordinators (e.g. the
/// shot engine) read their own scope and propagate it to workers, so a
/// request's whole thread tree publishes into one scope.
pub fn set_scope(id: u64) {
    SCOPE.with(|s| s.set(id));
}

/// Allocates a fresh, never-before-used scope id (process-unique).
pub fn next_scope_id() -> u64 {
    NEXT_SCOPE.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Clears the process-wide published registry — every scope. The
/// thread-local collector is untouched; pair with [`reset`] for a fully
/// fresh start.
pub fn reset_published() {
    PUBLISHED.lock().unwrap().clear();
}

/// Removes and returns all buffered events (oldest first, in completion
/// order for spans).
pub fn drain_events() -> Vec<Event> {
    COLLECTOR.with(|c| std::mem::take(&mut c.borrow_mut().events))
}

/// Number of events dropped after the [`MAX_EVENTS`] buffer cap was hit.
pub fn dropped_events() -> u64 {
    COLLECTOR.with(|c| c.borrow().dropped_events)
}

/// Worker-thread names registered for trace metadata, keyed by worker
/// index. Off the hot path: written once per worker at spawn.
static WORKER_NAMES: Mutex<Vec<(u32, String)>> = Mutex::new(Vec::new());

/// Registers a human-readable name for worker `index` (1-based; the
/// coordinator is implicitly index 0). The Chrome trace sink emits these as
/// `thread_name` metadata records so multi-threaded traces are readable in
/// `chrome://tracing`. Re-registering an index overwrites its name.
pub fn register_worker_name(index: u32, name: impl Into<String>) {
    let name = name.into();
    let mut names = WORKER_NAMES.lock().unwrap();
    if let Some(slot) = names.iter_mut().find(|(i, _)| *i == index) {
        slot.1 = name;
    } else {
        names.push((index, name));
    }
}

/// All registered worker names, sorted by worker index (deterministic
/// regardless of registration order).
pub fn worker_names() -> Vec<(u32, String)> {
    let mut names = WORKER_NAMES.lock().unwrap().clone();
    names.sort_by_key(|(i, _)| *i);
    names
}

/// Clears the registered worker names (fresh-run hygiene, with [`reset`]).
pub fn reset_worker_names() {
    WORKER_NAMES.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() {
        set_enabled(true);
        reset();
    }

    #[test]
    fn disabled_records_nothing() {
        set_enabled(false);
        reset();
        counter_add("c", 1);
        gauge_set("g", 1.0);
        observe("h", 1);
        let mut s = span("s");
        s.field("k", 1u64);
        drop(s);
        emit("e").field("k", 1u64);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
        assert!(drain_events().is_empty());
    }

    #[test]
    fn counters_gauges_accumulate() {
        fresh();
        counter_add("ops", 2);
        counter_add("ops", 3);
        gauge_set("level", 4.0);
        gauge_set("level", 7.0);
        gauge_max("peak", 5.0);
        gauge_max("peak", 2.0);
        let snap = snapshot();
        assert_eq!(snap.counter("ops"), Some(5));
        assert_eq!(snap.gauge("level"), Some(7.0));
        assert_eq!(snap.gauge("peak"), Some(5.0));
        set_enabled(false);
    }

    #[test]
    fn span_nesting_tracks_depth_and_aggregates() {
        fresh();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            {
                let _inner = span("inner");
            }
        }
        let snap = snapshot();
        assert_eq!(snap.span_stats("outer").unwrap().count, 1);
        assert_eq!(snap.span_stats("inner").unwrap().count, 2);
        let events = drain_events();
        // Spans close inner-first.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[2].name, "outer");
        assert_eq!(events[2].depth, 0);
        // The outer span covers both inner spans.
        let outer = &events[2];
        for inner in &events[..2] {
            assert!(inner.ts_us >= outer.ts_us);
        }
        set_enabled(false);
    }

    #[test]
    fn event_fields_round_trip() {
        fresh();
        emit("evt")
            .field("u", 3u64)
            .field("s", "text")
            .field("f", 1.5f64)
            .field("b", true);
        let events = drain_events();
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.name, "evt");
        assert_eq!(ev.dur_us, None);
        assert_eq!(ev.fields.len(), 4);
        assert!(matches!(ev.fields[0], ("u", Value::U64(3))));
        set_enabled(false);
    }

    #[test]
    fn snapshot_merge_combines_all_metric_kinds() {
        fresh();
        counter_add("m.ops", 2);
        gauge_set("m.level", 4.0);
        observe("m.size", 5);
        {
            let _s = span("m.phase");
        }
        let a = snapshot();
        reset();
        counter_add("m.ops", 3);
        counter_add("m.extra", 1);
        gauge_set("m.level", 9.0);
        observe("m.size", 1000);
        {
            let _s = span("m.phase");
        }
        let b = snapshot();
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.counter("m.ops"), Some(5));
        assert_eq!(merged.counter("m.extra"), Some(1));
        assert_eq!(merged.gauge("m.level"), Some(9.0));
        let h = &merged
            .histograms
            .iter()
            .find(|(k, _)| k == "m.size")
            .unwrap()
            .1;
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1005);
        assert_eq!(h.min, 5);
        assert_eq!(h.max, 1000);
        assert_eq!(h.buckets, vec![(4, 7, 1), (512, 1023, 1)]);
        assert_eq!(merged.span_stats("m.phase").unwrap().count, 2);
        // Merge is commutative — same result from the other direction.
        let mut rev = b.clone();
        rev.merge(&a);
        assert_eq!(merged, rev);
        reset();
        set_enabled(false);
    }

    #[test]
    fn publish_feeds_merged_snapshot_without_double_counting() {
        fresh();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    set_enabled(true);
                    counter_add("pubtest.work", 10);
                    gauge_set("pubtest.peak", 2.0);
                    publish();
                    // Publishing drained the thread-local registry.
                    assert_eq!(snapshot().counter("pubtest.work"), None);
                    publish(); // second publish is a no-op
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        counter_add("pubtest.work", 1); // coordinator's own share
        let merged = merged_snapshot();
        assert_eq!(merged.counter("pubtest.work"), Some(31));
        assert_eq!(merged.gauge("pubtest.peak"), Some(2.0));
        // Reading again is consistent (merged_snapshot does not consume).
        assert_eq!(merged_snapshot().counter("pubtest.work"), Some(31));
        reset();
        reset_published();
        set_enabled(false);
    }

    #[test]
    fn scopes_isolate_published_metrics() {
        fresh();
        let scope_a = next_scope_id();
        let scope_b = next_scope_id();
        let spawn = |scope: u64, amount: u64| {
            std::thread::spawn(move || {
                set_enabled(true);
                set_scope(scope);
                counter_add("scopetest.work", amount);
                publish();
            })
        };
        spawn(scope_a, 5).join().unwrap();
        spawn(scope_b, 7).join().unwrap();
        set_scope(scope_a);
        // Each scope sees only its own published metrics.
        assert_eq!(merged_snapshot().counter("scopetest.work"), Some(5));
        let taken = take_merged_snapshot();
        assert_eq!(taken.counter("scopetest.work"), Some(5));
        // Taking consumes the scope's entry.
        assert_eq!(merged_snapshot().counter("scopetest.work"), None);
        set_scope(scope_b);
        assert_eq!(take_merged_snapshot().counter("scopetest.work"), Some(7));
        set_scope(0);
        reset();
        set_enabled(false);
    }

    #[test]
    fn event_buffer_caps_and_counts_drops() {
        fresh();
        // Simulate the cap without a million allocations by filling directly.
        COLLECTOR.with(|c| {
            let mut c = c.borrow_mut();
            for _ in 0..MAX_EVENTS {
                let ev = Event {
                    ts_us: 0,
                    dur_us: None,
                    name: "x",
                    depth: 0,
                    fields: Vec::new(),
                };
                c.push_event(ev);
            }
        });
        emit("overflow");
        assert_eq!(dropped_events(), 1);
        assert_eq!(drain_events().len(), MAX_EVENTS);
        reset();
        set_enabled(false);
    }
}
