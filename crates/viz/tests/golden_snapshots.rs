//! Golden-snapshot tests for the DOT and SVG renderers.
//!
//! The rendered output of a 3-qubit GHZ state is compared byte-for-byte
//! against committed snapshots in `tests/golden/`. Extraction order (the
//! shared BFS walker), normalization, and renderer formatting are all
//! pinned by these files: an accidental change to any of them shows up as
//! a readable text diff.
//!
//! To regenerate after an *intentional* renderer change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p qdd-viz --test golden_snapshots
//! ```

use qdd_core::{gates, Control, DdPackage, VecEdge};
use qdd_viz::style::VizStyle;
use std::path::PathBuf;

/// |GHZ₃⟩ = (|000⟩ + |111⟩)/√2 — H on the top qubit, then a CX ladder.
fn ghz3(dd: &mut DdPackage) -> VecEdge {
    let z = dd.zero_state(3).unwrap();
    let s = dd.apply_gate(z, gates::H, &[], 2).unwrap();
    let s = dd.apply_gate(s, gates::X, &[Control::pos(2)], 1).unwrap();
    dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1", path.display()));
    assert_eq!(
        rendered,
        want,
        "rendered {name} differs from golden snapshot; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn ghz3_dot_matches_golden() {
    let mut dd = DdPackage::new();
    let ghz = ghz3(&mut dd);
    let dot = qdd_viz::dot::vector_to_dot(&dd, ghz, &VizStyle::classic());
    check_golden("ghz3_classic.dot", &dot);
}

#[test]
fn ghz3_svg_matches_golden() {
    let mut dd = DdPackage::new();
    let ghz = ghz3(&mut dd);
    let svg = qdd_viz::svg::vector_to_svg(&dd, ghz, &VizStyle::colored());
    check_golden("ghz3_colored.svg", &svg);
}

/// A long-range CX (control q2, target q0 in a 3-qubit register) has a
/// two-level identity gap on the non-firing branch and a one-level gap
/// below the control: the matrix snapshots pin how skip edges render
/// (open arrowheads + `⧉k` tail labels in DOT, the offset hairline and
/// `⧉k` annotation in SVG).
fn cx_long(dd: &mut DdPackage) -> qdd_core::MatEdge {
    dd.gate_dd(gates::X, &[Control::pos(2)], 0, 3).unwrap()
}

#[test]
fn cx_skip_dot_matches_golden() {
    let mut dd = DdPackage::new();
    let cx = cx_long(&mut dd);
    let dot = qdd_viz::dot::matrix_to_dot(&dd, cx, &VizStyle::classic());
    assert!(dot.contains("⧉2"), "skip annotation missing:\n{dot}");
    check_golden("cx_skip_classic.dot", &dot);
}

#[test]
fn cx_skip_svg_matches_golden() {
    let mut dd = DdPackage::new();
    let cx = cx_long(&mut dd);
    let svg = qdd_viz::svg::matrix_to_svg(&dd, cx, &VizStyle::colored());
    assert!(svg.contains("⧉2"), "skip annotation missing:\n{svg}");
    check_golden("cx_skip_colored.svg", &svg);
}

/// The snapshots are only meaningful if the state is what we think it is.
#[test]
fn ghz3_sanity() {
    let mut dd = DdPackage::new();
    let ghz = ghz3(&mut dd);
    assert_eq!(dd.nonzero_basis_states(ghz), vec![0b000, 0b111]);
    let amps = dd.to_dense_vector(ghz, 3);
    assert!((amps[0].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    assert!((amps[7].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
}
