//! Parsing of `qdd-timeline-v1` JSONL streams back into an inspectable
//! model — the read side of the timeline recorder, feeding the HTML
//! inspector ([`crate::html::timeline_report`]).
//!
//! The workspace carries no serialization dependency, so this module
//! includes a minimal recursive-descent JSON parser. It accepts exactly
//! the JSON subset the timeline writer produces (objects, arrays, strings
//! with standard escapes, finite numbers, booleans, null) and rejects
//! everything else with a position-annotated error.

use crate::graph::{DdGraph, GraphEdge, GraphNode, NodeKind};
use qdd_complex::Complex;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (IEEE double, like the writer emits).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (keys are not deduplicated).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as u64 (truncating), if this is a non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(v) if *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to span the whole input.
///
/// # Errors
///
/// A human-readable message with the byte offset of the first problem.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

/// Maximum container nesting. The parser recurses per nesting level, so
/// without a cap a hostile document of consecutive `[`s overflows the
/// thread's stack — fatal for the whole process, which matters when the
/// input is an untrusted HTTP body (`qdd serve`) rather than a local
/// timeline file. 128 is far beyond anything the timeline writer or the
/// serve API emits.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    /// Tracks entry into an object/array; errors past [`MAX_DEPTH`].
    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.descend()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("bad \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| {
                                format!("bad \\u escape at byte {}", self.pos)
                            })?;
                            self.pos += 4;
                            // Surrogates are not produced by the writer;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unvalidated-by-us — the input is &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// The header line of a timeline stream.
#[derive(Clone, Debug, Default)]
pub struct TimelineHeader {
    /// Workload / circuit name.
    pub circuit: String,
    /// Number of qubits in the circuit.
    pub qubits: usize,
    /// Number of operations in the circuit program.
    pub ops: usize,
    /// Structural-snapshot stride the run used (0 = off).
    pub snapshot_stride: u32,
    /// Number of workers that contributed records.
    pub workers: u32,
    /// Number of op records in the stream.
    pub records: usize,
    /// Records dropped at the recording cap.
    pub dropped_records: u64,
}

/// One `"type":"op"` line.
#[derive(Clone, Debug, Default)]
pub struct OpLine {
    /// Worker id (0 = coordinator).
    pub worker: u32,
    /// Run (restart) index within the worker.
    pub run: u32,
    /// Index of the op in the circuit program.
    pub op_index: u64,
    /// Op kind.
    pub op: String,
    /// Qubits the op touches.
    pub qubits: Vec<u16>,
    /// Microseconds since the recording thread's epoch.
    pub ts_us: u64,
    /// Wall time of the op in microseconds.
    pub dur_us: u64,
    /// Live vector nodes after the op.
    pub vec_nodes: u64,
    /// Live matrix nodes after the op.
    pub mat_nodes: u64,
    /// Live-node high-water mark after the op.
    pub peak_nodes: u64,
    /// Nodes created during the op.
    pub nodes_allocated: u64,
    /// Nodes reclaimed during the op.
    pub nodes_freed: u64,
    /// Interned complex values after the op.
    pub complex_entries: u64,
    /// Compute-table hits attributed to the op.
    pub compute_hits: u64,
    /// Compute-table misses attributed to the op.
    pub compute_misses: u64,
    /// Gate-DD-cache hits attributed to the op.
    pub gate_hits: u64,
    /// Gate-DD-cache misses attributed to the op.
    pub gate_misses: u64,
    /// Per-level node counts after the op (may be empty).
    pub levels: Vec<u32>,
    /// Folded-in engine events: `(kind, whole event object)`.
    pub events: Vec<(String, JsonValue)>,
}

/// One `"type":"snapshot"` line with its reconstructed diagram.
#[derive(Clone, Debug)]
pub struct SnapshotLine {
    /// Worker id of the op the snapshot was taken after.
    pub worker: u32,
    /// Run index of that op.
    pub run: u32,
    /// Op index the snapshot was taken after.
    pub op_index: u64,
    /// Node count of the snapshot.
    pub nodes: u64,
    /// The reconstructed diagram, renderable via
    /// [`crate::svg::graph_to_svg`].
    pub graph: DdGraph,
}

/// One `"type":"span"` line (the flamegraph source).
#[derive(Clone, Debug, Default)]
pub struct SpanLine {
    /// Span name.
    pub name: String,
    /// Start, microseconds since the coordinator's epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth.
    pub depth: u16,
}

/// A fully parsed timeline stream.
#[derive(Clone, Debug, Default)]
pub struct TimelineDoc {
    /// The header line.
    pub header: TimelineHeader,
    /// Op records in stream (merged, deterministic) order.
    pub ops: Vec<OpLine>,
    /// Structural snapshots in stream order.
    pub snapshots: Vec<SnapshotLine>,
    /// Telemetry spans in completion order.
    pub spans: Vec<SpanLine>,
}

fn req_u64(v: &JsonValue, key: &str, line: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("line {line}: missing numeric \"{key}\""))
}

fn opt_u64(v: &JsonValue, key: &str) -> u64 {
    v.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

/// Parses a `qdd-timeline-v1` JSONL stream.
///
/// # Errors
///
/// A message naming the first offending line: bad JSON, a wrong schema
/// tag, an unknown line type, or a snapshot whose graph document does not
/// reconstruct.
pub fn parse_timeline(text: &str) -> Result<TimelineDoc, String> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (_, header_line) = lines.next().ok_or("empty timeline stream")?;
    let header_json =
        parse_json(header_line).map_err(|e| format!("header line: {e}"))?;
    if header_json.get("schema").and_then(JsonValue::as_str) != Some("qdd-timeline-v1") {
        return Err("not a qdd-timeline-v1 stream (bad or missing \"schema\")".to_string());
    }
    let mut doc = TimelineDoc {
        header: TimelineHeader {
            circuit: header_json
                .get("circuit")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
            qubits: opt_u64(&header_json, "qubits") as usize,
            ops: opt_u64(&header_json, "ops") as usize,
            snapshot_stride: opt_u64(&header_json, "snapshot_stride") as u32,
            workers: opt_u64(&header_json, "workers") as u32,
            records: opt_u64(&header_json, "records") as usize,
            dropped_records: opt_u64(&header_json, "dropped_records"),
        },
        ..TimelineDoc::default()
    };
    for (i, line) in lines {
        let n = i + 1; // 1-based for messages
        let v = parse_json(line).map_err(|e| format!("line {n}: {e}"))?;
        match v.get("type").and_then(JsonValue::as_str) {
            Some("op") => {
                let events = v
                    .get("events")
                    .and_then(JsonValue::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .map(|ev| {
                        (
                            ev.get("kind")
                                .and_then(JsonValue::as_str)
                                .unwrap_or("")
                                .to_string(),
                            ev.clone(),
                        )
                    })
                    .collect();
                doc.ops.push(OpLine {
                    worker: req_u64(&v, "worker", n)? as u32,
                    run: opt_u64(&v, "run") as u32,
                    op_index: req_u64(&v, "op_index", n)?,
                    op: v
                        .get("op")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("")
                        .to_string(),
                    qubits: v
                        .get("qubits")
                        .and_then(JsonValue::as_array)
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(|q| q.as_u64())
                        .map(|q| q as u16)
                        .collect(),
                    ts_us: req_u64(&v, "ts_us", n)?,
                    dur_us: opt_u64(&v, "dur_us"),
                    vec_nodes: req_u64(&v, "vec_nodes", n)?,
                    mat_nodes: opt_u64(&v, "mat_nodes"),
                    peak_nodes: opt_u64(&v, "peak_nodes"),
                    nodes_allocated: opt_u64(&v, "nodes_allocated"),
                    nodes_freed: opt_u64(&v, "nodes_freed"),
                    complex_entries: opt_u64(&v, "complex_entries"),
                    compute_hits: opt_u64(&v, "compute_hits"),
                    compute_misses: opt_u64(&v, "compute_misses"),
                    gate_hits: opt_u64(&v, "gate_hits"),
                    gate_misses: opt_u64(&v, "gate_misses"),
                    levels: v
                        .get("levels")
                        .and_then(JsonValue::as_array)
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(|l| l.as_u64())
                        .map(|l| l as u32)
                        .collect(),
                    events,
                });
            }
            Some("snapshot") => {
                let graph_json = v
                    .get("graph")
                    .ok_or_else(|| format!("line {n}: snapshot without \"graph\""))?;
                doc.snapshots.push(SnapshotLine {
                    worker: opt_u64(&v, "worker") as u32,
                    run: opt_u64(&v, "run") as u32,
                    op_index: req_u64(&v, "op_index", n)?,
                    nodes: opt_u64(&v, "nodes"),
                    graph: graph_from_json(graph_json)
                        .map_err(|e| format!("line {n}: {e}"))?,
                });
            }
            Some("span") => {
                doc.spans.push(SpanLine {
                    name: v
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("")
                        .to_string(),
                    ts_us: req_u64(&v, "ts_us", n)?,
                    dur_us: req_u64(&v, "dur_us", n)?,
                    depth: opt_u64(&v, "depth") as u16,
                });
            }
            other => {
                return Err(format!("line {n}: unknown line type {other:?}"));
            }
        }
    }
    Ok(doc)
}

/// Reconstructs a [`DdGraph`] from the JSON document `DdGraph::to_json`
/// produces — the inverse used to re-render per-stride snapshots without a
/// live package.
///
/// # Errors
///
/// Describes the first missing or mistyped member.
pub fn graph_from_json(v: &JsonValue) -> Result<DdGraph, String> {
    let kind = match v.get("kind").and_then(JsonValue::as_str) {
        Some("vector") => NodeKind::Vector,
        Some("matrix") => NodeKind::Matrix,
        other => return Err(format!("graph: bad \"kind\" {other:?}")),
    };
    let complex = |v: Option<&JsonValue>, what: &str| -> Result<Complex, String> {
        let v = v.ok_or_else(|| format!("graph: missing {what}"))?;
        Ok(Complex {
            re: v.get("re").and_then(JsonValue::as_f64).unwrap_or(0.0),
            im: v.get("im").and_then(JsonValue::as_f64).unwrap_or(0.0),
        })
    };
    let root_weight = complex(v.get("rootWeight"), "rootWeight")?;
    let root = match v.get("root") {
        Some(JsonValue::Null) | None => None,
        Some(k) => Some(
            k.as_u64()
                .ok_or_else(|| "graph: non-numeric root".to_string())? as u32,
        ),
    };
    let mut nodes = Vec::new();
    for n in v.get("nodes").and_then(JsonValue::as_array).unwrap_or(&[]) {
        nodes.push(GraphNode {
            key: n
                .get("key")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| "graph: node without key".to_string())? as u32,
            var: n.get("var").and_then(JsonValue::as_u64).unwrap_or(0) as u8,
            zero_mask: n.get("zeroMask").and_then(JsonValue::as_u64).unwrap_or(0) as u8,
        });
    }
    let mut edges = Vec::new();
    for e in v.get("edges").and_then(JsonValue::as_array).unwrap_or(&[]) {
        let to = match e.get("to") {
            Some(JsonValue::Null) | None => None,
            Some(k) => Some(
                k.as_u64()
                    .ok_or_else(|| "graph: non-numeric edge target".to_string())?
                    as u32,
            ),
        };
        edges.push(GraphEdge {
            from: e
                .get("from")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| "graph: edge without from".to_string())? as u32,
            slot: e.get("slot").and_then(JsonValue::as_u64).unwrap_or(0) as u8,
            to,
            weight: complex(e.get("weight"), "edge weight")?,
            skip: e.get("skip").and_then(JsonValue::as_u64).unwrap_or(0) as u8,
        });
    }
    let num_levels = v.get("numLevels").and_then(JsonValue::as_u64).unwrap_or(0) as usize;
    Ok(DdGraph {
        kind,
        root_weight,
        root,
        nodes,
        edges,
        num_levels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_core::{gates, Control, DdPackage};

    #[test]
    fn json_round_trip_of_scalars_and_containers() {
        let v = parse_json(
            "{\"a\":1,\"b\":-2.5e3,\"c\":\"x\\n\\u0041\",\"d\":[true,false,null],\"e\":{}}",
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(-2500.0));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\nA"));
        assert_eq!(v.get("d").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("e"), Some(&JsonValue::Object(Vec::new())));
    }

    #[test]
    fn json_nesting_is_capped_not_a_stack_overflow() {
        // At the cap: fine. The closing brackets must match.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse_json(&ok).is_ok());
        // One past the cap: a typed error.
        let over = format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        let err = parse_json(&over).unwrap_err();
        assert!(err.contains("nesting deeper than"), "{err}");
        // Hundreds of KB of open brackets (the daemon-killing shape) must
        // return an error, not exhaust the thread's stack. Mixed
        // object/array nesting takes the same guard.
        assert!(parse_json(&"[".repeat(500_000)).is_err());
        assert!(parse_json(&"{\"k\":[".repeat(100_000)).is_err());
        // Depth resets between sibling containers: wide-but-shallow
        // documents are unaffected.
        assert!(parse_json(&format!("[{}]", vec!["[1]"; 1000].join(","))).is_ok());
    }

    #[test]
    fn json_rejects_trailing_garbage_and_bad_escapes() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("\"\\q\"").is_err());
        assert!(parse_json("[1,").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn graph_json_round_trips_through_reconstruction() {
        let mut dd = DdPackage::new();
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
        let bell = dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap();
        let original = DdGraph::from_vector(&dd, bell);
        let rebuilt = graph_from_json(&parse_json(&original.to_json()).unwrap()).unwrap();
        assert_eq!(original, rebuilt);
    }

    #[test]
    fn timeline_stream_parses_ops_snapshots_and_spans() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(1).unwrap();
        let graph = DdGraph::from_vector(&dd, s).to_json();
        let text = format!(
            "{{\"schema\":\"qdd-timeline-v1\",\"circuit\":\"bell\",\"qubits\":2,\"ops\":2,\
             \"snapshot_stride\":1,\"workers\":1,\"records\":2,\"dropped_records\":0}}\n\
             {{\"type\":\"op\",\"seq\":0,\"worker\":0,\"run\":0,\"op_index\":0,\"op\":\"h\",\
             \"qubits\":[1],\"ts_us\":1,\"dur_us\":2,\"vec_nodes\":2,\"mat_nodes\":1,\
             \"peak_nodes\":3,\"nodes_allocated\":2,\"nodes_freed\":0,\"complex_entries\":4,\
             \"compute_hits\":1,\"compute_misses\":2,\"gate_hits\":0,\"gate_misses\":1,\
             \"levels\":[1,1],\"events\":[{{\"kind\":\"gc\",\"runs\":1}}]}}\n\
             {{\"type\":\"snapshot\",\"worker\":0,\"run\":0,\"op_index\":0,\"nodes\":2,\
             \"graph\":{graph}}}\n\
             {{\"type\":\"span\",\"name\":\"sim.run\",\"ts_us\":0,\"dur_us\":9,\"depth\":0}}\n"
        );
        let doc = parse_timeline(&text).unwrap();
        assert_eq!(doc.header.circuit, "bell");
        assert_eq!(doc.header.snapshot_stride, 1);
        assert_eq!(doc.ops.len(), 1);
        assert_eq!(doc.ops[0].op, "h");
        assert_eq!(doc.ops[0].levels, vec![1, 1]);
        assert_eq!(doc.ops[0].events[0].0, "gc");
        assert_eq!(doc.snapshots.len(), 1);
        assert_eq!(doc.snapshots[0].graph.node_count(), 1);
        assert_eq!(doc.spans.len(), 1);
        assert_eq!(doc.spans[0].name, "sim.run");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let err = parse_timeline("{\"schema\":\"qdd-metrics-v1\"}\n").unwrap_err();
        assert!(err.contains("qdd-timeline-v1"), "{err}");
    }
}
