//! Graphviz DOT export.

use crate::color::{weight_color, weight_thickness};
use crate::graph::{DdGraph, NodeKind};
use crate::style::{EdgeWeightDisplay, NodeLook, VizStyle};
use qdd_complex::Complex;
use qdd_core::{DdPackage, MatEdge, VecEdge};
use std::fmt::Write as _;

/// Renders a state diagram to DOT.
pub fn vector_to_dot(dd: &DdPackage, e: VecEdge, style: &VizStyle) -> String {
    graph_to_dot(&DdGraph::from_vector(dd, e), style)
}

/// Renders an operator diagram to DOT.
pub fn matrix_to_dot(dd: &DdPackage, e: MatEdge, style: &VizStyle) -> String {
    graph_to_dot(&DdGraph::from_matrix(dd, e), style)
}

/// Renders an extracted [`DdGraph`] to DOT.
pub fn graph_to_dot(graph: &DdGraph, style: &VizStyle) -> String {
    let mut out = String::new();
    out.push_str("digraph dd {\n");
    out.push_str("  rankdir=TB;\n");
    out.push_str("  root [shape=point, style=invis];\n");
    let node_shape = match style.node_look {
        NodeLook::Classic => "circle",
        NodeLook::Modern => "Mrecord",
    };
    let _ = writeln!(
        out,
        "  node [shape={node_shape}, fontname=\"Helvetica\", fontsize=11];"
    );

    // Nodes, grouped per rank.
    for level in graph.levels() {
        if level.is_empty() {
            continue;
        }
        out.push_str("  { rank=same; ");
        for n in &level {
            match style.node_look {
                NodeLook::Classic => {
                    let _ = write!(out, "n{} [label=\"q{}\"]; ", n.key, n.var);
                }
                NodeLook::Modern => {
                    let ports: Vec<String> =
                        (0..graph.slots()).map(|s| format!("<p{s}>")).collect();
                    let _ = write!(
                        out,
                        "n{} [label=\"{{q{}|{{{}}}}}\"]; ",
                        n.key,
                        n.var,
                        ports.join("|")
                    );
                }
            }
        }
        out.push_str("}\n");
    }
    if graph.reaches_terminal() {
        out.push_str("  terminal [shape=box, label=\"1\"];\n");
    }

    // Root edge.
    let root_target = match graph.root {
        Some(key) => format!("n{key}"),
        None => "terminal".to_string(),
    };
    let _ = writeln!(
        out,
        "  root -> {root_target} [{}];",
        edge_attrs(graph.root_weight, style)
    );

    // Child edges and stubs.
    for edge in &graph.edges {
        if edge.is_zero() {
            if style.retract_zero_stubs {
                // 0-stubs "retracted into the nodes themselves": a tiny
                // point hanging off the node.
                let _ = writeln!(
                    out,
                    "  stub_{0}_{1} [shape=point, width=0.04];",
                    edge.from, edge.slot
                );
                let _ = writeln!(
                    out,
                    "  n{0}{2} -> stub_{0}_{1} [arrowhead=none, weight=10];",
                    edge.from,
                    edge.slot,
                    port(style, graph.kind, edge.slot)
                );
            } else {
                let _ = writeln!(
                    out,
                    "  n{}{} -> terminal [label=\"0\", style=dotted];",
                    edge.from,
                    port(style, graph.kind, edge.slot)
                );
            }
            continue;
        }
        let target = match edge.to {
            Some(key) => format!("n{key}"),
            None => "terminal".to_string(),
        };
        let mut attrs = edge_attrs(edge.weight, style);
        if edge.skip > 0 {
            // Identity-skip pass-through: open arrowhead plus the number
            // of skipped levels at the tail.
            let _ = write!(attrs, ", arrowhead=empty, taillabel=\"⧉{}\"", edge.skip);
        }
        let _ = writeln!(
            out,
            "  n{}{} -> {target} [{attrs}];",
            edge.from,
            port(style, graph.kind, edge.slot),
        );
    }
    out.push_str("}\n");
    out
}

/// Tail-port suffix distinguishing successor slots.
fn port(style: &VizStyle, kind: NodeKind, slot: u8) -> String {
    match style.node_look {
        NodeLook::Modern => format!(":p{slot}"),
        NodeLook::Classic => {
            let compass = match (kind, slot) {
                (NodeKind::Vector, 0) => "sw",
                (NodeKind::Vector, _) => "se",
                (NodeKind::Matrix, 0) => "w",
                (NodeKind::Matrix, 1) => "sw",
                (NodeKind::Matrix, 2) => "se",
                (NodeKind::Matrix, _) => "e",
            };
            format!(":{compass}")
        }
    }
}

fn edge_attrs(w: Complex, style: &VizStyle) -> String {
    match style.edge_weights {
        EdgeWeightDisplay::Labels => {
            let label = w.to_label();
            // Weight-1 edges are "frequently omitted"; ≠1 edges dashed.
            if w.is_one(1e-9) {
                "label=\"\"".to_string()
            } else {
                format!("label=\"{label}\", style=dashed")
            }
        }
        EdgeWeightDisplay::ColorAndThickness => {
            let color = weight_color(w).to_hex();
            let pen = weight_thickness(w, style.min_stroke, style.max_stroke);
            format!("color=\"{color}\", penwidth={pen:.2}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_core::{gates, Control};

    fn bell(dd: &mut DdPackage) -> VecEdge {
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
        dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap()
    }

    #[test]
    fn classic_dot_has_labels_and_stubs() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        let dot = vector_to_dot(&dd, b, &VizStyle::classic());
        assert!(dot.starts_with("digraph dd {"));
        assert!(dot.contains("label=\"q1\""));
        assert!(dot.contains("label=\"q0\""));
        assert!(dot.contains("1/√2"), "root weight label");
        assert!(dot.contains("stub_"), "retracted 0-stubs");
        assert!(dot.contains("terminal [shape=box"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn colored_dot_uses_penwidth_not_labels() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        let dot = vector_to_dot(&dd, b, &VizStyle::colored());
        assert!(dot.contains("penwidth="));
        assert!(dot.contains("color=\"#"));
        assert!(!dot.contains("1/√2"));
    }

    #[test]
    fn modern_dot_uses_record_ports() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        let dot = vector_to_dot(&dd, b, &VizStyle::modern());
        assert!(dot.contains("Mrecord"));
        assert!(dot.contains(":p0"));
        // Modern style draws zero edges explicitly.
        assert!(dot.contains("label=\"0\""));
    }

    #[test]
    fn matrix_dot_has_four_ports() {
        let mut dd = DdPackage::new();
        let cx = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).unwrap();
        let dot = matrix_to_dot(&dd, cx, &VizStyle::classic());
        assert!(dot.contains(":w"));
        assert!(dot.contains(":e"));
    }

    #[test]
    fn balanced_braces() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        for style in [VizStyle::classic(), VizStyle::colored(), VizStyle::modern()] {
            let dot = vector_to_dot(&dd, b, &style);
            let open = dot.matches('{').count();
            let close = dot.matches('}').count();
            assert_eq!(open, close);
        }
    }
}
