//! The simulation tab of the paper's tool (Fig. 8), as a library.
//!
//! A [`SimulationExplorer`] wraps the steppable simulator and renders one
//! [`Frame`] per navigation event — exactly the sequence of pictures the
//! web tool shows while a user clicks through a circuit. Frames can be
//! bundled into an offline HTML explorer via [`crate::html`].

use crate::dot::vector_to_dot;
use crate::style::VizStyle;
use crate::svg::vector_to_svg;
use qdd_circuit::QuantumCircuit;
use qdd_core::MeasurementOutcome;
use qdd_sim::{SimError, StepOutcome, SteppableSimulation};
use std::io::Write as _;
use std::path::Path;

/// One rendered step of an exploration session.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Sequence number within the session.
    pub index: usize,
    /// Human-readable description ("after h q1", "measurement dialog …").
    pub title: String,
    /// Standalone SVG of the current diagram.
    pub svg: String,
    /// DOT source of the current diagram.
    pub dot: String,
    /// Node count (the paper's size measure).
    pub node_count: usize,
}

/// Interactive simulation with frame capture.
#[derive(Debug)]
pub struct SimulationExplorer {
    sim: SteppableSimulation,
    style: VizStyle,
    frames: Vec<Frame>,
}

impl SimulationExplorer {
    /// Opens a session and captures the initial `|0…0⟩` frame
    /// (Fig. 8(a)).
    pub fn new(circuit: QuantumCircuit, style: VizStyle) -> Self {
        let sim = SteppableSimulation::new(circuit);
        let mut explorer = SimulationExplorer {
            sim,
            style,
            frames: Vec::new(),
        };
        explorer.capture("initial state |0…0⟩".to_string());
        explorer
    }

    /// The underlying steppable simulation.
    pub fn simulation(&self) -> &SteppableSimulation {
        &self.sim
    }

    /// All frames captured so far.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The most recent frame.
    pub fn latest_frame(&self) -> &Frame {
        self.frames.last().expect("initial frame always present")
    }

    fn capture(&mut self, title: String) {
        let state = self.sim.state();
        let svg = vector_to_svg(self.sim.package(), state, &self.style);
        let dot = vector_to_dot(self.sim.package(), state, &self.style);
        self.frames.push(Frame {
            index: self.frames.len(),
            title,
            svg,
            dot,
            node_count: self.sim.node_count(),
        });
    }

    /// The tool's `→`: one step forward, capturing the resulting frame.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn step_forward(&mut self) -> Result<StepOutcome, SimError> {
        let before = self.sim.position();
        let outcome = self.sim.step_forward()?;
        match outcome {
            StepOutcome::Applied { op_index } => {
                let desc = self
                    .sim
                    .circuit()
                    .ops()
                    .get(op_index)
                    .map(|op| op.to_string())
                    .unwrap_or_default();
                self.capture(format!("after {desc}"));
            }
            StepOutcome::NeedsChoice(p) => {
                if before == self.sim.position() && !self.already_showing_dialog() {
                    self.capture(format!(
                        "measurement dialog q{}: p(|0⟩)={:.3}, p(|1⟩)={:.3}",
                        p.qubit, p.p0, p.p1
                    ));
                }
            }
            StepOutcome::AtEnd => {}
        }
        Ok(outcome)
    }

    fn already_showing_dialog(&self) -> bool {
        self.frames
            .last()
            .is_some_and(|f| f.title.contains("dialog"))
    }

    /// Resolves an open dialog (Fig. 8(c)→(d)).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn choose(&mut self, outcome: MeasurementOutcome) -> Result<(), SimError> {
        self.sim.choose(outcome)?;
        self.capture(format!("collapsed to {outcome}"));
        Ok(())
    }

    /// The tool's `←`: one step back (re-rendering the restored state).
    pub fn step_back(&mut self) -> bool {
        let moved = self.sim.step_back();
        if moved {
            self.capture(format!("back to step {}", self.sim.position()));
        }
        moved
    }

    /// The tool's `⏭`: run to the next barrier/dialog/end, capturing one
    /// frame per applied operation.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn fast_forward(&mut self) -> Result<StepOutcome, SimError> {
        loop {
            let was_barrier = matches!(
                self.sim.next_op(),
                Some(qdd_circuit::Operation::Barrier)
            );
            let outcome = self.step_forward()?;
            match outcome {
                StepOutcome::Applied { .. } if !was_barrier => continue,
                other => return Ok(other),
            }
        }
    }

    /// Plays the whole circuit, resolving dialogs from `choices` in order
    /// (entries beyond the script fall back to `|0⟩`). Returns the number
    /// of dialogs resolved.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn run_scripted(&mut self, choices: &[MeasurementOutcome]) -> Result<usize, SimError> {
        let mut used = 0usize;
        loop {
            match self.step_forward()? {
                StepOutcome::AtEnd => return Ok(used),
                StepOutcome::NeedsChoice(_) => {
                    let outcome = choices
                        .get(used)
                        .copied()
                        .unwrap_or(MeasurementOutcome::Zero);
                    self.choose(outcome)?;
                    used += 1;
                }
                StepOutcome::Applied { .. } => {}
            }
        }
    }

    /// Writes each frame's SVG and DOT into `dir`
    /// (`frame_00.svg`, `frame_00.dot`, …).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_frames(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for frame in &self.frames {
            let mut svg = std::fs::File::create(dir.join(format!("frame_{:02}.svg", frame.index)))?;
            svg.write_all(frame.svg.as_bytes())?;
            let mut dot = std::fs::File::create(dir.join(format!("frame_{:02}.dot", frame.index)))?;
            dot.write_all(frame.dot.as_bytes())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_circuit::library;

    fn bell_with_measure() -> QuantumCircuit {
        let mut qc = library::bell();
        qc.add_creg("c", 1);
        qc.measure(0, 0);
        qc
    }

    /// The four screenshots of Fig. 8 appear as frames.
    #[test]
    fn fig_8_frame_sequence() {
        let mut ex = SimulationExplorer::new(bell_with_measure(), VizStyle::classic());
        ex.step_forward().unwrap(); // H
        ex.step_forward().unwrap(); // CX
        ex.step_forward().unwrap(); // dialog
        ex.choose(MeasurementOutcome::One).unwrap();
        let titles: Vec<&str> = ex.frames().iter().map(|f| f.title.as_str()).collect();
        assert_eq!(titles.len(), 5);
        assert!(titles[0].contains("initial"));
        assert!(titles[1].contains("h"));
        assert!(titles[2].contains("x"));
        assert!(titles[3].contains("dialog"));
        assert!(titles[3].contains("0.500"));
        assert!(titles[4].contains("|1⟩"));
        // Final frame: |11⟩ = 2 nodes.
        assert_eq!(ex.latest_frame().node_count, 2);
    }

    #[test]
    fn dialog_frame_not_duplicated() {
        let mut ex = SimulationExplorer::new(bell_with_measure(), VizStyle::classic());
        ex.step_forward().unwrap();
        ex.step_forward().unwrap();
        ex.step_forward().unwrap();
        ex.step_forward().unwrap(); // still the dialog
        let dialogs = ex
            .frames()
            .iter()
            .filter(|f| f.title.contains("dialog"))
            .count();
        assert_eq!(dialogs, 1);
    }

    #[test]
    fn scripted_run_resolves_all_dialogs() {
        let mut ex = SimulationExplorer::new(
            library::teleportation(0.8),
            VizStyle::colored(),
        );
        let used = ex
            .run_scripted(&[MeasurementOutcome::One, MeasurementOutcome::Zero])
            .unwrap();
        assert!(used <= 2);
        assert!(ex.simulation().is_finished());
    }

    #[test]
    fn step_back_captures_frame() {
        let mut ex = SimulationExplorer::new(library::bell(), VizStyle::classic());
        ex.step_forward().unwrap();
        let n = ex.frames().len();
        assert!(ex.step_back());
        assert_eq!(ex.frames().len(), n + 1);
        assert!(ex.latest_frame().title.contains("back to step 0"));
    }

    #[test]
    fn frames_written_to_disk() {
        let mut ex = SimulationExplorer::new(library::bell(), VizStyle::classic());
        ex.step_forward().unwrap();
        let dir = std::env::temp_dir().join(format!("qdd_frames_{}", std::process::id()));
        ex.write_frames(&dir).unwrap();
        assert!(dir.join("frame_00.svg").exists());
        assert!(dir.join("frame_01.dot").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
