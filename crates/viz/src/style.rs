//! Visualization styles (paper §IV-A, Fig. 7).

/// How edge weights are displayed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EdgeWeightDisplay {
    /// Explicit textual labels on the edges; edges with weight ≠ 1 are
    /// drawn dashed — the look "most similar to what is found in research
    /// papers" (Fig. 7(a)).
    Labels,
    /// No labels: magnitude becomes line thickness, phase becomes a color
    /// from the HLS wheel (Fig. 7(b)/(c) and Fig. 6).
    ColorAndThickness,
}

/// The node rendering style.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NodeLook {
    /// Circles labelled with the qubit, as drawn in research papers.
    Classic,
    /// Larger rounded boxes that expose the two/four successor slots,
    /// "expressing the connection to the underlying state vector in a more
    /// straight-forward fashion" for newcomers.
    Modern,
}

/// A complete style configuration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct VizStyle {
    /// Node shape family.
    pub node_look: NodeLook,
    /// Edge-weight encoding.
    pub edge_weights: EdgeWeightDisplay,
    /// Retract all-zero successors into small stubs on the node
    /// (the "0-stubs" of the classic look) instead of drawing an edge to
    /// the terminal.
    pub retract_zero_stubs: bool,
    /// Minimum stroke width for [`EdgeWeightDisplay::ColorAndThickness`].
    pub min_stroke: f64,
    /// Maximum stroke width for [`EdgeWeightDisplay::ColorAndThickness`].
    pub max_stroke: f64,
}

impl VizStyle {
    /// The "classic" research-paper mode of Fig. 7(a): circles, explicit
    /// weight labels, dashed non-unit edges, retracted 0-stubs.
    pub fn classic() -> Self {
        VizStyle {
            node_look: NodeLook::Classic,
            edge_weights: EdgeWeightDisplay::Labels,
            retract_zero_stubs: true,
            min_stroke: 1.0,
            max_stroke: 3.0,
        }
    }

    /// Classic shapes with the color/thickness weight encoding of
    /// Fig. 7(c) — the style used for Fig. 6.
    pub fn colored() -> Self {
        VizStyle {
            edge_weights: EdgeWeightDisplay::ColorAndThickness,
            ..Self::classic()
        }
    }

    /// The "modern" look aimed at users new to decision diagrams.
    pub fn modern() -> Self {
        VizStyle {
            node_look: NodeLook::Modern,
            edge_weights: EdgeWeightDisplay::ColorAndThickness,
            retract_zero_stubs: false,
            min_stroke: 1.0,
            max_stroke: 4.0,
        }
    }
}

impl Default for VizStyle {
    fn default() -> Self {
        Self::classic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_documented_ways() {
        let classic = VizStyle::classic();
        assert_eq!(classic.edge_weights, EdgeWeightDisplay::Labels);
        assert!(classic.retract_zero_stubs);

        let colored = VizStyle::colored();
        assert_eq!(colored.edge_weights, EdgeWeightDisplay::ColorAndThickness);
        assert_eq!(colored.node_look, NodeLook::Classic);

        let modern = VizStyle::modern();
        assert_eq!(modern.node_look, NodeLook::Modern);
        assert!(!modern.retract_zero_stubs);
    }

    #[test]
    fn default_is_classic() {
        assert_eq!(VizStyle::default(), VizStyle::classic());
    }
}
