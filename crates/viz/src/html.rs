//! Self-contained HTML explorer — the offline stand-in for the paper's
//! installation-free web tool.
//!
//! [`explorer_html`] bundles a session's frames into a single HTML file
//! with the tool's `⏮ ← → ⏭` navigation (buttons and arrow keys), a title
//! bar showing the current step, and the node count. No network, no
//! external assets.

use crate::inspect::{OpLine, SpanLine, TimelineDoc};
use crate::session::Frame;
use crate::style::VizStyle;
use crate::svg::graph_to_svg;
use std::fmt::Write as _;
use std::path::Path;

/// Builds a standalone HTML document from captured frames.
///
/// # Panics
///
/// Panics if `frames` is empty (sessions always capture an initial frame).
pub fn explorer_html(title: &str, frames: &[Frame]) -> String {
    assert!(!frames.is_empty(), "at least one frame required");
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(out, "<title>{}</title>", escape_html(title));
    out.push_str(
        "<style>\n\
         body { font-family: Helvetica, sans-serif; margin: 0; background: #fafafa; }\n\
         header { background: #2b4a6f; color: white; padding: 10px 16px; }\n\
         #controls { padding: 10px 16px; }\n\
         #controls button { font-size: 16px; margin-right: 6px; padding: 4px 12px; }\n\
         #caption { padding: 0 16px 8px; color: #333; }\n\
         .frame { display: none; padding: 0 16px 16px; }\n\
         .frame.active { display: block; }\n\
         .frame svg { max-width: 100%; height: auto; border: 1px solid #ddd; background: white; }\n\
         </style>\n</head>\n<body>\n",
    );
    let _ = writeln!(out, "<header><h1>{}</h1></header>", escape_html(title));
    out.push_str(
        "<div id=\"controls\">\n\
         <button onclick=\"go(0)\" title=\"to start\">&#9198;</button>\n\
         <button onclick=\"go(current-1)\" title=\"back\">&#8592;</button>\n\
         <button onclick=\"go(current+1)\" title=\"forward\">&#8594;</button>\n\
         <button onclick=\"go(frames-1)\" title=\"to end\">&#9197;</button>\n\
         <span id=\"pos\"></span>\n\
         </div>\n<div id=\"caption\"></div>\n",
    );
    for frame in frames {
        let _ = writeln!(
            out,
            "<div class=\"frame\" id=\"frame{}\" data-title=\"{} ({} nodes)\">",
            frame.index,
            escape_html(&frame.title),
            frame.node_count
        );
        out.push_str(&frame.svg);
        out.push_str("</div>\n");
    }
    let _ = writeln!(
        out,
        "<script>\n\
         const frames = {};\n\
         let current = 0;\n\
         function go(i) {{\n\
           if (i < 0 || i >= frames) return;\n\
           document.getElementById('frame' + current).classList.remove('active');\n\
           current = i;\n\
           const el = document.getElementById('frame' + current);\n\
           el.classList.add('active');\n\
           document.getElementById('caption').textContent = el.dataset.title;\n\
           document.getElementById('pos').textContent = (current + 1) + ' / ' + frames;\n\
         }}\n\
         document.addEventListener('keydown', e => {{\n\
           if (e.key === 'ArrowRight') go(current + 1);\n\
           if (e.key === 'ArrowLeft') go(current - 1);\n\
           if (e.key === 'Home') go(0);\n\
           if (e.key === 'End') go(frames - 1);\n\
         }});\n\
         document.getElementById('frame0').classList.add('active');\n\
         go(0);\n\
         </script>\n</body>\n</html>",
        frames.len()
    );
    out
}

/// Writes an explorer document to disk.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_explorer(path: &Path, title: &str, frames: &[Frame]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, explorer_html(title, frames))
}

/// Colors cycled across workers / levels in the sparkline charts.
const CURVE_COLORS: [&str; 6] = [
    "#2b4a6f", "#c0392b", "#1e8449", "#8e44ad", "#b9770e", "#148f9f",
];

/// Builds the self-contained run inspector from a parsed timeline.
///
/// One HTML file, no external assets: a live-node curve with GC /
/// approximation / dense-fallback markers, per-level node sparklines, a
/// flamegraph-style span tree, and a steppable gallery of the per-stride
/// structural snapshots (rendered with `style`). Degrades gracefully —
/// sections whose data was not recorded say so instead of vanishing.
pub fn timeline_report(doc: &TimelineDoc, style: &VizStyle) -> String {
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(
        out,
        "<title>qdd timeline — {}</title>",
        escape_html(&doc.header.circuit)
    );
    out.push_str(
        "<style>\n\
         body { font-family: Helvetica, sans-serif; margin: 0; background: #fafafa; }\n\
         header { background: #2b4a6f; color: white; padding: 10px 16px; }\n\
         header .sub { color: #cdd9e5; font-size: 13px; }\n\
         section { padding: 8px 16px 16px; }\n\
         h2 { font-size: 16px; margin: 12px 0 6px; color: #2b4a6f; }\n\
         .chart svg { max-width: 100%; height: auto; border: 1px solid #ddd; background: white; }\n\
         .legend { font-size: 12px; color: #555; margin: 4px 0; }\n\
         .legend b { font-weight: normal; padding: 0 10px 0 2px; }\n\
         .dot { display: inline-block; width: 9px; height: 9px; border-radius: 50%; }\n\
         .muted { color: #888; font-size: 13px; }\n\
         .warn { background: #fbeee6; border: 1px solid #e0b08c; padding: 6px 10px; font-size: 13px; }\n\
         #flame { position: relative; background: white; border: 1px solid #ddd; overflow: hidden; }\n\
         #flame .span { position: absolute; height: 18px; font-size: 11px; color: white;\n\
           overflow: hidden; white-space: nowrap; border-radius: 2px; padding-left: 3px;\n\
           box-sizing: border-box; line-height: 18px; }\n\
         #controls { padding: 6px 0; }\n\
         #controls button { font-size: 16px; margin-right: 6px; padding: 4px 12px; }\n\
         .frame { display: none; }\n\
         .frame.active { display: block; }\n\
         .frame svg { max-width: 100%; height: auto; border: 1px solid #ddd; background: white; }\n\
         </style>\n</head>\n<body>\n",
    );
    let _ = writeln!(
        out,
        "<header><h1>Timeline — {}</h1><div class=\"sub\">{} qubits · {} ops · {} worker(s) \
         · {} record(s) · snapshot stride {}</div></header>",
        escape_html(&doc.header.circuit),
        doc.header.qubits,
        doc.header.ops,
        doc.header.workers.max(1),
        doc.ops.len(),
        doc.header.snapshot_stride,
    );
    if doc.header.dropped_records > 0 {
        let _ = writeln!(
            out,
            "<section><div class=\"warn\">⚠ {} record(s) were dropped at the recording cap; \
             curves below are truncated.</div></section>",
            doc.header.dropped_records
        );
    }

    // Live-node curve with event markers.
    out.push_str("<section>\n<h2>Live nodes over op index</h2>\n");
    if doc.ops.is_empty() {
        out.push_str("<div class=\"muted\">No op records in this timeline.</div>\n");
    } else {
        out.push_str(
            "<div class=\"legend\">\
             <span class=\"dot\" style=\"background:#b9770e\"></span><b>GC</b>\
             <span class=\"dot\" style=\"background:#8e44ad\"></span><b>approximation</b>\
             <span class=\"dot\" style=\"background:#c0392b\"></span><b>dense fallback</b>\
             — one curve per (worker, run)</div>\n",
        );
        let _ = writeln!(out, "<div class=\"chart\">{}</div>", node_curve_svg(&doc.ops));
    }
    out.push_str("</section>\n");

    // Per-level sparklines.
    out.push_str("<section>\n<h2>Nodes per level</h2>\n");
    let level_svg = level_curves_svg(&doc.ops);
    if let Some(svg) = level_svg {
        out.push_str("<div class=\"chart\">");
        out.push_str(&svg);
        out.push_str("</div>\n");
    } else {
        out.push_str(
            "<div class=\"muted\">No per-level profiles recorded (dense fallback \
             or empty timeline).</div>\n",
        );
    }
    out.push_str("</section>\n");

    // Span tree (flamegraph-style).
    out.push_str("<section>\n<h2>Span tree</h2>\n");
    if doc.spans.is_empty() {
        out.push_str("<div class=\"muted\">No spans recorded.</div>\n");
    } else {
        out.push_str(&flamegraph_html(&doc.spans));
    }
    out.push_str("</section>\n");

    // Structural snapshots with step/play controls.
    out.push_str("<section>\n<h2>Structural snapshots</h2>\n");
    if doc.snapshots.is_empty() {
        out.push_str(
            "<div class=\"muted\">No snapshots in this timeline — record with \
             <code>--snapshot-stride K</code> to embed diagrams.</div>\n",
        );
    } else {
        out.push_str(
            "<div id=\"controls\">\n\
             <button onclick=\"go(0)\" title=\"to start\">&#9198;</button>\n\
             <button onclick=\"go(current-1)\" title=\"back\">&#8592;</button>\n\
             <button onclick=\"go(current+1)\" title=\"forward\">&#8594;</button>\n\
             <button onclick=\"go(frames-1)\" title=\"to end\">&#9197;</button>\n\
             <button id=\"play\" onclick=\"playPause()\" title=\"play\">&#9654;</button>\n\
             <span id=\"pos\"></span>\n\
             </div>\n<div id=\"caption\" class=\"muted\"></div>\n",
        );
        for (i, snap) in doc.snapshots.iter().enumerate() {
            let _ = writeln!(
                out,
                "<div class=\"frame\" id=\"frame{}\" data-title=\"after op {} \
                 (worker {}, run {}, {} nodes)\">",
                i, snap.op_index, snap.worker, snap.run, snap.nodes,
            );
            out.push_str(&graph_to_svg(&snap.graph, style));
            out.push_str("</div>\n");
        }
        let _ = writeln!(
            out,
            "<script>\n\
             const frames = {};\n\
             let current = 0;\n\
             let timer = null;\n\
             function go(i) {{\n\
               if (i < 0 || i >= frames) return;\n\
               document.getElementById('frame' + current).classList.remove('active');\n\
               current = i;\n\
               const el = document.getElementById('frame' + current);\n\
               el.classList.add('active');\n\
               document.getElementById('caption').textContent = el.dataset.title;\n\
               document.getElementById('pos').textContent = (current + 1) + ' / ' + frames;\n\
             }}\n\
             function playPause() {{\n\
               const btn = document.getElementById('play');\n\
               if (timer) {{ clearInterval(timer); timer = null; btn.innerHTML = '&#9654;'; return; }}\n\
               btn.innerHTML = '&#9646;&#9646;';\n\
               timer = setInterval(() => {{\n\
                 if (current + 1 >= frames) {{ playPause(); return; }}\n\
                 go(current + 1);\n\
               }}, 700);\n\
             }}\n\
             document.addEventListener('keydown', e => {{\n\
               if (e.key === 'ArrowRight') go(current + 1);\n\
               if (e.key === 'ArrowLeft') go(current - 1);\n\
               if (e.key === 'Home') go(0);\n\
               if (e.key === 'End') go(frames - 1);\n\
               if (e.key === ' ') {{ e.preventDefault(); playPause(); }}\n\
             }});\n\
             document.getElementById('frame0').classList.add('active');\n\
             go(0);\n\
             </script>",
            doc.snapshots.len()
        );
    }
    out.push_str("</section>\n</body>\n</html>");
    out
}

/// Writes a timeline report to disk.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_timeline_report(
    path: &Path,
    doc: &TimelineDoc,
    style: &VizStyle,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, timeline_report(doc, style))
}

/// Groups op records by `(worker, run)`, preserving stream order.
fn op_groups(ops: &[OpLine]) -> Vec<(u32, u32, Vec<&OpLine>)> {
    let mut groups: Vec<(u32, u32, Vec<&OpLine>)> = Vec::new();
    for op in ops {
        match groups.iter_mut().find(|(w, r, _)| *w == op.worker && *r == op.run) {
            Some((_, _, list)) => list.push(op),
            None => groups.push((op.worker, op.run, vec![op])),
        }
    }
    groups
}

fn node_curve_svg(ops: &[OpLine]) -> String {
    const W: f64 = 860.0;
    const H: f64 = 200.0;
    const MX: f64 = 46.0;
    const MY: f64 = 16.0;
    let max_x = ops.iter().map(|o| o.op_index).max().unwrap_or(0).max(1) as f64;
    let max_y = ops.iter().map(|o| o.vec_nodes).max().unwrap_or(0).max(1) as f64;
    let sx = |op_index: u64| MX + (op_index as f64 / max_x) * (W - 2.0 * MX);
    let sy = |nodes: u64| H - MY - (nodes as f64 / max_y) * (H - 2.0 * MY);
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {W:.0} {H:.0}\" \
         font-family=\"Helvetica, sans-serif\" font-size=\"11\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
    );
    // Axes and extents.
    let _ = write!(
        svg,
        "<line x1=\"{MX}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" stroke=\"#ccc\"/>\n\
         <line x1=\"{MX}\" y1=\"{MY}\" x2=\"{MX}\" y2=\"{0}\" stroke=\"#ccc\"/>\n\
         <text x=\"4\" y=\"{2}\" fill=\"#555\">{max_y:.0}</text>\n\
         <text x=\"{1}\" y=\"{3}\" fill=\"#555\" text-anchor=\"end\">op {max_x:.0}</text>\n",
        H - MY,
        W - MX,
        MY + 4.0,
        H - 2.0,
    );
    for (gi, (_, _, group)) in op_groups(ops).iter().enumerate() {
        let color = CURVE_COLORS[gi % CURVE_COLORS.len()];
        let points: Vec<String> = group
            .iter()
            .map(|o| format!("{:.1},{:.1}", sx(o.op_index), sy(o.vec_nodes)))
            .collect();
        let _ = writeln!(
            svg,
            "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\" points=\"{}\"/>",
            points.join(" ")
        );
    }
    // Event markers on top of the curves.
    for op in ops {
        for (kind, _) in &op.events {
            let color = match kind.as_str() {
                "gc" => "#b9770e",
                "approx" => "#8e44ad",
                "dense_fallback" => "#c0392b",
                _ => "#555",
            };
            let _ = writeln!(
                svg,
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\" fill=\"{color}\">\
                 <title>{} at op {} ({})</title></circle>",
                sx(op.op_index),
                sy(op.vec_nodes),
                escape_html(kind),
                op.op_index,
                escape_html(&op.op),
            );
        }
    }
    svg.push_str("</svg>");
    svg
}

/// One mini-sparkline per DD level, taken from the longest `(worker, run)`
/// group. `None` when no op carries a level profile.
fn level_curves_svg(ops: &[OpLine]) -> Option<String> {
    let groups = op_groups(ops);
    let group = groups.iter().max_by_key(|(_, _, g)| g.len()).map(|(_, _, g)| g)?;
    let num_levels = group.iter().map(|o| o.levels.len()).max().unwrap_or(0);
    if num_levels == 0 {
        return None;
    }
    const W: f64 = 860.0;
    const ROW: f64 = 26.0;
    const MX: f64 = 46.0;
    let h = num_levels as f64 * ROW + 10.0;
    let max_x = group.iter().map(|o| o.op_index).max().unwrap_or(0).max(1) as f64;
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {W:.0} {h:.0}\" \
         font-family=\"Helvetica, sans-serif\" font-size=\"11\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
    );
    // Level 0 is the bottom of the diagram; draw top level first.
    for row in 0..num_levels {
        let level = num_levels - 1 - row;
        let y0 = 5.0 + row as f64 * ROW;
        let max_y = group
            .iter()
            .map(|o| o.levels.get(level).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
            .max(1) as f64;
        let color = CURVE_COLORS[level % CURVE_COLORS.len()];
        let points: Vec<String> = group
            .iter()
            .map(|o| {
                let v = o.levels.get(level).copied().unwrap_or(0) as f64;
                format!(
                    "{:.1},{:.1}",
                    MX + (o.op_index as f64 / max_x) * (W - MX - 10.0),
                    y0 + (ROW - 6.0) * (1.0 - v / max_y),
                )
            })
            .collect();
        let _ = write!(
            svg,
            "<text x=\"4\" y=\"{:.1}\" fill=\"#555\">q{level} ≤{max_y:.0}</text>\n\
             <polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1\" points=\"{}\"/>\n",
            y0 + ROW / 2.0,
            points.join(" ")
        );
    }
    svg.push_str("</svg>");
    Some(svg)
}

fn flamegraph_html(spans: &[SpanLine]) -> String {
    let t0 = spans.iter().map(|s| s.ts_us).min().unwrap_or(0);
    let t1 = spans
        .iter()
        .map(|s| s.ts_us + s.dur_us)
        .max()
        .unwrap_or(t0 + 1)
        .max(t0 + 1);
    let total = (t1 - t0) as f64;
    let depth = spans.iter().map(|s| s.depth).max().unwrap_or(0) as usize + 1;
    let mut out = format!(
        "<div class=\"legend\">{} span(s), {:.1} ms total</div>\n\
         <div id=\"flame\" style=\"height: {}px\">\n",
        spans.len(),
        total / 1000.0,
        depth * 22 + 4,
    );
    for span in spans {
        let left = (span.ts_us - t0) as f64 / total * 100.0;
        let width = (span.dur_us as f64 / total * 100.0).max(0.15);
        // Stable name-derived color so repeated spans read as one family.
        let hash: usize = span.name.bytes().map(usize::from).sum();
        let color = CURVE_COLORS[hash % CURVE_COLORS.len()];
        let label = format!("{} ({} µs)", span.name, span.dur_us);
        let _ = writeln!(
            out,
            "<div class=\"span\" style=\"left:{left:.2}%;width:{width:.2}%;\
             top:{}px;background:{color}\" title=\"{}\">{}</div>",
            span.depth as usize * 22 + 2,
            escape_html(&label),
            escape_html(&span.name),
        );
    }
    out.push_str("</div>\n");
    out
}

fn escape_html(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SimulationExplorer;
    use crate::style::VizStyle;
    use qdd_circuit::library;

    fn frames() -> Vec<Frame> {
        let mut ex = SimulationExplorer::new(library::bell(), VizStyle::classic());
        ex.step_forward().unwrap();
        ex.step_forward().unwrap();
        ex.frames().to_vec()
    }

    #[test]
    fn html_is_self_contained() {
        let html = explorer_html("Bell state", &frames());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<title>Bell state</title>"));
        assert!(html.contains("const frames = 3;"));
        assert!(html.contains("<svg"));
        assert!(!html.contains("http://") || html.contains("xmlns"), "no external links beyond the SVG namespace");
        assert!(html.trim_end().ends_with("</html>"));
    }

    #[test]
    fn every_frame_is_embedded() {
        let fs = frames();
        let html = explorer_html("x", &fs);
        for f in &fs {
            assert!(html.contains(&format!("id=\"frame{}\"", f.index)));
        }
    }

    #[test]
    fn titles_are_escaped() {
        let mut fs = frames();
        fs[0].title = "a < b & \"c\"".to_string();
        let html = explorer_html("t", &fs);
        assert!(html.contains("a &lt; b &amp; &quot;c&quot;"));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_frames_panics() {
        explorer_html("x", &[]);
    }

    fn sample_doc() -> crate::inspect::TimelineDoc {
        use qdd_core::{gates, Control, DdPackage};
        let mut dd = DdPackage::new();
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
        let bell = dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap();
        let graph = crate::graph::DdGraph::from_vector(&dd, bell).to_json();
        let text = format!(
            "{{\"schema\":\"qdd-timeline-v1\",\"circuit\":\"bell<1>\",\"qubits\":2,\"ops\":2,\
             \"snapshot_stride\":1,\"workers\":1,\"records\":2,\"dropped_records\":0}}\n\
             {{\"type\":\"op\",\"worker\":0,\"run\":0,\"op_index\":0,\"op\":\"h\",\"qubits\":[1],\
             \"ts_us\":1,\"dur_us\":2,\"vec_nodes\":2,\"levels\":[1,1],\
             \"events\":[{{\"kind\":\"gc\",\"runs\":1}}]}}\n\
             {{\"type\":\"op\",\"worker\":0,\"run\":0,\"op_index\":1,\"op\":\"cx\",\
             \"qubits\":[0,1],\"ts_us\":3,\"dur_us\":2,\"vec_nodes\":3,\"levels\":[2,1],\
             \"events\":[]}}\n\
             {{\"type\":\"snapshot\",\"worker\":0,\"run\":0,\"op_index\":1,\"nodes\":3,\
             \"graph\":{graph}}}\n\
             {{\"type\":\"span\",\"name\":\"sim.run\",\"ts_us\":0,\"dur_us\":9,\"depth\":0}}\n\
             {{\"type\":\"span\",\"name\":\"sim.apply\",\"ts_us\":1,\"dur_us\":4,\"depth\":1}}\n"
        );
        crate::inspect::parse_timeline(&text).unwrap()
    }

    #[test]
    fn timeline_report_is_self_contained() {
        let html = timeline_report(&sample_doc(), &VizStyle::classic());
        assert!(html.starts_with("<!DOCTYPE html>"));
        // Escaped circuit name in the title and header.
        assert!(html.contains("bell&lt;1&gt;"));
        // Node curve, per-level sparklines, flamegraph, snapshot frames.
        assert!(html.contains("Live nodes over op index"));
        assert!(html.contains("q1 "));
        assert!(html.contains("sim.apply"));
        assert!(html.contains("id=\"frame0\""));
        assert!(html.contains("playPause"));
        // GC event marker from op 0.
        assert!(html.contains("gc at op 0"));
        // Self-contained: nothing external beyond the SVG xmlns.
        for (i, _) in html.match_indices("http") {
            assert!(
                html[i..].starts_with("http://www.w3.org/2000/svg"),
                "external reference near byte {i}"
            );
        }
        assert!(html.trim_end().ends_with("</html>"));
    }

    #[test]
    fn timeline_report_handles_empty_doc() {
        let doc = crate::inspect::parse_timeline(
            "{\"schema\":\"qdd-timeline-v1\",\"circuit\":\"x\",\"qubits\":0,\"ops\":0,\
             \"snapshot_stride\":0,\"workers\":1,\"records\":0,\"dropped_records\":3}\n",
        )
        .unwrap();
        let html = timeline_report(&doc, &VizStyle::classic());
        assert!(html.contains("No op records"));
        assert!(html.contains("No spans recorded"));
        assert!(html.contains("No snapshots"));
        assert!(html.contains("3 record(s) were dropped"));
    }

    #[test]
    fn write_timeline_report_creates_file() {
        let path =
            std::env::temp_dir().join(format!("qdd_timeline_{}.html", std::process::id()));
        write_timeline_report(&path, &sample_doc(), &VizStyle::colored()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("<svg"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_explorer_creates_file() {
        let path = std::env::temp_dir().join(format!("qdd_explorer_{}.html", std::process::id()));
        write_explorer(&path, "t", &frames()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("<svg"));
        std::fs::remove_file(&path).ok();
    }
}
