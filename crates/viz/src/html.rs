//! Self-contained HTML explorer — the offline stand-in for the paper's
//! installation-free web tool.
//!
//! [`explorer_html`] bundles a session's frames into a single HTML file
//! with the tool's `⏮ ← → ⏭` navigation (buttons and arrow keys), a title
//! bar showing the current step, and the node count. No network, no
//! external assets.

use crate::session::Frame;
use std::fmt::Write as _;
use std::path::Path;

/// Builds a standalone HTML document from captured frames.
///
/// # Panics
///
/// Panics if `frames` is empty (sessions always capture an initial frame).
pub fn explorer_html(title: &str, frames: &[Frame]) -> String {
    assert!(!frames.is_empty(), "at least one frame required");
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(out, "<title>{}</title>", escape_html(title));
    out.push_str(
        "<style>\n\
         body { font-family: Helvetica, sans-serif; margin: 0; background: #fafafa; }\n\
         header { background: #2b4a6f; color: white; padding: 10px 16px; }\n\
         #controls { padding: 10px 16px; }\n\
         #controls button { font-size: 16px; margin-right: 6px; padding: 4px 12px; }\n\
         #caption { padding: 0 16px 8px; color: #333; }\n\
         .frame { display: none; padding: 0 16px 16px; }\n\
         .frame.active { display: block; }\n\
         .frame svg { max-width: 100%; height: auto; border: 1px solid #ddd; background: white; }\n\
         </style>\n</head>\n<body>\n",
    );
    let _ = writeln!(out, "<header><h1>{}</h1></header>", escape_html(title));
    out.push_str(
        "<div id=\"controls\">\n\
         <button onclick=\"go(0)\" title=\"to start\">&#9198;</button>\n\
         <button onclick=\"go(current-1)\" title=\"back\">&#8592;</button>\n\
         <button onclick=\"go(current+1)\" title=\"forward\">&#8594;</button>\n\
         <button onclick=\"go(frames-1)\" title=\"to end\">&#9197;</button>\n\
         <span id=\"pos\"></span>\n\
         </div>\n<div id=\"caption\"></div>\n",
    );
    for frame in frames {
        let _ = writeln!(
            out,
            "<div class=\"frame\" id=\"frame{}\" data-title=\"{} ({} nodes)\">",
            frame.index,
            escape_html(&frame.title),
            frame.node_count
        );
        out.push_str(&frame.svg);
        out.push_str("</div>\n");
    }
    let _ = writeln!(
        out,
        "<script>\n\
         const frames = {};\n\
         let current = 0;\n\
         function go(i) {{\n\
           if (i < 0 || i >= frames) return;\n\
           document.getElementById('frame' + current).classList.remove('active');\n\
           current = i;\n\
           const el = document.getElementById('frame' + current);\n\
           el.classList.add('active');\n\
           document.getElementById('caption').textContent = el.dataset.title;\n\
           document.getElementById('pos').textContent = (current + 1) + ' / ' + frames;\n\
         }}\n\
         document.addEventListener('keydown', e => {{\n\
           if (e.key === 'ArrowRight') go(current + 1);\n\
           if (e.key === 'ArrowLeft') go(current - 1);\n\
           if (e.key === 'Home') go(0);\n\
           if (e.key === 'End') go(frames - 1);\n\
         }});\n\
         document.getElementById('frame0').classList.add('active');\n\
         go(0);\n\
         </script>\n</body>\n</html>",
        frames.len()
    );
    out
}

/// Writes an explorer document to disk.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_explorer(path: &Path, title: &str, frames: &[Frame]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, explorer_html(title, frames))
}

fn escape_html(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SimulationExplorer;
    use crate::style::VizStyle;
    use qdd_circuit::library;

    fn frames() -> Vec<Frame> {
        let mut ex = SimulationExplorer::new(library::bell(), VizStyle::classic());
        ex.step_forward().unwrap();
        ex.step_forward().unwrap();
        ex.frames().to_vec()
    }

    #[test]
    fn html_is_self_contained() {
        let html = explorer_html("Bell state", &frames());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<title>Bell state</title>"));
        assert!(html.contains("const frames = 3;"));
        assert!(html.contains("<svg"));
        assert!(!html.contains("http://") || html.contains("xmlns"), "no external links beyond the SVG namespace");
        assert!(html.trim_end().ends_with("</html>"));
    }

    #[test]
    fn every_frame_is_embedded() {
        let fs = frames();
        let html = explorer_html("x", &fs);
        for f in &fs {
            assert!(html.contains(&format!("id=\"frame{}\"", f.index)));
        }
    }

    #[test]
    fn titles_are_escaped() {
        let mut fs = frames();
        fs[0].title = "a < b & \"c\"".to_string();
        let html = explorer_html("t", &fs);
        assert!(html.contains("a &lt; b &amp; &quot;c&quot;"));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_frames_panics() {
        explorer_html("x", &[]);
    }

    #[test]
    fn write_explorer_creates_file() {
        let path = std::env::temp_dir().join(format!("qdd_explorer_{}.html", std::process::id()));
        write_explorer(&path, "t", &frames()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("<svg"));
        std::fs::remove_file(&path).ok();
    }
}
