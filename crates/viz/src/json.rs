//! JSON export of extracted diagrams (hand-rolled; the schema is small and
//! fixed, so no serialization dependency is warranted).
//!
//! The format is what a web front-end would consume to draw the diagram —
//! the data interchange the paper's hosted tool uses between its DD backend
//! and its browser renderer. The writer itself lives on
//! [`DdGraph::to_json`] in `qdd-core` so the timeline recorder can emit the
//! same schema; this function is the stable viz-layer entry point.

use crate::graph::DdGraph;

/// Serializes a [`DdGraph`] to a compact JSON document.
///
/// See [`DdGraph::to_json`] for the schema (`"to": null` denotes the
/// terminal; numbers are plain IEEE doubles).
pub fn graph_to_json(graph: &DdGraph) -> String {
    graph.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DdGraph;
    use qdd_core::{gates, Control, DdPackage};

    #[test]
    fn bell_graph_round_trips_lexically() {
        let mut dd = DdPackage::new();
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
        let bell = dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap();
        let json = graph_to_json(&DdGraph::from_vector(&dd, bell));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"kind\":\"vector\""));
        assert!(json.contains("\"numLevels\":2"));
        assert!(json.contains("\"rootWeight\":{\"re\":1"));
        assert!(json.contains("0.7071067811865476"), "child weights carry 1/sqrt(2)");
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // 3 nodes, 6 edges.
        assert_eq!(json.matches("\"key\":").count(), 3);
        assert_eq!(json.matches("\"from\":").count(), 6);
    }

    #[test]
    fn terminal_edges_are_null() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(1).unwrap();
        let json = graph_to_json(&DdGraph::from_vector(&dd, s));
        assert!(json.contains("\"to\":null"));
    }

    #[test]
    fn matrix_kind_is_tagged() {
        let mut dd = DdPackage::new();
        let h = dd.gate_dd(gates::H, &[], 0, 1).unwrap();
        let json = graph_to_json(&DdGraph::from_matrix(&dd, h));
        assert!(json.contains("\"kind\":\"matrix\""));
        assert_eq!(json.matches("\"slot\":").count(), 4);
    }
}
