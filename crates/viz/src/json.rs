//! JSON export of extracted diagrams (hand-rolled; the schema is small and
//! fixed, so no serialization dependency is warranted).
//!
//! The format is what a web front-end would consume to draw the diagram —
//! the data interchange the paper's hosted tool uses between its DD backend
//! and its browser renderer.

use crate::graph::{DdGraph, NodeKind};
use qdd_complex::Complex;
use std::fmt::Write as _;

/// Serializes a [`DdGraph`] to a compact JSON document.
///
/// Schema:
///
/// ```json
/// {
///   "kind": "vector" | "matrix",
///   "numLevels": 2,
///   "rootWeight": {"re": 0.707, "im": 0.0},
///   "root": 12,
///   "nodes": [{"key": 12, "var": 1, "zeroMask": 0}],
///   "edges": [{"from": 12, "slot": 0, "to": 3, "weight": {"re": 1.0, "im": 0.0}}]
/// }
/// ```
///
/// `"to": null` denotes the terminal; numbers are plain IEEE doubles.
pub fn graph_to_json(graph: &DdGraph) -> String {
    let mut out = String::from("{");
    let kind = match graph.kind {
        NodeKind::Vector => "vector",
        NodeKind::Matrix => "matrix",
    };
    let _ = write!(out, "\"kind\":\"{kind}\",");
    let _ = write!(out, "\"numLevels\":{},", graph.num_levels);
    let _ = write!(out, "\"rootWeight\":{},", complex_json(graph.root_weight));
    match graph.root {
        Some(key) => {
            let _ = write!(out, "\"root\":{key},");
        }
        None => out.push_str("\"root\":null,"),
    }
    out.push_str("\"nodes\":[");
    for (i, n) in graph.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"key\":{},\"var\":{},\"zeroMask\":{}}}",
            n.key, n.var, n.zero_mask
        );
    }
    out.push_str("],\"edges\":[");
    for (i, e) in graph.edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let to = match e.to {
            Some(key) => key.to_string(),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "{{\"from\":{},\"slot\":{},\"to\":{to},\"weight\":{}}}",
            e.from,
            e.slot,
            complex_json(e.weight)
        );
    }
    out.push_str("]}");
    out
}

fn complex_json(c: Complex) -> String {
    format!("{{\"re\":{},\"im\":{}}}", json_number(c.re), json_number(c.im))
}

/// JSON has no NaN/Infinity; diagrams never contain them (the complex table
/// rejects non-finite values), but stay defensive.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DdGraph;
    use qdd_core::{gates, Control, DdPackage};

    #[test]
    fn bell_graph_round_trips_lexically() {
        let mut dd = DdPackage::new();
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
        let bell = dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap();
        let json = graph_to_json(&DdGraph::from_vector(&dd, bell));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"kind\":\"vector\""));
        assert!(json.contains("\"numLevels\":2"));
        assert!(json.contains("\"rootWeight\":{\"re\":1"));
        assert!(json.contains("0.7071067811865476"), "child weights carry 1/sqrt(2)");
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // 3 nodes, 6 edges.
        assert_eq!(json.matches("\"key\":").count(), 3);
        assert_eq!(json.matches("\"from\":").count(), 6);
    }

    #[test]
    fn terminal_edges_are_null() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(1).unwrap();
        let json = graph_to_json(&DdGraph::from_vector(&dd, s));
        assert!(json.contains("\"to\":null"));
    }

    #[test]
    fn matrix_kind_is_tagged() {
        let mut dd = DdPackage::new();
        let h = dd.gate_dd(gates::H, &[], 0, 1).unwrap();
        let json = graph_to_json(&DdGraph::from_matrix(&dd, h));
        assert!(json.contains("\"kind\":\"matrix\""));
        assert_eq!(json.matches("\"slot\":").count(), 4);
    }
}
