//! Standalone SVG rendering (no external tools required).
//!
//! A simple layered layout: one row per qubit level (root on top), the
//! terminal box at the bottom, nodes evenly spaced per row in BFS order.
//! Edge-weight encodings follow the active [`VizStyle`].
#![allow(clippy::write_with_newline)] // SVG fragments embed their newlines

use crate::color::{phase_to_color, weight_color, weight_thickness};
use crate::graph::DdGraph;
use crate::style::{EdgeWeightDisplay, NodeLook, VizStyle};
use qdd_complex::{Complex, FxHashMap};
use qdd_core::{DdPackage, MatEdge, VecEdge};
use std::fmt::Write as _;

const H_SPACING: f64 = 110.0;
const V_SPACING: f64 = 90.0;
const MARGIN: f64 = 50.0;
const NODE_R: f64 = 18.0;
const MODERN_W: f64 = 64.0;
const MODERN_H: f64 = 36.0;

/// Renders a state diagram to a standalone SVG document.
pub fn vector_to_svg(dd: &DdPackage, e: VecEdge, style: &VizStyle) -> String {
    graph_to_svg(&DdGraph::from_vector(dd, e), style)
}

/// Renders an operator diagram to a standalone SVG document.
pub fn matrix_to_svg(dd: &DdPackage, e: MatEdge, style: &VizStyle) -> String {
    graph_to_svg(&DdGraph::from_matrix(dd, e), style)
}

/// Renders an extracted [`DdGraph`] to SVG.
pub fn graph_to_svg(graph: &DdGraph, style: &VizStyle) -> String {
    let levels = graph.levels();
    let max_per_level = levels.iter().map(|l| l.len()).max().unwrap_or(1).max(1);
    let width = 2.0 * MARGIN + max_per_level as f64 * H_SPACING;
    let rows = graph.num_levels + 2; // root anchor + levels + terminal
    let height = 2.0 * MARGIN + rows as f64 * V_SPACING;

    // Position map: key → (x, y).
    let mut pos: FxHashMap<u32, (f64, f64)> = FxHashMap::default();
    for (row, level) in levels.iter().enumerate() {
        let y = MARGIN + (row as f64 + 1.0) * V_SPACING;
        let count = level.len() as f64;
        for (i, n) in level.iter().enumerate() {
            let x = width / 2.0 + (i as f64 - (count - 1.0) / 2.0) * H_SPACING;
            pos.insert(n.key, (x, y));
        }
    }
    let terminal_pos = (width / 2.0, MARGIN + (rows as f64 - 1.0) * V_SPACING);

    let mut out = String::new();
    let _ = write!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {width:.0} {height:.0}\" \
         font-family=\"Helvetica, sans-serif\" font-size=\"12\">\n"
    );
    out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");

    // Edges first (under the nodes).
    let slot_offset = |slots: usize, slot: u8| -> f64 {
        (slot as f64 - (slots as f64 - 1.0) / 2.0) * (NODE_R * 0.9)
    };
    let anchor = (width / 2.0, MARGIN + V_SPACING * 0.35);
    let root_to = match graph.root {
        Some(key) => pos[&key],
        None => terminal_pos,
    };
    draw_edge(
        &mut out,
        anchor,
        (root_to.0, root_to.1 - node_half_height(style)),
        graph.root_weight,
        style,
        true,
    );

    for edge in &graph.edges {
        let from = pos[&edge.from];
        let fx = from.0 + slot_offset(graph.slots(), edge.slot);
        let fy = from.1 + node_half_height(style);
        if edge.is_zero() {
            if style.retract_zero_stubs {
                // Tiny stub dot hanging off the node.
                let _ = write!(
                    out,
                    "<line x1=\"{fx:.1}\" y1=\"{fy:.1}\" x2=\"{fx:.1}\" y2=\"{:.1}\" \
                     stroke=\"black\" stroke-width=\"1\"/>\n<circle cx=\"{fx:.1}\" cy=\"{:.1}\" \
                     r=\"2.5\" fill=\"black\"/>\n",
                    fy + 8.0,
                    fy + 10.0
                );
            } else {
                draw_labelled_line(
                    &mut out,
                    (fx, fy),
                    (terminal_pos.0, terminal_pos.1 - 14.0),
                    "0",
                    "#999999",
                    1.0,
                    true,
                );
            }
            continue;
        }
        let to = match edge.to {
            Some(key) => {
                let p = pos[&key];
                (p.0, p.1 - node_half_height(style))
            }
            None => (terminal_pos.0, terminal_pos.1 - 14.0),
        };
        draw_edge(&mut out, (fx, fy), to, edge.weight, style, false);
        if edge.skip > 0 {
            // Identity-skip pass-through: a parallel hairline plus the
            // skipped-level count beside the midpoint.
            let _ = write!(
                out,
                "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" \
                 stroke=\"#7b2d8b\" stroke-width=\"0.8\"/>\n",
                fx + 3.0,
                fy,
                to.0 + 3.0,
                to.1
            );
            let mx = (fx + to.0) / 2.0 - 22.0;
            let my = (fy + to.1) / 2.0 + 12.0;
            let _ = write!(
                out,
                "<text x=\"{mx:.1}\" y=\"{my:.1}\" font-size=\"10\" \
                 fill=\"#7b2d8b\">⧉{}</text>\n",
                edge.skip
            );
        }
    }

    // Nodes.
    for node in &graph.nodes {
        let (x, y) = pos[&node.key];
        match style.node_look {
            NodeLook::Classic => {
                let _ = write!(
                    out,
                    "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"{NODE_R}\" fill=\"#f5f5f5\" \
                     stroke=\"black\"/>\n<text x=\"{x:.1}\" y=\"{:.1}\" \
                     text-anchor=\"middle\">q{}</text>\n",
                    y + 4.0,
                    node.var
                );
            }
            NodeLook::Modern => {
                let _ = write!(
                    out,
                    "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{MODERN_W}\" height=\"{MODERN_H}\" \
                     rx=\"8\" fill=\"#eef3fb\" stroke=\"#2b4a6f\"/>\n<text x=\"{x:.1}\" \
                     y=\"{:.1}\" text-anchor=\"middle\" fill=\"#2b4a6f\">q{}</text>\n",
                    x - MODERN_W / 2.0,
                    y - MODERN_H / 2.0,
                    y + 4.0,
                    node.var
                );
                // Port ticks along the bottom edge.
                for slot in 0..graph.slots() {
                    let px = x + slot_offset(graph.slots(), slot as u8);
                    let py = y + MODERN_H / 2.0;
                    let _ = write!(
                        out,
                        "<line x1=\"{px:.1}\" y1=\"{:.1}\" x2=\"{px:.1}\" y2=\"{py:.1}\" \
                         stroke=\"#2b4a6f\" stroke-width=\"1\"/>\n",
                        py - 5.0
                    );
                }
            }
        }
    }

    // Terminal.
    if graph.reaches_terminal() {
        let (tx, ty) = terminal_pos;
        let _ = write!(
            out,
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"28\" height=\"28\" fill=\"white\" \
             stroke=\"black\"/>\n<text x=\"{tx:.1}\" y=\"{:.1}\" text-anchor=\"middle\">1</text>\n",
            tx - 14.0,
            ty - 14.0,
            ty + 5.0
        );
    }
    out.push_str("</svg>\n");
    out
}

fn node_half_height(style: &VizStyle) -> f64 {
    match style.node_look {
        NodeLook::Classic => NODE_R,
        NodeLook::Modern => MODERN_H / 2.0,
    }
}

fn draw_edge(
    out: &mut String,
    from: (f64, f64),
    to: (f64, f64),
    w: Complex,
    style: &VizStyle,
    is_root: bool,
) {
    match style.edge_weights {
        EdgeWeightDisplay::Labels => {
            let dashed = !w.is_one(1e-9);
            let label = if w.is_one(1e-9) && !is_root {
                String::new()
            } else {
                w.to_label()
            };
            draw_labelled_line(out, from, to, &label, "black", 1.2, dashed);
        }
        EdgeWeightDisplay::ColorAndThickness => {
            let color = weight_color(w).to_hex();
            let width = weight_thickness(w, style.min_stroke, style.max_stroke);
            draw_labelled_line(out, from, to, "", &color, width, false);
        }
    }
}

fn draw_labelled_line(
    out: &mut String,
    from: (f64, f64),
    to: (f64, f64),
    label: &str,
    color: &str,
    width: f64,
    dashed: bool,
) {
    let dash = if dashed { " stroke-dasharray=\"5,3\"" } else { "" };
    let _ = write!(
        out,
        "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"{color}\" \
         stroke-width=\"{width:.2}\"{dash}/>\n",
        from.0, from.1, to.0, to.1
    );
    if !label.is_empty() {
        let mx = (from.0 + to.0) / 2.0 + 6.0;
        let my = (from.1 + to.1) / 2.0 - 4.0;
        let _ = write!(
            out,
            "<text x=\"{mx:.1}\" y=\"{my:.1}\" font-size=\"11\" fill=\"#333333\">{}</text>\n",
            escape_xml(label)
        );
    }
}

fn escape_xml(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders the HLS color wheel of Fig. 7(b) as an SVG legend: `segments`
/// pie slices, phase 0 at 3 o'clock, increasing counter-clockwise.
pub fn color_wheel_svg(segments: usize, radius: f64) -> String {
    let segments = segments.max(3);
    let cx = radius + 10.0;
    let cy = radius + 10.0;
    let size = 2.0 * (radius + 10.0);
    let mut out = String::new();
    let _ = write!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {size:.0} {size:.0}\">\n"
    );
    for k in 0..segments {
        let a0 = 2.0 * std::f64::consts::PI * k as f64 / segments as f64;
        let a1 = 2.0 * std::f64::consts::PI * (k + 1) as f64 / segments as f64;
        let mid = (a0 + a1) / 2.0;
        let color = phase_to_color(mid).to_hex();
        // SVG y grows downward; negate for counter-clockwise phases.
        let (x0, y0) = (cx + radius * a0.cos(), cy - radius * a0.sin());
        let (x1, y1) = (cx + radius * a1.cos(), cy - radius * a1.sin());
        let _ = write!(
            out,
            "<path d=\"M {cx:.1} {cy:.1} L {x0:.1} {y0:.1} A {radius:.1} {radius:.1} 0 0 0 \
             {x1:.1} {y1:.1} Z\" fill=\"{color}\"/>\n"
        );
    }
    let _ = write!(
        out,
        "<circle cx=\"{cx:.1}\" cy=\"{cy:.1}\" r=\"{:.1}\" fill=\"white\"/>\n",
        radius * 0.45
    );
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_core::{gates, Control};

    fn bell(dd: &mut DdPackage) -> VecEdge {
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
        dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap()
    }

    #[test]
    fn svg_is_well_formed() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        for style in [VizStyle::classic(), VizStyle::colored(), VizStyle::modern()] {
            let svg = vector_to_svg(&dd, b, &style);
            assert!(svg.starts_with("<svg"));
            assert!(svg.ends_with("</svg>\n"));
            assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
        }
    }

    #[test]
    fn classic_svg_shows_labels_and_nodes() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        let svg = vector_to_svg(&dd, b, &VizStyle::classic());
        assert!(svg.contains(">q1</text>"));
        assert!(svg.contains(">q0</text>"));
        assert!(svg.contains("1/√2"));
        assert!(svg.contains("stroke-dasharray"), "non-unit root edge dashed");
        assert_eq!(svg.matches("<circle").count() - 2, 3, "3 nodes + 2 stub dots");
    }

    #[test]
    fn colored_svg_encodes_weights_in_strokes() {
        let mut dd = DdPackage::new();
        let z = dd.zero_state(1).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 0).unwrap();
        let minus = dd.apply_gate(s, gates::Z, &[], 0).unwrap(); // |−⟩ has a negative weight
        let svg = vector_to_svg(&dd, minus, &VizStyle::colored());
        assert!(!svg.contains("1/√2"), "no labels in colored mode");
        // Phase π shows as cyan.
        assert!(svg.contains("#00ffff"));
    }

    #[test]
    fn matrix_svg_renders_qft_functionality() {
        let mut dd = DdPackage::new();
        let h = dd.gate_dd(gates::H, &[], 1, 2).unwrap();
        let svg = matrix_to_svg(&dd, h, &VizStyle::colored());
        assert!(svg.contains("<svg"));
        assert!(svg.contains("q1"));
    }

    #[test]
    fn color_wheel_has_requested_segments() {
        let svg = color_wheel_svg(12, 60.0);
        assert_eq!(svg.matches("<path").count(), 12);
        assert!(svg.contains("#ff0000") || svg.contains("#ff"), "reds appear");
    }

    #[test]
    fn modern_look_uses_rects() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        let svg = vector_to_svg(&dd, b, &VizStyle::modern());
        assert!(svg.contains("rx=\"8\""));
        assert!(!svg.contains("stub_"));
    }
}
