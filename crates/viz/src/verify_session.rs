//! The verification tab of the paper's tool (Fig. 9), as a library.
//!
//! Two algorithm boxes, one shared working diagram: gates from the left
//! circuit multiply onto the diagram from the left, *inverted* gates from
//! the right circuit from the right, so the diagram equals `G'† · G` of
//! whatever has been applied so far. If the circuits are equivalent and the
//! interleaving is chosen well, the picture stays near the identity the
//! whole time (Example 12).

use crate::dot::matrix_to_dot;
use crate::session::Frame;
use crate::style::VizStyle;
use crate::svg::matrix_to_svg;
use qdd_circuit::{GateApplication, Operation, QuantumCircuit};
use qdd_core::{DdPackage, MatEdge};
use qdd_verify::VerifyError;

/// A flattened circuit entry.
#[derive(Clone, Debug)]
enum Step {
    Gate(GateApplication),
    Barrier,
}

fn flatten(qc: &QuantumCircuit, which: usize) -> Result<Vec<Step>, VerifyError> {
    let mut out = Vec::new();
    for (op_index, op) in qc.ops().iter().enumerate() {
        match op {
            Operation::Barrier => out.push(Step::Barrier),
            Operation::Gate(g) if g.condition.is_none() => out.push(Step::Gate(g.clone())),
            Operation::Swap { .. } => {
                for g in op.to_gate_sequence().expect("swap is unitary") {
                    out.push(Step::Gate(g));
                }
            }
            _ => return Err(VerifyError::NonUnitary { circuit: which, op_index }),
        }
    }
    Ok(out)
}

/// Interactive two-circuit verification with frame capture.
#[derive(Debug)]
pub struct VerificationExplorer {
    dd: DdPackage,
    n: usize,
    left: Vec<Step>,
    right: Vec<Step>,
    li: usize,
    ri: usize,
    applied_left: usize,
    applied_right: usize,
    matrix: MatEdge,
    style: VizStyle,
    frames: Vec<Frame>,
    peak_nodes: usize,
}

impl VerificationExplorer {
    /// Opens a verification session; the working diagram starts as the
    /// identity.
    ///
    /// # Errors
    ///
    /// [`VerifyError::WidthMismatch`] or [`VerifyError::NonUnitary`] for
    /// unsupported inputs (the tool's documented §IV-C restrictions).
    pub fn new(
        left: &QuantumCircuit,
        right: &QuantumCircuit,
        style: VizStyle,
    ) -> Result<Self, VerifyError> {
        if left.num_qubits() != right.num_qubits() {
            return Err(VerifyError::WidthMismatch {
                left: left.num_qubits(),
                right: right.num_qubits(),
            });
        }
        let n = left.num_qubits();
        let lflat = flatten(left, 0)?;
        let rflat = flatten(right, 1)?;
        let mut dd = DdPackage::new();
        let matrix = dd.identity(n)?;
        dd.inc_ref_mat(matrix);
        let mut explorer = VerificationExplorer {
            dd,
            n,
            left: lflat,
            right: rflat,
            li: 0,
            ri: 0,
            applied_left: 0,
            applied_right: 0,
            matrix,
            style,
            frames: Vec::new(),
            peak_nodes: 0,
        };
        explorer.capture("identity (nothing applied)".to_string());
        Ok(explorer)
    }

    /// The working diagram `G'†·G` of everything applied so far.
    pub fn matrix(&self) -> MatEdge {
        self.matrix
    }

    /// The package, for custom rendering.
    pub fn package(&self) -> &DdPackage {
        &self.dd
    }

    /// All captured frames.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Node count of the working diagram.
    pub fn node_count(&self) -> usize {
        self.dd.mat_node_count(self.matrix)
    }

    /// Peak node count since the session opened (Example 12's metric).
    pub fn peak_nodes(&self) -> usize {
        self.peak_nodes
    }

    /// `(applied_left, applied_right)` gate counts (barriers excluded).
    pub fn position(&self) -> (usize, usize) {
        (self.applied_left, self.applied_right)
    }

    /// `true` when both circuits are exhausted.
    pub fn is_finished(&self) -> bool {
        self.li >= self.left.len() && self.ri >= self.right.len()
    }

    /// `true` if the working diagram currently equals the identity
    /// (possibly times a global phase) — the tool's green light.
    pub fn resembles_identity(&mut self) -> bool {
        let id = self.dd.identity(self.n).expect("n validated");
        if self.matrix.node != id.node {
            return false;
        }
        let w = self.dd.complex_value(self.matrix.weight);
        (w.abs() - 1.0).abs() < 1e-9
    }

    fn capture(&mut self, title: String) {
        let nodes = self.node_count();
        self.peak_nodes = self.peak_nodes.max(nodes);
        let svg = matrix_to_svg(&self.dd, self.matrix, &self.style);
        let dot = matrix_to_dot(&self.dd, self.matrix, &self.style);
        self.frames.push(Frame {
            index: self.frames.len(),
            title,
            svg,
            dot,
            node_count: nodes,
        });
    }

    fn set_matrix(&mut self, m: MatEdge) {
        self.dd.inc_ref_mat(m);
        self.dd.dec_ref_mat(self.matrix);
        self.matrix = m;
    }

    /// Applies the next gate of the **left** circuit (`M ← U·M`); skips
    /// barriers. Returns `false` when the left circuit is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates package errors.
    pub fn apply_left(&mut self) -> Result<bool, VerifyError> {
        while matches!(self.left.get(self.li), Some(Step::Barrier)) {
            self.li += 1;
        }
        let Some(Step::Gate(g)) = self.left.get(self.li).cloned() else {
            return Ok(false);
        };
        let gate = self.dd.gate_dd(g.gate.matrix(), &g.controls, g.target, self.n)?;
        let m = self.dd.mat_mat(gate, self.matrix);
        self.set_matrix(m);
        self.li += 1;
        self.applied_left += 1;
        self.capture(format!("G: applied {}", Operation::Gate(g)));
        Ok(true)
    }

    /// Applies the inverse of the next gate of the **right** circuit
    /// (`M ← M·V†`); skips barriers. Returns `false` when exhausted.
    ///
    /// # Errors
    ///
    /// Propagates package errors.
    pub fn apply_right(&mut self) -> Result<bool, VerifyError> {
        while matches!(self.right.get(self.ri), Some(Step::Barrier)) {
            self.ri += 1;
        }
        let Some(Step::Gate(g)) = self.right.get(self.ri).cloned() else {
            return Ok(false);
        };
        let inv = g.gate.inverse();
        let gate = self.dd.gate_dd(inv.matrix(), &g.controls, g.target, self.n)?;
        let m = self.dd.mat_mat(self.matrix, gate);
        self.set_matrix(m);
        self.ri += 1;
        self.applied_right += 1;
        self.capture(format!("G': applied inverse of {}", Operation::Gate(g)));
        Ok(true)
    }

    /// Applies right-circuit gates up to and including the next barrier —
    /// the `⏭` behaviour Example 12 leans on.
    ///
    /// # Errors
    ///
    /// Propagates package errors.
    pub fn right_to_next_barrier(&mut self) -> Result<(), VerifyError> {
        loop {
            match self.right.get(self.ri) {
                Some(Step::Barrier) => {
                    self.ri += 1;
                    return Ok(());
                }
                Some(Step::Gate(_)) => {
                    self.apply_right()?;
                }
                None => return Ok(()),
            }
        }
    }

    /// Runs Example 12's schedule to completion: one gate from `G`, then
    /// right-circuit gates up to the next barrier, repeating; drains
    /// leftovers. Returns whether the result resembles the identity.
    ///
    /// # Errors
    ///
    /// Propagates package errors.
    pub fn run_barrier_guided(&mut self) -> Result<bool, VerifyError> {
        while self.apply_left()? {
            self.right_to_next_barrier()?;
        }
        while self.apply_right()? {}
        Ok(self.resembles_identity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_circuit::{compile, library};

    /// Fig. 9 / Example 12: verifying the two QFT versions stays close to
    /// the identity throughout.
    #[test]
    fn example_12_barrier_guided_run() {
        let qft = library::qft(3, true);
        let compiled = compile::compiled_qft(3);
        let mut ex =
            VerificationExplorer::new(&qft, &compiled, VizStyle::colored()).unwrap();
        let equivalent = ex.run_barrier_guided().unwrap();
        assert!(equivalent);
        // Example 12: a maximum of 9 nodes are required.
        assert!(
            ex.peak_nodes() <= 9,
            "peak {} exceeds the paper's 9-node bound",
            ex.peak_nodes()
        );
        assert!(ex.is_finished());
    }

    #[test]
    fn mid_session_matrix_differs_from_identity() {
        let qft = library::qft(3, true);
        let compiled = compile::compiled_qft(3);
        let mut ex =
            VerificationExplorer::new(&qft, &compiled, VizStyle::colored()).unwrap();
        assert!(ex.resembles_identity(), "starts at the identity");
        ex.apply_left().unwrap();
        assert!(!ex.resembles_identity(), "one-sided application diverges");
    }

    #[test]
    fn frames_record_progress() {
        let bell = library::bell();
        let mut ex = VerificationExplorer::new(&bell, &bell, VizStyle::classic()).unwrap();
        ex.apply_left().unwrap();
        ex.apply_right().unwrap();
        ex.apply_left().unwrap();
        ex.apply_right().unwrap();
        assert_eq!(ex.frames().len(), 5, "initial + 4 applications");
        assert!(ex.frames()[1].title.starts_with("G:"));
        assert!(ex.frames()[2].title.starts_with("G':"));
    }

    #[test]
    fn self_verification_ends_at_identity() {
        let qc = library::random_circuit(3, 10, 5);
        let mut ex = VerificationExplorer::new(&qc, &qc, VizStyle::classic()).unwrap();
        while ex.apply_left().unwrap() {
            ex.apply_right().unwrap();
        }
        assert!(ex.resembles_identity());
    }

    #[test]
    fn non_equivalent_detected() {
        let good = library::ghz(3);
        let mut bad = library::ghz(3);
        bad.x(1);
        let mut ex = VerificationExplorer::new(&good, &bad, VizStyle::classic()).unwrap();
        let equivalent = ex.run_barrier_guided().unwrap();
        assert!(!equivalent);
    }

    #[test]
    fn width_mismatch_rejected() {
        let a = library::ghz(2);
        let b = library::ghz(3);
        assert!(VerificationExplorer::new(&a, &b, VizStyle::classic()).is_err());
    }

    #[test]
    fn measurements_rejected_like_the_tool() {
        let mut a = QuantumCircuit::new(1);
        a.add_creg("c", 1);
        a.measure(0, 0);
        let b = QuantumCircuit::new(1);
        assert!(matches!(
            VerificationExplorer::new(&a, &b, VizStyle::classic()),
            Err(VerifyError::NonUnitary { circuit: 0, .. })
        ));
    }
}
