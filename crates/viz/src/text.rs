//! Plain-text renderings: circuit diagrams and state tables.
//!
//! The paper's tool shows the circuit next to the diagram and the state's
//! amplitudes on demand; these renderers produce the terminal equivalents,
//! used by the examples and handy in tests and logs.

use qdd_circuit::{Operation, Polarity, QuantumCircuit};
use qdd_core::{DdPackage, VecEdge};
use std::fmt::Write as _;

/// Renders a circuit as ASCII art, one wire per qubit (most significant on
/// top, matching the paper's figures), one column per operation.
///
/// # Examples
///
/// ```
/// use qdd_circuit::library;
/// let art = qdd_viz::text::circuit_to_text(&library::bell());
/// assert!(art.contains("[h]"));
/// assert!(art.contains("●"));
/// assert!(art.lines().count() == 2);
/// ```
pub fn circuit_to_text(qc: &QuantumCircuit) -> String {
    let n = qc.num_qubits();
    // Build one column of cell strings per operation.
    let mut columns: Vec<Vec<String>> = Vec::with_capacity(qc.len());
    for op in qc.ops() {
        let mut col = vec![String::new(); n];
        match op {
            Operation::Barrier => {
                for cell in col.iter_mut() {
                    *cell = "░".to_string();
                }
            }
            Operation::Measure { qubit, bit } => {
                col[*qubit] = format!("[M→c{bit}]");
            }
            Operation::Reset { qubit } => {
                col[*qubit] = "[reset]".to_string();
            }
            Operation::Swap { a, b, controls } => {
                col[*a] = "×".to_string();
                col[*b] = "×".to_string();
                for c in controls {
                    col[c.qubit] = "●".to_string();
                }
                mark_spans(&mut col, op);
            }
            Operation::Gate(g) => {
                let mut label = format!("[{}]", g.gate.simplified());
                if let Some(cond) = g.condition {
                    label = format!("[{} if c{}=={}]", g.gate.simplified(), cond.creg, cond.value);
                }
                col[g.target] = label;
                for c in &g.controls {
                    col[c.qubit] = match c.polarity {
                        Polarity::Positive => "●".to_string(),
                        Polarity::Negative => "○".to_string(),
                    };
                }
                mark_spans(&mut col, op);
            }
        }
        columns.push(col);
    }

    // Pad each column to its own width, then stitch wires.
    let mut out = String::new();
    for q in (0..n).rev() {
        let _ = write!(out, "q{q}: ");
        for col in &columns {
            let width = col.iter().map(|c| c.len_chars()).max().unwrap_or(1).max(1);
            let cell = &col[q];
            let content = if cell.is_empty() {
                "─".repeat(width)
            } else {
                center(cell, width)
            };
            let _ = write!(out, "─{content}─");
        }
        out.push('\n');
    }
    out
}

/// Marks the vertical connector on wires strictly between the extremes of
/// a multi-qubit operation.
fn mark_spans(col: &mut [String], op: &Operation) {
    let qubits = op.qubits();
    if qubits.len() < 2 {
        return;
    }
    let lo = *qubits.iter().min().expect("non-empty");
    let hi = *qubits.iter().max().expect("non-empty");
    for (q, cell) in col.iter_mut().enumerate() {
        if q > lo && q < hi && cell.is_empty() {
            *cell = "│".to_string();
        }
    }
}

fn center(s: &str, width: usize) -> String {
    let len = s.len_chars();
    if len >= width {
        return s.to_string();
    }
    let left = (width - len) / 2;
    let right = width - len - left;
    format!("{}{}{}", "─".repeat(left), s, "─".repeat(right))
}

/// Character-count helper (`str::len` counts bytes; box-drawing glyphs are
/// multi-byte).
trait LenChars {
    fn len_chars(&self) -> usize;
}

impl LenChars for String {
    fn len_chars(&self) -> usize {
        self.chars().count()
    }
}
impl LenChars for str {
    fn len_chars(&self) -> usize {
        self.chars().count()
    }
}

/// Renders a state's non-negligible amplitudes as a table with probability
/// bars — the textual version of the tool's state display.
///
/// Amplitudes below `threshold` in probability are omitted; rows are
/// sorted by basis index.
pub fn state_table(dd: &DdPackage, state: VecEdge, n: usize, threshold: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>width$}  {:>22}  {:>10}  bar", "basis", "amplitude", "prob", width = n + 2);
    let mut shown = 0usize;
    let mut shown_prob = 0.0f64;
    for basis in dd.nonzero_basis_states(state) {
        let amp = dd.amplitude(state, basis);
        let p = amp.norm_sqr();
        if p < threshold {
            continue;
        }
        shown += 1;
        shown_prob += p;
        let bar_len = (p * 24.0).round() as usize;
        let _ = writeln!(
            out,
            "|{basis:0n$b}⟩  {:>22}  {p:>10.6}  {}",
            amp.to_label(),
            "█".repeat(bar_len),
        );
    }
    let _ = writeln!(out, "({shown} basis states shown, total probability {shown_prob:.6})");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_circuit::{library, StandardGate};
    use qdd_core::gates;

    #[test]
    fn bell_circuit_art() {
        let art = circuit_to_text(&library::bell());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("q1:"));
        assert!(lines[1].starts_with("q0:"));
        assert!(lines[0].contains("[h]"));
        assert!(lines[0].contains("●"));
        assert!(lines[1].contains("[x]"));
    }

    #[test]
    fn connector_spans_middle_wires() {
        let mut qc = qdd_circuit::QuantumCircuit::new(3);
        qc.cx(2, 0);
        let art = circuit_to_text(&qc);
        let q1_line = art.lines().nth(1).unwrap();
        assert!(q1_line.contains("│"), "middle wire shows the connector: {art}");
    }

    #[test]
    fn specials_render() {
        let qc = library::teleportation(0.5);
        let art = circuit_to_text(&qc);
        assert!(art.contains("░"), "barrier");
        assert!(art.contains("[M→c0]"), "measure");
        assert!(art.contains("if c0==1"), "condition: {art}");
    }

    #[test]
    fn swap_renders_crosses() {
        let mut qc = qdd_circuit::QuantumCircuit::new(2);
        qc.swap(0, 1);
        let art = circuit_to_text(&qc);
        assert_eq!(art.matches('×').count(), 2);
    }

    #[test]
    fn negative_control_renders_open_circle() {
        let mut qc = qdd_circuit::QuantumCircuit::new(2);
        qc.gate(StandardGate::X, vec![qdd_circuit::Control::neg(1)], 0);
        let art = circuit_to_text(&qc);
        assert!(art.contains("○"));
    }

    #[test]
    fn state_table_of_bell() {
        let mut dd = DdPackage::new();
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
        let bell = dd
            .apply_gate(s, gates::X, &[qdd_core::Control::pos(1)], 0)
            .unwrap();
        let table = state_table(&dd, bell, 2, 1e-9);
        assert!(table.contains("|00⟩"));
        assert!(table.contains("|11⟩"));
        assert!(!table.contains("|01⟩"));
        assert!(table.contains("1/√2"));
        assert!(table.contains("0.500000"));
        assert!(table.contains("total probability 1.000000"));
    }

    #[test]
    fn state_table_threshold_filters() {
        let mut dd = DdPackage::new();
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::ry(0.2), &[], 0).unwrap();
        let table = state_table(&dd, s, 2, 0.5);
        assert!(table.contains("|00⟩"));
        assert!(table.contains("(1 basis states shown"));
    }
}
