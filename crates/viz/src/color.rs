//! The HLS color wheel used to encode complex phases (paper Fig. 7(b)).
//!
//! When explicit edge-weight labels are disabled, the tool encodes the
//! magnitude of a weight in the **thickness** of the edge and its phase in
//! a **color** taken from the HLS wheel: phase 0 → red, π/2 → yellow-green,
//! π → cyan, 3π/2 → violet, wrapping back to red.

use qdd_complex::Complex;
use std::f64::consts::PI;

/// An sRGB color.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// CSS hex form, e.g. `#ff0000`.
    pub fn to_hex(self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

impl std::fmt::Display for Rgb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Converts HLS (hue ∈ [0,1), lightness, saturation) to RGB.
///
/// Standard CSS/`colorsys` algorithm; exposed because the Fig. 7(b) wheel
/// is defined in HLS.
pub fn hls_to_rgb(h: f64, l: f64, s: f64) -> Rgb {
    let h = h.rem_euclid(1.0);
    let c = (1.0 - (2.0 * l - 1.0).abs()) * s;
    let hp = h * 6.0;
    let x = c * (1.0 - (hp % 2.0 - 1.0).abs());
    let (r1, g1, b1) = match hp as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    let m = l - c / 2.0;
    let to8 = |v: f64| ((v + m).clamp(0.0, 1.0) * 255.0).round() as u8;
    Rgb {
        r: to8(r1),
        g: to8(g1),
        b: to8(b1),
    }
}

/// Maps a phase angle (radians) onto the Fig. 7(b) wheel.
pub fn phase_to_color(phase: f64) -> Rgb {
    let hue = phase.rem_euclid(2.0 * PI) / (2.0 * PI);
    hls_to_rgb(hue, 0.5, 1.0)
}

/// The color of a complex weight: its phase on the wheel.
pub fn weight_color(w: Complex) -> Rgb {
    phase_to_color(w.arg())
}

/// The stroke width encoding a weight's magnitude.
///
/// Magnitude 1 maps to `max`, magnitude 0 to `min`, linearly.
pub fn weight_thickness(w: Complex, min: f64, max: f64) -> f64 {
    let mag = w.abs().clamp(0.0, 1.0);
    min + (max - min) * mag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_anchor_colors() {
        // Phase 0 → red.
        assert_eq!(phase_to_color(0.0), Rgb { r: 255, g: 0, b: 0 });
        // Phase π → cyan.
        assert_eq!(phase_to_color(PI), Rgb { r: 0, g: 255, b: 255 });
        // Phase 2π wraps to red.
        assert_eq!(phase_to_color(2.0 * PI), phase_to_color(0.0));
        // Negative phases wrap.
        assert_eq!(phase_to_color(-PI / 2.0), phase_to_color(3.0 * PI / 2.0));
    }

    #[test]
    fn hls_primaries() {
        assert_eq!(hls_to_rgb(0.0, 0.5, 1.0).to_hex(), "#ff0000");
        assert_eq!(hls_to_rgb(1.0 / 3.0, 0.5, 1.0).to_hex(), "#00ff00");
        assert_eq!(hls_to_rgb(2.0 / 3.0, 0.5, 1.0).to_hex(), "#0000ff");
        // Zero saturation is gray regardless of hue.
        assert_eq!(hls_to_rgb(0.3, 0.5, 0.0), hls_to_rgb(0.9, 0.5, 0.0));
    }

    #[test]
    fn lightness_extremes() {
        assert_eq!(hls_to_rgb(0.1, 0.0, 1.0).to_hex(), "#000000");
        assert_eq!(hls_to_rgb(0.1, 1.0, 1.0).to_hex(), "#ffffff");
    }

    #[test]
    fn thickness_scales_with_magnitude() {
        let thin = weight_thickness(Complex::new(0.0, 0.0), 0.5, 3.0);
        let mid = weight_thickness(Complex::SQRT1_2, 0.5, 3.0);
        let thick = weight_thickness(Complex::ONE, 0.5, 3.0);
        assert!(thin < mid && mid < thick);
        assert!((thin - 0.5).abs() < 1e-12);
        assert!((thick - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weight_color_uses_phase_only() {
        let a = weight_color(Complex::new(0.3, 0.0));
        let b = weight_color(Complex::new(0.9, 0.0));
        assert_eq!(a, b, "magnitude must not affect the hue");
        let c = weight_color(Complex::new(0.0, 0.5));
        assert_ne!(a, c);
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(Rgb { r: 1, g: 2, b: 255 }.to_hex(), "#0102ff");
        assert_eq!(format!("{}", Rgb { r: 0, g: 0, b: 0 }), "#000000");
    }
}
