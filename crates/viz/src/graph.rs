//! Renderer-independent graph extraction from decision diagrams.
//!
//! The extraction types live in [`qdd_core::graph`] so non-rendering layers
//! (the simulator's timeline recorder) can capture structural snapshots;
//! this module re-exports them under their historical viz paths.

pub use qdd_core::graph::{DdGraph, GraphEdge, GraphNode, NodeKind};
