//! Visualization of quantum decision diagrams — the paper's §IV.
//!
//! The reproduced paper presents an installation-free web tool that draws
//! decision diagrams and lets users explore simulation and verification
//! step by step. This crate is that tool as a library plus offline
//! artifacts:
//!
//! * [`style`] — the "classic" and "modern" looks of Fig. 7(a), explicit
//!   edge-weight labels or the label-free encoding where **line thickness
//!   carries magnitude** and **color carries phase**;
//! * [`color`] — the HLS color wheel of Fig. 7(b);
//! * [`graph`] — a renderer-independent extraction of a diagram's nodes,
//!   edges and 0-stubs;
//! * [`dot`] / [`svg`] / [`json`] — Graphviz, standalone-SVG and JSON
//!   exporters;
//! * [`session`] — the simulation tab (Fig. 8): navigate a circuit and
//!   collect one rendered frame per step, including measurement dialogs;
//! * [`verify_session`] — the verification tab (Fig. 9): two circuits,
//!   gates applied from either side onto a shared working diagram;
//! * [`html`] — bundles frames into a single self-contained HTML explorer
//!   with ⏮ ← → ⏭ controls: the offline stand-in for the hosted web tool;
//! * [`inspect`] — parses `qdd-timeline-v1` JSONL recordings back into a
//!   model, feeding the time-resolved run inspector
//!   ([`html::timeline_report`]);
//! * [`text`] — terminal renderings: ASCII circuit diagrams and amplitude
//!   tables.
//!
//! # Examples
//!
//! Render the paper's Bell-state diagram (Fig. 2(a)) as DOT and SVG:
//!
//! ```
//! use qdd_core::{DdPackage, gates, Control};
//! use qdd_viz::{dot, svg, style::VizStyle};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dd = DdPackage::new();
//! let zero = dd.zero_state(2)?;
//! let bell = {
//!     let s = dd.apply_gate(zero, gates::H, &[], 1)?;
//!     dd.apply_gate(s, gates::X, &[Control::pos(1)], 0)?
//! };
//! let dot_text = dot::vector_to_dot(&dd, bell, &VizStyle::classic());
//! assert!(dot_text.contains("digraph"));
//! let svg_text = svg::vector_to_svg(&dd, bell, &VizStyle::colored());
//! assert!(svg_text.starts_with("<svg"));
//! # Ok(())
//! # }
//! ```

pub mod color;
pub mod dot;
pub mod graph;
pub mod html;
pub mod inspect;
pub mod json;
pub mod session;
pub mod style;
pub mod svg;
pub mod text;
pub mod verify_session;

pub use color::{phase_to_color, Rgb};
pub use graph::{DdGraph, GraphEdge, GraphNode, NodeKind};
pub use session::{Frame, SimulationExplorer};
pub use style::{EdgeWeightDisplay, NodeLook, VizStyle};
pub use verify_session::VerificationExplorer;
