//! Decision diagrams for quantum computing.
//!
//! This crate is a from-scratch Rust implementation of the decision-diagram
//! package described in *Visualizing Decision Diagrams for Quantum Computing*
//! (Wille, Burgholzer, Artner, DATE 2021) and the papers it builds on:
//! QMDD-style diagrams (Niemann et al.), interned complex edge weights
//! (Zulehner, Hillmich, Wille, ICCAD 2019) and stochastic single-path
//! measurement (Hillmich, Markov, Wille, DAC 2020).
//!
//! # Data structure
//!
//! * A **vector DD** represents a `2ⁿ` state vector. Each node is labelled
//!   with a qubit and has two successor edges (qubit in `|0⟩` / `|1⟩`);
//!   amplitudes are products of edge weights along root→terminal paths.
//! * A **matrix DD** represents a `2ⁿ×2ⁿ` operator. Each node has four
//!   successors, one per `U_{ij}` sub-matrix block.
//!
//! Nodes live in arenas inside a [`DdPackage`] and are deduplicated through
//! unique tables; edge weights are interned in a
//! [`ComplexTable`](qdd_complex::ComplexTable). Together with deterministic
//! normalization this makes the diagrams **canonical**: two circuits are
//! equivalent iff their matrix DDs are the *same edge* —
//! the property the paper's verification scheme relies on.
//!
//! # Example
//!
//! Build the Bell state of the paper's Example 1/5 and inspect it:
//!
//! ```
//! use qdd_core::{DdPackage, gates};
//!
//! # fn main() -> Result<(), qdd_core::DdError> {
//! let mut dd = DdPackage::new();
//! let zero = dd.zero_state(2)?;             // |00⟩
//! let h = dd.gate_dd(gates::H, &[], 1, 2)?; // H on the most-significant qubit
//! let cx = dd.gate_dd(gates::X, &[qdd_core::Control::pos(1)], 0, 2)?;
//! let state = dd.mat_vec(h, zero);
//! let bell = dd.mat_vec(cx, state);
//! // 1/√2 |00⟩ + 1/√2 |11⟩, a 2-node diagram (Fig. 2(a) of the paper):
//! assert_eq!(dd.vec_node_count(bell), 3); // paper counts 3 incl. both q0 nodes
//! let amps = dd.to_dense_vector(bell, 2);
//! assert!((amps[0].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
//! assert!((amps[3].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod approx;
mod cachekey;
mod compute;
mod error;
mod export;
pub mod gates;
pub mod graph;
mod limits;
mod measure;
mod node;
mod normalize;
mod observable;
mod ops;
mod package;
mod sample;
mod serialize;
mod traverse;
mod types;

pub use approx::ApproxReport;
pub use cachekey::fnv1a_64;
pub use compute::ComputeTableStat;
pub use error::{DdError, ResourceKind};
pub use gates::{Control, GateMatrix, Polarity};
pub use limits::{ApproxPolicy, Limits, DEFAULT_AUTO_GC_THRESHOLD, DEFAULT_COMPLEX_GC_THRESHOLD};
pub use measure::MeasurementOutcome;
pub use node::{MNode, Node, VNode};
pub use observable::{ParsePauliError, Pauli, PauliString};
pub use package::{DdPackage, FrozenDd, GcReport, PackageConfig, PackageStats, VectorNormalization};
pub use qdd_complex::FrontCache;
pub use sample::SamplingTableau;
pub use serialize::SerializeError;
pub use traverse::Traversable;
pub use types::{Edge, MatEdge, MNodeId, NodeId, Qubit, VecEdge, VNodeId};

/// Maximum number of qubits a single package supports.
///
/// Bounded by the `u8` variable labels plus headroom for sentinel values.
pub const MAX_QUBITS: usize = 128;
