//! Arena node representations.

use crate::types::{MatEdge, Qubit, VecEdge};

/// A vector-DD node: a qubit label and two successor edges.
///
/// Successor `0` leads to the sub-vector where the node's qubit is `|0⟩`,
/// successor `1` to the `|1⟩` sub-vector (paper §III-A).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VNode {
    /// Qubit this node decides on.
    pub var: Qubit,
    /// Successor edges `[e₀, e₁]`.
    pub children: [VecEdge; 2],
    /// External root-reference count (used by garbage collection; not a
    /// structural property).
    pub(crate) rc: u32,
    /// Tombstone flag set when the slot is on the free list.
    pub(crate) dead: bool,
    /// Monotone creation stamp. Commutative operations order their operands
    /// by birth rather than by slot id: slot ids are recycled by garbage
    /// collection, and an ordering that changes when a collection happens to
    /// run changes which operand is divided by which — enough numeric
    /// perturbation to re-fragment knife-edge-compact diagrams (see
    /// `grover_16_stays_compact`).
    pub(crate) birth: u64,
}

/// A matrix-DD node: a qubit label and four successor edges.
///
/// Successors are ordered `[U₀₀, U₀₁, U₁₀, U₁₁]` — row index `i` is the
/// *output* value of the qubit, column index `j` the *input* value, matching
/// Fig. 2(c) of the paper (child `2·i + j`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MNode {
    /// Qubit this node decides on.
    pub var: Qubit,
    /// Successor edges `[e₀₀, e₀₁, e₁₀, e₁₁]`.
    pub children: [MatEdge; 4],
    /// External root-reference count.
    pub(crate) rc: u32,
    /// Tombstone flag set when the slot is on the free list.
    pub(crate) dead: bool,
    /// Monotone creation stamp (see [`VNode::birth`]).
    pub(crate) birth: u64,
}

impl VNode {
    pub(crate) fn new(var: Qubit, children: [VecEdge; 2]) -> Self {
        VNode {
            var,
            children,
            rc: 0,
            dead: false,
            birth: 0,
        }
    }
}

impl MNode {
    pub(crate) fn new(var: Qubit, children: [MatEdge; 4]) -> Self {
        MNode {
            var,
            children,
            rc: 0,
            dead: false,
            birth: 0,
        }
    }
}
