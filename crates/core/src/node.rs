//! Arena node representations.

use crate::types::{Edge, Qubit};
use std::sync::atomic::{AtomicU32, Ordering};

/// A decision-diagram node with `N` successor edges.
///
/// * `N = 2` ([`VNode`]): successor `0` leads to the sub-vector where the
///   node's qubit is `|0⟩`, successor `1` to the `|1⟩` sub-vector
///   (paper §III-A).
/// * `N = 4` ([`MNode`]): successors are ordered `[U₀₀, U₀₁, U₁₀, U₁₁]` —
///   row index `i` is the *output* value of the qubit, column index `j` the
///   *input* value, matching Fig. 2(c) of the paper (child `2·i + j`).
///
/// `var`, `children` and `birth` are immutable once the node is published
/// into the store (canonicity depends on it). The root-reference count is
/// atomic so shared-store workers can pin and release roots without a write
/// lock on the arena.
#[derive(Debug)]
pub struct Node<const N: usize> {
    /// Qubit this node decides on.
    pub var: Qubit,
    /// Successor edges, in slot order.
    pub children: [Edge<N>; N],
    /// External root-reference count (used by garbage collection; not a
    /// structural property).
    pub(crate) rc: AtomicU32,
    /// Monotone creation stamp. Commutative operations order their operands
    /// by birth rather than by slot id: slot ids are recycled by garbage
    /// collection, and an ordering that changes when a collection happens to
    /// run changes which operand is divided by which — enough numeric
    /// perturbation to re-fragment knife-edge-compact diagrams (see
    /// `grover_16_stays_compact`).
    pub(crate) birth: u64,
}

impl<const N: usize> Node<N> {
    pub(crate) fn new(var: Qubit, children: [Edge<N>; N]) -> Self {
        Node {
            var,
            children,
            rc: AtomicU32::new(0),
            birth: 0,
        }
    }

    /// Current external root count.
    #[inline]
    pub(crate) fn rc(&self) -> u32 {
        self.rc.load(Ordering::Relaxed)
    }
}

impl<const N: usize> Clone for Node<N> {
    fn clone(&self) -> Self {
        Node {
            var: self.var,
            children: self.children,
            rc: AtomicU32::new(self.rc()),
            birth: self.birth,
        }
    }
}

/// Structural equality: a node *is* its decision variable plus successor
/// edges (the unique-table key); refcounts and birth stamps are bookkeeping.
impl<const N: usize> PartialEq for Node<N> {
    fn eq(&self, other: &Self) -> bool {
        self.var == other.var && self.children == other.children
    }
}

impl<const N: usize> Eq for Node<N> {}

/// A vector-DD node: a qubit label and two successor edges.
pub type VNode = Node<2>;

/// A matrix-DD node: a qubit label and four successor edges.
pub type MNode = Node<4>;
