//! Arena node representations.

use crate::types::{Edge, Qubit};

/// A decision-diagram node with `N` successor edges.
///
/// * `N = 2` ([`VNode`]): successor `0` leads to the sub-vector where the
///   node's qubit is `|0⟩`, successor `1` to the `|1⟩` sub-vector
///   (paper §III-A).
/// * `N = 4` ([`MNode`]): successors are ordered `[U₀₀, U₀₁, U₁₀, U₁₁]` —
///   row index `i` is the *output* value of the qubit, column index `j` the
///   *input* value, matching Fig. 2(c) of the paper (child `2·i + j`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node<const N: usize> {
    /// Qubit this node decides on.
    pub var: Qubit,
    /// Successor edges, in slot order.
    pub children: [Edge<N>; N],
    /// External root-reference count (used by garbage collection; not a
    /// structural property).
    pub(crate) rc: u32,
    /// Tombstone flag set when the slot is on the free list.
    pub(crate) dead: bool,
    /// Monotone creation stamp. Commutative operations order their operands
    /// by birth rather than by slot id: slot ids are recycled by garbage
    /// collection, and an ordering that changes when a collection happens to
    /// run changes which operand is divided by which — enough numeric
    /// perturbation to re-fragment knife-edge-compact diagrams (see
    /// `grover_16_stays_compact`).
    pub(crate) birth: u64,
}

impl<const N: usize> Node<N> {
    pub(crate) fn new(var: Qubit, children: [Edge<N>; N]) -> Self {
        Node {
            var,
            children,
            rc: 0,
            dead: false,
            birth: 0,
        }
    }
}

/// A vector-DD node: a qubit label and two successor edges.
pub type VNode = Node<2>;

/// A matrix-DD node: a qubit label and four successor edges.
pub type MNode = Node<4>;
