//! Resource limits and the governor that enforces them.
//!
//! A worst-case (non-compact) quantum state has an exponentially large
//! decision diagram; driven interactively or by untrusted circuit files, the
//! package must fail *gracefully* — bounded memory, bounded time, structured
//! errors — instead of exhausting the host. [`Limits`] declares the budgets;
//! the package enforces them at three chokepoints:
//!
//! 1. **Node allocation** (`try_make_vec_node` / `try_make_mat_node`): a new
//!    unique-table entry is refused once the live-node estimate reaches
//!    [`Limits::max_nodes`], and complex-weight interning growth is checked
//!    against [`Limits::max_complex_entries`].
//! 2. **Recursive operation entry** (`add`/`multiply`/`kron`/`inner`): each
//!    recursion level checks [`Limits::recursion_depth`] and, periodically,
//!    the armed [`Limits::deadline`].
//! 3. **Compute-table insert**: each cache is bounded by its share of
//!    [`Limits::max_compute_entries`] and evicts (clears) on pressure rather
//!    than growing without bound.
//!
//! All limits default to *unlimited*; a default-configured package behaves
//! byte-identically to one without the governor.

use std::time::{Duration, Instant};

use crate::error::{DdError, ResourceKind};

/// Live-node estimate beyond which long-running drivers (simulator,
/// equivalence checker) garbage-collect between operations when no explicit
/// threshold is configured.
pub const DEFAULT_AUTO_GC_THRESHOLD: usize = 2_000_000;

/// Complex-table entry count beyond which long-running drivers
/// garbage-collect between operations. Chosen so the interning probe index
/// (a few dozen bytes per entry) stays within the last-level cache; larger
/// tables make every fresh amplitude a string of DRAM misses.
pub const DEFAULT_COMPLEX_GC_THRESHOLD: usize = 1 << 15;

/// Resource budgets of a package. All optional; `None` means unlimited.
///
/// Construct with struct-update syntax:
///
/// ```
/// use qdd_core::Limits;
/// let limits = Limits { max_nodes: Some(10_000), ..Limits::default() };
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Limits {
    /// Ceiling on live decision-diagram nodes (vector + matrix). Exceeding
    /// it makes node construction return
    /// [`DdError::ResourceExhausted`] with [`ResourceKind::Nodes`].
    pub max_nodes: Option<usize>,
    /// Ceiling on distinct interned complex values.
    pub max_complex_entries: Option<usize>,
    /// Ceiling on total memoized operation results. Unlike the other limits
    /// this one degrades silently: caches evict (clear) instead of erroring,
    /// counted in `PackageStats::compute_evictions`.
    pub max_compute_entries: Option<usize>,
    /// Wall-clock budget for governed work. The clock starts when a driver
    /// arms it (`DdPackage::arm_deadline`); once elapsed, governed
    /// operations return [`DdError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Ceiling on operation recursion depth (≈ qubit count for DD ops;
    /// mainly a guard against pathological inputs).
    pub recursion_depth: Option<usize>,
    /// Live-node estimate at which long-running drivers auto-GC between
    /// operations (previously a hardcoded constant in the simulator).
    pub auto_gc_threshold: usize,
    /// Complex-table size at which long-running drivers auto-GC between
    /// operations. Dense workloads intern a fresh batch of amplitudes per
    /// gate; past this point the interning index has outgrown the CPU
    /// caches and a collection pays for itself.
    pub complex_gc_threshold: usize,
    /// Minimum acceptable state fidelity for approximation-based
    /// degradation. `Some(f)` authorizes drivers to prune the state when a
    /// hard budget trips, as long as the *cumulative* fidelity lower bound
    /// across all pruning rounds stays ≥ `f`. `None` (the default) disables
    /// the approximation rung entirely. Inert on its own — it only changes
    /// behavior once another budget (nodes, complex entries) applies
    /// pressure — so it does not affect [`Limits::is_unlimited`].
    pub min_fidelity: Option<f64>,
    /// Which of the paper's two approximation strategies the degradation
    /// rung uses when [`Limits::min_fidelity`] is set.
    pub approx_policy: ApproxPolicy,
}

/// Approximation strategy for the fidelity-bounded degradation rung
/// (arXiv 2002.04904 implements both).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub enum ApproxPolicy {
    /// One-shot fidelity-budget pruning: remove the cheapest subtrees until
    /// the removed `|amplitude|²` mass reaches the round's fidelity budget.
    /// The default; spends exactly as much fidelity as shrinking requires.
    #[default]
    FidelityBudget,
    /// Threshold contraction: zero every edge whose contribution falls
    /// below `epsilon`. Cheaper per pass but spends fidelity eagerly; a
    /// round whose bound lands below the remaining budget is rejected.
    Threshold {
        /// Contribution cutoff in `|amplitude|²` mass; edges routing less
        /// probability than this are zeroed.
        epsilon: f64,
    },
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_nodes: None,
            max_complex_entries: None,
            max_compute_entries: None,
            deadline: None,
            recursion_depth: None,
            auto_gc_threshold: DEFAULT_AUTO_GC_THRESHOLD,
            complex_gc_threshold: DEFAULT_COMPLEX_GC_THRESHOLD,
            min_fidelity: None,
            approx_policy: ApproxPolicy::FidelityBudget,
        }
    }
}

impl Limits {
    /// True when no limit is set (the default): the governor is inert and
    /// every fast path stays on its pre-governor behavior.
    pub fn is_unlimited(&self) -> bool {
        self.max_nodes.is_none()
            && self.max_complex_entries.is_none()
            && self.max_compute_entries.is_none()
            && self.deadline.is_none()
            && self.recursion_depth.is_none()
    }
}

/// How often (in governed recursion entries) the armed deadline is compared
/// against the clock. Checking every entry would put an `Instant::now()` in
/// the hot recursion; every 256th keeps overhead negligible while bounding
/// overshoot to microseconds.
const DEADLINE_CHECK_INTERVAL: u32 = 256;

/// Mutable governor state owned by the package: the armed deadline and the
/// pressure counters surfaced through `PackageStats`.
#[derive(Clone, Debug, Default)]
pub(crate) struct Governor {
    /// Absolute deadline, armed by a driver from [`Limits::deadline`].
    deadline_at: Option<Instant>,
    /// Governed-entry counter used to pace deadline checks.
    tick: u32,
    /// Garbage collections triggered by budget pressure (as opposed to the
    /// routine auto-GC cadence).
    pub(crate) gc_pressure_runs: u64,
    /// High-water mark of the live-node estimate.
    pub(crate) peak_live_nodes: usize,
}

impl Governor {
    /// Arms the wall-clock deadline `budget` from now.
    pub(crate) fn arm(&mut self, budget: Duration) {
        self.deadline_at = Some(Instant::now() + budget);
        self.tick = 0;
    }

    /// Disarms any armed deadline.
    pub(crate) fn disarm(&mut self) {
        self.deadline_at = None;
    }

    pub(crate) fn armed(&self) -> bool {
        self.deadline_at.is_some()
    }

    /// Per-recursion-entry check: recursion depth always, deadline every
    /// [`DEADLINE_CHECK_INTERVAL`] entries.
    #[inline]
    pub(crate) fn check(&mut self, depth: usize, limits: &Limits) -> Result<(), DdError> {
        if let Some(max) = limits.recursion_depth {
            if depth > max {
                return Err(DdError::ResourceExhausted {
                    kind: ResourceKind::RecursionDepth,
                    limit: max,
                    used: depth,
                });
            }
        }
        if self.deadline_at.is_some() {
            self.tick = self.tick.wrapping_add(1);
            if self.tick.is_multiple_of(DEADLINE_CHECK_INTERVAL) {
                self.check_deadline_now()?;
            }
        }
        Ok(())
    }

    /// Immediate (un-paced) deadline check, for per-operation driver use.
    #[inline]
    pub(crate) fn check_deadline_now(&self) -> Result<(), DdError> {
        if let Some(at) = self.deadline_at {
            let now = Instant::now();
            if now >= at {
                return Err(DdError::DeadlineExceeded {
                    excess_ms: now.duration_since(at).as_millis() as u64,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        let l = Limits::default();
        assert!(l.is_unlimited());
        assert_eq!(l.auto_gc_threshold, DEFAULT_AUTO_GC_THRESHOLD);
        assert_eq!(l.complex_gc_threshold, DEFAULT_COMPLEX_GC_THRESHOLD);
    }

    #[test]
    fn any_set_limit_is_not_unlimited() {
        for l in [
            Limits { max_nodes: Some(1), ..Limits::default() },
            Limits { max_complex_entries: Some(1), ..Limits::default() },
            Limits { max_compute_entries: Some(1), ..Limits::default() },
            Limits { deadline: Some(Duration::from_millis(1)), ..Limits::default() },
            Limits { recursion_depth: Some(1), ..Limits::default() },
        ] {
            assert!(!l.is_unlimited());
        }
        // The GC threshold alone is a tuning knob, not a budget.
        let tuned = Limits { auto_gc_threshold: 10, ..Limits::default() };
        assert!(tuned.is_unlimited());
        // min_fidelity alone is inert: without a budget applying pressure,
        // the approximation rung never fires.
        let approx = Limits { min_fidelity: Some(0.9), ..Limits::default() };
        assert!(approx.is_unlimited());
    }

    #[test]
    fn governor_depth_limit_fires() {
        let mut g = Governor::default();
        let limits = Limits { recursion_depth: Some(4), ..Limits::default() };
        assert!(g.check(4, &limits).is_ok());
        assert!(matches!(
            g.check(5, &limits),
            Err(DdError::ResourceExhausted { kind: ResourceKind::RecursionDepth, limit: 4, used: 5 })
        ));
    }

    #[test]
    fn governor_deadline_fires_after_arming() {
        let mut g = Governor::default();
        assert!(g.check_deadline_now().is_ok(), "unarmed deadline never fires");
        g.arm(Duration::ZERO);
        assert!(matches!(
            g.check_deadline_now(),
            Err(DdError::DeadlineExceeded { .. })
        ));
        g.disarm();
        assert!(g.check_deadline_now().is_ok());
    }

    #[test]
    fn paced_check_eventually_sees_deadline() {
        let mut g = Governor::default();
        let limits = Limits { deadline: Some(Duration::ZERO), ..Limits::default() };
        g.arm(Duration::ZERO);
        let mut fired = false;
        for _ in 0..2 * DEADLINE_CHECK_INTERVAL {
            if g.check(0, &limits).is_err() {
                fired = true;
                break;
            }
        }
        assert!(fired, "paced deadline check must fire within one interval");
    }
}
