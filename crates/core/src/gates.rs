//! Primitive 2×2 gate matrices and control specifications.
//!
//! The decision-diagram package constructs operator DDs from a local 2×2
//! unitary plus a set of (possibly negative) controls; everything larger
//! (SWAP, Toffoli beyond one target, …) is decomposed at the circuit level.
//!
//! # Examples
//!
//! ```
//! use qdd_core::gates;
//! let h = gates::H;
//! assert!(gates::is_unitary(&h, 1e-12));
//! let p = gates::phase(std::f64::consts::FRAC_PI_2);
//! assert!(gates::approx_eq(&p, &gates::S, 1e-12));
//! ```

use qdd_complex::Complex;
use std::f64::consts::FRAC_1_SQRT_2;

/// A 2×2 complex matrix in row-major order: `m[i][j]` maps input `|j⟩` to
/// output `|i⟩`.
pub type GateMatrix = [[Complex; 2]; 2];

/// Control polarity: apply the gate when the control qubit is `|1⟩`
/// (positive, the paper's `•`) or `|0⟩` (negative, RevLib's `◦`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Polarity {
    /// Gate fires when the control is `|1⟩`.
    Positive,
    /// Gate fires when the control is `|0⟩`.
    Negative,
}

/// A control qubit with polarity.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Control {
    /// The controlling qubit.
    pub qubit: usize,
    /// When the control fires.
    pub polarity: Polarity,
}

impl Control {
    /// A positive (`•`) control on `qubit`.
    #[inline]
    pub fn pos(qubit: usize) -> Self {
        Control {
            qubit,
            polarity: Polarity::Positive,
        }
    }

    /// A negative (`◦`) control on `qubit`.
    #[inline]
    pub fn neg(qubit: usize) -> Self {
        Control {
            qubit,
            polarity: Polarity::Negative,
        }
    }
}

const C0: Complex = Complex::ZERO;
const C1: Complex = Complex::ONE;
const CI: Complex = Complex::I;
const CH: Complex = Complex::new(FRAC_1_SQRT_2, 0.0);

/// The identity matrix `I₂`.
pub const I: GateMatrix = [[C1, C0], [C0, C1]];

/// The Hadamard gate (Fig. 1(a) of the paper).
pub const H: GateMatrix = [[CH, CH], [CH, Complex::new(-FRAC_1_SQRT_2, 0.0)]];

/// The Pauli-X (NOT) gate.
pub const X: GateMatrix = [[C0, C1], [C1, C0]];

/// The Pauli-Y gate.
pub const Y: GateMatrix = [[C0, Complex::new(0.0, -1.0)], [CI, C0]];

/// The Pauli-Z gate.
pub const Z: GateMatrix = [[C1, C0], [C0, Complex::new(-1.0, 0.0)]];

/// The S gate, `P(π/2)`.
pub const S: GateMatrix = [[C1, C0], [C0, CI]];

/// The S† gate, `P(-π/2)`.
pub const SDG: GateMatrix = [[C1, C0], [C0, Complex::new(0.0, -1.0)]];

/// The √X gate.
pub const SX: GateMatrix = [
    [Complex::new(0.5, 0.5), Complex::new(0.5, -0.5)],
    [Complex::new(0.5, -0.5), Complex::new(0.5, 0.5)],
];

/// The T gate, `P(π/4)`.
pub fn t() -> GateMatrix {
    phase(std::f64::consts::FRAC_PI_4)
}

/// The T† gate, `P(-π/4)`.
pub fn tdg() -> GateMatrix {
    phase(-std::f64::consts::FRAC_PI_4)
}

/// The phase gate `P(θ) = diag(1, e^{iθ})` — the paper's `p(θ)` family
/// (with `S = p(π/2)`, `T = p(π/4)`).
pub fn phase(theta: f64) -> GateMatrix {
    [[C1, C0], [C0, Complex::cis(theta)]]
}

/// Rotation about X: `RX(θ)`.
pub fn rx(theta: f64) -> GateMatrix {
    let c = Complex::real((theta / 2.0).cos());
    let s = Complex::new(0.0, -(theta / 2.0).sin());
    [[c, s], [s, c]]
}

/// Rotation about Y: `RY(θ)`.
pub fn ry(theta: f64) -> GateMatrix {
    let c = Complex::real((theta / 2.0).cos());
    let s = (theta / 2.0).sin();
    [[c, Complex::real(-s)], [Complex::real(s), c]]
}

/// Rotation about Z: `RZ(θ) = diag(e^{-iθ/2}, e^{iθ/2})`.
pub fn rz(theta: f64) -> GateMatrix {
    [
        [Complex::cis(-theta / 2.0), C0],
        [C0, Complex::cis(theta / 2.0)],
    ]
}

/// The generic single-qubit gate `U(θ, φ, λ)` of OpenQASM 2.
pub fn u3(theta: f64, phi: f64, lambda: f64) -> GateMatrix {
    let (ct, st) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    [
        [Complex::real(ct), Complex::cis(lambda) * (-st)],
        [Complex::cis(phi) * st, Complex::cis(phi + lambda) * ct],
    ]
}

/// The global-phase "gate" `e^{iθ}·I₂`, used to track global phase where a
/// circuit format requires it.
pub fn global_phase(theta: f64) -> GateMatrix {
    let w = Complex::cis(theta);
    [[w, C0], [C0, w]]
}

/// The adjoint (conjugate transpose) of a 2×2 matrix.
pub fn adjoint(m: &GateMatrix) -> GateMatrix {
    [
        [m[0][0].conj(), m[1][0].conj()],
        [m[0][1].conj(), m[1][1].conj()],
    ]
}

/// The product `a · b` of two 2×2 matrices.
pub fn matmul(a: &GateMatrix, b: &GateMatrix) -> GateMatrix {
    let mut r = [[C0; 2]; 2];
    for (i, row) in r.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    r
}

/// Checks `U†U ≈ I` within `tol`.
pub fn is_unitary(m: &GateMatrix, tol: f64) -> bool {
    let p = matmul(&adjoint(m), m);
    approx_eq(&p, &I, tol)
}

/// Element-wise approximate equality of two 2×2 matrices.
pub fn approx_eq(a: &GateMatrix, b: &GateMatrix, tol: f64) -> bool {
    (0..2).all(|i| (0..2).all(|j| a[i][j].approx_eq(b[i][j], tol)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    const TOL: f64 = 1e-12;

    #[test]
    fn standard_gates_are_unitary() {
        for (name, m) in [
            ("I", I),
            ("H", H),
            ("X", X),
            ("Y", Y),
            ("Z", Z),
            ("S", S),
            ("SDG", SDG),
            ("SX", SX),
            ("T", t()),
            ("TDG", tdg()),
            ("RX", rx(0.3)),
            ("RY", ry(1.2)),
            ("RZ", rz(2.1)),
            ("U3", u3(0.4, 1.1, -0.7)),
        ] {
            assert!(is_unitary(&m, TOL), "{name} not unitary");
        }
    }

    #[test]
    fn hadamard_squares_to_identity() {
        assert!(approx_eq(&matmul(&H, &H), &I, TOL));
    }

    #[test]
    fn pauli_algebra() {
        // XY = iZ
        let xy = matmul(&X, &Y);
        let iz = [[Complex::I, Complex::ZERO], [Complex::ZERO, -Complex::I]];
        assert!(approx_eq(&xy, &iz, TOL));
        // S² = Z, T² = S
        assert!(approx_eq(&matmul(&S, &S), &Z, TOL));
        assert!(approx_eq(&matmul(&t(), &t()), &S, TOL));
    }

    #[test]
    fn phase_family_matches_paper() {
        assert!(approx_eq(&phase(FRAC_PI_2), &S, TOL));
        assert!(approx_eq(&phase(PI), &Z, TOL));
        let t_gate = phase(FRAC_PI_4);
        assert!(approx_eq(&t_gate, &t(), TOL));
    }

    #[test]
    fn rotations_at_special_angles() {
        // RY(π) = -iY ... check RX(π) ∝ X:
        let m = rx(PI);
        assert!(m[0][1].approx_eq(Complex::new(0.0, -1.0), TOL));
        assert!(m[0][0].abs() < TOL);
        // U3(π/2, 0, π) = H
        assert!(approx_eq(&u3(FRAC_PI_2, 0.0, PI), &H, 1e-12));
    }

    #[test]
    fn adjoint_inverts() {
        for m in [H, X, Y, Z, S, SX, t(), u3(0.3, 0.9, 1.7)] {
            assert!(approx_eq(&matmul(&adjoint(&m), &m), &I, TOL));
        }
    }

    #[test]
    fn control_constructors() {
        assert_eq!(Control::pos(3).polarity, Polarity::Positive);
        assert_eq!(Control::neg(1).polarity, Polarity::Negative);
        assert_eq!(Control::pos(3).qubit, 3);
    }

    #[test]
    fn non_unitary_detected() {
        let bad = [[C1, C1], [C0, C1]];
        assert!(!is_unitary(&bad, TOL));
    }
}
