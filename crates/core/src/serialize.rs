//! Plain-text (de)serialization of decision diagrams.
//!
//! The paper's web tool keeps diagrams shareable; a library needs the
//! equivalent — a stable on-disk form. The format is line-oriented and
//! human-inspectable:
//!
//! ```text
//! qdd-vector v1
//! levels 2
//! node 0 0 T 1 0 Z 0 0        # id var  child0(ref re im)  child1(...)
//! node 1 0 Z 0 0 T 1 0
//! node 2 1 0 0.707… 0 1 0.707… 0
//! root 2 1 0                   # root ref + weight
//! ```
//!
//! `T` is the terminal, `Z` the 0-stub. Nodes are listed children-first
//! (ascending variable), so deserialization is a single pass. Weights are
//! re-interned and nodes re-normalized on load, so a loaded diagram is
//! canonical in its new package even if the file was edited by hand.
//!
//! Matrix diagrams are written in the `qdd-matrix v2` dialect, which
//! annotates every node-to-node reference with the target's variable
//! (`3@1` = node 3, sitting at `q1`). Under identity skip an edge may land
//! strictly below the next level, and the annotation makes the gap — and
//! therefore the implicit identity — explicit and checkable instead of a
//! detail the reader must reconstruct from the node table. The reader
//! accepts both `v1` (no annotations) and `v2`; because every node line
//! carries its variable, old `v1` files deserialize unchanged, and their
//! identity chains collapse into skip edges on load when the target
//! package has identity skip enabled.
//!
//! Vector and matrix diagrams share one generic implementation
//! parameterized by the node arity: only the header strings and the number
//! of child chunks per line (`3·N` tokens) differ.

use crate::package::{DdPackage, HasStore};
use crate::traverse::Traversable;
use crate::types::{Edge, MatEdge, NodeId, VecEdge};
use qdd_complex::{Complex, FxHashMap};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from reading a serialized diagram.
#[derive(Debug)]
#[non_exhaustive]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural/syntax problem, with the 1-based line.
    Parse {
        /// Offending line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "{e}"),
            SerializeError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for SerializeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SerializeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SerializeError {
    fn from(e: std::io::Error) -> Self {
        SerializeError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> SerializeError {
    SerializeError::Parse {
        line,
        message: message.into(),
    }
}

/// One child reference in the text format. `Node` carries the optional
/// `@var` annotation of the v2 matrix dialect.
enum Ref {
    Terminal,
    Zero,
    Node(u32, Option<u8>),
}

fn format_ref(node_terminal: bool, zero: bool, id_map_value: Option<u32>) -> String {
    if zero {
        "Z".to_string()
    } else if node_terminal {
        "T".to_string()
    } else {
        id_map_value.expect("mapped id").to_string()
    }
}

fn parse_ref(token: &str, line: usize) -> Result<Ref, SerializeError> {
    match token {
        "T" => Ok(Ref::Terminal),
        "Z" => Ok(Ref::Zero),
        other => {
            let (id, var) = match other.split_once('@') {
                Some((id, var)) => {
                    let var = var
                        .parse::<u8>()
                        .map_err(|_| parse_err(line, format!("bad edge variable `{var}`")))?;
                    (id, Some(var))
                }
                None => (other, None),
            };
            id.parse::<u32>()
                .map(|id| Ref::Node(id, var))
                .map_err(|_| parse_err(line, format!("bad node reference `{other}`")))
        }
    }
}

impl DdPackage {
    /// Generic writer behind [`Self::write_vector`] / [`Self::write_matrix`]:
    /// collect reachable nodes in shared pre-order, then emit in
    /// ascending-variable order so children always precede parents.
    fn write_dd<const N: usize, W: Write>(
        &self,
        header: &str,
        annotate_vars: bool,
        e: Edge<N>,
        mut out: W,
    ) -> Result<(), SerializeError>
    where
        Self: Traversable<N>,
    {
        writeln!(out, "{header}")?;
        let levels = if e.is_terminal() {
            0
        } else {
            self.node(e.node).var as usize + 1
        };
        writeln!(out, "levels {levels}")?;

        let mut order: Vec<NodeId<N>> = Vec::new();
        self.visit_preorder(e, |id, _| order.push(id));
        order.sort_by_key(|&id| self.node(id).var);
        let id_map: FxHashMap<u32, u32> = order
            .iter()
            .enumerate()
            .map(|(i, id)| (id.raw(), i as u32))
            .collect();

        let annotated_ref = |c: &Edge<N>| -> String {
            let r = format_ref(c.is_terminal(), c.is_zero(), c.to_mapped(&id_map));
            if annotate_vars && !c.is_terminal() && !c.is_zero() {
                format!("{r}@{}", self.node(c.node).var)
            } else {
                r
            }
        };
        for id in &order {
            let node = self.node(*id);
            let mut line = format!("node {} {}", id_map[&id.raw()], node.var);
            for c in node.children {
                let w = self.complex_value(c.weight);
                line.push_str(&format!(" {} {} {}", annotated_ref(&c), w.re, w.im));
            }
            writeln!(out, "{line}")?;
        }
        let w = self.complex_value(e.weight);
        writeln!(out, "root {} {} {}", annotated_ref(&e), w.re, w.im)?;
        Ok(())
    }

    /// Generic reader behind [`Self::read_vector`] / [`Self::read_matrix`].
    fn read_dd<const N: usize, R: BufRead>(
        &mut self,
        headers_accepted: &[&str],
        input: R,
    ) -> Result<Edge<N>, SerializeError>
    where
        Self: crate::package::HasStore<N>,
    {
        let mut lines = input.lines().enumerate();
        let (num, header) = lines.next().ok_or_else(|| parse_err(1, "empty input"))?;
        let header = header?;
        if !headers_accepted.contains(&header.trim()) {
            return Err(parse_err(
                num + 1,
                format!("expected header `{}`", headers_accepted.join("` or `")),
            ));
        }
        // Skip-annotated files loaded into a package with identity skip
        // disabled need the implicit identities materialized back into
        // explicit level-by-level nodes.
        let densify = N == 4 && !self.config.identity_skip;
        let mut levels: Option<i64> = None;
        let mut nodes: FxHashMap<u32, Edge<N>> = FxHashMap::default();
        let mut root: Option<Edge<N>> = None;
        for (idx, line) in lines {
            let lineno = idx + 1;
            let line = line?;
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens.as_slice() {
                [] => continue,
                ["levels", n] => {
                    levels = n.parse::<i64>().ok();
                    continue;
                }
                ["node", id, var, rest @ ..] if rest.len() == 3 * N => {
                    let id: u32 = id.parse().map_err(|_| parse_err(lineno, "bad node id"))?;
                    let var: u8 = var
                        .parse()
                        .map_err(|_| parse_err(lineno, "bad variable"))?;
                    let mut children = [Edge::ZERO; N];
                    for (k, chunk) in rest.chunks(3).enumerate() {
                        children[k] = self.resolve_child(chunk, &nodes, lineno)?;
                        if densify {
                            children[k] =
                                self.raise_to_level(children[k], i64::from(var) - 1, lineno)?;
                        }
                    }
                    let edge = self
                        .try_make_node_generic(var, children)
                        .unwrap_or_else(|e| panic!("ungoverned node construction failed: {e}"));
                    nodes.insert(id, edge);
                }
                ["root", rest @ ..] if rest.len() == 3 => {
                    let mut e = self.resolve_child(rest, &nodes, lineno)?;
                    if densify {
                        if let Some(levels) = levels {
                            e = self.raise_to_level(e, levels - 1, lineno)?;
                        }
                    }
                    root = Some(e);
                }
                _ => return Err(parse_err(lineno, format!("unrecognized line `{line}`"))),
            }
        }
        root.ok_or_else(|| parse_err(0, "missing root line"))
    }

    fn resolve_child<const N: usize>(
        &mut self,
        chunk: &[&str],
        nodes: &FxHashMap<u32, Edge<N>>,
        lineno: usize,
    ) -> Result<Edge<N>, SerializeError>
    where
        Self: crate::package::HasStore<N>,
    {
        let re: f64 = chunk[1]
            .parse()
            .map_err(|_| parse_err(lineno, "bad real part"))?;
        let im: f64 = chunk[2]
            .parse()
            .map_err(|_| parse_err(lineno, "bad imaginary part"))?;
        let weight = Complex::new(re, im);
        if weight.is_non_finite() {
            return Err(parse_err(lineno, "non-finite weight"));
        }
        match parse_ref(chunk[0], lineno)? {
            Ref::Zero => Ok(Edge::ZERO),
            Ref::Terminal => Ok(Edge::terminal(self.intern(weight))),
            Ref::Node(id, declared_var) => {
                let base = nodes
                    .get(&id)
                    .copied()
                    .ok_or_else(|| parse_err(lineno, format!("forward reference to node {id}")))?;
                // A v2 `@var` annotation records the variable the target
                // sat at when written. Re-canonicalization on load can only
                // *lower* structure (collapse to a skip edge or terminal),
                // so the resolved target must not sit above it.
                if let Some(declared) = declared_var {
                    let actual = if base.is_terminal() || base.is_zero() {
                        None
                    } else {
                        Some(self.store().node(base.node).var)
                    };
                    if actual.is_some_and(|v| v > declared) {
                        return Err(parse_err(
                            lineno,
                            format!(
                                "edge annotation @{declared} below target node {id} at variable {}",
                                actual.unwrap_or(0)
                            ),
                        ));
                    }
                }
                // `base.weight` is the factor node construction pulled out
                // when re-normalizing the stored node: 1 for canonical
                // files, meaningful for hand-edited ones. Fold it into the
                // edge.
                let w = self.intern(weight);
                let w = self.ctable.mul(w, base.weight);
                Ok(if w.is_zero() {
                    Edge::ZERO
                } else {
                    Edge::new(base.node, w)
                })
            }
        }
    }

    /// Wraps `e` in explicit identity nodes until its root sits at level
    /// `want` (a variable index; -1 means "leave terminals alone"). Used
    /// when loading into a package with identity skip disabled, where an
    /// edge gap must be materialized as one `[e 0; 0 e]` node per skipped
    /// level. No-op for gap-free (dense) input.
    fn raise_to_level<const N: usize>(
        &mut self,
        e: Edge<N>,
        want: i64,
        lineno: usize,
    ) -> Result<Edge<N>, SerializeError>
    where
        Self: crate::package::HasStore<N>,
    {
        if e.is_zero() {
            return Ok(e);
        }
        let mut cur: i64 = if e.is_terminal() {
            -1
        } else {
            i64::from(self.store().node(e.node).var)
        };
        let mut e = e;
        while cur < want {
            cur += 1;
            let mut children = [Edge::ZERO; N];
            children[0] = e;
            children[N - 1] = e;
            e = self
                .try_make_node_generic(cur as crate::types::Qubit, children)
                .map_err(|err| parse_err(lineno, format!("densification failed: {err}")))?;
        }
        Ok(e)
    }

    /// Writes a state diagram in the `qdd-vector v1` text format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_vector<W: Write>(&self, e: VecEdge, out: W) -> Result<(), SerializeError> {
        self.write_dd(VECTOR_HEADER, false, e, out)
    }

    /// Reads a state diagram written by [`Self::write_vector`].
    ///
    /// # Errors
    ///
    /// [`SerializeError::Parse`] for malformed input, [`SerializeError::Io`]
    /// for read failures.
    pub fn read_vector<R: BufRead>(&mut self, input: R) -> Result<VecEdge, SerializeError> {
        self.read_dd(&[VECTOR_HEADER], input)
    }

    /// Writes an operator diagram in the `qdd-matrix v2` text format,
    /// where every node-to-node reference carries an explicit `@var`
    /// annotation making identity-skip gaps self-describing.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_matrix<W: Write>(&self, e: MatEdge, out: W) -> Result<(), SerializeError> {
        self.write_dd(MATRIX_HEADER_V2, true, e, out)
    }

    /// Reads an operator diagram in either the `qdd-matrix v1` or
    /// `qdd-matrix v2` format. Old `v1` files keep loading: identity
    /// chains collapse into skip edges when this package has identity
    /// skip enabled, and skip gaps in `v2` files are densified back into
    /// explicit identity nodes when it does not.
    ///
    /// # Errors
    ///
    /// [`SerializeError::Parse`] for malformed input, [`SerializeError::Io`]
    /// for read failures.
    pub fn read_matrix<R: BufRead>(&mut self, input: R) -> Result<MatEdge, SerializeError> {
        self.read_dd(&[MATRIX_HEADER, MATRIX_HEADER_V2], input)
    }
}

const VECTOR_HEADER: &str = "qdd-vector v1";
const MATRIX_HEADER: &str = "qdd-matrix v1";
const MATRIX_HEADER_V2: &str = "qdd-matrix v2";

/// Helper: map an edge's target through the serialization id map.
trait ToMapped {
    fn to_mapped(&self, map: &FxHashMap<u32, u32>) -> Option<u32>;
}

impl<const N: usize> ToMapped for Edge<N> {
    fn to_mapped(&self, map: &FxHashMap<u32, u32>) -> Option<u32> {
        if self.is_terminal() {
            None
        } else {
            map.get(&self.node.raw()).copied()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gates, Control};

    fn round_trip_vector(build: impl Fn(&mut DdPackage) -> VecEdge) {
        let mut dd = DdPackage::new();
        let original = build(&mut dd);
        let n = dd.vec_var(original).map_or(1, |v| v as usize + 1);
        let mut buffer = Vec::new();
        dd.write_vector(original, &mut buffer).unwrap();

        // Load into a *fresh* package.
        let mut dd2 = DdPackage::new();
        let loaded = dd2.read_vector(buffer.as_slice()).unwrap();
        let a = dd.to_dense_vector(original, n);
        let b = dd2.to_dense_vector(loaded, n);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.approx_eq(*y, 1e-10), "{x} vs {y}");
        }

        // Loading into the *same* package reproduces the identical edge
        // (canonicity survives the text round trip).
        let reloaded = dd.read_vector(buffer.as_slice()).unwrap();
        assert_eq!(reloaded, original);
    }

    #[test]
    fn bell_state_round_trips() {
        round_trip_vector(|dd| {
            let z = dd.zero_state(2).unwrap();
            let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
            dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap()
        });
    }

    #[test]
    fn phased_state_round_trips() {
        round_trip_vector(|dd| {
            let z = dd.zero_state(3).unwrap();
            let s = dd.apply_gate(z, gates::H, &[], 2).unwrap();
            let s = dd.apply_gate(s, gates::t(), &[Control::pos(2)], 1).unwrap();
            dd.apply_gate(s, gates::ry(0.9), &[], 0).unwrap()
        });
    }

    #[test]
    fn basis_state_round_trips() {
        round_trip_vector(|dd| dd.basis_state(4, 0b1010).unwrap());
    }

    #[test]
    fn matrix_round_trips() {
        let mut dd = DdPackage::new();
        let qft = {
            let mut u = dd.identity(3).unwrap();
            for theta in [0.5, 0.25] {
                let g = dd
                    .gate_dd(gates::phase(theta), &[Control::pos(2)], 0, 3)
                    .unwrap();
                u = dd.mat_mat(g, u);
            }
            let h = dd.gate_dd(gates::H, &[], 1, 3).unwrap();
            dd.mat_mat(h, u)
        };
        let mut buffer = Vec::new();
        dd.write_matrix(qft, &mut buffer).unwrap();
        let mut dd2 = DdPackage::new();
        let loaded = dd2.read_matrix(buffer.as_slice()).unwrap();
        let a = dd.to_dense_matrix(qft, 3);
        let b = dd2.to_dense_matrix(loaded, 3);
        for i in 0..8 {
            for j in 0..8 {
                assert!(a[i][j].approx_eq(b[i][j], 1e-10), "({i},{j})");
            }
        }
        // Same-package reload is pointer-identical.
        let reloaded = dd.read_matrix(buffer.as_slice()).unwrap();
        assert_eq!(reloaded, qft);
    }

    #[test]
    fn format_is_human_readable() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(2).unwrap();
        let mut buffer = Vec::new();
        dd.write_vector(s, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.starts_with("qdd-vector v1\nlevels 2\n"));
        assert!(text.contains("node 0 0 T 1 0 Z 0 0"));
        assert!(text.lines().last().unwrap().starts_with("root "));
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut dd = DdPackage::new();
        for (input, needle) in [
            ("", "empty input"),
            ("wrong header\n", "expected header"),
            ("qdd-vector v1\nnode 0 0 T 1 0\n", "unrecognized line"),
            ("qdd-vector v1\nnode 0 0 T x 0 Z 0 0\nroot 0 1 0\n", "bad real part"),
            ("qdd-vector v1\nnode 0 0 7 1 0 Z 0 0\nroot 0 1 0\n", "forward reference"),
            ("qdd-vector v1\nnode 0 0 T 1 0 Z 0 0\n", "missing root"),
        ] {
            let err = dd.read_vector(input.as_bytes()).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "`{input}` → {err} (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn matrix_v2_format_annotates_edge_vars() {
        let mut dd = DdPackage::new();
        let cx = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).unwrap();
        let mut buffer = Vec::new();
        dd.write_matrix(cx, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.starts_with("qdd-matrix v2\nlevels 2\n"));
        // The root node's firing branch lands on the X node at q0,
        // annotated explicitly.
        assert!(text.contains("0@0"), "{text}");
        // The root edge is annotated with the root node's variable.
        assert!(text.lines().last().unwrap().starts_with("root 1@1 "), "{text}");
    }

    #[test]
    fn matrix_v1_dense_file_still_loads() {
        // A pinned pre-skip `qdd-matrix v1` file: CX written densely with
        // an explicit identity node on the non-firing branch. Loading it
        // into a default (identity-skip) package collapses that chain and
        // reproduces the canonical 2-node CX.
        let text = "qdd-matrix v1\nlevels 2\n\
                    node 0 0 T 1 0 Z 0 0 Z 0 0 T 1 0\n\
                    node 1 0 Z 0 0 T 1 0 T 1 0 Z 0 0\n\
                    node 2 1 0 1 0 Z 0 0 Z 0 0 1 1 0\n\
                    root 2 1 0\n";
        let mut dd = DdPackage::new();
        let loaded = dd.read_matrix(text.as_bytes()).unwrap();
        let cx = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).unwrap();
        assert_eq!(loaded, cx);
        assert_eq!(dd.mat_node_count(loaded), 2);
    }

    #[test]
    fn skip_edges_round_trip() {
        // A long-range controlled gate has a multi-level gap under both
        // the control and target branches.
        let mut dd = DdPackage::new();
        let g = dd.gate_dd(gates::X, &[Control::pos(4)], 0, 5).unwrap();
        let mut buffer = Vec::new();
        dd.write_matrix(g, &mut buffer).unwrap();

        let mut dd2 = DdPackage::new();
        let loaded = dd2.read_matrix(buffer.as_slice()).unwrap();
        assert_eq!(dd2.mat_node_count(loaded), dd.mat_node_count(g));
        let a = dd.to_dense_matrix(g, 5);
        let b = dd2.to_dense_matrix(loaded, 5);
        for (ra, rb) in a.iter().zip(b.iter()) {
            for (x, y) in ra.iter().zip(rb.iter()) {
                assert!(x.approx_eq(*y, 1e-10));
            }
        }
        // Same-package reload is pointer-identical.
        let reloaded = dd.read_matrix(buffer.as_slice()).unwrap();
        assert_eq!(reloaded, g);
    }

    #[test]
    fn v2_file_densifies_into_skip_off_package() {
        let mut dd = DdPackage::new();
        let cx = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).unwrap();
        let mut buffer = Vec::new();
        dd.write_matrix(cx, &mut buffer).unwrap();

        let mut dense = DdPackage::with_config(crate::PackageConfig {
            identity_skip: false,
            ..crate::PackageConfig::default()
        });
        let loaded = dense.read_matrix(buffer.as_slice()).unwrap();
        // The skip edge is materialized back into an explicit identity
        // node: the historical 3-node dense CX.
        assert_eq!(dense.mat_node_count(loaded), 3);
        let a = dd.to_dense_matrix(cx, 2);
        let b = dense.to_dense_matrix(loaded, 2);
        for (ra, rb) in a.iter().zip(b.iter()) {
            for (x, y) in ra.iter().zip(rb.iter()) {
                assert!(x.approx_eq(*y, 1e-10));
            }
        }
    }

    #[test]
    fn inconsistent_edge_annotation_is_rejected() {
        // Node 1 sits at q1 but the root ref claims it sits at q0.
        let text = "qdd-matrix v2\nlevels 2\n\
                    node 0 0 Z 0 0 T 1 0 T 1 0 Z 0 0\n\
                    node 1 1 T 1 0 Z 0 0 Z 0 0 0@0 1 0\n\
                    root 1@0 1 0\n";
        let mut dd = DdPackage::new();
        let err = dd.read_matrix(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("below target"), "{err}");
    }

    #[test]
    fn terminal_root_round_trips() {
        let mut dd = DdPackage::new();
        let w = dd.intern(Complex::new(0.6, 0.8));
        let e = VecEdge::terminal(w);
        let mut buffer = Vec::new();
        dd.write_vector(e, &mut buffer).unwrap();
        let loaded = dd.read_vector(buffer.as_slice()).unwrap();
        assert_eq!(loaded, e);
    }
}

#[cfg(test)]
mod hand_edited_tests {
    use super::*;

    /// A hand-written, non-canonical file (node weights not normalized)
    /// still loads to the mathematically intended state.
    #[test]
    fn non_canonical_input_is_renormalized_correctly() {
        let mut dd = DdPackage::new();
        // Intends the (unnormalized) vector [2, 2, 0, 6]/norm: node 0 is
        // written with un-normalized child weights.
        let text = "qdd-vector v1\nlevels 2\n\
                    node 0 0 T 2 0 T 2 0\n\
                    node 1 0 Z 0 0 T 6 0\n\
                    node 2 1 0 1 0 1 1 0\n\
                    root 2 1 0\n";
        let loaded = dd.read_vector(text.as_bytes()).unwrap();
        let dense = dd.to_dense_vector(loaded, 2);
        // Expected direction: [2, 2, 0, 6]; compare ratios.
        assert!((dense[1].re / dense[0].re - 1.0).abs() < 1e-10);
        assert!((dense[3].re / dense[0].re - 3.0).abs() < 1e-10);
        assert!(dense[2].abs() < 1e-12);
    }
}
