//! The decision-diagram package: arenas, unique tables, constructors, and
//! garbage collection.

use crate::compute::{ComputeTables, ComputeTableStat};
use crate::error::{DdError, ResourceKind};
use crate::gates::{self, Control, GateMatrix, Polarity};
use crate::limits::{Governor, Limits};
use crate::node::{MNode, VNode};
use crate::normalize::{normalize_matrix, normalize_vector};
pub use crate::normalize::VectorNormalization;
use crate::types::{MatEdge, MNodeId, Qubit, VecEdge, VNodeId};
use crate::MAX_QUBITS;
use qdd_complex::{Complex, ComplexIdx, ComplexTable, FxHashMap, FxHashSet, DEFAULT_TOLERANCE};
use std::cell::RefCell;
use std::time::Duration;

/// Tunable parameters of a [`DdPackage`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PackageConfig {
    /// Tolerance for complex-weight interning and approximate comparisons.
    pub tolerance: f64,
    /// Enables the operation caches (compute tables). Disabling them is
    /// only useful for the ablation experiments — expect exponential
    /// slowdowns on anything non-trivial.
    pub compute_tables: bool,
    /// Validates 2×2 gate matrices for unitarity in [`DdPackage::gate_dd`].
    pub check_unitarity: bool,
    /// Normalization rule for vector nodes. Measurement and sampling
    /// require the default [`VectorNormalization::L2`]; the alternative is
    /// for the ablation experiments.
    pub vector_normalization: VectorNormalization,
    /// Resource budgets enforced by the package (all unlimited by default).
    pub limits: Limits,
}

impl Default for PackageConfig {
    fn default() -> Self {
        PackageConfig {
            tolerance: DEFAULT_TOLERANCE,
            compute_tables: true,
            check_unitarity: true,
            vector_normalization: VectorNormalization::default(),
            limits: Limits::default(),
        }
    }
}

/// A snapshot of package health, for diagnostics and experiments.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct PackageStats {
    /// Live (reachable or never-collected) vector nodes.
    pub vnodes_alive: usize,
    /// Allocated vector-node slots (live + free-listed).
    pub vnodes_allocated: usize,
    /// Live matrix nodes.
    pub mnodes_alive: usize,
    /// Allocated matrix-node slots.
    pub mnodes_allocated: usize,
    /// Distinct interned complex values.
    pub complex_entries: usize,
    /// Total compute-table lookups.
    pub cache_lookups: u64,
    /// Compute-table lookups answered from cache.
    pub cache_hits: u64,
    /// Entries currently cached.
    pub cache_entries: usize,
    /// Garbage-collection runs so far.
    pub gc_runs: u64,
    /// Garbage collections triggered by resource-budget pressure (a subset
    /// of `gc_runs`).
    pub gc_pressure_runs: u64,
    /// Compute-table entries dropped by colliding inserts (the direct-mapped
    /// tables overwrite in place, so pressure shows up here rather than as
    /// whole-table flushes).
    pub compute_evictions: u64,
    /// Whole compute-table clears (after garbage collection or by explicit
    /// request).
    pub compute_clears: u64,
    /// High-water mark of [`DdPackage::live_node_estimate`].
    pub peak_live_nodes: usize,
    /// Gate-DD cache probes ([`DdPackage::gate_dd`] calls that reached the
    /// cache).
    pub gate_cache_lookups: u64,
    /// Gate-DD cache probes answered without rebuilding the operator DD.
    pub gate_cache_hits: u64,
}

/// Report of one garbage-collection run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Vector nodes reclaimed.
    pub freed_vnodes: usize,
    /// Matrix nodes reclaimed.
    pub freed_mnodes: usize,
    /// Vector nodes surviving.
    pub live_vnodes: usize,
    /// Matrix nodes surviving.
    pub live_mnodes: usize,
    /// Interned complex values reclaimed.
    pub freed_cvalues: usize,
}

/// Exact identity of a constructed gate operator, used as the gate-DD cache
/// key: the matrix entries by bit pattern (no tolerance — a near-miss just
/// misses the cache), the control set in canonical order, and the placement.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct GateKey {
    /// `(re, im)` bit patterns of `[u₀₀, u₀₁, u₁₀, u₁₁]`.
    u_bits: [(u64, u64); 4],
    /// Controls sorted by qubit (callers pass them in arbitrary order).
    controls: Vec<Control>,
    target: u8,
    n: u8,
}

impl GateKey {
    fn new(u: &GateMatrix, controls: &[Control], target: usize, n: usize) -> Self {
        let mut sorted: Vec<Control> = controls.to_vec();
        sorted.sort_unstable();
        let mut u_bits = [(0u64, 0u64); 4];
        for (b, slot) in u_bits.iter_mut().enumerate() {
            let v = u[b >> 1][b & 1];
            *slot = (v.re.to_bits(), v.im.to_bits());
        }
        GateKey {
            u_bits,
            controls: sorted,
            target: target as u8,
            n: n as u8,
        }
    }
}

/// Entry bound of the gate-DD cache; reaching it flushes the map (circuits
/// rarely use more than a few hundred distinct gate placements, so a flush
/// here signals parameterized-gate churn, not working-set pressure).
const GATE_CACHE_CAP: usize = 1 << 12;

/// Epoch-stamped visited set for the node-count traversals: one `u32` stamp
/// per arena slot, bumped epoch per traversal, so the per-step node counting
/// of the simulator allocates nothing and never rehashes.
#[derive(Clone, Debug, Default)]
struct VisitSet {
    vstamp: Vec<u32>,
    mstamp: Vec<u32>,
    epoch: u32,
    /// Reusable traversal stack.
    stack: Vec<u32>,
}

impl VisitSet {
    fn begin(&mut self, vlen: usize, mlen: usize) {
        if self.vstamp.len() < vlen {
            self.vstamp.resize(vlen, 0);
        }
        if self.mstamp.len() < mlen {
            self.mstamp.resize(mlen, 0);
        }
        if self.epoch == u32::MAX {
            self.vstamp.fill(0);
            self.mstamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    #[inline]
    fn visit_v(&mut self, i: usize) -> bool {
        if self.vstamp[i] == self.epoch {
            false
        } else {
            self.vstamp[i] = self.epoch;
            true
        }
    }

    #[inline]
    fn visit_m(&mut self, i: usize) -> bool {
        if self.mstamp[i] == self.epoch {
            false
        } else {
            self.mstamp[i] = self.epoch;
            true
        }
    }
}

/// The central object owning all decision-diagram state.
///
/// A package holds the node arenas, the unique tables that enforce structural
/// sharing, the complex-weight interning table, and the operation caches.
/// All diagrams created by one package may share nodes; edges from different
/// packages must never be mixed.
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Clone, Debug)]
pub struct DdPackage {
    pub(crate) vnodes: Vec<VNode>,
    pub(crate) mnodes: Vec<MNode>,
    vec_unique: FxHashMap<(Qubit, [VecEdge; 2]), VNodeId>,
    mat_unique: FxHashMap<(Qubit, [MatEdge; 4]), MNodeId>,
    vec_free: Vec<u32>,
    mat_free: Vec<u32>,
    pub(crate) ctable: ComplexTable,
    pub(crate) caches: ComputeTables,
    pub(crate) config: PackageConfig,
    /// `id_cache[k]` spans variables `0..k`; rebuilt lazily. Survives
    /// routine GCs as a root set, flushed by pressure GCs.
    id_cache: Vec<MatEdge>,
    /// Built gate operators by exact identity. Survives routine GCs as a
    /// root set (bounded by [`GATE_CACHE_CAP`]), flushed by pressure GCs.
    gate_cache: FxHashMap<GateKey, MatEdge>,
    gate_lookups: u64,
    gate_hits: u64,
    visit: RefCell<VisitSet>,
    /// Reference counts of the *weights* of registered root edges. Node
    /// roots are counted on the nodes themselves, but a root edge's own
    /// weight lives only in the caller's copy of the edge, so the
    /// complex-table sweep needs this registry to keep it pinned.
    root_weights: FxHashMap<ComplexIdx, u32>,
    /// Monotone node-creation counter backing `VNode::birth` / `MNode::birth`.
    births: u64,
    gc_runs: u64,
    governor: Governor,
}

impl DdPackage {
    /// Creates a package with the default configuration.
    pub fn new() -> Self {
        Self::with_config(PackageConfig::default())
    }

    /// Creates a package with an explicit configuration.
    pub fn with_config(config: PackageConfig) -> Self {
        DdPackage {
            vnodes: Vec::new(),
            mnodes: Vec::new(),
            vec_unique: FxHashMap::default(),
            mat_unique: FxHashMap::default(),
            vec_free: Vec::new(),
            mat_free: Vec::new(),
            ctable: ComplexTable::with_tolerance(config.tolerance),
            caches: ComputeTables::bounded(config.limits.max_compute_entries),
            config,
            id_cache: vec![MatEdge::ONE],
            gate_cache: FxHashMap::default(),
            gate_lookups: 0,
            gate_hits: 0,
            visit: RefCell::new(VisitSet::default()),
            root_weights: FxHashMap::default(),
            births: 0,
            gc_runs: 0,
            governor: Governor::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PackageConfig {
        &self.config
    }

    /// The active resource limits.
    pub fn limits(&self) -> &Limits {
        &self.config.limits
    }

    // ------------------------------------------------------------------
    // Resource governor
    // ------------------------------------------------------------------

    /// Starts the wall-clock budget configured in
    /// [`Limits::deadline`], if any. Returns whether a deadline is now
    /// armed. Drivers call this once at the start of governed work
    /// (e.g. a simulation run); until armed, no deadline is enforced.
    pub fn arm_deadline(&mut self) -> bool {
        if let Some(budget) = self.config.limits.deadline {
            self.governor.arm(budget);
        }
        self.governor.armed()
    }

    /// Starts an explicit wall-clock budget, overriding
    /// [`Limits::deadline`] for this arming.
    pub fn arm_deadline_for(&mut self, budget: Duration) {
        self.governor.arm(budget);
    }

    /// Stops deadline enforcement (e.g. when a run completes).
    pub fn disarm_deadline(&mut self) {
        self.governor.disarm();
    }

    /// Immediate check of the armed deadline, for per-operation use by
    /// drivers. Never fails when no deadline is armed.
    pub fn check_deadline(&self) -> Result<(), DdError> {
        self.governor.check_deadline_now()
    }

    /// Per-recursion-level governor check used by the DD operations:
    /// recursion depth always, the armed deadline periodically.
    #[inline]
    pub(crate) fn governor_check(&mut self, depth: usize) -> Result<(), DdError> {
        let limits = self.config.limits;
        self.governor.check(depth, &limits)
    }

    /// Whether a new node allocation fits the configured budgets.
    fn check_alloc_budget(&self) -> Result<(), DdError> {
        if let Some(max) = self.config.limits.max_nodes {
            let live = self.live_node_estimate();
            if live >= max {
                return Err(DdError::ResourceExhausted {
                    kind: ResourceKind::Nodes,
                    limit: max,
                    used: live,
                });
            }
        }
        if let Some(max) = self.config.limits.max_complex_entries {
            // Weights are interned during normalization, before this check
            // runs, so exhaustion is detected one step late by design.
            let used = self.ctable.len();
            if used > max {
                return Err(DdError::ResourceExhausted {
                    kind: ResourceKind::ComplexEntries,
                    limit: max,
                    used,
                });
            }
        }
        Ok(())
    }

    /// True when a between-operations garbage collection would pay for
    /// itself: the live-node estimate crossed
    /// [`Limits::auto_gc_threshold`], or the complex table crossed
    /// [`Limits::complex_gc_threshold`] (its probe index has outgrown the
    /// CPU caches). Long-running drivers call this once per applied
    /// operation.
    pub fn wants_auto_gc(&self) -> bool {
        self.live_node_estimate() > self.config.limits.auto_gc_threshold
            || self.ctable.len() >= self.config.limits.complex_gc_threshold
    }

    /// Garbage collections triggered by budget pressure so far (constant
    /// time, unlike [`Self::stats`]).
    pub fn gc_pressure_runs(&self) -> u64 {
        self.governor.gc_pressure_runs
    }

    /// High-water mark of [`Self::live_node_estimate`] (constant time).
    pub fn peak_live_nodes(&self) -> usize {
        self.governor.peak_live_nodes
    }

    /// Compute-table entries dropped by colliding inserts so far.
    pub fn compute_evictions(&self) -> u64 {
        self.caches.total_dropped()
    }

    /// Per-table compute-table statistics (name, lookups, hits, dropped
    /// entries, clears, occupancy) in reporting order.
    pub fn compute_table_stats(&self) -> [ComputeTableStat; 9] {
        self.caches.per_table()
    }

    /// Gate-DD cache probes so far (constant time).
    pub fn gate_cache_lookups(&self) -> u64 {
        self.gate_lookups
    }

    /// Gate-DD cache probes answered from cache so far (constant time).
    pub fn gate_cache_hits(&self) -> u64 {
        self.gate_hits
    }

    /// Garbage-collects in response to budget pressure. Unlike the routine
    /// [`Self::garbage_collect`], this also drops the gate-DD and identity
    /// caches (which ordinarily survive collections as roots) — under a
    /// node budget every reclaimable node counts. Counted separately in
    /// [`PackageStats::gc_pressure_runs`], so callers implementing the
    /// degradation ladder (collect, retry, then fall back or fail) leave an
    /// audit trail.
    pub fn gc_under_pressure(&mut self) -> GcReport {
        self.governor.gc_pressure_runs += 1;
        self.gate_cache.clear();
        self.id_cache.truncate(1);
        self.garbage_collect()
    }

    /// Interns a complex value, returning its stable handle.
    #[inline]
    pub fn intern(&mut self, v: Complex) -> ComplexIdx {
        self.ctable.lookup(v)
    }

    /// The complex value behind an interned handle.
    #[inline]
    pub fn complex_value(&self, idx: ComplexIdx) -> Complex {
        self.ctable.value(idx)
    }

    /// Read access to a vector node.
    ///
    /// # Panics
    ///
    /// Panics on the terminal sentinel or a foreign/freed id.
    #[inline]
    pub fn vnode(&self, id: VNodeId) -> &VNode {
        let n = &self.vnodes[id.index()];
        debug_assert!(!n.dead, "access to freed vector node");
        n
    }

    /// Read access to a matrix node.
    ///
    /// # Panics
    ///
    /// Panics on the terminal sentinel or a foreign/freed id.
    #[inline]
    pub fn mnode(&self, id: MNodeId) -> &MNode {
        let n = &self.mnodes[id.index()];
        debug_assert!(!n.dead, "access to freed matrix node");
        n
    }

    /// The variable a vector edge decides on, or `None` for terminal edges.
    #[inline]
    pub fn vec_var(&self, e: VecEdge) -> Option<Qubit> {
        if e.is_terminal() {
            None
        } else {
            Some(self.vnode(e.node).var)
        }
    }

    /// The variable a matrix edge decides on, or `None` for terminal edges.
    #[inline]
    pub fn mat_var(&self, e: MatEdge) -> Option<Qubit> {
        if e.is_terminal() {
            None
        } else {
            Some(self.mnode(e.node).var)
        }
    }

    // ------------------------------------------------------------------
    // Node construction (normalize + unique table)
    // ------------------------------------------------------------------

    /// Creates (or finds) the canonical vector node `var → children` and
    /// returns the normalized edge pointing at it.
    ///
    /// This is the paper's recursive state-vector decomposition step: both
    /// children must represent the `var`-lower sub-vectors. Returns the
    /// 0-stub when both children are zero.
    ///
    /// # Panics
    ///
    /// Panics when a configured resource budget is exhausted. With the
    /// default (unlimited) [`Limits`] this never happens; governed callers
    /// use [`Self::try_make_vec_node`].
    pub fn make_vec_node(&mut self, var: Qubit, children: [VecEdge; 2]) -> VecEdge {
        self.try_make_vec_node(var, children)
            .unwrap_or_else(|e| panic!("ungoverned node construction failed: {e}"))
    }

    /// Fallible form of [`Self::make_vec_node`]: node-budget chokepoint of
    /// the governor.
    ///
    /// Finding an existing node never fails; only allocating a *new* one is
    /// checked against [`Limits::max_nodes`] and
    /// [`Limits::max_complex_entries`].
    ///
    /// # Errors
    ///
    /// [`DdError::ResourceExhausted`] when a budget is spent.
    pub fn try_make_vec_node(
        &mut self,
        var: Qubit,
        children: [VecEdge; 2],
    ) -> Result<VecEdge, DdError> {
        debug_assert!(self.vec_children_well_formed(var, &children));
        let Some(norm) = normalize_vector(
            &mut self.ctable,
            [children[0].weight, children[1].weight],
            self.config.vector_normalization,
        ) else {
            return Ok(VecEdge::ZERO);
        };
        let canon = [
            VecEdge::new(
                if norm.weights[0].is_zero() { VNodeId::TERMINAL } else { children[0].node },
                norm.weights[0],
            ),
            VecEdge::new(
                if norm.weights[1].is_zero() { VNodeId::TERMINAL } else { children[1].node },
                norm.weights[1],
            ),
        ];
        let id = match self.vec_unique.get(&(var, canon)) {
            Some(&id) => id,
            None => {
                self.check_alloc_budget()?;
                let id = self.alloc_vnode(VNode::new(var, canon));
                self.vec_unique.insert((var, canon), id);
                id
            }
        };
        Ok(VecEdge::new(id, norm.top))
    }

    /// Creates (or finds) the canonical matrix node `var → children`
    /// (`[U₀₀, U₀₁, U₁₀, U₁₁]`) and returns the normalized edge.
    ///
    /// # Panics
    ///
    /// Panics when a configured resource budget is exhausted (see
    /// [`Self::make_vec_node`]).
    pub fn make_mat_node(&mut self, var: Qubit, children: [MatEdge; 4]) -> MatEdge {
        self.try_make_mat_node(var, children)
            .unwrap_or_else(|e| panic!("ungoverned node construction failed: {e}"))
    }

    /// Fallible form of [`Self::make_mat_node`] (see
    /// [`Self::try_make_vec_node`]).
    ///
    /// # Errors
    ///
    /// [`DdError::ResourceExhausted`] when a budget is spent.
    pub fn try_make_mat_node(
        &mut self,
        var: Qubit,
        children: [MatEdge; 4],
    ) -> Result<MatEdge, DdError> {
        debug_assert!(self.mat_children_well_formed(var, &children));
        let weights = [
            children[0].weight,
            children[1].weight,
            children[2].weight,
            children[3].weight,
        ];
        let Some(norm) = normalize_matrix(&mut self.ctable, weights) else {
            return Ok(MatEdge::ZERO);
        };
        let mut canon = [MatEdge::ZERO; 4];
        for i in 0..4 {
            canon[i] = MatEdge::new(
                if norm.weights[i].is_zero() { MNodeId::TERMINAL } else { children[i].node },
                norm.weights[i],
            );
        }
        let id = match self.mat_unique.get(&(var, canon)) {
            Some(&id) => id,
            None => {
                self.check_alloc_budget()?;
                let id = self.alloc_mnode(MNode::new(var, canon));
                self.mat_unique.insert((var, canon), id);
                id
            }
        };
        Ok(MatEdge::new(id, norm.top))
    }

    fn vec_children_well_formed(&self, var: Qubit, children: &[VecEdge; 2]) -> bool {
        children.iter().all(|c| {
            if c.is_zero() || var == 0 {
                c.is_terminal()
            } else {
                !c.is_terminal() && self.vnode(c.node).var == var - 1
            }
        })
    }

    fn mat_children_well_formed(&self, var: Qubit, children: &[MatEdge; 4]) -> bool {
        children.iter().all(|c| {
            if c.is_zero() || var == 0 {
                c.is_terminal()
            } else {
                !c.is_terminal() && self.mnode(c.node).var == var - 1
            }
        })
    }

    fn alloc_vnode(&mut self, mut node: VNode) -> VNodeId {
        node.birth = self.next_birth();
        let id = if let Some(slot) = self.vec_free.pop() {
            self.vnodes[slot as usize] = node;
            VNodeId::from_index(slot as usize)
        } else {
            self.vnodes.push(node);
            VNodeId::from_index(self.vnodes.len() - 1)
        };
        self.note_live_nodes();
        id
    }

    fn alloc_mnode(&mut self, mut node: MNode) -> MNodeId {
        node.birth = self.next_birth();
        let id = if let Some(slot) = self.mat_free.pop() {
            self.mnodes[slot as usize] = node;
            MNodeId::from_index(slot as usize)
        } else {
            self.mnodes.push(node);
            MNodeId::from_index(self.mnodes.len() - 1)
        };
        self.note_live_nodes();
        id
    }

    #[inline]
    fn next_birth(&mut self) -> u64 {
        self.births += 1;
        self.births
    }

    #[inline]
    fn note_live_nodes(&mut self) {
        let live = self.live_node_estimate();
        if live > self.governor.peak_live_nodes {
            self.governor.peak_live_nodes = live;
        }
    }

    /// Rescales an edge by an interned factor, preserving the 0-stub
    /// invariant.
    #[inline]
    pub(crate) fn scale_vec(&mut self, e: VecEdge, w: ComplexIdx) -> VecEdge {
        let weight = self.ctable.mul(e.weight, w);
        if weight.is_zero() {
            VecEdge::ZERO
        } else {
            VecEdge::new(e.node, weight)
        }
    }

    /// Rescales a matrix edge by an interned factor.
    #[inline]
    pub(crate) fn scale_mat(&mut self, e: MatEdge, w: ComplexIdx) -> MatEdge {
        let weight = self.ctable.mul(e.weight, w);
        if weight.is_zero() {
            MatEdge::ZERO
        } else {
            MatEdge::new(e.node, weight)
        }
    }

    // ------------------------------------------------------------------
    // State constructors
    // ------------------------------------------------------------------

    fn check_qubits(n: usize) -> Result<(), DdError> {
        if n == 0 || n > MAX_QUBITS {
            Err(DdError::QubitCountOutOfRange { requested: n })
        } else {
            Ok(())
        }
    }

    /// The all-zero computational basis state `|0…0⟩` on `n` qubits.
    ///
    /// # Errors
    ///
    /// [`DdError::QubitCountOutOfRange`] if `n` is zero or exceeds
    /// [`MAX_QUBITS`].
    pub fn zero_state(&mut self, n: usize) -> Result<VecEdge, DdError> {
        self.basis_state(n, 0)
    }

    /// The computational basis state `|index⟩` on `n` qubits (big-endian:
    /// bit `n-1` of `index` is the most significant qubit `q_{n-1}`).
    ///
    /// # Errors
    ///
    /// [`DdError::QubitCountOutOfRange`] if `n` is invalid, or
    /// [`DdError::QubitIndexOutOfRange`] if `index ≥ 2ⁿ`.
    pub fn basis_state(&mut self, n: usize, index: u64) -> Result<VecEdge, DdError> {
        Self::check_qubits(n)?;
        if n < 64 && index >> n != 0 {
            return Err(DdError::QubitIndexOutOfRange {
                qubit: index as usize,
                num_qubits: n,
            });
        }
        let mut e = VecEdge::ONE;
        for q in 0..n {
            let bit = if q < 64 { (index >> q) & 1 } else { 0 };
            let children = if bit == 0 {
                [e, VecEdge::ZERO]
            } else {
                [VecEdge::ZERO, e]
            };
            e = self.try_make_vec_node(q as Qubit, children)?;
        }
        Ok(e)
    }

    /// Builds a state DD from a dense amplitude vector by the paper's
    /// recursive halving decomposition (§III-A).
    ///
    /// The amplitudes are normalized; the input need not be unit-norm.
    ///
    /// # Errors
    ///
    /// [`DdError::AmplitudesNotPowerOfTwo`] for lengths that are not a
    /// power of two (or < 2), [`DdError::ZeroVector`] for an all-zero
    /// input, [`DdError::QubitCountOutOfRange`] for oversized inputs.
    pub fn state_from_amplitudes(&mut self, amps: &[Complex]) -> Result<VecEdge, DdError> {
        let len = amps.len();
        if len < 2 || !len.is_power_of_two() {
            return Err(DdError::AmplitudesNotPowerOfTwo { len });
        }
        let n = len.trailing_zeros() as usize;
        Self::check_qubits(n)?;
        let norm2: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        if norm2.sqrt() < self.config.tolerance {
            return Err(DdError::ZeroVector);
        }
        let e = self.vec_from_slice(amps)?;
        // Normalize the root weight so the state is unit-norm.
        let w = self.complex_value(e.weight) / norm2.sqrt();
        let weight = self.intern(w);
        Ok(VecEdge::new(e.node, weight))
    }

    fn vec_from_slice(&mut self, amps: &[Complex]) -> Result<VecEdge, DdError> {
        debug_assert!(amps.len().is_power_of_two());
        if amps.len() == 1 {
            let w = self.intern(amps[0]);
            return Ok(VecEdge::terminal(w));
        }
        let half = amps.len() / 2;
        let var = (amps.len().trailing_zeros() - 1) as Qubit;
        let lo = self.vec_from_slice(&amps[..half])?;
        let hi = self.vec_from_slice(&amps[half..])?;
        self.try_make_vec_node(var, [lo, hi])
    }

    // ------------------------------------------------------------------
    // Matrix constructors
    // ------------------------------------------------------------------

    /// The identity operator on `n` qubits — a single shared node per level.
    ///
    /// # Errors
    ///
    /// [`DdError::QubitCountOutOfRange`] if `n` is invalid.
    pub fn identity(&mut self, n: usize) -> Result<MatEdge, DdError> {
        Self::check_qubits(n)?;
        self.id_edge(n)
    }

    /// Whether `mn` is the canonical identity node spanning variables
    /// `0..=var` — constant time via the identity cache. Conservative: an
    /// identity node not (yet) recorded in the cache reports `false`, which
    /// only costs the caller its shortcut.
    #[inline]
    pub(crate) fn is_identity_node(&self, mn: MNodeId, var: Qubit) -> bool {
        self.id_cache
            .get(var as usize + 1)
            .is_some_and(|e| e.node == mn)
    }

    /// Identity DD spanning variables `0..k` (`k = 0` is the scalar 1).
    pub(crate) fn id_edge(&mut self, k: usize) -> Result<MatEdge, DdError> {
        while self.id_cache.len() <= k {
            let prev = self.id_cache[self.id_cache.len() - 1];
            let var = (self.id_cache.len() - 1) as Qubit;
            let next = self.try_make_mat_node(var, [prev, MatEdge::ZERO, MatEdge::ZERO, prev])?;
            self.id_cache.push(next);
        }
        Ok(self.id_cache[k])
    }

    /// Builds the `2ⁿ×2ⁿ` operator DD of a (multi-)controlled single-qubit
    /// gate: `u` on `target`, fired by `controls` (paper Fig. 2(b)/(c)).
    ///
    /// # Errors
    ///
    /// Returns [`DdError::QubitIndexOutOfRange`], [`DdError::ControlOnTarget`],
    /// [`DdError::DuplicateControl`], or [`DdError::NotUnitary`] (the latter
    /// only when [`PackageConfig::check_unitarity`] is set) for invalid
    /// inputs.
    pub fn gate_dd(
        &mut self,
        u: GateMatrix,
        controls: &[Control],
        target: usize,
        n: usize,
    ) -> Result<MatEdge, DdError> {
        Self::check_qubits(n)?;
        if target >= n {
            return Err(DdError::QubitIndexOutOfRange {
                qubit: target,
                num_qubits: n,
            });
        }
        let mut seen = [false; MAX_QUBITS];
        for c in controls {
            if c.qubit >= n {
                return Err(DdError::QubitIndexOutOfRange {
                    qubit: c.qubit,
                    num_qubits: n,
                });
            }
            if c.qubit == target {
                return Err(DdError::ControlOnTarget { qubit: c.qubit });
            }
            if seen[c.qubit] {
                return Err(DdError::DuplicateControl { qubit: c.qubit });
            }
            seen[c.qubit] = true;
        }
        if self.config.check_unitarity && !gates::is_unitary(&u, 1e-9) {
            return Err(DdError::NotUnitary);
        }

        // Deep circuits reuse a handful of gate placements thousands of
        // times; answering those from the gate-DD cache skips the whole
        // level-by-level rebuild below. Keys are exact bit patterns, so a
        // hit returns the identical canonical edge.
        let key = if self.config.compute_tables {
            let key = GateKey::new(&u, controls, target, n);
            self.gate_lookups += 1;
            if let Some(&e) = self.gate_cache.get(&key) {
                self.gate_hits += 1;
                return Ok(e);
            }
            Some(key)
        } else {
            None
        };

        let e = self.build_gate_dd(u, controls, target, n)?;
        if let Some(key) = key {
            if self.gate_cache.len() >= GATE_CACHE_CAP {
                self.gate_cache.clear();
            }
            self.gate_cache.insert(key, e);
        }
        Ok(e)
    }

    /// Uncached construction path of [`Self::gate_dd`] (inputs already
    /// validated).
    fn build_gate_dd(
        &mut self,
        u: GateMatrix,
        controls: &[Control],
        target: usize,
        n: usize,
    ) -> Result<MatEdge, DdError> {
        // Populate the identity cache over the full span. The identity
        // sub-chains constructed below are deduplicated against these nodes
        // by the unique table, which lets the multiplication kernels
        // recognize them ([`Self::is_identity_node`]) and skip whole
        // sub-diagrams (`I·v = v`).
        self.id_edge(n)?;
        let pol_at = |q: usize| controls.iter().find(|c| c.qubit == q).map(|c| c.polarity);

        // Terminal 2×2 block edges [e₀₀, e₀₁, e₁₀, e₁₁].
        let mut em = [MatEdge::ZERO; 4];
        for (b, slot) in em.iter_mut().enumerate() {
            let w = self.intern(u[b >> 1][b & 1]);
            *slot = MatEdge::terminal(w);
        }

        // Levels below the target: identity extension, or control wrapping.
        for q in 0..target {
            let pol = pol_at(q);
            #[allow(clippy::needless_range_loop)] // em[b] is rebuilt in place
            for b in 0..4 {
                let (i, j) = (b >> 1, b & 1);
                em[b] = match pol {
                    None => self.try_make_mat_node(
                        q as Qubit,
                        [em[b], MatEdge::ZERO, MatEdge::ZERO, em[b]],
                    )?,
                    Some(p) => {
                        // On the non-firing branch an identity must act on
                        // the target sub-space: diagonal blocks get the
                        // identity of the processed levels, off-diagonal
                        // blocks vanish.
                        let idle = if i == j { self.id_edge(q)? } else { MatEdge::ZERO };
                        let (c00, c11) = match p {
                            Polarity::Positive => (idle, em[b]),
                            Polarity::Negative => (em[b], idle),
                        };
                        self.try_make_mat_node(q as Qubit, [c00, MatEdge::ZERO, MatEdge::ZERO, c11])?
                    }
                };
            }
        }

        let mut e = self.try_make_mat_node(target as Qubit, em)?;

        // Levels above the target.
        for q in target + 1..n {
            e = match pol_at(q) {
                None => self.try_make_mat_node(q as Qubit, [e, MatEdge::ZERO, MatEdge::ZERO, e])?,
                Some(p) => {
                    let idle = self.id_edge(q)?;
                    let (c00, c11) = match p {
                        Polarity::Positive => (idle, e),
                        Polarity::Negative => (e, idle),
                    };
                    self.try_make_mat_node(q as Qubit, [c00, MatEdge::ZERO, MatEdge::ZERO, c11])?
                }
            };
        }
        Ok(e)
    }

    /// Builds a matrix DD from a dense row-major `2ⁿ×2ⁿ` matrix by
    /// recursive quadrant splitting.
    ///
    /// Mainly useful for tests and small demonstrations.
    ///
    /// # Errors
    ///
    /// [`DdError::AmplitudesNotPowerOfTwo`] when the matrix is not square
    /// with power-of-two dimension ≥ 2.
    pub fn matrix_from_dense(&mut self, rows: &[Vec<Complex>]) -> Result<MatEdge, DdError> {
        let dim = rows.len();
        if dim < 2 || !dim.is_power_of_two() || rows.iter().any(|r| r.len() != dim) {
            return Err(DdError::AmplitudesNotPowerOfTwo { len: dim });
        }
        let n = dim.trailing_zeros() as usize;
        Self::check_qubits(n)?;
        self.mat_from_region(rows, 0, 0, dim)
    }

    fn mat_from_region(
        &mut self,
        rows: &[Vec<Complex>],
        r0: usize,
        c0: usize,
        dim: usize,
    ) -> Result<MatEdge, DdError> {
        if dim == 1 {
            let w = self.intern(rows[r0][c0]);
            return Ok(MatEdge::terminal(w));
        }
        let h = dim / 2;
        let var = (dim.trailing_zeros() - 1) as Qubit;
        let e00 = self.mat_from_region(rows, r0, c0, h)?;
        let e01 = self.mat_from_region(rows, r0, c0 + h, h)?;
        let e10 = self.mat_from_region(rows, r0 + h, c0, h)?;
        let e11 = self.mat_from_region(rows, r0 + h, c0 + h, h)?;
        self.try_make_mat_node(var, [e00, e01, e10, e11])
    }

    // ------------------------------------------------------------------
    // Reference counting and garbage collection
    // ------------------------------------------------------------------

    /// Marks a vector edge as an external root, protecting it from
    /// [`Self::garbage_collect`].
    pub fn inc_ref_vec(&mut self, e: VecEdge) {
        if !e.is_terminal() {
            self.vnodes[e.node.index()].rc += 1;
        }
        *self.root_weights.entry(e.weight).or_insert(0) += 1;
    }

    /// Releases an external root previously registered with
    /// [`Self::inc_ref_vec`].
    ///
    /// # Panics
    ///
    /// Panics if the edge's root count is already zero.
    pub fn dec_ref_vec(&mut self, e: VecEdge) {
        if !e.is_terminal() {
            let rc = &mut self.vnodes[e.node.index()].rc;
            assert!(*rc > 0, "unbalanced dec_ref_vec");
            *rc -= 1;
        }
        self.release_root_weight(e.weight);
    }

    /// Marks a matrix edge as an external root.
    pub fn inc_ref_mat(&mut self, e: MatEdge) {
        if !e.is_terminal() {
            self.mnodes[e.node.index()].rc += 1;
        }
        *self.root_weights.entry(e.weight).or_insert(0) += 1;
    }

    /// Releases an external matrix root.
    ///
    /// # Panics
    ///
    /// Panics if the edge's root count is already zero.
    pub fn dec_ref_mat(&mut self, e: MatEdge) {
        if !e.is_terminal() {
            let rc = &mut self.mnodes[e.node.index()].rc;
            assert!(*rc > 0, "unbalanced dec_ref_mat");
            *rc -= 1;
        }
        self.release_root_weight(e.weight);
    }

    fn release_root_weight(&mut self, w: ComplexIdx) {
        if let Some(rc) = self.root_weights.get_mut(&w) {
            *rc -= 1;
            if *rc == 0 {
                self.root_weights.remove(&w);
            }
        }
    }

    /// Reclaims every node not reachable from a root registered via the
    /// `inc_ref_*` methods, then sweeps the complex table of weights no
    /// live edge references. Clears all compute tables (their keys may
    /// refer to reclaimed ids); the gate-DD and identity caches survive as
    /// additional roots (see [`Self::gc_under_pressure`] for the
    /// flush-everything variant).
    pub fn garbage_collect(&mut self) -> GcReport {
        self.gc_runs += 1;

        // Mark phase — vectors.
        let mut vmark = vec![false; self.vnodes.len()];
        let mut stack: Vec<u32> = Vec::new();
        for (i, n) in self.vnodes.iter().enumerate() {
            if !n.dead && n.rc > 0 {
                stack.push(i as u32);
            }
        }
        while let Some(i) = stack.pop() {
            if vmark[i as usize] {
                continue;
            }
            vmark[i as usize] = true;
            for c in self.vnodes[i as usize].children {
                if !c.is_terminal() {
                    stack.push(c.node.raw());
                }
            }
        }

        // Mark phase — matrices. The gate-DD and identity caches count as
        // roots: their entries are bounded (GATE_CACHE_CAP, one edge per
        // level) and keeping hot operators alive across routine
        // collections is the point of caching them. Pressure GCs flush
        // both caches first, so under a node budget they cost nothing.
        let mut mmark = vec![false; self.mnodes.len()];
        let mut mstack: Vec<u32> = Vec::new();
        for (i, n) in self.mnodes.iter().enumerate() {
            if !n.dead && n.rc > 0 {
                mstack.push(i as u32);
            }
        }
        for e in self.gate_cache.values().chain(self.id_cache.iter()) {
            if !e.is_terminal() {
                mstack.push(e.node.raw());
            }
        }
        while let Some(i) = mstack.pop() {
            if mmark[i as usize] {
                continue;
            }
            mmark[i as usize] = true;
            for c in self.mnodes[i as usize].children {
                if !c.is_terminal() {
                    mstack.push(c.node.raw());
                }
            }
        }

        // Sweep phase.
        let mut report = GcReport::default();
        for (i, n) in self.vnodes.iter_mut().enumerate() {
            if n.dead {
                continue;
            }
            if vmark[i] {
                report.live_vnodes += 1;
            } else {
                n.dead = true;
                self.vec_free.push(i as u32);
                report.freed_vnodes += 1;
            }
        }
        for (i, n) in self.mnodes.iter_mut().enumerate() {
            if n.dead {
                continue;
            }
            if mmark[i] {
                report.live_mnodes += 1;
            } else {
                n.dead = true;
                self.mat_free.push(i as u32);
                report.freed_mnodes += 1;
            }
        }

        // Rebuild unique tables from the survivors.
        self.vec_unique.clear();
        for (i, n) in self.vnodes.iter().enumerate() {
            if !n.dead {
                self.vec_unique
                    .insert((n.var, n.children), VNodeId::from_index(i));
            }
        }
        self.mat_unique.clear();
        for (i, n) in self.mnodes.iter().enumerate() {
            if !n.dead {
                self.mat_unique
                    .insert((n.var, n.children), MNodeId::from_index(i));
            }
        }

        self.caches.clear();

        // Sweep the complex table as well: each applied gate interns a
        // fresh set of amplitudes, and without reclamation the table's
        // probe index outgrows the CPU caches and every normalization
        // slows to DRAM speed. Weights on surviving nodes and registered
        // root edges stay pinned (bit-identical handles), so canonicity of
        // everything alive is untouched.
        let mut keep: FxHashSet<ComplexIdx> = self.root_weights.keys().copied().collect();
        for e in self.gate_cache.values().chain(self.id_cache.iter()) {
            keep.insert(e.weight);
        }
        for n in self.vnodes.iter().filter(|n| !n.dead) {
            for c in n.children {
                keep.insert(c.weight);
            }
        }
        for n in self.mnodes.iter().filter(|n| !n.dead) {
            for c in n.children {
                keep.insert(c.weight);
            }
        }
        report.freed_cvalues = self.ctable.retain_referenced(|idx| keep.contains(&idx));
        report
    }

    /// Drops all cached operation results without collecting nodes.
    pub fn clear_compute_tables(&mut self) {
        self.caches.clear();
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The number of distinct nodes reachable from `e`, excluding the
    /// terminal (the size measure used throughout the paper, e.g. Ex. 6).
    ///
    /// Allocation-free after warm-up (epoch-stamped visited set), so drivers
    /// may call this per simulation step.
    pub fn vec_node_count(&self, e: VecEdge) -> usize {
        if e.is_terminal() {
            return 0;
        }
        let mut vs = self.visit.borrow_mut();
        vs.begin(self.vnodes.len(), self.mnodes.len());
        let mut stack = std::mem::take(&mut vs.stack);
        stack.push(e.node.raw());
        let mut count = 0usize;
        while let Some(i) = stack.pop() {
            if !vs.visit_v(i as usize) {
                continue;
            }
            count += 1;
            for c in self.vnode(VNodeId::from_index(i as usize)).children {
                if !c.is_terminal() {
                    stack.push(c.node.raw());
                }
            }
        }
        vs.stack = stack;
        count
    }

    /// The number of distinct nodes reachable from `e`, excluding the
    /// terminal.
    pub fn mat_node_count(&self, e: MatEdge) -> usize {
        if e.is_terminal() {
            return 0;
        }
        let mut vs = self.visit.borrow_mut();
        vs.begin(self.vnodes.len(), self.mnodes.len());
        let mut stack = std::mem::take(&mut vs.stack);
        stack.push(e.node.raw());
        let mut count = 0usize;
        while let Some(i) = stack.pop() {
            if !vs.visit_m(i as usize) {
                continue;
            }
            count += 1;
            for c in self.mnode(MNodeId::from_index(i as usize)).children {
                if !c.is_terminal() {
                    stack.push(c.node.raw());
                }
            }
        }
        vs.stack = stack;
        count
    }

    /// A constant-time estimate of live nodes (allocated minus free-listed
    /// slots) — the trigger metric for automatic garbage collection in
    /// long-running simulations and checks.
    #[inline]
    pub fn live_node_estimate(&self) -> usize {
        (self.vnodes.len() - self.vec_free.len()) + (self.mnodes.len() - self.mat_free.len())
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> PackageStats {
        PackageStats {
            vnodes_alive: self.vnodes.iter().filter(|n| !n.dead).count(),
            vnodes_allocated: self.vnodes.len(),
            mnodes_alive: self.mnodes.iter().filter(|n| !n.dead).count(),
            mnodes_allocated: self.mnodes.len(),
            complex_entries: self.ctable.len(),
            cache_lookups: self.caches.total_lookups(),
            cache_hits: self.caches.total_hits(),
            cache_entries: self.caches.total_entries(),
            gc_runs: self.gc_runs,
            gc_pressure_runs: self.governor.gc_pressure_runs,
            compute_evictions: self.caches.total_dropped(),
            compute_clears: self.caches.total_clears(),
            peak_live_nodes: self.governor.peak_live_nodes,
            gate_cache_lookups: self.gate_lookups,
            gate_cache_hits: self.gate_hits,
        }
    }
}

impl Default for DdPackage {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_is_chain() {
        let mut dd = DdPackage::new();
        let e = dd.zero_state(4).unwrap();
        assert_eq!(dd.vec_node_count(e), 4);
        assert_eq!(dd.vec_var(e), Some(3));
        // Root weight is 1.
        assert!(dd.complex_value(e.weight).is_one(1e-12));
    }

    #[test]
    fn basis_state_amplitude_paths() {
        let mut dd = DdPackage::new();
        let e = dd.basis_state(3, 0b101).unwrap();
        // Walk: q2=1, q1=0, q0=1.
        let n2 = dd.vnode(e.node);
        assert!(n2.children[0].is_zero());
        let n1 = dd.vnode(n2.children[1].node);
        assert!(n1.children[1].is_zero());
        let n0 = dd.vnode(n1.children[0].node);
        assert!(n0.children[0].is_zero());
        assert!(n0.children[1].is_terminal());
    }

    #[test]
    fn basis_state_rejects_out_of_range_index() {
        let mut dd = DdPackage::new();
        assert!(matches!(
            dd.basis_state(2, 4),
            Err(DdError::QubitIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn qubit_count_bounds() {
        let mut dd = DdPackage::new();
        assert!(dd.zero_state(0).is_err());
        assert!(dd.zero_state(MAX_QUBITS + 1).is_err());
        assert!(dd.zero_state(MAX_QUBITS).is_ok());
    }

    #[test]
    fn structural_sharing_in_unique_table() {
        let mut dd = DdPackage::new();
        let a = dd.zero_state(3).unwrap();
        let b = dd.zero_state(3).unwrap();
        assert_eq!(a, b, "identical states share the identical edge");
    }

    #[test]
    fn bell_state_from_amplitudes_matches_paper_example_6() {
        let mut dd = DdPackage::new();
        let h = std::f64::consts::FRAC_1_SQRT_2;
        let amps = [
            Complex::real(h),
            Complex::ZERO,
            Complex::ZERO,
            Complex::real(h),
        ];
        let e = dd.state_from_amplitudes(&amps).unwrap();
        // Paper Ex. 6: 3 nodes (terminal not counted).
        assert_eq!(dd.vec_node_count(e), 3);
    }

    #[test]
    fn from_amplitudes_normalizes_input() {
        let mut dd = DdPackage::new();
        let amps = [Complex::real(3.0), Complex::real(4.0)];
        let e = dd.state_from_amplitudes(&amps).unwrap();
        let root_w = dd.complex_value(e.weight);
        // Norm of 5 divided out; the state is unit norm.
        assert!((root_w.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_amplitudes_rejects_bad_inputs() {
        let mut dd = DdPackage::new();
        assert!(matches!(
            dd.state_from_amplitudes(&[Complex::ONE; 3]),
            Err(DdError::AmplitudesNotPowerOfTwo { len: 3 })
        ));
        assert!(matches!(
            dd.state_from_amplitudes(&[Complex::ZERO; 4]),
            Err(DdError::ZeroVector)
        ));
        assert!(matches!(
            dd.state_from_amplitudes(&[Complex::ONE]),
            Err(DdError::AmplitudesNotPowerOfTwo { len: 1 })
        ));
    }

    #[test]
    fn identity_has_one_node_per_level() {
        let mut dd = DdPackage::new();
        let id = dd.identity(5).unwrap();
        assert_eq!(dd.mat_node_count(id), 5);
        assert!(dd.complex_value(id.weight).is_one(1e-12));
    }

    #[test]
    fn hadamard_gate_dd_is_single_node() {
        let mut dd = DdPackage::new();
        let h = dd.gate_dd(gates::H, &[], 0, 1).unwrap();
        // Fig. 2(b): one node; root weight 1/√2.
        assert_eq!(dd.mat_node_count(h), 1);
        let w = dd.complex_value(h.weight);
        assert!((w.re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn cnot_gate_dd_matches_fig_2c() {
        let mut dd = DdPackage::new();
        // Control q1 (MSB), target q0 — the paper's CNOT.
        let cx = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).unwrap();
        // Fig. 2(c): 2 non-terminal nodes... the q1 node plus I and X nodes
        // at q0 level → 3 total (the figure draws q0 twice).
        assert_eq!(dd.mat_node_count(cx), 3);
        let root = dd.mnode(cx.node);
        assert_eq!(root.var, 1);
        assert!(root.children[1].is_zero());
        assert!(root.children[2].is_zero());
    }

    #[test]
    fn gate_dd_validation() {
        let mut dd = DdPackage::new();
        assert!(matches!(
            dd.gate_dd(gates::X, &[], 2, 2),
            Err(DdError::QubitIndexOutOfRange { .. })
        ));
        assert!(matches!(
            dd.gate_dd(gates::X, &[Control::pos(0)], 0, 2),
            Err(DdError::ControlOnTarget { qubit: 0 })
        ));
        assert!(matches!(
            dd.gate_dd(gates::X, &[Control::pos(1), Control::neg(1)], 0, 3),
            Err(DdError::DuplicateControl { qubit: 1 })
        ));
        let bad = [[Complex::ONE, Complex::ONE], [Complex::ZERO, Complex::ONE]];
        assert!(matches!(dd.gate_dd(bad, &[], 0, 1), Err(DdError::NotUnitary)));
    }

    #[test]
    fn unitarity_check_can_be_disabled() {
        let mut dd = DdPackage::with_config(PackageConfig {
            check_unitarity: false,
            ..PackageConfig::default()
        });
        let not_unitary = [[Complex::ONE, Complex::ONE], [Complex::ZERO, Complex::ONE]];
        assert!(dd.gate_dd(not_unitary, &[], 0, 1).is_ok());
    }

    #[test]
    fn gc_reclaims_unreferenced_nodes() {
        let mut dd = DdPackage::new();
        let keep = dd.zero_state(3).unwrap();
        let _drop = dd.basis_state(3, 5).unwrap();
        dd.inc_ref_vec(keep);
        let report = dd.garbage_collect();
        assert_eq!(report.live_vnodes, 3);
        assert!(report.freed_vnodes > 0);
        // The kept state is still intact and re-creatable slots are reused.
        assert_eq!(dd.vec_node_count(keep), 3);
        let again = dd.basis_state(3, 5).unwrap();
        assert_eq!(dd.vec_node_count(again), 3);
        dd.dec_ref_vec(keep);
    }

    #[test]
    fn gc_protects_matrix_roots() {
        let mut dd = DdPackage::new();
        let id = dd.identity(3).unwrap();
        dd.inc_ref_mat(id);
        let _tmp = dd.gate_dd(gates::H, &[], 1, 3).unwrap();
        let report = dd.garbage_collect();
        // The registered root plus the cached H operator survive.
        assert!(report.live_mnodes >= 3);
        assert_eq!(dd.mat_node_count(id), 3);
        dd.dec_ref_mat(id);
    }

    #[test]
    fn gate_dd_cache_answers_repeat_constructions() {
        let mut dd = DdPackage::new();
        let a = dd.gate_dd(gates::H, &[], 1, 3).unwrap();
        let b = dd.gate_dd(gates::H, &[], 1, 3).unwrap();
        assert_eq!(a, b);
        let s = dd.stats();
        assert_eq!(s.gate_cache_lookups, 2);
        assert_eq!(s.gate_cache_hits, 1);
        // A different placement is a distinct key.
        let c = dd.gate_dd(gates::H, &[], 0, 3).unwrap();
        assert_ne!(a, c);
        assert_eq!(dd.stats().gate_cache_hits, 1);
    }

    #[test]
    fn gate_dd_cache_is_control_order_insensitive() {
        let mut dd = DdPackage::new();
        let a = dd
            .gate_dd(gates::X, &[Control::pos(1), Control::neg(2)], 0, 3)
            .unwrap();
        let b = dd
            .gate_dd(gates::X, &[Control::neg(2), Control::pos(1)], 0, 3)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(dd.stats().gate_cache_hits, 1);
    }

    #[test]
    fn gate_dd_cache_disabled_with_compute_tables() {
        let mut dd = DdPackage::with_config(PackageConfig {
            compute_tables: false,
            ..PackageConfig::default()
        });
        let a = dd.gate_dd(gates::H, &[], 0, 2).unwrap();
        let b = dd.gate_dd(gates::H, &[], 0, 2).unwrap();
        assert_eq!(a, b, "unique tables still canonicalize");
        assert_eq!(dd.stats().gate_cache_lookups, 0);
    }

    #[test]
    fn gc_after_many_gate_dds_does_not_dangle_cached_roots() {
        let mut dd = DdPackage::new();
        // Populate the gate cache with unrooted operator DDs.
        for t in 0..4 {
            let _ = dd.gate_dd(gates::H, &[], t, 4).unwrap();
            let _ = dd.gate_dd(gates::X, &[Control::pos((t + 1) % 4)], t, 4).unwrap();
        }
        let h_before = dd.gate_dd(gates::H, &[], 2, 4).unwrap();
        // An unrooted intermediate product is genuine garbage.
        let a = dd.gate_dd(gates::H, &[], 0, 4).unwrap();
        let b = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 4).unwrap();
        let _garbage = dd.mat_mat(a, b);
        let keep = dd.zero_state(4).unwrap();
        dd.inc_ref_vec(keep);
        let report = dd.garbage_collect();
        assert!(
            report.freed_mnodes > 0,
            "unrooted intermediates must be swept"
        );
        // Cached operators survive the collection as roots: the repeat
        // lookup hits, returns the identical edge, and its nodes are live
        // (counting them walks real, unreclaimed nodes).
        let hits_before = dd.stats().gate_cache_hits;
        let h_after = dd.gate_dd(gates::H, &[], 2, 4).unwrap();
        assert_eq!(h_before, h_after);
        assert_eq!(dd.stats().gate_cache_hits, hits_before + 1);
        let mut fresh = DdPackage::new();
        let expect = fresh.gate_dd(gates::H, &[], 2, 4).unwrap();
        assert_eq!(dd.mat_node_count(h_after), fresh.mat_node_count(expect));
        // Applying the cached operator after GC produces a valid state.
        let applied = dd.mat_vec(h_after, keep);
        assert!((dd.vec_norm(applied) - 1.0).abs() < 1e-10);
        dd.dec_ref_vec(keep);
    }

    #[test]
    fn node_counts_are_stable_across_repeated_calls() {
        // The epoch-stamped visited set must reset between traversals.
        let mut dd = DdPackage::new();
        let e = dd.zero_state(5).unwrap();
        let id = dd.identity(4).unwrap();
        for _ in 0..3 {
            assert_eq!(dd.vec_node_count(e), 5);
            assert_eq!(dd.mat_node_count(id), 4);
        }
        assert_eq!(dd.vec_node_count(VecEdge::ZERO), 0);
        assert_eq!(dd.mat_node_count(MatEdge::ONE), 0);
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_dec_ref_panics() {
        let mut dd = DdPackage::new();
        let e = dd.zero_state(1).unwrap();
        dd.dec_ref_vec(e);
    }

    #[test]
    fn stats_reflect_activity() {
        let mut dd = DdPackage::new();
        let _ = dd.zero_state(4).unwrap();
        let s = dd.stats();
        assert_eq!(s.vnodes_alive, 4);
        assert!(s.complex_entries >= 2);
        assert_eq!(s.gc_runs, 0);
    }

    #[test]
    fn matrix_from_dense_round_trips_gate() {
        let mut dd = DdPackage::new();
        let h = std::f64::consts::FRAC_1_SQRT_2;
        let rows = vec![
            vec![Complex::real(h), Complex::real(h)],
            vec![Complex::real(h), Complex::real(-h)],
        ];
        let from_dense = dd.matrix_from_dense(&rows).unwrap();
        let direct = dd.gate_dd(gates::H, &[], 0, 1).unwrap();
        assert_eq!(from_dense, direct, "canonicity: same operator, same edge");
    }

    #[test]
    fn matrix_from_dense_rejects_ragged() {
        let mut dd = DdPackage::new();
        let rows = vec![vec![Complex::ONE; 2], vec![Complex::ONE; 3]];
        assert!(dd.matrix_from_dense(&rows).is_err());
    }

    fn limited(limits: Limits) -> DdPackage {
        DdPackage::with_config(PackageConfig {
            limits,
            ..PackageConfig::default()
        })
    }

    #[test]
    fn node_budget_rejects_oversized_state() {
        let mut dd = limited(Limits { max_nodes: Some(4), ..Limits::default() });
        assert!(dd.zero_state(4).is_ok(), "4 nodes fit a 4-node budget");
        // A different 8-qubit basis state needs more fresh nodes than remain.
        match dd.basis_state(8, 0b1010_1010) {
            Err(DdError::ResourceExhausted { kind: ResourceKind::Nodes, limit: 4, used }) => {
                assert!(used >= 4);
            }
            other => panic!("expected node-budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn node_budget_allows_unique_table_hits() {
        let mut dd = limited(Limits { max_nodes: Some(3), ..Limits::default() });
        let a = dd.zero_state(3).unwrap();
        // Re-deriving the same state allocates nothing, so it succeeds at
        // the budget ceiling.
        let b = dd.zero_state(3).unwrap();
        assert_eq!(a, b);
        assert!(dd.zero_state(4).is_err());
    }

    #[test]
    fn budget_recovers_after_pressure_gc() {
        let mut dd = limited(Limits { max_nodes: Some(8), ..Limits::default() });
        let keep = dd.zero_state(4).unwrap();
        dd.inc_ref_vec(keep);
        let _scratch = dd.basis_state(4, 5).unwrap();
        assert!(dd.basis_state(4, 9).is_err(), "budget spent on scratch states");
        dd.gc_under_pressure();
        assert!(dd.basis_state(4, 9).is_ok(), "GC reclaimed the scratch nodes");
        let s = dd.stats();
        assert_eq!(s.gc_pressure_runs, 1);
        assert_eq!(s.gc_runs, 1);
        assert!(s.peak_live_nodes >= 8);
        dd.dec_ref_vec(keep);
    }

    #[test]
    fn deadline_unarmed_by_default_even_when_configured() {
        let mut dd = limited(Limits {
            deadline: Some(Duration::ZERO),
            ..Limits::default()
        });
        // Configuring a deadline alone must not time out setup work.
        assert!(dd.zero_state(8).is_ok());
        assert!(dd.arm_deadline());
        assert!(matches!(
            dd.check_deadline(),
            Err(DdError::DeadlineExceeded { .. })
        ));
        dd.disarm_deadline();
        assert!(dd.check_deadline().is_ok());
    }

    #[test]
    fn default_config_has_no_limits() {
        let dd = DdPackage::new();
        assert!(dd.limits().is_unlimited());
        let s = dd.stats();
        assert_eq!(s.gc_pressure_runs, 0);
        assert_eq!(s.compute_evictions, 0);
    }
}
