//! Measurement, collapse, sampling and reset on state DDs.
//!
//! Because vector nodes are L2-normalized (every node's sub-vector has unit
//! norm), the squared magnitudes of a node's outgoing weights are exactly
//! the local conditional probabilities — paper footnote 3 and ref \[16\].
//! Sampling a basis state is a single randomized root→terminal walk, and —
//! unlike on real hardware — it is non-destructive: it can be repeated on
//! the same diagram (paper §III-B).

use crate::error::DdError;
use crate::package::DdPackage;
use crate::types::{Qubit, VecEdge, VNodeId};
use qdd_complex::FxHashMap;
use rand::Rng;

/// The result of measuring a single qubit.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MeasurementOutcome {
    /// The qubit collapsed to `|0⟩`.
    Zero,
    /// The qubit collapsed to `|1⟩`.
    One,
}

impl MeasurementOutcome {
    /// `true` for [`MeasurementOutcome::One`].
    #[inline]
    pub fn as_bool(self) -> bool {
        matches!(self, MeasurementOutcome::One)
    }

    /// The classical bit value.
    #[inline]
    pub fn as_bit(self) -> u8 {
        self.as_bool() as u8
    }
}

impl From<bool> for MeasurementOutcome {
    fn from(b: bool) -> Self {
        if b {
            MeasurementOutcome::One
        } else {
            MeasurementOutcome::Zero
        }
    }
}

impl std::fmt::Display for MeasurementOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "|{}⟩", self.as_bit())
    }
}

impl DdPackage {
    /// Measurement relies on the L2 invariant (unit-norm sub-vectors);
    /// refuse to produce wrong probabilities under the ablation rule.
    fn require_l2(&self, what: &str) {
        assert!(
            self.config.vector_normalization
                == crate::normalize::VectorNormalization::L2,
            "{what} requires VectorNormalization::L2 (the ablation rule does \
             not keep local weights as probability amplitudes)"
        );
    }

    /// The probability of measuring `|1⟩` on `qubit`, assuming `state` is
    /// normalized.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` exceeds the state's most significant variable.
    pub fn prob_one(&mut self, state: VecEdge, qubit: usize) -> f64 {
        self.require_l2("prob_one");
        if state.is_zero() {
            return 0.0;
        }
        let top = self
            .vec_var(state)
            .expect("probability of a scalar state");
        assert!(
            qubit <= top as usize,
            "qubit {qubit} out of range for state over {} qubits",
            top + 1
        );
        self.prob_one_unit(state.node, qubit as Qubit)
    }

    fn prob_one_unit(&mut self, n: VNodeId, q: Qubit) -> f64 {
        if n.is_terminal() {
            return 0.0;
        }
        let key = (n, q);
        if self.config.compute_tables {
            if let Some(p) = self.caches.prob_one.get(&key) {
                return p;
            }
        }
        let node = self.vnode(n);
        let w0 = self.complex_value(node.children[0].weight).norm_sqr();
        let w1 = self.complex_value(node.children[1].weight).norm_sqr();
        let c0 = node.children[0].node;
        let c1 = node.children[1].node;
        let p = if node.var == q {
            // Sub-vectors below are unit norm by L2 normalization.
            w1
        } else {
            debug_assert!(node.var > q, "qubit above the node's variable");
            w0 * self.prob_one_unit(c0, q) + w1 * self.prob_one_unit(c1, q)
        };
        if self.config.compute_tables {
            self.caches.prob_one.insert(key, p);
        }
        p
    }

    /// Both outcome probabilities `(p₀, p₁)` for `qubit` — the numbers the
    /// paper's tool shows in its measurement pop-up dialog.
    pub fn qubit_probabilities(&mut self, state: VecEdge, qubit: usize) -> (f64, f64) {
        let p1 = self.prob_one(state, qubit).clamp(0.0, 1.0);
        (1.0 - p1, p1)
    }

    /// Projects `qubit` onto `outcome` and renormalizes — the irreversible
    /// collapse performed when a measurement dialog choice is made.
    ///
    /// # Errors
    ///
    /// [`DdError::ImpossibleOutcome`] if the outcome has probability ≈ 0.
    pub fn collapse(
        &mut self,
        state: VecEdge,
        qubit: usize,
        outcome: MeasurementOutcome,
    ) -> Result<VecEdge, DdError> {
        let (p0, p1) = self.qubit_probabilities(state, qubit);
        let p = if outcome.as_bool() { p1 } else { p0 };
        if p < self.config.tolerance {
            return Err(DdError::ImpossibleOutcome {
                qubit,
                outcome: outcome.as_bool(),
            });
        }
        let mut memo: FxHashMap<VNodeId, VecEdge> = FxHashMap::default();
        let projected = self.project(state, qubit as Qubit, outcome.as_bool(), &mut memo);
        debug_assert!(!projected.is_zero());
        // make_vec_node re-normalized every level; only the root weight's
        // magnitude (√p) remains to be divided out. The phase is kept so
        // collapse is deterministic.
        let w = self.complex_value(projected.weight);
        let weight = self.intern(w / w.abs());
        Ok(VecEdge::new(projected.node, weight))
    }

    fn project(
        &mut self,
        e: VecEdge,
        q: Qubit,
        one: bool,
        memo: &mut FxHashMap<VNodeId, VecEdge>,
    ) -> VecEdge {
        if e.is_zero() {
            return VecEdge::ZERO;
        }
        if let Some(&r) = memo.get(&e.node) {
            return self.scale_vec(r, e.weight);
        }
        let node = self.vnode(e.node);
        let var = node.var;
        let c = node.children;
        let r = if var == q {
            let kept = if one { c[1] } else { c[0] };
            let children = if one {
                [VecEdge::ZERO, kept]
            } else {
                [kept, VecEdge::ZERO]
            };
            self.make_vec_node(var, children)
        } else {
            let r0 = self.project(c[0], q, one, memo);
            let r1 = self.project(c[1], q, one, memo);
            self.make_vec_node(var, [r0, r1])
        };
        memo.insert(e.node, r);
        self.scale_vec(r, e.weight)
    }

    /// Measures `qubit`, choosing the outcome at random with the proper
    /// probabilities, and returns `(outcome, probability, collapsed state)`.
    ///
    /// # Errors
    ///
    /// Propagates [`DdError::ImpossibleOutcome`] only in pathological
    /// cases of a non-normalized input state.
    pub fn measure<R: Rng + ?Sized>(
        &mut self,
        state: VecEdge,
        qubit: usize,
        rng: &mut R,
    ) -> Result<(MeasurementOutcome, f64, VecEdge), DdError> {
        let (p0, p1) = self.qubit_probabilities(state, qubit);
        let outcome = if rng.gen::<f64>() < p1 {
            MeasurementOutcome::One
        } else {
            MeasurementOutcome::Zero
        };
        let p = if outcome.as_bool() { p1 } else { p0 };
        let collapsed = self.collapse(state, qubit, outcome)?;
        Ok((outcome, p, collapsed))
    }

    /// Draws one basis state by a randomized single-path traversal
    /// (paper ref \[16\]) **without** collapsing the diagram.
    ///
    /// Returns the sampled basis index (big-endian, bit `q` ↔ qubit `q`).
    pub fn sample_once<R: Rng + ?Sized>(&self, state: VecEdge, rng: &mut R) -> u64 {
        self.require_l2("sample_once");
        let mut index = 0u64;
        let mut node = state.node;
        while !node.is_terminal() {
            let n = self.vnode(node);
            let p1 = self.complex_value(n.children[1].weight).norm_sqr();
            let take_one = rng.gen::<f64>() < p1;
            let child = if take_one {
                index |= 1 << n.var;
                n.children[1]
            } else {
                n.children[0]
            };
            node = child.node;
        }
        index
    }

    /// Draws `shots` samples, returning a basis-index → count histogram.
    ///
    /// Because classical sampling is non-destructive, all shots reuse the
    /// same diagram — the point the paper makes in §III-B.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        state: VecEdge,
        shots: u64,
        rng: &mut R,
    ) -> FxHashMap<u64, u64> {
        let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
        for _ in 0..shots {
            *counts.entry(self.sample_once(state, rng)).or_insert(0) += 1;
        }
        counts
    }

    /// Resets `qubit` to `|0⟩` given the branch `observed` chosen for the
    /// probabilistic reset (paper §IV-B): the other branch is discarded and,
    /// if the observed branch was `|1⟩`, it is relabelled as `|0⟩`.
    ///
    /// # Errors
    ///
    /// [`DdError::ImpossibleOutcome`] if the observed branch has
    /// probability ≈ 0.
    pub fn reset_with_outcome(
        &mut self,
        state: VecEdge,
        qubit: usize,
        observed: MeasurementOutcome,
    ) -> Result<VecEdge, DdError> {
        let collapsed = self.collapse(state, qubit, observed)?;
        if observed.as_bool() {
            // Relabel |1⟩ branch as |0⟩: apply X.
            self.apply_gate(collapsed, crate::gates::X, &[], qubit)
        } else {
            Ok(collapsed)
        }
    }

    /// Resets `qubit` to `|0⟩`, drawing the discarded branch at random.
    ///
    /// # Errors
    ///
    /// Propagates [`DdError`] from the underlying collapse.
    pub fn reset<R: Rng + ?Sized>(
        &mut self,
        state: VecEdge,
        qubit: usize,
        rng: &mut R,
    ) -> Result<VecEdge, DdError> {
        let (_, p1) = self.qubit_probabilities(state, qubit);
        let observed = MeasurementOutcome::from(rng.gen::<f64>() < p1);
        self.reset_with_outcome(state, qubit, observed)
    }

    /// The full probability distribution over basis states (dense; only for
    /// small registers).
    ///
    /// # Panics
    ///
    /// Panics for registers above 20 qubits.
    pub fn probabilities(&self, state: VecEdge, n: usize) -> Vec<f64> {
        assert!(n <= 20, "dense probabilities limited to 20 qubits");
        let dense = self.to_dense_vector(state, n);
        dense.iter().map(|a| a.norm_sqr()).collect()
    }

    /// All basis states with non-zero amplitude, without densifying.
    /// Intended for sparse states.
    ///
    /// Each shared node is processed once (memoized post-order over the
    /// diagram, not per root→terminal path): a node's index list is its
    /// `|0⟩` child's list followed by the `|1⟩` child's list with the
    /// node's bit set. Children decide on strictly lower variables, so the
    /// concatenation is already sorted.
    pub fn nonzero_basis_states(&self, state: VecEdge) -> Vec<u64> {
        use crate::traverse::Traversable;
        if state.is_zero() {
            return Vec::new();
        }
        if state.is_terminal() {
            return vec![0];
        }
        let mut memo: FxHashMap<u32, Vec<u64>> = FxHashMap::default();
        self.visit_postorder(state, |id, n| {
            let mut list: Vec<u64> = Vec::new();
            for (bit, c) in [(0u64, n.children[0]), (1 << n.var, n.children[1])] {
                if c.is_zero() {
                    continue;
                }
                if c.is_terminal() {
                    list.push(bit);
                    continue;
                }
                list.extend(memo[&c.node.raw()].iter().map(|x| x | bit));
            }
            debug_assert!(list.windows(2).all(|w| w[0] < w[1]), "unsorted paths");
            memo.insert(id.raw(), list);
        });
        memo.remove(&state.node.raw()).expect("root memoized")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gates, Control};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn bell(dd: &mut DdPackage) -> VecEdge {
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
        dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap()
    }

    /// Paper Example 2: measuring one qubit of the Bell state yields |0⟩ in
    /// 50% of the cases, and the other qubit is then fully determined.
    #[test]
    fn bell_measurement_statistics_and_entanglement() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        let (p0, p1) = dd.qubit_probabilities(b, 0);
        assert!((p0 - 0.5).abs() < 1e-12);
        assert!((p1 - 0.5).abs() < 1e-12);

        // Collapse q0 to |1⟩ → state must be |11⟩ (Fig. 8(d)).
        let after = dd.collapse(b, 0, MeasurementOutcome::One).unwrap();
        let expect = dd.basis_state(2, 0b11).unwrap();
        assert_eq!(after, expect);
        // And q1 is now deterministic.
        let (q1_p0, q1_p1) = dd.qubit_probabilities(after, 1);
        assert!(q1_p0 < 1e-12);
        assert!((q1_p1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collapse_impossible_outcome_errors() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(2).unwrap();
        assert!(matches!(
            dd.collapse(s, 0, MeasurementOutcome::One),
            Err(DdError::ImpossibleOutcome { qubit: 0, outcome: true })
        ));
    }

    #[test]
    fn collapse_preserves_normalization() {
        let mut dd = DdPackage::new();
        let mut s = dd.zero_state(3).unwrap();
        for q in 0..3 {
            s = dd.apply_gate(s, gates::ry(0.3 + q as f64), &[], q).unwrap();
        }
        let c = dd.collapse(s, 1, MeasurementOutcome::Zero).unwrap();
        assert!((dd.vec_norm(c) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sampling_bell_only_yields_00_and_11() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        let mut rng = SmallRng::seed_from_u64(42);
        let counts = dd.sample(b, 2000, &mut rng);
        assert_eq!(counts.keys().filter(|&&k| k != 0 && k != 3).count(), 0);
        let c00 = *counts.get(&0).unwrap_or(&0) as f64;
        let c11 = *counts.get(&3).unwrap_or(&0) as f64;
        assert!((c00 / 2000.0 - 0.5).abs() < 0.05);
        assert!((c11 / 2000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn sampling_is_non_destructive() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        let mut rng = SmallRng::seed_from_u64(7);
        let _ = dd.sample(b, 100, &mut rng);
        // The diagram is unchanged; probabilities still 50/50.
        let (p0, _) = dd.qubit_probabilities(b, 0);
        assert!((p0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn measure_collapses_consistently() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        let mut rng = SmallRng::seed_from_u64(1);
        let (outcome, p, after) = dd.measure(b, 0, &mut rng).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
        let expect = if outcome.as_bool() {
            dd.basis_state(2, 0b11).unwrap()
        } else {
            dd.basis_state(2, 0b00).unwrap()
        };
        assert_eq!(after, expect);
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        for observed in [MeasurementOutcome::Zero, MeasurementOutcome::One] {
            let after = dd.reset_with_outcome(b, 0, observed).unwrap();
            let (p0, _) = dd.qubit_probabilities(after, 0);
            assert!((p0 - 1.0).abs() < 1e-12, "q0 must be |0⟩ after reset");
            // q1 keeps the branch value.
            let (q1_p0, _) = dd.qubit_probabilities(after, 1);
            if observed.as_bool() {
                assert!(q1_p0 < 1e-12);
            } else {
                assert!((q1_p0 - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut dd = DdPackage::new();
        let mut s = dd.zero_state(4).unwrap();
        for q in 0..4 {
            s = dd.apply_gate(s, gates::H, &[], q).unwrap();
        }
        let probs = dd.probabilities(s, 4);
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
        for p in probs {
            assert!((p - 1.0 / 16.0).abs() < 1e-10);
        }
    }

    #[test]
    fn nonzero_basis_states_of_bell() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        assert_eq!(dd.nonzero_basis_states(b), vec![0b00, 0b11]);
    }

    #[test]
    fn prob_one_rejects_out_of_range_qubit() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(2).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut dd2 = dd.clone();
            dd2.prob_one(s, 5)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn outcome_conversions() {
        assert_eq!(MeasurementOutcome::from(true), MeasurementOutcome::One);
        assert_eq!(MeasurementOutcome::Zero.as_bit(), 0);
        assert_eq!(MeasurementOutcome::One.to_string(), "|1⟩");
    }
}
