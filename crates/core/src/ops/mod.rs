//! Recursive decision-diagram operations (paper §III, Fig. 4).
//!
//! All operations factor the operand edge weights out before recursing, so
//! the compute-table entries are scale-invariant: `op(w·x, v·y)` hits the
//! cache entry created by `op(x, y)`.

mod add;
mod adjoint;
mod inner;
mod kron;
mod multiply;
