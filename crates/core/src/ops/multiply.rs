//! Matrix–vector and matrix–matrix multiplication (paper Fig. 4).

use crate::error::DdError;
use crate::gates::{Control, GateMatrix};
use crate::package::DdPackage;
use crate::types::{MatEdge, MNodeId, VecEdge, VNodeId};

impl DdPackage {
    /// Applies an operator DD to a state DD: `M · |v⟩`.
    ///
    /// This is the paper's simulation primitive (Example 9): the product is
    /// decomposed block-wise into the four sub-matrices and two sub-vectors
    /// and recursed with memoization.
    ///
    /// # Panics
    ///
    /// Panics if the operands span different qubit counts, or when a
    /// configured resource budget runs out mid-operation (use
    /// [`Self::try_mat_vec`] under [`Limits`](crate::Limits)).
    pub fn mat_vec(&mut self, m: MatEdge, v: VecEdge) -> VecEdge {
        self.try_mat_vec(m, v)
            .unwrap_or_else(|e| panic!("ungoverned mat_vec failed: {e}"))
    }

    /// Governed form of [`Self::mat_vec`].
    ///
    /// # Errors
    ///
    /// [`DdError::ResourceExhausted`] or [`DdError::DeadlineExceeded`] when
    /// a configured budget runs out.
    pub fn try_mat_vec(&mut self, m: MatEdge, v: VecEdge) -> Result<VecEdge, DdError> {
        let _span = qdd_telemetry::span("core.mat_vec");
        self.mat_vec_go(m, v, 0)
    }

    pub(crate) fn mat_vec_go(
        &mut self,
        m: MatEdge,
        v: VecEdge,
        depth: usize,
    ) -> Result<VecEdge, DdError> {
        if m.is_zero() || v.is_zero() {
            return Ok(VecEdge::ZERO);
        }
        let alpha = self.ctable.mul(m.weight, v.weight);
        let r = self.mat_vec_unit(m.node, v.node, depth)?;
        Ok(self.scale_vec(r, alpha))
    }

    fn mat_vec_unit(&mut self, mn: MNodeId, vn: VNodeId, depth: usize) -> Result<VecEdge, DdError> {
        self.governor_check(depth)?;
        // Identity skip: a terminal matrix operand is the identity on every
        // remaining level (the scalar weight was peeled off in
        // `mat_vec_go`), so `I·v = v` prunes the whole sub-diagram below a
        // gate's active block — the difference between O(state nodes) and
        // O(levels) per gate application on wide states.
        if mn.is_terminal() {
            return Ok(VecEdge::new(vn, qdd_complex::C_ONE));
        }
        assert!(!vn.is_terminal(), "dimension mismatch in mat_vec");
        let key = (mn, vn);
        if self.config.compute_tables {
            if let Some(r) = self.caches.mat_vec.get(&key) {
                return Ok(r);
            }
        }
        let mnode = self.mnode(mn);
        let vnode = self.vnode(vn);
        let var = vnode.var;
        assert!(mnode.var <= var, "dimension mismatch in mat_vec");
        let vc = vnode.children;
        let mut rc = [VecEdge::ZERO; 2];
        if mnode.var < var {
            // The operator skips this level (identity): recurse the same
            // matrix into both vector children.
            let m = MatEdge::new(mn, qdd_complex::C_ONE);
            for (i, slot) in rc.iter_mut().enumerate() {
                *slot = self.mat_vec_go(m, vc[i], depth + 1)?;
            }
        } else {
            let mc = mnode.children;
            for (i, slot) in rc.iter_mut().enumerate() {
                let p0 = self.mat_vec_go(mc[2 * i], vc[0], depth + 1)?;
                let p1 = self.mat_vec_go(mc[2 * i + 1], vc[1], depth + 1)?;
                *slot = self.add_vec_go(p0, p1, depth + 1)?;
            }
        }
        let r = self.try_make_vec_node(var, rc)?;
        if self.config.compute_tables {
            self.caches.mat_vec.insert(key, r);
        }
        Ok(r)
    }

    /// Multiplies two operator DDs: `A · B` (apply `B` first).
    ///
    /// This is the verification primitive: a circuit's system matrix is the
    /// product of its gate matrices (paper §II, Example 10/11).
    ///
    /// # Panics
    ///
    /// Panics if the operands span different qubit counts, or when a
    /// configured resource budget runs out mid-operation (use
    /// [`Self::try_mat_mat`] under [`Limits`](crate::Limits)).
    pub fn mat_mat(&mut self, a: MatEdge, b: MatEdge) -> MatEdge {
        self.try_mat_mat(a, b)
            .unwrap_or_else(|e| panic!("ungoverned mat_mat failed: {e}"))
    }

    /// Governed form of [`Self::mat_mat`].
    ///
    /// # Errors
    ///
    /// [`DdError::ResourceExhausted`] or [`DdError::DeadlineExceeded`] when
    /// a configured budget runs out.
    pub fn try_mat_mat(&mut self, a: MatEdge, b: MatEdge) -> Result<MatEdge, DdError> {
        let _span = qdd_telemetry::span("core.mat_mat");
        self.mat_mat_go(a, b, 0)
    }

    pub(crate) fn mat_mat_go(
        &mut self,
        a: MatEdge,
        b: MatEdge,
        depth: usize,
    ) -> Result<MatEdge, DdError> {
        if a.is_zero() || b.is_zero() {
            return Ok(MatEdge::ZERO);
        }
        let alpha = self.ctable.mul(a.weight, b.weight);
        let r = self.mat_mat_unit(a.node, b.node, depth)?;
        Ok(self.scale_mat(r, alpha))
    }

    fn mat_mat_unit(&mut self, an: MNodeId, bn: MNodeId, depth: usize) -> Result<MatEdge, DdError> {
        self.governor_check(depth)?;
        // Identity skip on either operand: a terminal matrix is the
        // identity on every remaining level, so `I·B = B` and `A·I = A`
        // (weights were peeled off in `mat_mat_go`).
        if an.is_terminal() {
            return Ok(MatEdge::new(bn, qdd_complex::C_ONE));
        }
        if bn.is_terminal() {
            return Ok(MatEdge::new(an, qdd_complex::C_ONE));
        }
        let key = (an, bn);
        if self.config.compute_tables {
            if let Some(r) = self.caches.mat_mat.get(&key) {
                return Ok(r);
            }
        }
        let anode = self.mnode(an);
        let bnode = self.mnode(bn);
        let (avar, bvar) = (anode.var, bnode.var);
        let ac = anode.children;
        let bc = bnode.children;
        let var = avar.max(bvar);
        let mut rc = [MatEdge::ZERO; 4];
        if avar > bvar {
            // B skips this level: (A·(I⊗B))_{ij} = A_{ij}·B.
            let b = MatEdge::new(bn, qdd_complex::C_ONE);
            for (c, slot) in rc.iter_mut().enumerate() {
                *slot = self.mat_mat_go(ac[c], b, depth + 1)?;
            }
        } else if bvar > avar {
            // A skips this level: ((I⊗A)·B)_{ij} = A·B_{ij}.
            let a = MatEdge::new(an, qdd_complex::C_ONE);
            for (c, slot) in rc.iter_mut().enumerate() {
                *slot = self.mat_mat_go(a, bc[c], depth + 1)?;
            }
        } else {
            for i in 0..2 {
                for j in 0..2 {
                    // (A·B)_{ij} = Σ_k A_{ik} · B_{kj}
                    let p0 = self.mat_mat_go(ac[2 * i], bc[j], depth + 1)?;
                    let p1 = self.mat_mat_go(ac[2 * i + 1], bc[2 + j], depth + 1)?;
                    rc[2 * i + j] = self.add_mat_go(p0, p1, depth + 1)?;
                }
            }
        }
        let r = self.try_make_mat_node(var, rc)?;
        if self.config.compute_tables {
            self.caches.mat_mat.insert(key, r);
        }
        Ok(r)
    }

    /// Convenience: builds the gate DD and applies it to `state` in one
    /// call.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`DdPackage::gate_dd`] (the
    /// register size is taken from the state itself) and the governor
    /// errors of [`Self::try_mat_vec`].
    pub fn apply_gate(
        &mut self,
        state: VecEdge,
        u: GateMatrix,
        controls: &[Control],
        target: usize,
    ) -> Result<VecEdge, DdError> {
        let mut span = qdd_telemetry::span("core.apply_gate");
        span.field("target", target);
        let n = match self.vec_var(state) {
            Some(v) => v as usize + 1,
            None => {
                return Err(DdError::QubitIndexOutOfRange {
                    qubit: target,
                    num_qubits: 0,
                })
            }
        };
        let g = self.gate_dd(u, controls, target, n)?;
        self.try_mat_vec(g, state)
    }
}

#[cfg(test)]
mod tests {
    use crate::{gates, Control, DdPackage};
    use qdd_complex::Complex;
    use std::f64::consts::FRAC_1_SQRT_2;

    /// Paper Example 3/5: H on q1 of |00⟩, then CNOT → Bell state.
    #[test]
    fn bell_evolution_matches_paper() {
        let mut dd = DdPackage::new();
        let zero = dd.zero_state(2).unwrap();
        let h = dd.gate_dd(gates::H, &[], 1, 2).unwrap();
        let after_h = dd.mat_vec(h, zero);
        let dense = dd.to_dense_vector(after_h, 2);
        // 1/√2 [1, 0, 1, 0]  (Example 3)
        assert!(dense[0].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
        assert!(dense[1].approx_eq(Complex::ZERO, 1e-12));
        assert!(dense[2].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));

        let cx = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).unwrap();
        let bell = dd.mat_vec(cx, after_h);
        let dense = dd.to_dense_vector(bell, 2);
        // 1/√2 [1, 0, 0, 1]  (Example 1/5)
        assert!(dense[0].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
        assert!(dense[3].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
        assert!(dense[1].approx_eq(Complex::ZERO, 1e-12));
        assert!(dense[2].approx_eq(Complex::ZERO, 1e-12));
    }

    #[test]
    fn identity_is_multiplicative_neutral() {
        let mut dd = DdPackage::new();
        let id = dd.identity(3).unwrap();
        let s = dd.basis_state(3, 5).unwrap();
        assert_eq!(dd.mat_vec(id, s), s);
        let h = dd.gate_dd(gates::H, &[], 1, 3).unwrap();
        assert_eq!(dd.mat_mat(id, h), h);
        assert_eq!(dd.mat_mat(h, id), h);
    }

    #[test]
    fn gate_times_adjoint_is_identity() {
        let mut dd = DdPackage::new();
        for u in [gates::H, gates::S, gates::t(), gates::rx(0.7)] {
            let g = dd.gate_dd(u, &[], 0, 2).unwrap();
            let gd = dd.gate_dd(gates::adjoint(&u), &[], 0, 2).unwrap();
            let prod = dd.mat_mat(gd, g);
            let id = dd.identity(2).unwrap();
            assert_eq!(prod, id, "canonical identity after U†U");
        }
    }

    #[test]
    fn mat_mat_matches_dense() {
        let mut dd = DdPackage::new();
        let a = dd.gate_dd(gates::H, &[], 0, 2).unwrap();
        let b = dd.gate_dd(gates::S, &[Control::pos(0)], 1, 2).unwrap();
        let prod = dd.mat_mat(a, b);
        let da = dd.to_dense_matrix(a, 2);
        let db = dd.to_dense_matrix(b, 2);
        let dp = dd.to_dense_matrix(prod, 2);
        for i in 0..4 {
            for j in 0..4 {
                let mut want = Complex::ZERO;
                for k in 0..4 {
                    want += da[i][k] * db[k][j];
                }
                assert!(dp[i][j].approx_eq(want, 1e-12), "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn negative_control_fires_on_zero() {
        let mut dd = DdPackage::new();
        let zero = dd.zero_state(2).unwrap();
        // X on q0, negative control on q1: fires because q1 = |0⟩.
        let g = dd.gate_dd(gates::X, &[Control::neg(1)], 0, 2).unwrap();
        let out = dd.mat_vec(g, zero);
        let expect = dd.basis_state(2, 1).unwrap();
        assert_eq!(out, expect);
        // Positive control does not fire on |00⟩.
        let g = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).unwrap();
        let out = dd.mat_vec(g, zero);
        let expect = dd.zero_state(2).unwrap();
        assert_eq!(out, expect);
    }

    #[test]
    fn toffoli_via_two_controls() {
        let mut dd = DdPackage::new();
        let g = dd
            .gate_dd(gates::X, &[Control::pos(2), Control::pos(1)], 0, 3)
            .unwrap();
        // |110⟩ → |111⟩
        let s = dd.basis_state(3, 0b110).unwrap();
        let out = dd.mat_vec(g, s);
        let expect = dd.basis_state(3, 0b111).unwrap();
        assert_eq!(out, expect);
        // |010⟩ unchanged
        let s = dd.basis_state(3, 0b010).unwrap();
        assert_eq!(dd.mat_vec(g, s), s);
    }

    #[test]
    fn apply_gate_convenience() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(s, gates::X, &[], 1).unwrap();
        let expect = dd.basis_state(2, 0b10).unwrap();
        assert_eq!(s, expect);
    }

    #[test]
    fn state_norm_preserved_by_unitaries() {
        let mut dd = DdPackage::new();
        let mut s = dd.zero_state(3).unwrap();
        for (u, t) in [
            (gates::H, 0),
            (gates::ry(0.9), 1),
            (gates::t(), 2),
            (gates::H, 2),
        ] {
            s = dd.apply_gate(s, u, &[], t).unwrap();
        }
        let norm = dd.vec_norm(s);
        assert!((norm - 1.0).abs() < 1e-10);
    }
}
