//! Pointwise addition of vector and matrix decision diagrams.

use crate::error::DdError;
use crate::package::DdPackage;
use crate::types::{MatEdge, VecEdge};

impl DdPackage {
    /// Adds two state-vector DDs (paper Fig. 4, right half).
    ///
    /// Addition is the workhorse inside multiplication; it is exposed
    /// publicly because linear combinations of states are useful on their
    /// own (e.g. constructing superpositions for tests).
    ///
    /// # Panics
    ///
    /// Panics if the operands have different qubit counts, or when a
    /// configured resource budget runs out mid-operation (use
    /// [`Self::try_add_vec`] under [`Limits`](crate::Limits)).
    pub fn add_vec(&mut self, a: VecEdge, b: VecEdge) -> VecEdge {
        self.try_add_vec(a, b)
            .unwrap_or_else(|e| panic!("ungoverned add_vec failed: {e}"))
    }

    /// Governed form of [`Self::add_vec`].
    ///
    /// # Errors
    ///
    /// [`DdError::ResourceExhausted`] or [`DdError::DeadlineExceeded`] when
    /// a configured budget runs out; the partial result is dropped (any
    /// nodes it created are unreferenced and reclaimed by the next GC).
    pub fn try_add_vec(&mut self, a: VecEdge, b: VecEdge) -> Result<VecEdge, DdError> {
        let _span = qdd_telemetry::span("core.add_vec");
        self.add_vec_go(a, b, 0)
    }

    pub(crate) fn add_vec_go(
        &mut self,
        a: VecEdge,
        b: VecEdge,
        depth: usize,
    ) -> Result<VecEdge, DdError> {
        self.governor_check(depth)?;
        if a.is_zero() {
            return Ok(b);
        }
        if b.is_zero() {
            return Ok(a);
        }
        if a.node == b.node {
            let w = self.ctable.add(a.weight, b.weight);
            return Ok(if w.is_zero() {
                VecEdge::ZERO
            } else {
                VecEdge::new(a.node, w)
            });
        }
        assert!(
            !a.is_terminal() && !b.is_terminal(),
            "vector addition rank mismatch"
        );
        // Commutative: order operands canonically for better cache reuse.
        // Order by creation stamp, not slot id — slot ids are recycled by
        // GC, and a GC-dependent ordering perturbs which operand divides
        // which (numeric drift that can re-fragment compact diagrams).
        let (x, y) = if self.vnode(a.node).birth <= self.vnode(b.node).birth {
            (a, b)
        } else {
            (b, a)
        };
        let alpha = x.weight;
        let beta = self.ctable.div(y.weight, alpha);
        let key = (x.node, y.node, beta);
        if self.config.compute_tables {
            if let Some(r) = self.caches.add_vec.get(&key) {
                return Ok(self.scale_vec(r, alpha));
            }
        }
        let xn = self.vnode(x.node);
        let yn = self.vnode(y.node);
        assert_eq!(xn.var, yn.var, "vector addition rank mismatch");
        let var = xn.var;
        let xc = xn.children;
        let yc = yn.children;
        let mut rc = [VecEdge::ZERO; 2];
        for i in 0..2 {
            let ye = self.scale_vec(yc[i], beta);
            rc[i] = self.add_vec_go(xc[i], ye, depth + 1)?;
        }
        let r = self.try_make_vec_node(var, rc)?;
        if self.config.compute_tables {
            self.caches.add_vec.insert(key, r);
        }
        Ok(self.scale_vec(r, alpha))
    }

    /// Adds two matrix DDs.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different qubit counts, or when a
    /// configured resource budget runs out mid-operation (use
    /// [`Self::try_add_mat`] under [`Limits`](crate::Limits)).
    pub fn add_mat(&mut self, a: MatEdge, b: MatEdge) -> MatEdge {
        self.try_add_mat(a, b)
            .unwrap_or_else(|e| panic!("ungoverned add_mat failed: {e}"))
    }

    /// Governed form of [`Self::add_mat`].
    ///
    /// # Errors
    ///
    /// [`DdError::ResourceExhausted`] or [`DdError::DeadlineExceeded`] when
    /// a configured budget runs out.
    pub fn try_add_mat(&mut self, a: MatEdge, b: MatEdge) -> Result<MatEdge, DdError> {
        let _span = qdd_telemetry::span("core.add_mat");
        self.add_mat_go(a, b, 0)
    }

    pub(crate) fn add_mat_go(
        &mut self,
        a: MatEdge,
        b: MatEdge,
        depth: usize,
    ) -> Result<MatEdge, DdError> {
        self.governor_check(depth)?;
        if a.is_zero() {
            return Ok(b);
        }
        if b.is_zero() {
            return Ok(a);
        }
        if a.node == b.node {
            let w = self.ctable.add(a.weight, b.weight);
            return Ok(if w.is_zero() {
                MatEdge::ZERO
            } else {
                MatEdge::new(a.node, w)
            });
        }
        // Identity skip: a terminal operand is `w·I` on the remaining
        // levels, and operands whose roots sit at different levels align by
        // expanding the lower one as a diagonal pass-through. Order the
        // higher-rooted operand first (it drives the recursion); at equal
        // levels fall back to birth-stamp ordering as for vectors. Both
        // orderings are GC-stable, so cache keys stay deterministic.
        let (x, y) = {
            let arank = if a.is_terminal() {
                -1
            } else {
                i64::from(self.mnode(a.node).var)
            };
            let brank = if b.is_terminal() {
                -1
            } else {
                i64::from(self.mnode(b.node).var)
            };
            match arank.cmp(&brank) {
                std::cmp::Ordering::Greater => (a, b),
                std::cmp::Ordering::Less => (b, a),
                std::cmp::Ordering::Equal => {
                    // Equal ranks: terminal==terminal was handled by the
                    // `a.node == b.node` fast path above.
                    if self.mnode(a.node).birth <= self.mnode(b.node).birth {
                        (a, b)
                    } else {
                        (b, a)
                    }
                }
            }
        };
        let alpha = x.weight;
        let beta = self.ctable.div(y.weight, alpha);
        let key = (x.node, y.node, beta);
        if self.config.compute_tables {
            if let Some(r) = self.caches.add_mat.get(&key) {
                return Ok(self.scale_mat(r, alpha));
            }
        }
        let xn = self.mnode(x.node);
        let var = xn.var;
        let xc = xn.children;
        let mut rc = [MatEdge::ZERO; 4];
        if y.is_terminal() || self.mnode(y.node).var < var {
            // `y` skips this level: it contributes `β·y` on both diagonal
            // blocks and nothing off-diagonal.
            let ye = MatEdge::new(y.node, beta);
            rc[0] = self.add_mat_go(xc[0], ye, depth + 1)?;
            rc[1] = xc[1];
            rc[2] = xc[2];
            rc[3] = self.add_mat_go(xc[3], ye, depth + 1)?;
        } else {
            let yc = self.mnode(y.node).children;
            for i in 0..4 {
                let ye = self.scale_mat(yc[i], beta);
                rc[i] = self.add_mat_go(xc[i], ye, depth + 1)?;
            }
        }
        let r = self.try_make_mat_node(var, rc)?;
        if self.config.compute_tables {
            self.caches.add_mat.insert(key, r);
        }
        Ok(self.scale_mat(r, alpha))
    }
}

#[cfg(test)]
mod tests {
    use crate::DdPackage;
    use qdd_complex::Complex;

    #[test]
    fn add_is_commutative_and_canonical() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state(3, 1).unwrap();
        let b = dd.basis_state(3, 6).unwrap();
        let ab = dd.add_vec(a, b);
        let ba = dd.add_vec(b, a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn add_with_zero_is_identity() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state(2, 3).unwrap();
        assert_eq!(dd.add_vec(a, crate::VecEdge::ZERO), a);
        assert_eq!(dd.add_vec(crate::VecEdge::ZERO, a), a);
    }

    #[test]
    fn state_plus_negated_state_vanishes() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state(2, 2).unwrap();
        let neg_w = dd.intern(Complex::real(-1.0));
        let minus_a = dd.scale_vec(a, neg_w);
        assert!(dd.add_vec(a, minus_a).is_zero());
    }

    #[test]
    fn add_matches_dense_semantics() {
        let mut dd = DdPackage::new();
        let amps_a = [
            Complex::real(0.5),
            Complex::new(0.0, 0.5),
            Complex::real(-0.5),
            Complex::real(0.5),
        ];
        let amps_b = [
            Complex::real(0.1),
            Complex::real(0.2),
            Complex::new(0.0, -0.3),
            Complex::real(0.4),
        ];
        let a = dd.state_from_amplitudes(&amps_a).unwrap();
        let b = dd.state_from_amplitudes(&amps_b).unwrap();
        let sum = dd.add_vec(a, b);
        let dense_a = dd.to_dense_vector(a, 2);
        let dense_b = dd.to_dense_vector(b, 2);
        let dense_sum = dd.to_dense_vector(sum, 2);
        for i in 0..4 {
            assert!(dense_sum[i].approx_eq(dense_a[i] + dense_b[i], 1e-12));
        }
    }

    #[test]
    fn matrix_add_builds_projector_sum() {
        // |0⟩⟨0| ⊗ I + |1⟩⟨1| ⊗ X == CNOT (control = MSB).
        let mut dd = DdPackage::new();
        let z = Complex::ZERO;
        let o = Complex::ONE;
        let p0 = dd
            .matrix_from_dense(&[
                vec![o, z, z, z],
                vec![z, o, z, z],
                vec![z, z, z, z],
                vec![z, z, z, z],
            ])
            .unwrap();
        let p1x = dd
            .matrix_from_dense(&[
                vec![z, z, z, z],
                vec![z, z, z, z],
                vec![z, z, z, o],
                vec![z, z, o, z],
            ])
            .unwrap();
        let sum = dd.add_mat(p0, p1x);
        let cx = dd
            .gate_dd(crate::gates::X, &[crate::Control::pos(1)], 0, 2)
            .unwrap();
        assert_eq!(sum, cx);
    }

    #[test]
    fn cache_hit_on_scaled_operands() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state(2, 0).unwrap();
        let b = dd.basis_state(2, 3).unwrap();
        let _ = dd.add_vec(a, b);
        let before = dd.stats().cache_hits;
        let w = dd.intern(Complex::new(0.0, 2.0));
        let a2 = dd.scale_vec(a, w);
        let b2 = dd.scale_vec(b, w);
        let _ = dd.add_vec(a2, b2);
        assert!(
            dd.stats().cache_hits > before,
            "scale-invariant keys should hit the cache"
        );
    }
}
