//! Tensor (Kronecker) products (paper Fig. 3).
//!
//! On decision diagrams the tensor product `A ⊗ B` amounts to replacing the
//! terminal of `A`'s diagram with the root of `B`'s and shifting `A`'s
//! variable labels up — exactly the construction the paper illustrates for
//! `H ⊗ I₂`.

use crate::error::DdError;
use crate::package::DdPackage;
use crate::types::{MatEdge, MNodeId, Qubit, VecEdge, VNodeId};
use qdd_complex::C_ONE;

impl DdPackage {
    /// Tensor product of two states: `|a⟩ ⊗ |b⟩` with `a` as the
    /// more-significant register.
    ///
    /// # Panics
    ///
    /// Panics when a configured resource budget runs out mid-operation (use
    /// [`Self::try_kron_vec`] under [`Limits`](crate::Limits)).
    pub fn kron_vec(&mut self, a: VecEdge, b: VecEdge) -> VecEdge {
        self.try_kron_vec(a, b)
            .unwrap_or_else(|e| panic!("ungoverned kron_vec failed: {e}"))
    }

    /// Governed form of [`Self::kron_vec`].
    ///
    /// # Errors
    ///
    /// [`DdError::ResourceExhausted`] or [`DdError::DeadlineExceeded`] when
    /// a configured budget runs out.
    pub fn try_kron_vec(&mut self, a: VecEdge, b: VecEdge) -> Result<VecEdge, DdError> {
        let _span = qdd_telemetry::span("core.kron_vec");
        self.kron_vec_go(a, b, 0)
    }

    pub(crate) fn kron_vec_go(
        &mut self,
        a: VecEdge,
        b: VecEdge,
        depth: usize,
    ) -> Result<VecEdge, DdError> {
        if a.is_zero() || b.is_zero() {
            return Ok(VecEdge::ZERO);
        }
        let alpha = self.ctable.mul(a.weight, b.weight);
        let r = self.kron_vec_unit(a.node, b.node, depth)?;
        Ok(self.scale_vec(r, alpha))
    }

    fn kron_vec_unit(&mut self, an: VNodeId, bn: VNodeId, depth: usize) -> Result<VecEdge, DdError> {
        self.governor_check(depth)?;
        if an.is_terminal() {
            // Terminal replacement: the unit edge into b's root.
            return Ok(VecEdge::new(bn, C_ONE));
        }
        let key = (an, bn);
        if self.config.compute_tables {
            if let Some(r) = self.caches.kron_vec.get(&key) {
                return Ok(r);
            }
        }
        let shift: Qubit = if bn.is_terminal() {
            0
        } else {
            self.vnode(bn).var + 1
        };
        let anode = self.vnode(an);
        let var = anode.var + shift;
        let ac = anode.children;
        let b_unit = VecEdge::new(bn, C_ONE);
        let mut rc = [VecEdge::ZERO; 2];
        for (i, slot) in rc.iter_mut().enumerate() {
            *slot = self.kron_vec_go(ac[i], b_unit, depth + 1)?;
        }
        let r = self.try_make_vec_node(var, rc)?;
        if self.config.compute_tables {
            self.caches.kron_vec.insert(key, r);
        }
        Ok(r)
    }

    /// Tensor product of two operators: `A ⊗ B` with `A` acting on the
    /// more-significant qubits (the paper's `H ⊗ I₂`, Fig. 3).
    ///
    /// `B`'s span is inferred from its root variable. Under identity skip a
    /// root can sit below its logical span (skipped identity levels carry
    /// no node), in which case the inferred span under-counts — use
    /// [`Self::kron_mat_spanned`] to state `B`'s span explicitly.
    ///
    /// # Panics
    ///
    /// Panics when a configured resource budget runs out mid-operation (use
    /// [`Self::try_kron_mat`] under [`Limits`](crate::Limits)).
    pub fn kron_mat(&mut self, a: MatEdge, b: MatEdge) -> MatEdge {
        self.try_kron_mat(a, b)
            .unwrap_or_else(|e| panic!("ungoverned kron_mat failed: {e}"))
    }

    /// Governed form of [`Self::kron_mat`].
    ///
    /// # Errors
    ///
    /// [`DdError::ResourceExhausted`] or [`DdError::DeadlineExceeded`] when
    /// a configured budget runs out.
    pub fn try_kron_mat(&mut self, a: MatEdge, b: MatEdge) -> Result<MatEdge, DdError> {
        let b_levels = if b.is_terminal() {
            0
        } else {
            self.mnode(b.node).var as usize + 1
        };
        self.try_kron_mat_spanned(a, b, b_levels)
    }

    /// Tensor product `A ⊗ B` where `B` spans `b_levels` qubit levels.
    ///
    /// The explicit span matters under identity skip: `H ⊗ I₂` needs `A`'s
    /// variables shifted past the (nodeless) identity register, which the
    /// edge itself cannot reveal.
    ///
    /// # Panics
    ///
    /// Panics when a configured resource budget runs out mid-operation (use
    /// [`Self::try_kron_mat_spanned`] under [`Limits`](crate::Limits)) or
    /// when `b`'s root variable does not fit in `b_levels`.
    pub fn kron_mat_spanned(&mut self, a: MatEdge, b: MatEdge, b_levels: usize) -> MatEdge {
        self.try_kron_mat_spanned(a, b, b_levels)
            .unwrap_or_else(|e| panic!("ungoverned kron_mat failed: {e}"))
    }

    /// Governed form of [`Self::kron_mat_spanned`].
    ///
    /// # Errors
    ///
    /// [`DdError::ResourceExhausted`] or [`DdError::DeadlineExceeded`] when
    /// a configured budget runs out.
    pub fn try_kron_mat_spanned(
        &mut self,
        a: MatEdge,
        b: MatEdge,
        b_levels: usize,
    ) -> Result<MatEdge, DdError> {
        let _span = qdd_telemetry::span("core.kron_mat");
        if !b.is_terminal() {
            assert!(
                (self.mnode(b.node).var as usize) < b_levels,
                "kron_mat span smaller than b's root variable"
            );
        }
        self.kron_mat_go(a, b, b_levels as Qubit, 0)
    }

    pub(crate) fn kron_mat_go(
        &mut self,
        a: MatEdge,
        b: MatEdge,
        shift: Qubit,
        depth: usize,
    ) -> Result<MatEdge, DdError> {
        if a.is_zero() || b.is_zero() {
            return Ok(MatEdge::ZERO);
        }
        let alpha = self.ctable.mul(a.weight, b.weight);
        let r = self.kron_mat_unit(a.node, b.node, shift, depth)?;
        Ok(self.scale_mat(r, alpha))
    }

    fn kron_mat_unit(
        &mut self,
        an: MNodeId,
        bn: MNodeId,
        shift: Qubit,
        depth: usize,
    ) -> Result<MatEdge, DdError> {
        self.governor_check(depth)?;
        if an.is_terminal() {
            // Terminal replacement; under identity skip a terminal in `A`
            // is identity on `A`'s remaining levels, which stays implicit
            // above `B`'s root.
            return Ok(MatEdge::new(bn, C_ONE));
        }
        let key = (an, bn, shift);
        if self.config.compute_tables {
            if let Some(r) = self.caches.kron_mat.get(&key) {
                return Ok(r);
            }
        }
        let anode = self.mnode(an);
        let var = anode.var + shift;
        let ac = anode.children;
        let b_unit = MatEdge::new(bn, C_ONE);
        let mut rc = [MatEdge::ZERO; 4];
        for (i, slot) in rc.iter_mut().enumerate() {
            *slot = self.kron_mat_go(ac[i], b_unit, shift, depth + 1)?;
        }
        let r = self.try_make_mat_node(var, rc)?;
        if self.config.compute_tables {
            self.caches.kron_mat.insert(key, r);
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use crate::{gates, DdPackage};
    use qdd_complex::Complex;

    /// Paper Example 8 / Fig. 3: H ⊗ I₂ via terminal replacement equals the
    /// directly constructed two-qubit gate DD.
    #[test]
    fn kron_reproduces_fig_3() {
        let mut dd = DdPackage::new();
        let h1 = dd.gate_dd(gates::H, &[], 0, 1).unwrap();
        let i1 = dd.identity(1).unwrap();
        // Under identity skip `I₂` is a nodeless terminal edge, so the
        // one-level span must be stated explicitly.
        let via_kron = dd.kron_mat_spanned(h1, i1, 1);
        let direct = dd.gate_dd(gates::H, &[], 1, 2).unwrap();
        assert_eq!(via_kron, direct, "H ⊗ I₂ is canonical");
    }

    #[test]
    fn kron_vec_builds_product_states() {
        let mut dd = DdPackage::new();
        let plus = {
            let z = dd.zero_state(1).unwrap();
            dd.apply_gate(z, gates::H, &[], 0).unwrap()
        };
        let one = dd.basis_state(1, 1).unwrap();
        let prod = dd.kron_vec(plus, one);
        // |+⟩ ⊗ |1⟩ = 1/√2 (|01⟩ + |11⟩)
        let dense = dd.to_dense_vector(prod, 2);
        let h = std::f64::consts::FRAC_1_SQRT_2;
        assert!(dense[0].approx_eq(Complex::ZERO, 1e-12));
        assert!(dense[1].approx_eq(Complex::real(h), 1e-12));
        assert!(dense[2].approx_eq(Complex::ZERO, 1e-12));
        assert!(dense[3].approx_eq(Complex::real(h), 1e-12));
    }

    #[test]
    fn kron_matches_dense_for_matrices() {
        let mut dd = DdPackage::new();
        let a = dd.gate_dd(gates::S, &[], 0, 1).unwrap();
        let b = dd.gate_dd(gates::H, &[], 0, 1).unwrap();
        let prod = dd.kron_mat(a, b);
        let da = dd.to_dense_matrix(a, 1);
        let db = dd.to_dense_matrix(b, 1);
        let dp = dd.to_dense_matrix(prod, 2);
        for i in 0..4 {
            for j in 0..4 {
                let want = da[i / 2][j / 2] * db[i % 2][j % 2];
                assert!(dp[i][j].approx_eq(want, 1e-12), "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn kron_with_scalar_terminal_scales() {
        let mut dd = DdPackage::new();
        let s = dd.basis_state(2, 1).unwrap();
        let half = dd.intern(Complex::real(0.5));
        let scalar = crate::VecEdge::terminal(half);
        let scaled = dd.kron_vec(s, scalar);
        assert_eq!(scaled.node, s.node);
        let w = dd.complex_value(scaled.weight);
        assert!(w.approx_eq(Complex::real(0.5), 1e-12));
    }

    #[test]
    fn kron_associativity() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state(1, 1).unwrap();
        let b = {
            let z = dd.zero_state(1).unwrap();
            dd.apply_gate(z, gates::H, &[], 0).unwrap()
        };
        let c = dd.basis_state(1, 0).unwrap();
        let ab = dd.kron_vec(a, b);
        let ab_c = dd.kron_vec(ab, c);
        let bc = dd.kron_vec(b, c);
        let a_bc = dd.kron_vec(a, bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn kron_zero_annihilates() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state(2, 0).unwrap();
        assert!(dd.kron_vec(a, crate::VecEdge::ZERO).is_zero());
        assert!(dd.kron_vec(crate::VecEdge::ZERO, a).is_zero());
    }
}
