//! Conjugate transpose of operator DDs.
//!
//! Needed by the advanced equivalence-checking scheme (paper Example 12):
//! checking `G ≡ G'` by driving `G'⁻¹ · G` toward the identity requires the
//! inverses — for unitaries, the adjoints — of `G'`'s gates.

use crate::package::DdPackage;
use crate::types::{MatEdge, MNodeId};

impl DdPackage {
    /// The conjugate transpose `M†` of an operator DD.
    pub fn adjoint_mat(&mut self, m: MatEdge) -> MatEdge {
        if m.is_zero() {
            return MatEdge::ZERO;
        }
        let w = self.ctable.conj(m.weight);
        let r = self.adjoint_unit(m.node);
        self.scale_mat(r, w)
    }

    fn adjoint_unit(&mut self, mn: MNodeId) -> MatEdge {
        if mn.is_terminal() {
            return MatEdge::ONE;
        }
        if self.config.compute_tables {
            if let Some(r) = self.caches.adjoint.get(&mn) {
                return r;
            }
        }
        let node = self.mnode(mn);
        let var = node.var;
        let c = node.children;
        // Transpose swaps the off-diagonal blocks; conjugation recurses.
        let r00 = self.adjoint_mat(c[0]);
        let r01 = self.adjoint_mat(c[2]);
        let r10 = self.adjoint_mat(c[1]);
        let r11 = self.adjoint_mat(c[3]);
        let r = self.make_mat_node(var, [r00, r01, r10, r11]);
        if self.config.compute_tables {
            self.caches.adjoint.insert(mn, r);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use crate::{gates, Control, DdPackage};

    #[test]
    fn adjoint_is_involution() {
        let mut dd = DdPackage::new();
        let g = dd.gate_dd(gates::t(), &[Control::pos(1)], 0, 3).unwrap();
        let gdd = dd.adjoint_mat(g);
        let back = dd.adjoint_mat(gdd);
        assert_eq!(back, g);
    }

    #[test]
    fn adjoint_matches_matrix_adjoint() {
        let mut dd = DdPackage::new();
        let u = gates::u3(0.7, -0.4, 1.9);
        let g = dd.gate_dd(u, &[], 1, 2).unwrap();
        let via_dd = dd.adjoint_mat(g);
        let via_matrix = dd.gate_dd(gates::adjoint(&u), &[], 1, 2).unwrap();
        assert_eq!(via_dd, via_matrix);
    }

    #[test]
    fn unitary_times_adjoint_is_identity() {
        let mut dd = DdPackage::new();
        let g = dd
            .gate_dd(gates::phase(0.3), &[Control::pos(2)], 0, 3)
            .unwrap();
        let gd = dd.adjoint_mat(g);
        let prod = dd.mat_mat(g, gd);
        let id = dd.identity(3).unwrap();
        assert_eq!(prod, id);
    }

    #[test]
    fn hermitian_gates_are_self_adjoint() {
        let mut dd = DdPackage::new();
        for u in [gates::H, gates::X, gates::Y, gates::Z] {
            let g = dd.gate_dd(u, &[], 0, 2).unwrap();
            assert_eq!(dd.adjoint_mat(g), g);
        }
    }

    #[test]
    fn adjoint_of_zero_is_zero() {
        let mut dd = DdPackage::new();
        assert!(dd.adjoint_mat(crate::MatEdge::ZERO).is_zero());
    }
}
