//! Scalar-valued diagram operations: inner products, norms, fidelity, trace.

use crate::error::DdError;
use crate::package::DdPackage;
use crate::types::{MatEdge, VecEdge, VNodeId};
use qdd_complex::{Complex, ComplexIdx, C_ONE};

impl DdPackage {
    /// The inner product `⟨a|b⟩` (conjugate-linear in `a`).
    ///
    /// # Panics
    ///
    /// Panics if the operands span different qubit counts, or when a
    /// configured resource budget runs out mid-operation (use
    /// [`Self::try_inner_product`] under [`Limits`](crate::Limits)).
    pub fn inner_product(&mut self, a: VecEdge, b: VecEdge) -> Complex {
        self.try_inner_product(a, b)
            .unwrap_or_else(|e| panic!("ungoverned inner_product failed: {e}"))
    }

    /// Governed form of [`Self::inner_product`].
    ///
    /// # Errors
    ///
    /// [`DdError::ResourceExhausted`] or [`DdError::DeadlineExceeded`] when
    /// a configured budget runs out. Inner products allocate no DD nodes,
    /// so only the depth and deadline budgets apply.
    pub fn try_inner_product(&mut self, a: VecEdge, b: VecEdge) -> Result<Complex, DdError> {
        let _span = qdd_telemetry::span("core.inner");
        if a.is_zero() || b.is_zero() {
            return Ok(Complex::ZERO);
        }
        let factor = self.complex_value(a.weight).conj() * self.complex_value(b.weight);
        let unit = self.inner_unit(a.node, b.node, 0)?;
        Ok(factor * self.complex_value(unit))
    }

    fn inner_unit(&mut self, an: VNodeId, bn: VNodeId, depth: usize) -> Result<ComplexIdx, DdError> {
        self.governor_check(depth)?;
        if an.is_terminal() && bn.is_terminal() {
            return Ok(C_ONE);
        }
        assert!(
            !an.is_terminal() && !bn.is_terminal(),
            "dimension mismatch in inner_product"
        );
        let key = (an, bn);
        if self.config.compute_tables {
            if let Some(r) = self.caches.inner.get(&key) {
                return Ok(r);
            }
        }
        let anode = self.vnode(an);
        let bnode = self.vnode(bn);
        assert_eq!(anode.var, bnode.var, "dimension mismatch in inner_product");
        let ac = anode.children;
        let bc = bnode.children;
        let mut sum = Complex::ZERO;
        for i in 0..2 {
            if ac[i].is_zero() || bc[i].is_zero() {
                continue;
            }
            let sub = self.inner_unit(ac[i].node, bc[i].node, depth + 1)?;
            sum += self.complex_value(ac[i].weight).conj()
                * self.complex_value(bc[i].weight)
                * self.complex_value(sub);
        }
        let r = self.intern(sum);
        if self.config.compute_tables {
            self.caches.inner.insert(key, r);
        }
        Ok(r)
    }

    /// The Euclidean norm `‖a‖ = √⟨a|a⟩`.
    pub fn vec_norm(&mut self, a: VecEdge) -> f64 {
        self.inner_product(a, a).re.max(0.0).sqrt()
    }

    /// The fidelity `|⟨a|b⟩|²` between two (normalized) states.
    pub fn fidelity(&mut self, a: VecEdge, b: VecEdge) -> f64 {
        self.inner_product(a, b).norm_sqr()
    }

    /// The trace of an operator DD spanning `n` qubits.
    pub fn mat_trace(&mut self, m: MatEdge, n: usize) -> Complex {
        fn rec(dd: &mut DdPackage, e: MatEdge, levels_left: usize) -> Complex {
            if e.is_zero() {
                return Complex::ZERO;
            }
            let w = dd.complex_value(e.weight);
            if e.is_terminal() {
                // Identity skip: a terminal edge is `w·I` on every
                // remaining level, contributing `w·2^levels`.
                return w * Complex::real((1u64 << levels_left) as f64);
            }
            let node = dd.mnode(e.node);
            let var = node.var as usize;
            debug_assert!(var < levels_left, "trace on over-spanned DD");
            // Skipped identity levels above the node double the trace each
            // (tr(I₂ ⊗ M) = 2·tr(M)); the children span `var` levels.
            let gap = levels_left - 1 - var;
            let c0 = node.children[0];
            let c3 = node.children[3];
            let t = rec(dd, c0, var) + rec(dd, c3, var);
            w * t * Complex::real((1u64 << gap) as f64)
        }
        rec(self, m, n)
    }
}

#[cfg(test)]
mod tests {
    use crate::{gates, DdPackage};
    use qdd_complex::Complex;

    #[test]
    fn basis_states_are_orthonormal() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state(3, 2).unwrap();
        let b = dd.basis_state(3, 5).unwrap();
        assert!(dd.inner_product(a, a).approx_eq(Complex::ONE, 1e-12));
        assert!(dd.inner_product(a, b).approx_eq(Complex::ZERO, 1e-12));
    }

    #[test]
    fn inner_product_is_conjugate_symmetric() {
        let mut dd = DdPackage::new();
        let a = dd
            .state_from_amplitudes(&[
                Complex::new(0.5, 0.1),
                Complex::new(-0.2, 0.3),
                Complex::new(0.0, 0.6),
                Complex::new(0.4, 0.0),
            ])
            .unwrap();
        let b = dd
            .state_from_amplitudes(&[
                Complex::new(0.1, -0.7),
                Complex::new(0.3, 0.2),
                Complex::new(0.5, 0.0),
                Complex::new(0.0, 0.2),
            ])
            .unwrap();
        let ab = dd.inner_product(a, b);
        let ba = dd.inner_product(b, a);
        assert!(ab.approx_eq(ba.conj(), 1e-12));
    }

    #[test]
    fn norm_of_states_is_one() {
        let mut dd = DdPackage::new();
        let mut s = dd.zero_state(4).unwrap();
        s = dd.apply_gate(s, gates::H, &[], 3).unwrap();
        s = dd.apply_gate(s, gates::ry(1.1), &[], 2).unwrap();
        assert!((dd.vec_norm(s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_orthogonal_and_identical() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state(2, 0).unwrap();
        let b = dd.basis_state(2, 3).unwrap();
        assert!(dd.fidelity(a, b) < 1e-15);
        assert!((dd.fidelity(a, a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn global_phase_invisible_in_fidelity() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state(2, 1).unwrap();
        let w = dd.intern(Complex::cis(0.7));
        let phased = dd.scale_vec(a, w);
        assert!((dd.fidelity(a, phased) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trace_of_identity_is_dimension() {
        let mut dd = DdPackage::new();
        for n in 1..=5 {
            let id = dd.identity(n).unwrap();
            let t = dd.mat_trace(id, n);
            assert!(t.approx_eq(Complex::real((1u64 << n) as f64), 1e-10));
        }
    }

    #[test]
    fn trace_of_pauli_gates_is_zero() {
        let mut dd = DdPackage::new();
        for u in [gates::X, gates::Y, gates::Z] {
            let g = dd.gate_dd(u, &[], 1, 3).unwrap();
            let t = dd.mat_trace(g, 3);
            assert!(t.abs() < 1e-10);
        }
    }

    #[test]
    fn trace_is_cyclic() {
        let mut dd = DdPackage::new();
        let a = dd.gate_dd(gates::H, &[], 0, 2).unwrap();
        let b = dd
            .gate_dd(gates::phase(0.9), &[crate::Control::pos(0)], 1, 2)
            .unwrap();
        let ab = dd.mat_mat(a, b);
        let ba = dd.mat_mat(b, a);
        let tab = dd.mat_trace(ab, 2);
        let tba = dd.mat_trace(ba, 2);
        assert!(tab.approx_eq(tba, 1e-10));
    }
}
