//! The arity-generic node store: one arena + sharded unique table +
//! per-shard free lists + traversal scratch pool, instantiated at `N = 2`
//! (vector DDs) and `N = 4` (matrix DDs), so allocation, refcounting, GC
//! mark/sweep and node counting exist exactly once.
//!
//! # Concurrency model
//!
//! The store is `Sync` with a two-lane discipline:
//!
//! * **Exclusive lane** (`&mut self`) — the classic single-owner hot path.
//!   Every lock is bypassed via `get_mut`, so single-threaded construction
//!   pays nothing for shareability. Garbage collection (mark/sweep/rebuild)
//!   and slot reclamation live exclusively here: they are stop-the-world
//!   epochs by construction.
//! * **Shared lane** (`&self`) — node reads ([`NodeStore::node`]) are
//!   lock-free (the arena is a [`SlotVec`]: slots never move), unique-table
//!   lookups take a read lock on one of [`NSHARDS`] shards keyed by the
//!   node hash, interning a new node takes that shard's write lock (with a
//!   re-check, so races collapse to one canonical id), and refcounts are
//!   atomic.
//!
//! A store can also **overlay** a frozen base store (`Arc`-shared, never
//! mutated): ids below `base_len` resolve into the base, new nodes get ids
//! past it, and lookups consult the base shard first so base representatives
//! stay canonical across every overlay.

use crate::node::Node;
use crate::normalize::{normalize_matrix, normalize_vector, Normalized};
use crate::types::{Edge, NodeId, Qubit};
use qdd_complex::{
    ComplexIdx, ComplexTable, FxHashMap, FxHasher, FxHashSet, ScratchGuard, ScratchPool, SlotVec,
};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use super::{DdPackage, PackageConfig};

/// Number of unique-table shards (power of two). Sixteen keeps write-lock
/// collisions rare at the thread counts we target while staying small
/// enough that rebuilds and clears stay cheap.
const NSHARDS: usize = 16;

/// One shard of the unique table: the canonical `key → id` map for nodes
/// hashing here, plus the free slots whose last occupant hashed here.
#[derive(Clone, Debug, Default)]
struct Shard<const N: usize> {
    map: FxHashMap<(Qubit, [Edge<N>; N]), NodeId<N>>,
    free: Vec<u32>,
}

#[inline]
fn shard_of<const N: usize>(var: Qubit, children: &[Edge<N>; N]) -> usize {
    let mut h = FxHasher::default();
    var.hash(&mut h);
    children.hash(&mut h);
    // Use top bits so the shard choice decouples from the map's buckets.
    (h.finish() >> 48) as usize & (NSHARDS - 1)
}

/// One diagram kind's worth of storage: the node arena, the sharded unique
/// table that enforces structural sharing, per-shard free lists of
/// reclaimed slots, and the traversal scratch pool (see the module docs for
/// the concurrency model).
#[derive(Debug)]
pub(crate) struct NodeStore<const N: usize> {
    /// Local node arena; global id = `base_len + local slot`.
    nodes: SlotVec<Node<N>>,
    shards: Box<[RwLock<Shard<N>>]>,
    /// Total entries across all shard free lists (lock-free `live_len`).
    free_count: AtomicUsize,
    /// High-water mark of [`Self::live_len`], maintained at allocation time
    /// (per-kind peak, unlike the governor's combined peak).
    peak_live: AtomicUsize,
    scratch: ScratchPool,
    /// Frozen base store this one overlays, if any.
    base: Option<Arc<NodeStore<N>>>,
    /// Id-space offset: local slot `i` is global id `base_len + i`.
    base_len: u32,
}

impl<const N: usize> NodeStore<N> {
    pub(crate) fn new() -> Self {
        Self::bare(None, 0)
    }

    fn bare(base: Option<Arc<NodeStore<N>>>, base_len: u32) -> Self {
        let inherited_peak = base.as_ref().map_or(0, |b| b.live_len());
        NodeStore {
            nodes: SlotVec::new(),
            shards: (0..NSHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            free_count: AtomicUsize::new(0),
            peak_live: AtomicUsize::new(inherited_peak),
            scratch: ScratchPool::new(),
            base,
            base_len,
        }
    }

    /// Creates an empty overlay over a frozen `base` store: base ids stay
    /// valid, base nodes stay canonical, all growth is overlay-local.
    pub(crate) fn overlay(base: Arc<NodeStore<N>>) -> Self {
        let base_len = (base.base_len as usize + base.nodes.len()) as u32;
        Self::bare(Some(base), base_len)
    }

    /// Read access to a node. Lock-free; callable from any thread sharing
    /// the store.
    ///
    /// # Panics
    ///
    /// Panics on the terminal sentinel or a foreign/freed id.
    #[inline]
    pub(crate) fn node(&self, id: NodeId<N>) -> &Node<N> {
        let raw = id.raw();
        if raw < self.base_len {
            return self.base.as_ref().expect("foreign node id").node(id);
        }
        self.nodes.get_expect((raw - self.base_len) as usize)
    }

    /// Unique-table lookup of a canonicalized node: the frozen base first
    /// (its representative is canonical for every overlay), then the local
    /// shard under a read lock.
    #[inline]
    pub(crate) fn lookup(&self, var: Qubit, children: &[Edge<N>; N]) -> Option<NodeId<N>> {
        if let Some(base) = &self.base {
            if let Some(id) = base.lookup(var, children) {
                return Some(id);
            }
        }
        self.shards[shard_of(var, children)]
            .read()
            .unwrap()
            .map
            .get(&(var, *children))
            .copied()
    }

    /// Allocates a node (reusing a free-listed slot when available) and
    /// records it in the unique table. Exclusive lane: the caller has
    /// already checked the unique table and the allocation budget.
    pub(crate) fn alloc(&mut self, mut node: Node<N>, birth: u64) -> NodeId<N> {
        node.birth = birth;
        let key = (node.var, node.children);
        let shard = self.shards[shard_of(node.var, &node.children)].get_mut().unwrap();
        let slot = match shard.free.pop() {
            Some(slot) => {
                *self.free_count.get_mut() -= 1;
                slot
            }
            None => self.nodes.claim(),
        };
        self.nodes.set(slot, node);
        let id = NodeId::from_index((self.base_len + slot) as usize);
        shard.map.insert(key, id);
        let live = self.live_len();
        let peak = self.peak_live.get_mut();
        if live > *peak {
            *peak = live;
        }
        id
    }

    /// Shared-lane interning: returns the canonical id for the node,
    /// allocating it if absent. Takes the key's shard write lock and
    /// re-checks under it, so concurrent interns of the same node collapse
    /// to one id. The caller provides the (already-stamped) birth.
    pub(crate) fn intern_shared(&self, mut node: Node<N>, birth: u64) -> NodeId<N> {
        node.birth = birth;
        let key = (node.var, node.children);
        let mut shard = self.shards[shard_of(node.var, &node.children)].write().unwrap();
        if let Some(&id) = shard.map.get(&key) {
            return id;
        }
        let slot = match shard.free.pop() {
            Some(slot) => {
                self.free_count.fetch_sub(1, Ordering::Relaxed);
                slot
            }
            None => self.nodes.claim(),
        };
        self.nodes.set(slot, node);
        let id = NodeId::from_index((self.base_len + slot) as usize);
        shard.map.insert(key, id);
        drop(shard);
        self.peak_live.fetch_max(self.live_len(), Ordering::Relaxed);
        id
    }

    /// Bumps a node's external root count (atomic; either lane).
    #[inline]
    pub(crate) fn inc_rc(&self, id: NodeId<N>) {
        self.node(id).rc.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops a node's external root count (atomic; either lane).
    ///
    /// # Panics
    ///
    /// Panics with `label` if the count is already zero.
    #[inline]
    pub(crate) fn dec_rc(&self, id: NodeId<N>, label: &'static str) {
        let prev = self.node(id).rc.fetch_sub(1, Ordering::Relaxed);
        assert!(prev > 0, "{}", label);
    }

    /// Number of id-space slots (base + local, live + free-listed) —
    /// visited-set sizing and the `*_allocated` statistics.
    #[inline]
    pub(crate) fn arena_len(&self) -> usize {
        self.base_len as usize + self.nodes.len()
    }

    /// Ids below this resolve into the frozen base (0 for standalone stores).
    #[inline]
    pub(crate) fn base_len(&self) -> u32 {
        self.base_len
    }

    /// Whether two stores overlay the *same* frozen base arena — in which
    /// case ids below `base_len` mean the same node in both.
    #[inline]
    pub(crate) fn same_base(&self, other: &NodeStore<N>) -> bool {
        match (&self.base, &other.base) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Constant-time live-slot estimate (allocated minus free-listed,
    /// including the frozen base's live slots).
    #[inline]
    pub(crate) fn live_len(&self) -> usize {
        let local = self.nodes.len() - self.free_count.load(Ordering::Relaxed);
        match &self.base {
            Some(b) => b.live_len() + local,
            None => local,
        }
    }

    /// High-water mark of [`Self::live_len`] (constant time).
    #[inline]
    pub(crate) fn peak_live(&self) -> usize {
        self.peak_live.load(Ordering::Relaxed)
    }

    /// Exact live-node count (linear scan over the arenas).
    pub(crate) fn alive_count(&self) -> usize {
        let local = self.nodes.iter_present().count();
        match &self.base {
            Some(b) => b.alive_count() + local,
            None => local,
        }
    }

    /// Checks a traversal scratch buffer out of the store's pool (see
    /// [`Traversable`](crate::Traversable)). Nested and concurrent walks
    /// each get their own buffer.
    #[inline]
    pub(crate) fn scratch(&self) -> ScratchGuard<'_> {
        self.scratch.acquire()
    }

    /// Drops every overlay-local node, returning the store to the frozen
    /// base's state (or to empty for a non-overlay store).
    pub(crate) fn clear_local(&mut self) {
        self.nodes.clear();
        for shard in self.shards.iter_mut() {
            let s = shard.get_mut().unwrap();
            s.map.clear();
            s.free.clear();
        }
        *self.free_count.get_mut() = 0;
    }

    // --------------------------------------------------------------
    // Garbage collection (exclusive lane; overlay-local only — the frozen
    // base is permanently live by construction)
    // --------------------------------------------------------------

    /// Mark phase: flags every *local* slot reachable from a node with a
    /// positive root count or from `extra_roots` (cache-held edges). The
    /// returned vector is indexed by local slot; base ids are never swept,
    /// so edges into the base terminate marking.
    pub(crate) fn mark(&self, extra_roots: impl IntoIterator<Item = NodeId<N>>) -> Vec<bool> {
        let mut mark = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = Vec::new();
        for (i, n) in self.nodes.iter_present() {
            if n.rc() > 0 {
                stack.push(i as u32);
            }
        }
        for id in extra_roots {
            if id.raw() >= self.base_len {
                stack.push(id.raw() - self.base_len);
            }
        }
        while let Some(i) = stack.pop() {
            if mark[i as usize] {
                continue;
            }
            mark[i as usize] = true;
            for c in self.nodes.get_expect(i as usize).children {
                if !c.is_terminal() && c.node.raw() >= self.base_len {
                    stack.push(c.node.raw() - self.base_len);
                }
            }
        }
        mark
    }

    /// Sweep phase: empties every unmarked live local slot onto its shard's
    /// free list. Returns `(freed, live)` over local slots.
    pub(crate) fn sweep(&mut self, mark: &[bool]) -> (usize, usize) {
        let (mut freed, mut live) = (0, 0);
        for (i, &marked) in mark.iter().enumerate() {
            let Some(n) = self.nodes.get(i) else { continue };
            if marked {
                live += 1;
                continue;
            }
            let shard = shard_of(n.var, &n.children);
            self.nodes.take(i);
            self.shards[shard].get_mut().unwrap().free.push(i as u32);
            freed += 1;
        }
        *self.free_count.get_mut() += freed;
        (freed, live)
    }

    /// Rebuilds the unique table from the surviving local nodes (the base's
    /// table is immutable and consulted separately).
    pub(crate) fn rebuild_unique(&mut self) {
        for shard in self.shards.iter_mut() {
            shard.get_mut().unwrap().map.clear();
        }
        let base_len = self.base_len;
        let Self { nodes, shards, .. } = self;
        for (i, n) in nodes.iter_present() {
            shards[shard_of(n.var, &n.children)]
                .get_mut()
                .unwrap()
                .map
                .insert((n.var, n.children), NodeId::from_index(base_len as usize + i));
        }
    }

    /// Adds the child-edge weights of every live local node to `keep` (the
    /// complex-table sweep's pin set; base nodes reference only base
    /// weights, which the overlay's complex table never sweeps).
    pub(crate) fn collect_live_weights(&self, keep: &mut FxHashSet<ComplexIdx>) {
        for (_, n) in self.nodes.iter_present() {
            for c in n.children {
                keep.insert(c.weight);
            }
        }
    }
}

impl<const N: usize> Clone for NodeStore<N> {
    fn clone(&self) -> Self {
        NodeStore {
            nodes: self.nodes.clone(),
            shards: self
                .shards
                .iter()
                .map(|s| RwLock::new(s.read().unwrap().clone()))
                .collect(),
            free_count: AtomicUsize::new(self.free_count.load(Ordering::Relaxed)),
            peak_live: AtomicUsize::new(self.peak_live.load(Ordering::Relaxed)),
            scratch: ScratchPool::new(),
            base: self.base.clone(),
            base_len: self.base_len,
        }
    }
}

/// Arity dispatch: gives the generic construction/refcount/GC code access
/// to the right [`NodeStore`] and normalization rule for its `N`.
///
/// Deliberately `pub(crate)`: the public API remains the concrete
/// `*_vec` / `*_mat` methods (thin wrappers over the generic
/// implementations), so downstream crates see the exact pre-refactor
/// surface.
pub(crate) trait HasStore<const N: usize> {
    fn store(&self) -> &NodeStore<N>;
    fn store_mut(&mut self) -> &mut NodeStore<N>;
    /// Arity-specific edge-weight normalization (vector rule is
    /// configurable, matrix rule is fixed — paper §III).
    fn normalize(
        ctable: &mut ComplexTable,
        config: &PackageConfig,
        weights: [ComplexIdx; N],
    ) -> Option<Normalized<N>>;
}

impl HasStore<2> for DdPackage {
    #[inline]
    fn store(&self) -> &NodeStore<2> {
        &self.vstore
    }

    #[inline]
    fn store_mut(&mut self) -> &mut NodeStore<2> {
        &mut self.vstore
    }

    #[inline]
    fn normalize(
        ctable: &mut ComplexTable,
        config: &PackageConfig,
        weights: [ComplexIdx; 2],
    ) -> Option<Normalized<2>> {
        normalize_vector(ctable, weights, config.vector_normalization)
    }
}

impl HasStore<4> for DdPackage {
    #[inline]
    fn store(&self) -> &NodeStore<4> {
        &self.mstore
    }

    #[inline]
    fn store_mut(&mut self) -> &mut NodeStore<4> {
        &mut self.mstore
    }

    #[inline]
    fn normalize(
        ctable: &mut ComplexTable,
        _config: &PackageConfig,
        weights: [ComplexIdx; 4],
    ) -> Option<Normalized<4>> {
        normalize_matrix(ctable, weights)
    }
}
