//! The arity-generic node store: one arena + unique table + free list +
//! traversal scratch, instantiated at `N = 2` (vector DDs) and `N = 4`
//! (matrix DDs), so allocation, refcounting, GC mark/sweep and node
//! counting exist exactly once.

use crate::node::Node;
use crate::normalize::{normalize_matrix, normalize_vector, Normalized};
use crate::types::{Edge, NodeId, Qubit};
use qdd_complex::{ComplexIdx, ComplexTable, FxHashMap, FxHashSet, WalkScratch};
use std::cell::RefCell;

use super::{DdPackage, PackageConfig};

/// One diagram kind's worth of storage: the node arena, the unique table
/// that enforces structural sharing, the free list of reclaimed slots, and
/// the reusable traversal scratch.
#[derive(Clone, Debug)]
pub(crate) struct NodeStore<const N: usize> {
    nodes: Vec<Node<N>>,
    unique: FxHashMap<(Qubit, [Edge<N>; N]), NodeId<N>>,
    free: Vec<u32>,
    scratch: RefCell<WalkScratch>,
}

impl<const N: usize> NodeStore<N> {
    pub(crate) fn new() -> Self {
        NodeStore {
            nodes: Vec::new(),
            unique: FxHashMap::default(),
            free: Vec::new(),
            scratch: RefCell::new(WalkScratch::default()),
        }
    }

    /// Read access to a node.
    ///
    /// # Panics
    ///
    /// Panics on the terminal sentinel or a foreign/freed id.
    #[inline]
    pub(crate) fn node(&self, id: NodeId<N>) -> &Node<N> {
        let n = &self.nodes[id.index()];
        debug_assert!(!n.dead, "access to freed node");
        n
    }

    /// Unique-table lookup of a canonicalized node.
    #[inline]
    pub(crate) fn lookup(&self, var: Qubit, children: &[Edge<N>; N]) -> Option<NodeId<N>> {
        self.unique.get(&(var, *children)).copied()
    }

    /// Allocates a node (reusing a free-listed slot when available) and
    /// records it in the unique table. The caller has already checked the
    /// unique table and the allocation budget.
    pub(crate) fn alloc(&mut self, mut node: Node<N>, birth: u64) -> NodeId<N> {
        node.birth = birth;
        let key = (node.var, node.children);
        let id = if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = node;
            NodeId::from_index(slot as usize)
        } else {
            self.nodes.push(node);
            NodeId::from_index(self.nodes.len() - 1)
        };
        self.unique.insert(key, id);
        id
    }

    /// Bumps a node's external root count.
    #[inline]
    pub(crate) fn inc_rc(&mut self, id: NodeId<N>) {
        self.nodes[id.index()].rc += 1;
    }

    /// Drops a node's external root count.
    ///
    /// # Panics
    ///
    /// Panics with `label` if the count is already zero.
    #[inline]
    pub(crate) fn dec_rc(&mut self, id: NodeId<N>, label: &'static str) {
        let rc = &mut self.nodes[id.index()].rc;
        assert!(*rc > 0, "{}", label);
        *rc -= 1;
    }

    /// Number of arena slots (live + free-listed) — visited-set sizing and
    /// the `*_allocated` statistics.
    #[inline]
    pub(crate) fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Constant-time live-slot estimate (allocated minus free-listed).
    #[inline]
    pub(crate) fn live_len(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Exact live-node count (linear scan over the arena).
    pub(crate) fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.dead).count()
    }

    /// The store's reusable traversal scratch (see
    /// [`Traversable`](crate::Traversable)).
    #[inline]
    pub(crate) fn scratch(&self) -> &RefCell<WalkScratch> {
        &self.scratch
    }

    // --------------------------------------------------------------
    // Garbage collection
    // --------------------------------------------------------------

    /// Mark phase: flags every slot reachable from a node with a positive
    /// root count or from `extra_roots` (cache-held edges).
    pub(crate) fn mark(&self, extra_roots: impl IntoIterator<Item = NodeId<N>>) -> Vec<bool> {
        let mut mark = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.dead && n.rc > 0 {
                stack.push(i as u32);
            }
        }
        for id in extra_roots {
            stack.push(id.raw());
        }
        while let Some(i) = stack.pop() {
            if mark[i as usize] {
                continue;
            }
            mark[i as usize] = true;
            for c in self.nodes[i as usize].children {
                if !c.is_terminal() {
                    stack.push(c.node.raw());
                }
            }
        }
        mark
    }

    /// Sweep phase: tombstones every unmarked live slot onto the free list.
    /// Returns `(freed, live)`.
    pub(crate) fn sweep(&mut self, mark: &[bool]) -> (usize, usize) {
        let (mut freed, mut live) = (0, 0);
        for (i, n) in self.nodes.iter_mut().enumerate() {
            if n.dead {
                continue;
            }
            if mark[i] {
                live += 1;
            } else {
                n.dead = true;
                self.free.push(i as u32);
                freed += 1;
            }
        }
        (freed, live)
    }

    /// Rebuilds the unique table from the surviving nodes.
    pub(crate) fn rebuild_unique(&mut self) {
        self.unique.clear();
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.dead {
                self.unique.insert((n.var, n.children), NodeId::from_index(i));
            }
        }
    }

    /// Adds the child-edge weights of every live node to `keep` (the
    /// complex-table sweep's pin set).
    pub(crate) fn collect_live_weights(&self, keep: &mut FxHashSet<ComplexIdx>) {
        for n in self.nodes.iter().filter(|n| !n.dead) {
            for c in n.children {
                keep.insert(c.weight);
            }
        }
    }
}

/// Arity dispatch: gives the generic construction/refcount/GC code access
/// to the right [`NodeStore`] and normalization rule for its `N`.
///
/// Deliberately `pub(crate)`: the public API remains the concrete
/// `*_vec` / `*_mat` methods (thin wrappers over the generic
/// implementations), so downstream crates see the exact pre-refactor
/// surface.
pub(crate) trait HasStore<const N: usize> {
    fn store(&self) -> &NodeStore<N>;
    fn store_mut(&mut self) -> &mut NodeStore<N>;
    /// Arity-specific edge-weight normalization (vector rule is
    /// configurable, matrix rule is fixed — paper §III).
    fn normalize(
        ctable: &mut ComplexTable,
        config: &PackageConfig,
        weights: [ComplexIdx; N],
    ) -> Option<Normalized<N>>;
}

impl HasStore<2> for DdPackage {
    #[inline]
    fn store(&self) -> &NodeStore<2> {
        &self.vstore
    }

    #[inline]
    fn store_mut(&mut self) -> &mut NodeStore<2> {
        &mut self.vstore
    }

    #[inline]
    fn normalize(
        ctable: &mut ComplexTable,
        config: &PackageConfig,
        weights: [ComplexIdx; 2],
    ) -> Option<Normalized<2>> {
        normalize_vector(ctable, weights, config.vector_normalization)
    }
}

impl HasStore<4> for DdPackage {
    #[inline]
    fn store(&self) -> &NodeStore<4> {
        &self.mstore
    }

    #[inline]
    fn store_mut(&mut self) -> &mut NodeStore<4> {
        &mut self.mstore
    }

    #[inline]
    fn normalize(
        ctable: &mut ComplexTable,
        _config: &PackageConfig,
        weights: [ComplexIdx; 4],
    ) -> Option<Normalized<4>> {
        normalize_matrix(ctable, weights)
    }
}
