//! Introspection: node counting, statistics snapshots, constant-time
//! counters, and the [`Traversable`] implementations that hook the package
//! into the shared traversal layer.

use crate::compute::ComputeTableStat;
use crate::node::{MNode, VNode};
use crate::package::DdPackage;
use crate::traverse::Traversable;
use crate::types::{MatEdge, MNodeId, VecEdge, VNodeId};
use qdd_complex::ScratchGuard;

/// A snapshot of package health, for diagnostics and experiments.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct PackageStats {
    /// Live (reachable or never-collected) vector nodes.
    pub vnodes_alive: usize,
    /// Allocated vector-node slots (live + free-listed).
    pub vnodes_allocated: usize,
    /// Live matrix nodes.
    pub mnodes_alive: usize,
    /// Allocated matrix-node slots.
    pub mnodes_allocated: usize,
    /// Distinct interned complex values.
    pub complex_entries: usize,
    /// Total compute-table lookups.
    pub cache_lookups: u64,
    /// Compute-table lookups answered from cache.
    pub cache_hits: u64,
    /// Entries currently cached.
    pub cache_entries: usize,
    /// Garbage-collection runs so far.
    pub gc_runs: u64,
    /// Garbage collections triggered by resource-budget pressure (a subset
    /// of `gc_runs`).
    pub gc_pressure_runs: u64,
    /// Compute-table entries dropped by colliding inserts (the direct-mapped
    /// tables overwrite in place, so pressure shows up here rather than as
    /// whole-table flushes).
    pub compute_evictions: u64,
    /// Whole compute-table clears (after garbage collection or by explicit
    /// request).
    pub compute_clears: u64,
    /// High-water mark of [`DdPackage::live_node_estimate`].
    pub peak_live_nodes: usize,
    /// Gate-DD cache probes ([`DdPackage::gate_dd`] calls that reached the
    /// cache).
    pub gate_cache_lookups: u64,
    /// Gate-DD cache probes answered without rebuilding the operator DD.
    pub gate_cache_hits: u64,
    /// High-water mark of live *matrix* nodes (the paper's operator-DD
    /// size measure; drops when identity skip elides idle levels).
    pub mat_peak_nodes: usize,
    /// Matrix-node constructions elided by the identity-skip collapse rule
    /// (would-be `[e 0; 0 e]` nodes turned into pass-through edges).
    pub identity_nodes_skipped: u64,
}

impl Traversable<2> for DdPackage {
    #[inline]
    fn node(&self, id: VNodeId) -> &VNode {
        self.vstore.node(id)
    }

    #[inline]
    fn arena_len(&self) -> usize {
        self.vstore.arena_len()
    }

    #[inline]
    fn walk_scratch(&self) -> ScratchGuard<'_> {
        self.vstore.scratch()
    }
}

impl Traversable<4> for DdPackage {
    #[inline]
    fn node(&self, id: MNodeId) -> &MNode {
        self.mstore.node(id)
    }

    #[inline]
    fn arena_len(&self) -> usize {
        self.mstore.arena_len()
    }

    #[inline]
    fn walk_scratch(&self) -> ScratchGuard<'_> {
        self.mstore.scratch()
    }
}

impl DdPackage {
    /// The number of distinct nodes reachable from `e`, excluding the
    /// terminal (the size measure used throughout the paper, e.g. Ex. 6).
    ///
    /// Allocation-free after warm-up (epoch-stamped visited set), so drivers
    /// may call this per simulation step.
    pub fn vec_node_count(&self, e: VecEdge) -> usize {
        self.count_reachable(e)
    }

    /// The number of distinct nodes reachable from `e`, excluding the
    /// terminal.
    pub fn mat_node_count(&self, e: MatEdge) -> usize {
        self.count_reachable(e)
    }

    /// A constant-time estimate of live nodes (allocated minus free-listed
    /// slots) — the trigger metric for automatic garbage collection in
    /// long-running simulations and checks.
    #[inline]
    pub fn live_node_estimate(&self) -> usize {
        self.vstore.live_len() + self.mstore.live_len()
    }

    /// Garbage collections triggered by budget pressure so far (constant
    /// time, unlike [`Self::stats`]).
    pub fn gc_pressure_runs(&self) -> u64 {
        self.governor.gc_pressure_runs
    }

    /// High-water mark of [`Self::live_node_estimate`] (constant time).
    pub fn peak_live_nodes(&self) -> usize {
        self.governor.peak_live_nodes
    }

    /// Compute-table entries dropped by colliding inserts so far.
    pub fn compute_evictions(&self) -> u64 {
        self.caches.total_dropped()
    }

    /// Per-table compute-table statistics (name, lookups, hits, dropped
    /// entries, clears, occupancy) in reporting order.
    pub fn compute_table_stats(&self) -> [ComputeTableStat; 9] {
        self.caches.per_table()
    }

    /// Gate-DD cache probes so far (constant time).
    pub fn gate_cache_lookups(&self) -> u64 {
        self.gate_lookups
    }

    /// Gate-DD cache probes answered from cache so far (constant time).
    pub fn gate_cache_hits(&self) -> u64 {
        self.gate_hits
    }

    /// High-water mark of live matrix nodes (constant time).
    pub fn mat_peak_nodes(&self) -> usize {
        self.mstore.peak_live()
    }

    /// Matrix-node constructions elided by the identity-skip collapse rule
    /// so far (constant time). Always 0 when `identity_skip` is disabled.
    pub fn identity_nodes_skipped(&self) -> u64 {
        self.identity_collapses
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Statistics of the complex-weight interning table (constant time).
    pub fn complex_table_stats(&self) -> qdd_complex::ComplexTableStats {
        self.ctable.stats()
    }

    /// Monotone count of node creations (vector + matrix) since the package
    /// was built — the birth-stamp counter, read in constant time. Deltas of
    /// this counter attribute allocations to individual operations.
    pub fn node_births(&self) -> u64 {
        self.births.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total compute-table lookups so far (constant time).
    pub fn compute_lookups(&self) -> u64 {
        self.caches.total_lookups()
    }

    /// Compute-table lookups answered from cache so far (constant time).
    pub fn compute_hits(&self) -> u64 {
        self.caches.total_hits()
    }

    /// Distinct interned complex values (constant time).
    pub fn complex_entry_count(&self) -> usize {
        self.ctable.len()
    }

    /// Constant-time estimate of live matrix nodes (allocated minus
    /// free-listed slots in the matrix store).
    pub fn mat_live_estimate(&self) -> usize {
        self.mstore.live_len()
    }

    /// Garbage-collection runs so far (constant time).
    pub fn gc_runs(&self) -> u64 {
        self.gc_runs
    }

    /// Per-level node counts of the diagram reachable from `e`: entry `i`
    /// is the number of distinct nodes labelled with qubit variable `i`.
    /// One allocation-free preorder walk plus one `Vec` of `n` counters —
    /// cheap enough for per-op timeline capture.
    pub fn vec_level_profile(&self, e: VecEdge, num_qubits: usize) -> Vec<u32> {
        let mut levels = vec![0u32; num_qubits];
        self.visit_preorder(e, |_, node| {
            if let Some(slot) = levels.get_mut(node.var as usize) {
                *slot += 1;
            }
        });
        levels
    }

    /// Publishes the package's internal counters into the thread's telemetry
    /// registry as gauges, so a metrics snapshot taken afterwards carries
    /// node counts, per-table hit rates, gate-DD-cache stats, GC totals, and
    /// complex-table health alongside the span timings. No-op (one branch)
    /// when telemetry is disabled. Call once per reporting point — values
    /// are absolute readings, not deltas.
    pub fn publish_telemetry(&self) {
        if !qdd_telemetry::enabled() {
            return;
        }
        fn rate(hits: u64, lookups: u64) -> f64 {
            if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            }
        }
        let s = self.stats();
        qdd_telemetry::gauge_set("core.nodes.vec_alive", s.vnodes_alive as f64);
        qdd_telemetry::gauge_set("core.nodes.mat_alive", s.mnodes_alive as f64);
        qdd_telemetry::gauge_set("core.nodes.peak_live", s.peak_live_nodes as f64);
        qdd_telemetry::gauge_set("core.nodes.mat_peak", s.mat_peak_nodes as f64);
        qdd_telemetry::gauge_set("core.nodes.identity_skipped", s.identity_nodes_skipped as f64);
        qdd_telemetry::gauge_set("core.compute.lookups", s.cache_lookups as f64);
        qdd_telemetry::gauge_set("core.compute.hits", s.cache_hits as f64);
        qdd_telemetry::gauge_set("core.compute.hit_rate", rate(s.cache_hits, s.cache_lookups));
        qdd_telemetry::gauge_set("core.compute.evictions", s.compute_evictions as f64);
        qdd_telemetry::gauge_set("core.compute.clears", s.compute_clears as f64);
        qdd_telemetry::gauge_set("core.gate_cache.lookups", s.gate_cache_lookups as f64);
        qdd_telemetry::gauge_set("core.gate_cache.hits", s.gate_cache_hits as f64);
        qdd_telemetry::gauge_set(
            "core.gate_cache.hit_rate",
            rate(s.gate_cache_hits, s.gate_cache_lookups),
        );
        qdd_telemetry::gauge_set("core.gc.total_runs", s.gc_runs as f64);
        qdd_telemetry::gauge_set("core.gc.total_pressure_runs", s.gc_pressure_runs as f64);

        let ct = self.ctable.stats();
        qdd_telemetry::gauge_set("core.complex.entries", ct.entries as f64);
        qdd_telemetry::gauge_set("core.complex.lookups", ct.lookups as f64);
        qdd_telemetry::gauge_set("core.complex.hits", ct.hits as f64);
        qdd_telemetry::gauge_set("core.complex.hit_rate", rate(ct.hits, ct.lookups));
        qdd_telemetry::gauge_set("core.complex.front_hits", ct.front_hits as f64);
        qdd_telemetry::gauge_set("core.complex.reclaimed", ct.reclaimed as f64);
        qdd_telemetry::gauge_set("core.complex.approx_bytes", ct.approx_bytes as f64);

        // Static gauge names per compute table, in the reporting order of
        // `compute_table_stats` (gauge keys must be `&'static str`).
        const TABLE_KEYS: [(&str, &str, &str, &str); 9] = [
            ("add-vec", "core.table.add_vec.lookups", "core.table.add_vec.hits", "core.table.add_vec.hit_rate"),
            ("add-mat", "core.table.add_mat.lookups", "core.table.add_mat.hits", "core.table.add_mat.hit_rate"),
            ("mat-vec", "core.table.mat_vec.lookups", "core.table.mat_vec.hits", "core.table.mat_vec.hit_rate"),
            ("mat-mat", "core.table.mat_mat.lookups", "core.table.mat_mat.hits", "core.table.mat_mat.hit_rate"),
            ("kron-vec", "core.table.kron_vec.lookups", "core.table.kron_vec.hits", "core.table.kron_vec.hit_rate"),
            ("kron-mat", "core.table.kron_mat.lookups", "core.table.kron_mat.hits", "core.table.kron_mat.hit_rate"),
            ("adjoint", "core.table.adjoint.lookups", "core.table.adjoint.hits", "core.table.adjoint.hit_rate"),
            ("inner", "core.table.inner.lookups", "core.table.inner.hits", "core.table.inner.hit_rate"),
            ("prob-one", "core.table.prob_one.lookups", "core.table.prob_one.hits", "core.table.prob_one.hit_rate"),
        ];
        for (t, (name, lookups_key, hits_key, rate_key)) in
            self.compute_table_stats().iter().zip(TABLE_KEYS)
        {
            debug_assert_eq!(t.name, name, "table reporting order changed");
            qdd_telemetry::gauge_set(lookups_key, t.lookups as f64);
            qdd_telemetry::gauge_set(hits_key, t.hits as f64);
            qdd_telemetry::gauge_set(rate_key, t.hit_rate());
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> PackageStats {
        PackageStats {
            vnodes_alive: self.vstore.alive_count(),
            vnodes_allocated: self.vstore.arena_len(),
            mnodes_alive: self.mstore.alive_count(),
            mnodes_allocated: self.mstore.arena_len(),
            complex_entries: self.ctable.len(),
            cache_lookups: self.caches.total_lookups(),
            cache_hits: self.caches.total_hits(),
            cache_entries: self.caches.total_entries(),
            gc_runs: self.gc_runs,
            gc_pressure_runs: self.governor.gc_pressure_runs,
            compute_evictions: self.caches.total_dropped(),
            compute_clears: self.caches.total_clears(),
            peak_live_nodes: self.governor.peak_live_nodes,
            gate_cache_lookups: self.gate_lookups,
            gate_cache_hits: self.gate_hits,
            mat_peak_nodes: self.mstore.peak_live(),
            identity_nodes_skipped: self
                .identity_collapses
                .load(std::sync::atomic::Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::package::DdPackage;
    use crate::types::{MatEdge, VecEdge};

    #[test]
    fn node_counts_are_stable_across_repeated_calls() {
        // The shared walker bumps the visited-set epoch itself, so repeated
        // counts cannot observe stale marks.
        let mut dd = DdPackage::new();
        let e = dd.zero_state(5).unwrap();
        let cx = dd
            .gate_dd(crate::gates::X, &[crate::Control::pos(3)], 0, 4)
            .unwrap();
        for _ in 0..3 {
            assert_eq!(dd.vec_node_count(e), 5);
            assert_eq!(dd.mat_node_count(cx), 2);
        }
        assert_eq!(dd.vec_node_count(VecEdge::ZERO), 0);
        assert_eq!(dd.mat_node_count(MatEdge::ONE), 0);
    }

    #[test]
    fn back_to_back_counts_on_overlapping_dds() {
        // Regression for the visited-set reset hazard: two diagrams that
        // share structure, counted back to back. A walker that failed to
        // bump the epoch would see the first walk's marks and undercount
        // the second diagram.
        let mut dd = DdPackage::new();
        let a = dd.basis_state(4, 0).unwrap();
        let b = dd.basis_state(4, 8).unwrap();
        // `sum` shares the |000⟩ suffix chain with `a` and `b`.
        let sum = dd.add_vec(a, b);
        let (ca, cs) = (dd.vec_node_count(a), dd.vec_node_count(sum));
        for _ in 0..3 {
            assert_eq!(dd.vec_node_count(a), ca, "overlap with prior walk");
            assert_eq!(dd.vec_node_count(sum), cs, "overlap with prior walk");
            assert_eq!(dd.vec_node_count(b), 4);
        }
    }

    #[test]
    fn stats_reflect_activity() {
        let mut dd = DdPackage::new();
        let _ = dd.zero_state(4).unwrap();
        let s = dd.stats();
        assert_eq!(s.vnodes_alive, 4);
        assert!(s.complex_entries >= 2);
        assert_eq!(s.gc_runs, 0);
    }

    #[test]
    fn default_config_has_no_limits() {
        let dd = DdPackage::new();
        assert!(dd.limits().is_unlimited());
        let s = dd.stats();
        assert_eq!(s.gc_pressure_runs, 0);
        assert_eq!(s.compute_evictions, 0);
    }
}
