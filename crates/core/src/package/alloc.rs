//! Node construction: normalization, unique-table interning, and the
//! allocation-budget chokepoint — written once, generically over the
//! diagram arity, with thin concrete wrappers preserving the public
//! `*_vec` / `*_mat` API.

use crate::error::{DdError, ResourceKind};
use crate::node::Node;
use crate::normalize::{normalize_matrix_ctx, normalize_vector_ctx, Normalized, SharedCtx};
use crate::package::store::HasStore;
use crate::package::DdPackage;
use crate::types::{Edge, MatEdge, NodeId, Qubit, VecEdge};
use qdd_complex::{ComplexIdx, FrontCache};

impl DdPackage {
    /// Creates (or finds) the canonical node `var → children` and returns
    /// the normalized edge pointing at it — the single implementation
    /// behind [`Self::make_vec_node`] and [`Self::make_mat_node`].
    pub(crate) fn try_make_node_generic<const N: usize>(
        &mut self,
        var: Qubit,
        children: [Edge<N>; N],
    ) -> Result<Edge<N>, DdError>
    where
        Self: HasStore<N>,
    {
        debug_assert!(self.children_well_formed(var, &children));
        let weights = std::array::from_fn(|i| children[i].weight);
        let Some(norm) = Self::normalize(&mut self.ctable, &self.config, weights) else {
            return Ok(Edge::ZERO);
        };
        let canon = Self::canonicalize(&children, &norm);
        if let Some(through) = self.identity_collapse(&canon) {
            self.identity_collapses
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(self.scale_edge(through, norm.top));
        }
        let id = match self.store().lookup(var, &canon) {
            Some(id) => id,
            None => {
                self.check_alloc_budget()?;
                let birth = self.next_birth();
                let id = self.store_mut().alloc(Node::new(var, canon), birth);
                self.note_live_nodes();
                id
            }
        };
        Ok(Edge::new(id, norm.top))
    }

    /// The identity-skip canonicity rule (arXiv 2406.11959): a matrix node
    /// whose canonical children are `[e, 0, 0, e]` represents `I ⊗ M(e)`
    /// and is never materialized — the edge passes straight through to `e`,
    /// with the level gap meaning "identity on every skipped qubit".
    /// Returns the pass-through edge, or `None` when a real node is needed
    /// (always for vector diagrams, and under `--no-identity-skip`).
    #[inline]
    fn identity_collapse<const N: usize>(&self, canon: &[Edge<N>; N]) -> Option<Edge<N>> {
        if N != 4 || !self.config.identity_skip {
            return None;
        }
        if canon[1].is_zero() && canon[2].is_zero() && canon[0] == canon[3] {
            Some(canon[0])
        } else {
            None
        }
    }

    /// Structural invariant checked on every construction (debug builds):
    /// each child is a zero stub, or (at `var == 0`) the terminal, or a
    /// node below this level. Vector diagrams stay dense (children exactly
    /// one level down); matrix children may sit *any* number of levels
    /// down — or be non-zero terminals — with the gap meaning identity on
    /// the skipped qubits.
    fn children_well_formed<const N: usize>(&self, var: Qubit, children: &[Edge<N>; N]) -> bool
    where
        Self: HasStore<N>,
    {
        let skip = N == 4 && self.config.identity_skip;
        children.iter().all(|c| {
            if c.is_zero() || var == 0 {
                c.is_terminal()
            } else if skip {
                c.is_terminal() || self.store().node(c.node).var < var
            } else {
                !c.is_terminal() && self.store().node(c.node).var == var - 1
            }
        })
    }

    /// Rescales an edge by an interned factor, preserving the 0-stub
    /// invariant.
    #[inline]
    pub(crate) fn scale_edge<const N: usize>(&mut self, e: Edge<N>, w: ComplexIdx) -> Edge<N> {
        let weight = self.ctable.mul(e.weight, w);
        if weight.is_zero() {
            Edge::ZERO
        } else {
            Edge::new(e.node, weight)
        }
    }

    /// Whether a new node allocation fits the configured budgets.
    pub(crate) fn check_alloc_budget(&self) -> Result<(), DdError> {
        if self.budget_bypass {
            return Ok(());
        }
        if let Some(max) = self.config.limits.max_nodes {
            let live = self.live_node_estimate();
            if live >= max {
                return Err(DdError::ResourceExhausted {
                    kind: ResourceKind::Nodes,
                    limit: max,
                    used: live,
                });
            }
        }
        if let Some(max) = self.config.limits.max_complex_entries {
            // Weights are interned during normalization, before this check
            // runs, so exhaustion is detected one step late by design.
            let used = self.ctable.len();
            if used > max {
                return Err(DdError::ResourceExhausted {
                    kind: ResourceKind::ComplexEntries,
                    limit: max,
                    used,
                });
            }
        }
        Ok(())
    }

    #[inline]
    pub(crate) fn next_birth(&mut self) -> u64 {
        let b = self.births.get_mut();
        *b += 1;
        *b
    }

    /// Shared-lane birth stamp: unique and monotone across threads.
    #[inline]
    pub(crate) fn next_birth_shared(&self) -> u64 {
        self.births.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
    }

    #[inline]
    fn note_live_nodes(&mut self) {
        let live = self.live_node_estimate();
        if live > self.governor.peak_live_nodes {
            self.governor.peak_live_nodes = live;
        }
    }

    // ------------------------------------------------------------------
    // Concrete wrappers (the public API)
    // ------------------------------------------------------------------

    /// Creates (or finds) the canonical vector node `var → children` and
    /// returns the normalized edge pointing at it.
    ///
    /// This is the paper's recursive state-vector decomposition step: both
    /// children must represent the `var`-lower sub-vectors. Returns the
    /// 0-stub when both children are zero.
    ///
    /// # Panics
    ///
    /// Panics when a configured resource budget is exhausted. With the
    /// default (unlimited) [`Limits`](crate::Limits) this never happens;
    /// governed callers use [`Self::try_make_vec_node`].
    pub fn make_vec_node(&mut self, var: Qubit, children: [VecEdge; 2]) -> VecEdge {
        self.try_make_vec_node(var, children)
            .unwrap_or_else(|e| panic!("ungoverned node construction failed: {e}"))
    }

    /// Fallible form of [`Self::make_vec_node`]: node-budget chokepoint of
    /// the governor.
    ///
    /// Finding an existing node never fails; only allocating a *new* one is
    /// checked against [`Limits::max_nodes`](crate::Limits::max_nodes) and
    /// [`Limits::max_complex_entries`](crate::Limits::max_complex_entries).
    ///
    /// # Errors
    ///
    /// [`DdError::ResourceExhausted`] when a budget is spent.
    pub fn try_make_vec_node(
        &mut self,
        var: Qubit,
        children: [VecEdge; 2],
    ) -> Result<VecEdge, DdError> {
        self.try_make_node_generic(var, children)
    }

    /// Creates (or finds) the canonical matrix node `var → children`
    /// (`[U₀₀, U₀₁, U₁₀, U₁₁]`) and returns the normalized edge.
    ///
    /// # Panics
    ///
    /// Panics when a configured resource budget is exhausted (see
    /// [`Self::make_vec_node`]).
    pub fn make_mat_node(&mut self, var: Qubit, children: [MatEdge; 4]) -> MatEdge {
        self.try_make_mat_node(var, children)
            .unwrap_or_else(|e| panic!("ungoverned node construction failed: {e}"))
    }

    /// Fallible form of [`Self::make_mat_node`] (see
    /// [`Self::try_make_vec_node`]).
    ///
    /// # Errors
    ///
    /// [`DdError::ResourceExhausted`] when a budget is spent.
    pub fn try_make_mat_node(
        &mut self,
        var: Qubit,
        children: [MatEdge; 4],
    ) -> Result<MatEdge, DdError> {
        self.try_make_node_generic(var, children)
    }

    // ------------------------------------------------------------------
    // Shared construction surface (&self, striped locks)
    // ------------------------------------------------------------------

    /// Canonicalizes normalized children into the stored edge form, shared
    /// with the exclusive path's logic.
    fn canonicalize<const N: usize>(
        children: &[Edge<N>; N],
        norm: &Normalized<N>,
    ) -> [Edge<N>; N] {
        std::array::from_fn(|i| {
            Edge::new(
                if norm.weights[i].is_zero() {
                    NodeId::TERMINAL
                } else {
                    children[i].node
                },
                norm.weights[i],
            )
        })
    }

    /// Creates (or finds) a canonical vector node from `&self`, for use by
    /// many threads on one shared package. `front` is the caller's
    /// per-thread weight cache.
    ///
    /// Semantics match [`Self::make_vec_node`] with two documented
    /// differences: allocation budgets are not enforced (budget state is
    /// exclusive-lane), and when several threads race to intern values
    /// within tolerance of each other, which representative wins depends on
    /// interleaving — shared construction is canonical (same inputs on any
    /// thread yield the same edge afterwards) but not bit-reproducible
    /// across runs. Deterministic parallel simulation goes through frozen
    /// overlays instead (see [`crate::FrozenDd`]).
    pub fn make_vec_node_shared(
        &self,
        var: Qubit,
        children: [VecEdge; 2],
        front: &mut FrontCache,
    ) -> VecEdge {
        let weights = std::array::from_fn(|i| children[i].weight);
        let mut ctx = SharedCtx { table: &self.ctable, front };
        let Some(norm) =
            normalize_vector_ctx(&mut ctx, weights, self.config.vector_normalization)
        else {
            return Edge::ZERO;
        };
        let canon = Self::canonicalize(&children, &norm);
        let id = match self.vstore.lookup(var, &canon) {
            Some(id) => id,
            None => {
                let birth = self.next_birth_shared();
                self.vstore.intern_shared(Node::new(var, canon), birth)
            }
        };
        Edge::new(id, norm.top)
    }

    /// Matrix-arity form of [`Self::make_vec_node_shared`].
    pub fn make_mat_node_shared(
        &self,
        var: Qubit,
        children: [MatEdge; 4],
        front: &mut FrontCache,
    ) -> MatEdge {
        let weights = std::array::from_fn(|i| children[i].weight);
        let mut ctx = SharedCtx { table: &self.ctable, front };
        let Some(norm) = normalize_matrix_ctx(&mut ctx, weights) else {
            return Edge::ZERO;
        };
        let canon = Self::canonicalize(&children, &norm);
        if let Some(through) = self.identity_collapse(&canon) {
            self.identity_collapses
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            // Matrix normalization makes the first maximal entry exactly 1,
            // and a collapsing node has only the two equal diagonal entries,
            // so `through.weight` is 1 in practice; the general product
            // keeps the rule correct regardless.
            use crate::normalize::WeightCtx as _;
            let weight = if through.weight.is_one() {
                norm.top
            } else if norm.top.is_one() {
                through.weight
            } else {
                let v = ctx.value(through.weight) * ctx.value(norm.top);
                ctx.intern(v)
            };
            return if weight.is_zero() {
                Edge::ZERO
            } else {
                Edge::new(through.node, weight)
            };
        }
        let id = match self.mstore.lookup(var, &canon) {
            Some(id) => id,
            None => {
                let birth = self.next_birth_shared();
                self.mstore.intern_shared(Node::new(var, canon), birth)
            }
        };
        Edge::new(id, norm.top)
    }

    /// Rescales a vector edge by an interned factor.
    #[inline]
    pub(crate) fn scale_vec(&mut self, e: VecEdge, w: ComplexIdx) -> VecEdge {
        self.scale_edge(e, w)
    }

    /// Rescales a matrix edge by an interned factor.
    #[inline]
    pub(crate) fn scale_mat(&mut self, e: MatEdge, w: ComplexIdx) -> MatEdge {
        self.scale_edge(e, w)
    }
}

#[cfg(test)]
mod tests {
    use crate::error::{DdError, ResourceKind};
    use crate::limits::Limits;
    use crate::package::{DdPackage, PackageConfig};
    use std::time::Duration;

    fn limited(limits: Limits) -> DdPackage {
        DdPackage::with_config(PackageConfig {
            limits,
            ..PackageConfig::default()
        })
    }

    #[test]
    fn node_budget_rejects_oversized_state() {
        let mut dd = limited(Limits {
            max_nodes: Some(4),
            ..Limits::default()
        });
        assert!(dd.zero_state(4).is_ok(), "4 nodes fit a 4-node budget");
        // A different 8-qubit basis state needs more fresh nodes than remain.
        match dd.basis_state(8, 0b1010_1010) {
            Err(DdError::ResourceExhausted {
                kind: ResourceKind::Nodes,
                limit: 4,
                used,
            }) => {
                assert!(used >= 4);
            }
            other => panic!("expected node-budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn node_budget_allows_unique_table_hits() {
        let mut dd = limited(Limits {
            max_nodes: Some(3),
            ..Limits::default()
        });
        let a = dd.zero_state(3).unwrap();
        // Re-deriving the same state allocates nothing, so it succeeds at
        // the budget ceiling.
        let b = dd.zero_state(3).unwrap();
        assert_eq!(a, b);
        assert!(dd.zero_state(4).is_err());
    }

    #[test]
    fn deadline_unarmed_by_default_even_when_configured() {
        let mut dd = limited(Limits {
            deadline: Some(Duration::ZERO),
            ..Limits::default()
        });
        // Configuring a deadline alone must not time out setup work.
        assert!(dd.zero_state(8).is_ok());
        assert!(dd.arm_deadline());
        assert!(matches!(
            dd.check_deadline(),
            Err(DdError::DeadlineExceeded { .. })
        ));
        dd.disarm_deadline();
        assert!(dd.check_deadline().is_ok());
    }
}
