//! The decision-diagram package: arenas, unique tables, constructors, and
//! garbage collection.
//!
//! This module is a thin facade. The kernel is the arity-generic
//! [`NodeStore`](store::NodeStore) — one implementation of the unique
//! table, refcounts, birth stamps and GC mark/sweep, instantiated at
//! `N = 2` (vector DDs) and `N = 4` (matrix DDs) — plus focused submodules:
//!
//! * [`store`] — `NodeStore<N>` and the `HasStore<N>` arity dispatch;
//! * [`alloc`] — normalization + unique-table interning (`make_*_node`);
//! * [`refcount`] — external roots (`inc_ref_*` / `dec_ref_*`);
//! * [`gc`] — mark/sweep collection and the complex-table sweep;
//! * [`states`] — basis states and dense-amplitude import;
//! * [`gates`] — identity/gate-DD construction and the gate-DD cache;
//! * [`stats`] — node counting, statistics, traversal hookup.
//!
//! The public API is unchanged from the pre-split, hand-duplicated
//! implementation: concrete `*_vec` / `*_mat` methods wrap the generic
//! code, so downstream crates (and serialized files) see the exact same
//! surface and semantics.

mod alloc;
mod gates;
mod gc;
mod import;
mod refcount;
mod states;
mod stats;
mod store;

pub use self::gc::GcReport;
pub use self::stats::PackageStats;
pub use crate::normalize::VectorNormalization;

pub(crate) use self::store::HasStore;

use self::gates::GateKey;
use self::store::NodeStore;
use crate::compute::ComputeTables;
use crate::error::DdError;
use crate::limits::{Governor, Limits};
use crate::node::{MNode, VNode};
use crate::types::{MatEdge, MNodeId, Qubit, VecEdge, VNodeId};
use qdd_complex::{Complex, ComplexIdx, ComplexTable, FxHashMap, DEFAULT_TOLERANCE};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tunable parameters of a [`DdPackage`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PackageConfig {
    /// Tolerance for complex-weight interning and approximate comparisons.
    pub tolerance: f64,
    /// Enables the operation caches (compute tables). Disabling them is
    /// only useful for the ablation experiments — expect exponential
    /// slowdowns on anything non-trivial.
    pub compute_tables: bool,
    /// Validates 2×2 gate matrices for unitarity in [`DdPackage::gate_dd`].
    pub check_unitarity: bool,
    /// Normalization rule for vector nodes. Measurement and sampling
    /// require the default [`VectorNormalization::L2`]; the alternative is
    /// for the ablation experiments.
    pub vector_normalization: VectorNormalization,
    /// Resource budgets enforced by the package (all unlimited by default).
    pub limits: Limits,
    /// Identity-skipped matrix edges (arXiv 2406.11959): a matrix edge may
    /// point to a node strictly below the contextually expected level, the
    /// gap meaning "identity on every skipped qubit", and nodes whose four
    /// children form the identity pattern over one child edge are never
    /// materialized. Disabling this forces dense matrix levels — only
    /// useful for bisecting regressions to the representation
    /// (`--no-identity-skip` on the CLI).
    pub identity_skip: bool,
}

impl Default for PackageConfig {
    fn default() -> Self {
        PackageConfig {
            tolerance: DEFAULT_TOLERANCE,
            compute_tables: true,
            check_unitarity: true,
            vector_normalization: VectorNormalization::default(),
            limits: Limits::default(),
            identity_skip: true,
        }
    }
}

/// The central object owning all decision-diagram state.
///
/// A package holds the node arenas, the unique tables that enforce structural
/// sharing, the complex-weight interning table, and the operation caches.
/// All diagrams created by one package may share nodes; edges from different
/// packages must never be mixed.
///
/// See the [crate-level documentation](crate) for a worked example.
///
/// # Sharing across threads
///
/// A package is `Send + Sync`: node reads, complex-value resolution and
/// traversals work from many threads on a `&DdPackage`, and the shared
/// construction surface (`*_shared` methods) interns nodes and weights
/// behind striped locks. The deterministic way to parallelize, however, is
/// [`DdPackage::freeze`]: build a warm package once, freeze it into an
/// [`Arc<FrozenDd>`], and give every worker its own cheap
/// [`FrozenDd::overlay`] package. Workers then run the ordinary (lock-free,
/// exclusive) hot path over genuinely shared warm state — the frozen
/// arenas, complex table, gate-DD cache — and bit-identical results at any
/// thread count follow by construction (see DESIGN.md §15).
#[derive(Debug)]
pub struct DdPackage {
    /// Vector-DD store (nodes with 2 successors).
    pub(crate) vstore: NodeStore<2>,
    /// Matrix-DD store (nodes with 4 successors).
    pub(crate) mstore: NodeStore<4>,
    pub(crate) ctable: ComplexTable,
    pub(crate) caches: ComputeTables,
    pub(crate) config: PackageConfig,
    /// Built gate operators by exact identity. Survives routine GCs as a
    /// root set (bounded by `GATE_CACHE_CAP`), flushed by pressure GCs.
    gate_cache: FxHashMap<GateKey, MatEdge>,
    /// Whether `gate_cache` diverged from the frozen base's copy (overlay
    /// packages reset it per shot only when it did).
    pub(crate) gate_cache_dirty: bool,
    gate_lookups: u64,
    gate_hits: u64,
    /// How many matrix-node constructions collapsed into identity-skip
    /// pass-through edges instead of materializing a node (atomic so the
    /// shared construction surface can count without `&mut`).
    pub(crate) identity_collapses: AtomicU64,
    /// Reference counts of the *weights* of registered root edges. Node
    /// roots are counted on the nodes themselves, but a root edge's own
    /// weight lives only in the caller's copy of the edge, so the
    /// complex-table sweep needs this registry to keep it pinned.
    root_weights: FxHashMap<ComplexIdx, u32>,
    /// Monotone node-creation counter backing `Node::birth` (atomic so the
    /// shared construction surface can stamp without `&mut`).
    births: AtomicU64,
    gc_runs: u64,
    governor: Governor,
    /// The frozen package this one overlays, if any (see [`Self::freeze`]).
    base: Option<Arc<FrozenDd>>,
    /// When set, `check_alloc_budget` waves allocations through. Only the
    /// approximation rebuild raises it: pruning must be able to run *while*
    /// the allocator is exhausted (that is the whole point), transiently
    /// overshooting the budget by at most the reachable set it is about to
    /// shrink.
    pub(crate) budget_bypass: bool,
}

impl DdPackage {
    /// Creates a package with the default configuration.
    pub fn new() -> Self {
        Self::with_config(PackageConfig::default())
    }

    /// Creates a package with an explicit configuration.
    pub fn with_config(config: PackageConfig) -> Self {
        DdPackage {
            vstore: NodeStore::new(),
            mstore: NodeStore::new(),
            ctable: ComplexTable::with_tolerance(config.tolerance),
            caches: ComputeTables::bounded(config.limits.max_compute_entries),
            config,
            gate_cache: FxHashMap::default(),
            gate_cache_dirty: false,
            gate_lookups: 0,
            gate_hits: 0,
            identity_collapses: AtomicU64::new(0),
            root_weights: FxHashMap::default(),
            births: AtomicU64::new(0),
            gc_runs: 0,
            governor: Governor::default(),
            base: None,
            budget_bypass: false,
        }
    }

    // ------------------------------------------------------------------
    // Freezing and overlays
    // ------------------------------------------------------------------

    /// Consumes the package into an immutable, `Arc`-shared [`FrozenDd`].
    ///
    /// Freezing is the cheap half of the share-a-warm-package protocol: the
    /// node arenas, complex table and gate-DD cache move
    /// (no copies) behind `Arc`s, and any number of worker packages can be
    /// minted over them with [`FrozenDd::overlay`]. Compute tables and
    /// root-weight pins are dropped — they are per-worker state.
    pub fn freeze(mut self) -> Arc<FrozenDd> {
        // Caches key on node ids; they stay valid (ids are frozen), but the
        // frozen package should carry no transient per-run state.
        self.caches.clear();
        Arc::new(FrozenDd {
            vstore: Arc::new(self.vstore),
            mstore: Arc::new(self.mstore),
            ctable: Arc::new(self.ctable),
            gate_cache: self.gate_cache,
            births: self.births.load(Ordering::Relaxed),
            config: self.config,
        })
    }

    /// Drops every overlay-local node, weight, cache entry and root pin,
    /// returning this overlay package to its frozen base's exact state.
    ///
    /// This is the per-shot reset of the shared shot engine: each shot is a
    /// pure function of (frozen base, shot seed), so histograms are
    /// bit-identical at any thread count. Calling it on a non-overlay
    /// package clears everything (arenas, caches, interned values beyond
    /// the constants).
    pub fn reset_overlay(&mut self) {
        self.vstore.clear_local();
        self.mstore.clear_local();
        self.ctable.clear_local();
        self.caches.clear();
        self.root_weights.clear();
        match &self.base {
            Some(base) => {
                *self.births.get_mut() = base.births;
                // Entries added during the run reference overlay-local
                // nodes that were just cleared, so the gate cache must come
                // back from the base. It can flush at capacity and regrow
                // to any length, so it is re-cloned whenever it could
                // differ.
                if self.gate_cache_dirty {
                    self.gate_cache = base.gate_cache.clone();
                    self.gate_cache_dirty = false;
                }
            }
            None => {
                *self.births.get_mut() = 0;
                self.gate_cache = FxHashMap::default();
                self.gate_cache_dirty = false;
            }
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PackageConfig {
        &self.config
    }

    /// Whether this package is an overlay over a frozen base (see
    /// [`Self::freeze`] / [`FrozenDd::overlay`]).
    pub fn is_overlay(&self) -> bool {
        self.base.is_some()
    }

    /// The frozen base this overlay was minted from, if any.
    pub fn frozen_base(&self) -> Option<&Arc<FrozenDd>> {
        self.base.as_ref()
    }

    /// The active resource limits.
    pub fn limits(&self) -> &Limits {
        &self.config.limits
    }

    /// Replaces the active resource limits. Drivers use this to exempt
    /// mandatory setup (e.g. the initial `|0…0⟩` state, whose size is the
    /// register width, not "work") from a node budget, restoring the
    /// budget before governed operations begin. The compute-table bound is
    /// fixed at construction and is not affected.
    pub fn set_limits(&mut self, limits: Limits) {
        self.config.limits = limits;
    }

    // ------------------------------------------------------------------
    // Resource governor
    // ------------------------------------------------------------------

    /// Starts the wall-clock budget configured in
    /// [`Limits::deadline`], if any. Returns whether a deadline is now
    /// armed. Drivers call this once at the start of governed work
    /// (e.g. a simulation run); until armed, no deadline is enforced.
    pub fn arm_deadline(&mut self) -> bool {
        if let Some(budget) = self.config.limits.deadline {
            self.governor.arm(budget);
        }
        self.governor.armed()
    }

    /// Starts an explicit wall-clock budget, overriding
    /// [`Limits::deadline`] for this arming.
    pub fn arm_deadline_for(&mut self, budget: Duration) {
        self.governor.arm(budget);
    }

    /// Stops deadline enforcement (e.g. when a run completes).
    pub fn disarm_deadline(&mut self) {
        self.governor.disarm();
    }

    /// Immediate check of the armed deadline, for per-operation use by
    /// drivers. Never fails when no deadline is armed.
    pub fn check_deadline(&self) -> Result<(), DdError> {
        self.governor.check_deadline_now()
    }

    /// Per-recursion-level governor check used by the DD operations:
    /// recursion depth always, the armed deadline periodically.
    #[inline]
    pub(crate) fn governor_check(&mut self, depth: usize) -> Result<(), DdError> {
        let limits = self.config.limits;
        self.governor.check(depth, &limits)
    }

    // ------------------------------------------------------------------
    // Basic accessors
    // ------------------------------------------------------------------

    /// Interns a complex value, returning its stable handle.
    #[inline]
    pub fn intern(&mut self, v: Complex) -> ComplexIdx {
        self.ctable.lookup(v)
    }

    /// The complex value behind an interned handle.
    #[inline]
    pub fn complex_value(&self, idx: ComplexIdx) -> Complex {
        self.ctable.value(idx)
    }

    /// Read access to a vector node.
    ///
    /// # Panics
    ///
    /// Panics on the terminal sentinel or a foreign/freed id.
    #[inline]
    pub fn vnode(&self, id: VNodeId) -> &VNode {
        self.vstore.node(id)
    }

    /// Read access to a matrix node.
    ///
    /// # Panics
    ///
    /// Panics on the terminal sentinel or a foreign/freed id.
    #[inline]
    pub fn mnode(&self, id: MNodeId) -> &MNode {
        self.mstore.node(id)
    }

    /// The variable a vector edge decides on, or `None` for terminal edges.
    #[inline]
    pub fn vec_var(&self, e: VecEdge) -> Option<Qubit> {
        if e.is_terminal() {
            None
        } else {
            Some(self.vnode(e.node).var)
        }
    }

    /// The variable a matrix edge decides on, or `None` for terminal edges.
    #[inline]
    pub fn mat_var(&self, e: MatEdge) -> Option<Qubit> {
        if e.is_terminal() {
            None
        } else {
            Some(self.mnode(e.node).var)
        }
    }
}

impl Default for DdPackage {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for DdPackage {
    fn clone(&self) -> Self {
        DdPackage {
            vstore: self.vstore.clone(),
            mstore: self.mstore.clone(),
            ctable: self.ctable.clone(),
            caches: self.caches.clone(),
            config: self.config,
            gate_cache: self.gate_cache.clone(),
            gate_cache_dirty: self.gate_cache_dirty,
            gate_lookups: self.gate_lookups,
            gate_hits: self.gate_hits,
            identity_collapses: AtomicU64::new(
                self.identity_collapses.load(Ordering::Relaxed),
            ),
            root_weights: self.root_weights.clone(),
            births: AtomicU64::new(self.births.load(Ordering::Relaxed)),
            gc_runs: self.gc_runs,
            governor: self.governor.clone(),
            base: self.base.clone(),
            budget_bypass: self.budget_bypass,
        }
    }
}

/// An immutable, `Arc`-shared decision-diagram package produced by
/// [`DdPackage::freeze`]: warm node arenas, the interned complex table, and
/// the gate-DD cache, ready to back any number of
/// [`FrozenDd::overlay`] worker packages.
///
/// The frozen state is never mutated — overlays resolve ids below the
/// freeze point into these arenas lock-free and append strictly above it —
/// so sharing one `FrozenDd` across threads is data-race-free by
/// construction, and every overlay sees bit-identical warm state.
#[derive(Debug)]
pub struct FrozenDd {
    pub(crate) vstore: Arc<NodeStore<2>>,
    pub(crate) mstore: Arc<NodeStore<4>>,
    pub(crate) ctable: Arc<ComplexTable>,
    pub(crate) gate_cache: FxHashMap<GateKey, MatEdge>,
    pub(crate) births: u64,
    pub(crate) config: PackageConfig,
}

impl FrozenDd {
    /// Mints a worker package over this frozen base.
    ///
    /// The overlay shares the frozen arenas, complex table and operator
    /// caches (ids and handles stay valid and canonical), starts its birth
    /// counter at the freeze point, and appends all new state locally —
    /// [`DdPackage::reset_overlay`] discards exactly that local state.
    /// Overlay construction is O(cached operators), not O(frozen nodes).
    pub fn overlay(self: &Arc<Self>) -> DdPackage {
        DdPackage {
            vstore: NodeStore::overlay(self.vstore.clone()),
            mstore: NodeStore::overlay(self.mstore.clone()),
            ctable: ComplexTable::overlay(self.ctable.clone()),
            caches: ComputeTables::bounded(self.config.limits.max_compute_entries),
            config: self.config,
            gate_cache: self.gate_cache.clone(),
            gate_cache_dirty: false,
            gate_lookups: 0,
            gate_hits: 0,
            identity_collapses: AtomicU64::new(0),
            root_weights: FxHashMap::default(),
            births: AtomicU64::new(self.births),
            gc_runs: 0,
            governor: Governor::default(),
            base: Some(self.clone()),
            budget_bypass: false,
        }
    }

    /// The configuration the frozen package was built with.
    pub fn config(&self) -> &PackageConfig {
        &self.config
    }
}

// The whole point of the concurrent engine: a package (and its frozen form)
// can be shared across threads. Compile-time proof, not a test.
#[allow(dead_code)]
fn assert_send_sync() {
    fn ok<T: Send + Sync>() {}
    ok::<DdPackage>();
    ok::<FrozenDd>();
}

#[cfg(test)]
mod freeze_tests {
    use super::*;
    use crate::gates::{self, Control};

    fn bell(dd: &mut DdPackage) -> VecEdge {
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
        dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap()
    }

    #[test]
    fn overlay_reuses_frozen_nodes_and_weights() {
        let mut warm = DdPackage::new();
        let frozen_bell = bell(&mut warm);
        let frozen_nodes = warm.stats().vnodes_alive;
        let base = warm.freeze();
        let mut over = base.overlay();
        // Rebuilding the same state in the overlay finds the frozen nodes:
        // nothing is allocated locally.
        let again = bell(&mut over);
        assert_eq!(again, frozen_bell, "canonical across the freeze boundary");
        assert_eq!(over.stats().vnodes_alive, frozen_nodes);
        // The frozen gate cache answers without a rebuild.
        let hits_before = over.stats().gate_cache_hits;
        let _ = over.gate_dd(gates::H, &[], 1, 2).unwrap();
        assert_eq!(over.stats().gate_cache_hits, hits_before + 1);
    }

    #[test]
    fn reset_overlay_is_bit_reproducible() {
        let mut warm = DdPackage::new();
        let _ = bell(&mut warm);
        let base = warm.freeze();
        let mut over = base.overlay();
        // A run that allocates local nodes on top of the frozen base.
        let run = |dd: &mut DdPackage| {
            let s = bell(dd);
            let s = dd.apply_gate(s, gates::t(), &[], 0).unwrap();
            dd.apply_gate(s, gates::ry(0.3), &[], 1).unwrap()
        };
        let first = run(&mut over);
        let first_dense = over.to_dense_vector(first, 2);
        let local_nodes = over.stats().vnodes_allocated;
        over.reset_overlay();
        let second = run(&mut over);
        // Same edge ids, same amplitudes, same allocation pattern: a reset
        // overlay replays a run bit-identically.
        assert_eq!(first, second);
        assert_eq!(over.to_dense_vector(second, 2), first_dense);
        assert_eq!(over.stats().vnodes_allocated, local_nodes);
    }

    #[test]
    fn overlays_share_one_base_across_threads() {
        let mut warm = DdPackage::new();
        let _ = bell(&mut warm);
        let base = warm.freeze();
        let amps: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let base = base.clone();
                    s.spawn(move || {
                        let mut dd = base.overlay();
                        let e = bell(&mut dd);
                        dd.to_dense_vector(e, 2)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for a in &amps[1..] {
            assert_eq!(a, &amps[0], "bit-identical across worker overlays");
        }
    }

    #[test]
    fn overlay_gc_keeps_base_intact() {
        let mut warm = DdPackage::new();
        let frozen_bell = bell(&mut warm);
        let base = warm.freeze();
        let mut over = base.overlay();
        let b = bell(&mut over);
        let kept = over.apply_gate(b, gates::t(), &[], 0).unwrap();
        over.inc_ref_vec(kept);
        let _garbage = over.basis_state(2, 1).unwrap();
        let report = over.garbage_collect();
        assert!(report.freed_vnodes > 0, "local garbage is reclaimed");
        // Frozen nodes are never swept; both frozen and kept state resolve.
        assert_eq!(over.vec_node_count(frozen_bell), 3);
        assert!((over.vec_norm(kept) - 1.0).abs() < 1e-10);
        over.dec_ref_vec(kept);
    }
}
