//! The decision-diagram package: arenas, unique tables, constructors, and
//! garbage collection.
//!
//! This module is a thin facade. The kernel is the arity-generic
//! [`NodeStore`](store::NodeStore) — one implementation of the unique
//! table, refcounts, birth stamps and GC mark/sweep, instantiated at
//! `N = 2` (vector DDs) and `N = 4` (matrix DDs) — plus focused submodules:
//!
//! * [`store`] — `NodeStore<N>` and the `HasStore<N>` arity dispatch;
//! * [`alloc`] — normalization + unique-table interning (`make_*_node`);
//! * [`refcount`] — external roots (`inc_ref_*` / `dec_ref_*`);
//! * [`gc`] — mark/sweep collection and the complex-table sweep;
//! * [`states`] — basis states and dense-amplitude import;
//! * [`gates`] — identity/gate-DD construction and the gate-DD cache;
//! * [`stats`] — node counting, statistics, traversal hookup.
//!
//! The public API is unchanged from the pre-split, hand-duplicated
//! implementation: concrete `*_vec` / `*_mat` methods wrap the generic
//! code, so downstream crates (and serialized files) see the exact same
//! surface and semantics.

mod alloc;
mod gates;
mod gc;
mod refcount;
mod states;
mod stats;
mod store;

pub use self::gc::GcReport;
pub use self::stats::PackageStats;
pub use crate::normalize::VectorNormalization;

pub(crate) use self::store::HasStore;

use self::gates::GateKey;
use self::store::NodeStore;
use crate::compute::ComputeTables;
use crate::error::DdError;
use crate::limits::{Governor, Limits};
use crate::node::{MNode, VNode};
use crate::types::{MatEdge, MNodeId, Qubit, VecEdge, VNodeId};
use qdd_complex::{Complex, ComplexIdx, ComplexTable, FxHashMap, DEFAULT_TOLERANCE};
use std::time::Duration;

/// Tunable parameters of a [`DdPackage`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PackageConfig {
    /// Tolerance for complex-weight interning and approximate comparisons.
    pub tolerance: f64,
    /// Enables the operation caches (compute tables). Disabling them is
    /// only useful for the ablation experiments — expect exponential
    /// slowdowns on anything non-trivial.
    pub compute_tables: bool,
    /// Validates 2×2 gate matrices for unitarity in [`DdPackage::gate_dd`].
    pub check_unitarity: bool,
    /// Normalization rule for vector nodes. Measurement and sampling
    /// require the default [`VectorNormalization::L2`]; the alternative is
    /// for the ablation experiments.
    pub vector_normalization: VectorNormalization,
    /// Resource budgets enforced by the package (all unlimited by default).
    pub limits: Limits,
}

impl Default for PackageConfig {
    fn default() -> Self {
        PackageConfig {
            tolerance: DEFAULT_TOLERANCE,
            compute_tables: true,
            check_unitarity: true,
            vector_normalization: VectorNormalization::default(),
            limits: Limits::default(),
        }
    }
}

/// The central object owning all decision-diagram state.
///
/// A package holds the node arenas, the unique tables that enforce structural
/// sharing, the complex-weight interning table, and the operation caches.
/// All diagrams created by one package may share nodes; edges from different
/// packages must never be mixed.
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Clone, Debug)]
pub struct DdPackage {
    /// Vector-DD store (nodes with 2 successors).
    pub(crate) vstore: NodeStore<2>,
    /// Matrix-DD store (nodes with 4 successors).
    pub(crate) mstore: NodeStore<4>,
    pub(crate) ctable: ComplexTable,
    pub(crate) caches: ComputeTables,
    pub(crate) config: PackageConfig,
    /// `id_cache[k]` spans variables `0..k`; rebuilt lazily. Survives
    /// routine GCs as a root set, flushed by pressure GCs.
    id_cache: Vec<MatEdge>,
    /// Built gate operators by exact identity. Survives routine GCs as a
    /// root set (bounded by `GATE_CACHE_CAP`), flushed by pressure GCs.
    gate_cache: FxHashMap<GateKey, MatEdge>,
    gate_lookups: u64,
    gate_hits: u64,
    /// Reference counts of the *weights* of registered root edges. Node
    /// roots are counted on the nodes themselves, but a root edge's own
    /// weight lives only in the caller's copy of the edge, so the
    /// complex-table sweep needs this registry to keep it pinned.
    root_weights: FxHashMap<ComplexIdx, u32>,
    /// Monotone node-creation counter backing `Node::birth`.
    births: u64,
    gc_runs: u64,
    governor: Governor,
    /// When set, `check_alloc_budget` waves allocations through. Only the
    /// approximation rebuild raises it: pruning must be able to run *while*
    /// the allocator is exhausted (that is the whole point), transiently
    /// overshooting the budget by at most the reachable set it is about to
    /// shrink.
    pub(crate) budget_bypass: bool,
}

impl DdPackage {
    /// Creates a package with the default configuration.
    pub fn new() -> Self {
        Self::with_config(PackageConfig::default())
    }

    /// Creates a package with an explicit configuration.
    pub fn with_config(config: PackageConfig) -> Self {
        DdPackage {
            vstore: NodeStore::new(),
            mstore: NodeStore::new(),
            ctable: ComplexTable::with_tolerance(config.tolerance),
            caches: ComputeTables::bounded(config.limits.max_compute_entries),
            config,
            id_cache: vec![MatEdge::ONE],
            gate_cache: FxHashMap::default(),
            gate_lookups: 0,
            gate_hits: 0,
            root_weights: FxHashMap::default(),
            births: 0,
            gc_runs: 0,
            governor: Governor::default(),
            budget_bypass: false,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PackageConfig {
        &self.config
    }

    /// The active resource limits.
    pub fn limits(&self) -> &Limits {
        &self.config.limits
    }

    // ------------------------------------------------------------------
    // Resource governor
    // ------------------------------------------------------------------

    /// Starts the wall-clock budget configured in
    /// [`Limits::deadline`], if any. Returns whether a deadline is now
    /// armed. Drivers call this once at the start of governed work
    /// (e.g. a simulation run); until armed, no deadline is enforced.
    pub fn arm_deadline(&mut self) -> bool {
        if let Some(budget) = self.config.limits.deadline {
            self.governor.arm(budget);
        }
        self.governor.armed()
    }

    /// Starts an explicit wall-clock budget, overriding
    /// [`Limits::deadline`] for this arming.
    pub fn arm_deadline_for(&mut self, budget: Duration) {
        self.governor.arm(budget);
    }

    /// Stops deadline enforcement (e.g. when a run completes).
    pub fn disarm_deadline(&mut self) {
        self.governor.disarm();
    }

    /// Immediate check of the armed deadline, for per-operation use by
    /// drivers. Never fails when no deadline is armed.
    pub fn check_deadline(&self) -> Result<(), DdError> {
        self.governor.check_deadline_now()
    }

    /// Per-recursion-level governor check used by the DD operations:
    /// recursion depth always, the armed deadline periodically.
    #[inline]
    pub(crate) fn governor_check(&mut self, depth: usize) -> Result<(), DdError> {
        let limits = self.config.limits;
        self.governor.check(depth, &limits)
    }

    // ------------------------------------------------------------------
    // Basic accessors
    // ------------------------------------------------------------------

    /// Interns a complex value, returning its stable handle.
    #[inline]
    pub fn intern(&mut self, v: Complex) -> ComplexIdx {
        self.ctable.lookup(v)
    }

    /// The complex value behind an interned handle.
    #[inline]
    pub fn complex_value(&self, idx: ComplexIdx) -> Complex {
        self.ctable.value(idx)
    }

    /// Read access to a vector node.
    ///
    /// # Panics
    ///
    /// Panics on the terminal sentinel or a foreign/freed id.
    #[inline]
    pub fn vnode(&self, id: VNodeId) -> &VNode {
        self.vstore.node(id)
    }

    /// Read access to a matrix node.
    ///
    /// # Panics
    ///
    /// Panics on the terminal sentinel or a foreign/freed id.
    #[inline]
    pub fn mnode(&self, id: MNodeId) -> &MNode {
        self.mstore.node(id)
    }

    /// The variable a vector edge decides on, or `None` for terminal edges.
    #[inline]
    pub fn vec_var(&self, e: VecEdge) -> Option<Qubit> {
        if e.is_terminal() {
            None
        } else {
            Some(self.vnode(e.node).var)
        }
    }

    /// The variable a matrix edge decides on, or `None` for terminal edges.
    #[inline]
    pub fn mat_var(&self, e: MatEdge) -> Option<Qubit> {
        if e.is_terminal() {
            None
        } else {
            Some(self.mnode(e.node).var)
        }
    }
}

impl Default for DdPackage {
    fn default() -> Self {
        Self::new()
    }
}
