//! Operator constructors: identity chains, (multi-)controlled gate DDs and
//! the gate-DD cache, and dense-matrix import.

use crate::error::DdError;
use crate::gates::{self, Control, GateMatrix, Polarity};
use crate::package::DdPackage;
use crate::types::{MatEdge, Qubit};
use crate::MAX_QUBITS;
use qdd_complex::Complex;

/// Exact identity of a constructed gate operator, used as the gate-DD cache
/// key: the matrix entries by bit pattern (no tolerance — a near-miss just
/// misses the cache), the control set in canonical order, and the placement.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct GateKey {
    /// `(re, im)` bit patterns of `[u₀₀, u₀₁, u₁₀, u₁₁]`.
    u_bits: [(u64, u64); 4],
    /// Controls sorted by qubit (callers pass them in arbitrary order).
    controls: Vec<Control>,
    target: u8,
    n: u8,
}

impl GateKey {
    fn new(u: &GateMatrix, controls: &[Control], target: usize, n: usize) -> Self {
        let mut sorted: Vec<Control> = controls.to_vec();
        sorted.sort_unstable();
        let mut u_bits = [(0u64, 0u64); 4];
        for (b, slot) in u_bits.iter_mut().enumerate() {
            let v = u[b >> 1][b & 1];
            *slot = (v.re.to_bits(), v.im.to_bits());
        }
        GateKey {
            u_bits,
            controls: sorted,
            target: target as u8,
            n: n as u8,
        }
    }
}

/// Entry bound of the gate-DD cache; reaching it flushes the map (circuits
/// rarely use more than a few hundred distinct gate placements, so a flush
/// here signals parameterized-gate churn, not working-set pressure).
const GATE_CACHE_CAP: usize = 1 << 12;

impl DdPackage {
    /// The identity operator on `n` qubits. Under identity skip (the
    /// default) this is the terminal unit edge — identity levels are never
    /// materialized, so the diagram has zero nodes regardless of `n`. With
    /// skip disabled it is the classic chain of one shared node per level.
    ///
    /// # Errors
    ///
    /// [`DdError::QubitCountOutOfRange`] if `n` is invalid.
    pub fn identity(&mut self, n: usize) -> Result<MatEdge, DdError> {
        Self::check_qubits(n)?;
        self.id_edge(n)
    }

    /// Identity DD spanning variables `0..k` (`k = 0` is the scalar 1).
    ///
    /// Dense levels are only built under `--no-identity-skip`; the loop is
    /// all unique-table hits after the first call, so no cache is needed.
    pub(crate) fn id_edge(&mut self, k: usize) -> Result<MatEdge, DdError> {
        if self.config.identity_skip {
            return Ok(MatEdge::ONE);
        }
        let mut e = MatEdge::ONE;
        for var in 0..k {
            e = self.try_make_mat_node(var as Qubit, [e, MatEdge::ZERO, MatEdge::ZERO, e])?;
        }
        Ok(e)
    }

    /// Builds the `2ⁿ×2ⁿ` operator DD of a (multi-)controlled single-qubit
    /// gate: `u` on `target`, fired by `controls` (paper Fig. 2(b)/(c)).
    ///
    /// # Errors
    ///
    /// Returns [`DdError::QubitIndexOutOfRange`], [`DdError::ControlOnTarget`],
    /// [`DdError::DuplicateControl`], or [`DdError::NotUnitary`] (the latter
    /// only when [`PackageConfig::check_unitarity`](crate::PackageConfig::check_unitarity)
    /// is set) for invalid inputs.
    pub fn gate_dd(
        &mut self,
        u: GateMatrix,
        controls: &[Control],
        target: usize,
        n: usize,
    ) -> Result<MatEdge, DdError> {
        let _span = qdd_telemetry::span("core.gate_dd");
        Self::check_qubits(n)?;
        if target >= n {
            return Err(DdError::QubitIndexOutOfRange {
                qubit: target,
                num_qubits: n,
            });
        }
        let mut seen = [false; MAX_QUBITS];
        for c in controls {
            if c.qubit >= n {
                return Err(DdError::QubitIndexOutOfRange {
                    qubit: c.qubit,
                    num_qubits: n,
                });
            }
            if c.qubit == target {
                return Err(DdError::ControlOnTarget { qubit: c.qubit });
            }
            if seen[c.qubit] {
                return Err(DdError::DuplicateControl { qubit: c.qubit });
            }
            seen[c.qubit] = true;
        }
        if self.config.check_unitarity && !gates::is_unitary(&u, 1e-9) {
            return Err(DdError::NotUnitary);
        }

        // Deep circuits reuse a handful of gate placements thousands of
        // times; answering those from the gate-DD cache skips the whole
        // level-by-level rebuild below. Keys are exact bit patterns, so a
        // hit returns the identical canonical edge.
        let key = if self.config.compute_tables {
            let key = GateKey::new(&u, controls, target, n);
            self.gate_lookups += 1;
            if let Some(&e) = self.gate_cache.get(&key) {
                self.gate_hits += 1;
                return Ok(e);
            }
            Some(key)
        } else {
            None
        };

        let e = self.build_gate_dd(u, controls, target, n)?;
        if let Some(key) = key {
            if self.gate_cache.len() >= GATE_CACHE_CAP {
                self.gate_cache.clear();
            }
            self.gate_cache.insert(key, e);
            self.gate_cache_dirty = true;
        }
        Ok(e)
    }

    /// Uncached construction path of [`Self::gate_dd`] (inputs already
    /// validated).
    fn build_gate_dd(
        &mut self,
        u: GateMatrix,
        controls: &[Control],
        target: usize,
        n: usize,
    ) -> Result<MatEdge, DdError> {
        // Under identity skip the uncontrolled wrapping levels below
        // collapse in `try_make_mat_node` (and `id_edge` is the terminal
        // unit), so a k-controlled gate costs O(k) nodes regardless of the
        // register width; with skip disabled the same code builds the
        // classic dense chains.
        let pol_at = |q: usize| controls.iter().find(|c| c.qubit == q).map(|c| c.polarity);

        // Terminal 2×2 block edges [e₀₀, e₀₁, e₁₀, e₁₁].
        let mut em = [MatEdge::ZERO; 4];
        for (b, slot) in em.iter_mut().enumerate() {
            let w = self.intern(u[b >> 1][b & 1]);
            *slot = MatEdge::terminal(w);
        }

        // Levels below the target: identity extension, or control wrapping.
        for q in 0..target {
            let pol = pol_at(q);
            #[allow(clippy::needless_range_loop)] // em[b] is rebuilt in place
            for b in 0..4 {
                let (i, j) = (b >> 1, b & 1);
                em[b] = match pol {
                    None => self.try_make_mat_node(
                        q as Qubit,
                        [em[b], MatEdge::ZERO, MatEdge::ZERO, em[b]],
                    )?,
                    Some(p) => {
                        // On the non-firing branch an identity must act on
                        // the target sub-space: diagonal blocks get the
                        // identity of the processed levels, off-diagonal
                        // blocks vanish.
                        let idle = if i == j { self.id_edge(q)? } else { MatEdge::ZERO };
                        let (c00, c11) = match p {
                            Polarity::Positive => (idle, em[b]),
                            Polarity::Negative => (em[b], idle),
                        };
                        self.try_make_mat_node(
                            q as Qubit,
                            [c00, MatEdge::ZERO, MatEdge::ZERO, c11],
                        )?
                    }
                };
            }
        }

        let mut e = self.try_make_mat_node(target as Qubit, em)?;

        // Levels above the target.
        for q in target + 1..n {
            e = match pol_at(q) {
                None => {
                    self.try_make_mat_node(q as Qubit, [e, MatEdge::ZERO, MatEdge::ZERO, e])?
                }
                Some(p) => {
                    let idle = self.id_edge(q)?;
                    let (c00, c11) = match p {
                        Polarity::Positive => (idle, e),
                        Polarity::Negative => (e, idle),
                    };
                    self.try_make_mat_node(q as Qubit, [c00, MatEdge::ZERO, MatEdge::ZERO, c11])?
                }
            };
        }
        Ok(e)
    }

    /// Builds a matrix DD from a dense row-major `2ⁿ×2ⁿ` matrix by
    /// recursive quadrant splitting.
    ///
    /// Mainly useful for tests and small demonstrations.
    ///
    /// # Errors
    ///
    /// [`DdError::AmplitudesNotPowerOfTwo`] when the matrix is not square
    /// with power-of-two dimension ≥ 2.
    pub fn matrix_from_dense(&mut self, rows: &[Vec<Complex>]) -> Result<MatEdge, DdError> {
        let dim = rows.len();
        if dim < 2 || !dim.is_power_of_two() || rows.iter().any(|r| r.len() != dim) {
            return Err(DdError::AmplitudesNotPowerOfTwo { len: dim });
        }
        let n = dim.trailing_zeros() as usize;
        Self::check_qubits(n)?;
        self.mat_from_region(rows, 0, 0, dim)
    }

    fn mat_from_region(
        &mut self,
        rows: &[Vec<Complex>],
        r0: usize,
        c0: usize,
        dim: usize,
    ) -> Result<MatEdge, DdError> {
        if dim == 1 {
            let w = self.intern(rows[r0][c0]);
            return Ok(MatEdge::terminal(w));
        }
        let h = dim / 2;
        let var = (dim.trailing_zeros() - 1) as Qubit;
        let e00 = self.mat_from_region(rows, r0, c0, h)?;
        let e01 = self.mat_from_region(rows, r0, c0 + h, h)?;
        let e10 = self.mat_from_region(rows, r0 + h, c0, h)?;
        let e11 = self.mat_from_region(rows, r0 + h, c0 + h, h)?;
        self.try_make_mat_node(var, [e00, e01, e10, e11])
    }
}

#[cfg(test)]
mod tests {
    use crate::error::DdError;
    use crate::gates::{self, Control};
    use crate::package::{DdPackage, PackageConfig};
    use qdd_complex::Complex;

    #[test]
    fn identity_is_nodeless_under_skip() {
        let mut dd = DdPackage::new();
        let id = dd.identity(5).unwrap();
        // Identity levels are never materialized: the operator is the
        // terminal unit edge at every width.
        assert_eq!(dd.mat_node_count(id), 0);
        assert!(id.is_terminal());
        assert!(dd.complex_value(id.weight).is_one(1e-12));
        assert_eq!(id, dd.identity(17).unwrap());
    }

    #[test]
    fn identity_has_one_node_per_level_without_skip() {
        let mut dd = DdPackage::with_config(PackageConfig {
            identity_skip: false,
            ..PackageConfig::default()
        });
        let id = dd.identity(5).unwrap();
        assert_eq!(dd.mat_node_count(id), 5);
        assert!(dd.complex_value(id.weight).is_one(1e-12));
    }

    #[test]
    fn controlled_gate_cost_is_independent_of_register_width() {
        let mut dd = DdPackage::new();
        // CX on (control 1, target 0) embedded in ever-wider registers: the
        // skip representation keeps the same two nodes; only the dense
        // representation pays per skipped level.
        let narrow = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).unwrap();
        let wide = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 12).unwrap();
        assert_eq!(narrow, wide, "skipped levels above the control are free");
        assert_eq!(dd.mat_node_count(wide), 2);
        // A doubly-controlled gate adds exactly one node per control level.
        let ccx = dd
            .gate_dd(gates::X, &[Control::pos(4), Control::pos(9)], 0, 16)
            .unwrap();
        assert_eq!(dd.mat_node_count(ccx), 3);
    }

    #[test]
    fn hadamard_gate_dd_is_single_node() {
        let mut dd = DdPackage::new();
        let h = dd.gate_dd(gates::H, &[], 0, 1).unwrap();
        // Fig. 2(b): one node; root weight 1/√2.
        assert_eq!(dd.mat_node_count(h), 1);
        let w = dd.complex_value(h.weight);
        assert!((w.re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn cnot_gate_dd_matches_fig_2c() {
        let mut dd = DdPackage::new();
        // Control q1 (MSB), target q0 — the paper's CNOT.
        let cx = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).unwrap();
        // Fig. 2(c) draws 3 non-terminal nodes (q1 plus I and X at q0);
        // under identity skip the idle I branch is a pass-through terminal
        // edge, leaving the q1 node and the X node.
        assert_eq!(dd.mat_node_count(cx), 2);
        let root = dd.mnode(cx.node);
        assert_eq!(root.var, 1);
        assert!(root.children[1].is_zero());
        assert!(root.children[2].is_zero());
        // The non-firing branch is the skipped identity on q0.
        assert!(root.children[0].is_terminal());
        assert!(dd.complex_value(root.children[0].weight).is_one(1e-12));
    }

    #[test]
    fn cnot_gate_dd_matches_fig_2c_without_skip() {
        let mut dd = DdPackage::with_config(PackageConfig {
            identity_skip: false,
            ..PackageConfig::default()
        });
        let cx = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).unwrap();
        // The dense representation matches the figure literally: the q1
        // node plus I and X nodes at the q0 level.
        assert_eq!(dd.mat_node_count(cx), 3);
        let root = dd.mnode(cx.node);
        assert_eq!(root.var, 1);
        assert!(root.children[1].is_zero());
        assert!(root.children[2].is_zero());
    }

    #[test]
    fn gate_dd_validation() {
        let mut dd = DdPackage::new();
        assert!(matches!(
            dd.gate_dd(gates::X, &[], 2, 2),
            Err(DdError::QubitIndexOutOfRange { .. })
        ));
        assert!(matches!(
            dd.gate_dd(gates::X, &[Control::pos(0)], 0, 2),
            Err(DdError::ControlOnTarget { qubit: 0 })
        ));
        assert!(matches!(
            dd.gate_dd(gates::X, &[Control::pos(1), Control::neg(1)], 0, 3),
            Err(DdError::DuplicateControl { qubit: 1 })
        ));
        let bad = [[Complex::ONE, Complex::ONE], [Complex::ZERO, Complex::ONE]];
        assert!(matches!(dd.gate_dd(bad, &[], 0, 1), Err(DdError::NotUnitary)));
    }

    #[test]
    fn unitarity_check_can_be_disabled() {
        let mut dd = DdPackage::with_config(PackageConfig {
            check_unitarity: false,
            ..PackageConfig::default()
        });
        let not_unitary = [[Complex::ONE, Complex::ONE], [Complex::ZERO, Complex::ONE]];
        assert!(dd.gate_dd(not_unitary, &[], 0, 1).is_ok());
    }

    #[test]
    fn gate_dd_cache_answers_repeat_constructions() {
        let mut dd = DdPackage::new();
        let a = dd.gate_dd(gates::H, &[], 1, 3).unwrap();
        let b = dd.gate_dd(gates::H, &[], 1, 3).unwrap();
        assert_eq!(a, b);
        let s = dd.stats();
        assert_eq!(s.gate_cache_lookups, 2);
        assert_eq!(s.gate_cache_hits, 1);
        // A different placement is a distinct key.
        let c = dd.gate_dd(gates::H, &[], 0, 3).unwrap();
        assert_ne!(a, c);
        assert_eq!(dd.stats().gate_cache_hits, 1);
    }

    #[test]
    fn gate_dd_cache_is_control_order_insensitive() {
        let mut dd = DdPackage::new();
        let a = dd
            .gate_dd(gates::X, &[Control::pos(1), Control::neg(2)], 0, 3)
            .unwrap();
        let b = dd
            .gate_dd(gates::X, &[Control::neg(2), Control::pos(1)], 0, 3)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(dd.stats().gate_cache_hits, 1);
    }

    #[test]
    fn gate_dd_cache_disabled_with_compute_tables() {
        let mut dd = DdPackage::with_config(PackageConfig {
            compute_tables: false,
            ..PackageConfig::default()
        });
        let a = dd.gate_dd(gates::H, &[], 0, 2).unwrap();
        let b = dd.gate_dd(gates::H, &[], 0, 2).unwrap();
        assert_eq!(a, b, "unique tables still canonicalize");
        assert_eq!(dd.stats().gate_cache_lookups, 0);
    }

    #[test]
    fn matrix_from_dense_round_trips_gate() {
        let mut dd = DdPackage::new();
        let h = std::f64::consts::FRAC_1_SQRT_2;
        let rows = vec![
            vec![Complex::real(h), Complex::real(h)],
            vec![Complex::real(h), Complex::real(-h)],
        ];
        let from_dense = dd.matrix_from_dense(&rows).unwrap();
        let direct = dd.gate_dd(gates::H, &[], 0, 1).unwrap();
        assert_eq!(from_dense, direct, "canonicity: same operator, same edge");
    }

    #[test]
    fn matrix_from_dense_rejects_ragged() {
        let mut dd = DdPackage::new();
        let rows = vec![vec![Complex::ONE; 2], vec![Complex::ONE; 3]];
        assert!(dd.matrix_from_dense(&rows).is_err());
    }
}
