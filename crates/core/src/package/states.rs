//! State-vector constructors: basis states and dense-amplitude import.

use crate::error::DdError;
use crate::package::DdPackage;
use crate::types::{Qubit, VecEdge};
use crate::MAX_QUBITS;
use qdd_complex::Complex;

impl DdPackage {
    pub(crate) fn check_qubits(n: usize) -> Result<(), DdError> {
        if n == 0 || n > MAX_QUBITS {
            Err(DdError::QubitCountOutOfRange { requested: n })
        } else {
            Ok(())
        }
    }

    /// The all-zero computational basis state `|0…0⟩` on `n` qubits.
    ///
    /// # Errors
    ///
    /// [`DdError::QubitCountOutOfRange`] if `n` is zero or exceeds
    /// [`MAX_QUBITS`].
    pub fn zero_state(&mut self, n: usize) -> Result<VecEdge, DdError> {
        self.basis_state(n, 0)
    }

    /// The computational basis state `|index⟩` on `n` qubits (big-endian:
    /// bit `n-1` of `index` is the most significant qubit `q_{n-1}`).
    ///
    /// # Errors
    ///
    /// [`DdError::QubitCountOutOfRange`] if `n` is invalid, or
    /// [`DdError::QubitIndexOutOfRange`] if `index ≥ 2ⁿ`.
    pub fn basis_state(&mut self, n: usize, index: u64) -> Result<VecEdge, DdError> {
        Self::check_qubits(n)?;
        if n < 64 && index >> n != 0 {
            return Err(DdError::QubitIndexOutOfRange {
                qubit: index as usize,
                num_qubits: n,
            });
        }
        let mut e = VecEdge::ONE;
        for q in 0..n {
            let bit = if q < 64 { (index >> q) & 1 } else { 0 };
            let children = if bit == 0 {
                [e, VecEdge::ZERO]
            } else {
                [VecEdge::ZERO, e]
            };
            e = self.try_make_vec_node(q as Qubit, children)?;
        }
        Ok(e)
    }

    /// Builds a state DD from a dense amplitude vector by the paper's
    /// recursive halving decomposition (§III-A).
    ///
    /// The amplitudes are normalized; the input need not be unit-norm.
    ///
    /// # Errors
    ///
    /// [`DdError::AmplitudesNotPowerOfTwo`] for lengths that are not a
    /// power of two (or < 2), [`DdError::ZeroVector`] for an all-zero
    /// input, [`DdError::QubitCountOutOfRange`] for oversized inputs.
    pub fn state_from_amplitudes(&mut self, amps: &[Complex]) -> Result<VecEdge, DdError> {
        let len = amps.len();
        if len < 2 || !len.is_power_of_two() {
            return Err(DdError::AmplitudesNotPowerOfTwo { len });
        }
        let n = len.trailing_zeros() as usize;
        Self::check_qubits(n)?;
        let norm2: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        if norm2.sqrt() < self.config.tolerance {
            return Err(DdError::ZeroVector);
        }
        let e = self.vec_from_slice(amps)?;
        // Normalize the root weight so the state is unit-norm.
        let w = self.complex_value(e.weight) / norm2.sqrt();
        let weight = self.intern(w);
        Ok(VecEdge::new(e.node, weight))
    }

    fn vec_from_slice(&mut self, amps: &[Complex]) -> Result<VecEdge, DdError> {
        debug_assert!(amps.len().is_power_of_two());
        if amps.len() == 1 {
            let w = self.intern(amps[0]);
            return Ok(VecEdge::terminal(w));
        }
        let half = amps.len() / 2;
        let var = (amps.len().trailing_zeros() - 1) as Qubit;
        let lo = self.vec_from_slice(&amps[..half])?;
        let hi = self.vec_from_slice(&amps[half..])?;
        self.try_make_vec_node(var, [lo, hi])
    }
}

#[cfg(test)]
mod tests {
    use crate::error::DdError;
    use crate::package::DdPackage;
    use crate::MAX_QUBITS;
    use qdd_complex::Complex;

    #[test]
    fn zero_state_is_chain() {
        let mut dd = DdPackage::new();
        let e = dd.zero_state(4).unwrap();
        assert_eq!(dd.vec_node_count(e), 4);
        assert_eq!(dd.vec_var(e), Some(3));
        // Root weight is 1.
        assert!(dd.complex_value(e.weight).is_one(1e-12));
    }

    #[test]
    fn basis_state_amplitude_paths() {
        let mut dd = DdPackage::new();
        let e = dd.basis_state(3, 0b101).unwrap();
        // Walk: q2=1, q1=0, q0=1.
        let n2 = dd.vnode(e.node);
        assert!(n2.children[0].is_zero());
        let n1 = dd.vnode(n2.children[1].node);
        assert!(n1.children[1].is_zero());
        let n0 = dd.vnode(n1.children[0].node);
        assert!(n0.children[0].is_zero());
        assert!(n0.children[1].is_terminal());
    }

    #[test]
    fn basis_state_rejects_out_of_range_index() {
        let mut dd = DdPackage::new();
        assert!(matches!(
            dd.basis_state(2, 4),
            Err(DdError::QubitIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn qubit_count_bounds() {
        let mut dd = DdPackage::new();
        assert!(dd.zero_state(0).is_err());
        assert!(dd.zero_state(MAX_QUBITS + 1).is_err());
        assert!(dd.zero_state(MAX_QUBITS).is_ok());
    }

    #[test]
    fn bell_state_from_amplitudes_matches_paper_example_6() {
        let mut dd = DdPackage::new();
        let h = std::f64::consts::FRAC_1_SQRT_2;
        let amps = [
            Complex::real(h),
            Complex::ZERO,
            Complex::ZERO,
            Complex::real(h),
        ];
        let e = dd.state_from_amplitudes(&amps).unwrap();
        // Paper Ex. 6: 3 nodes (terminal not counted).
        assert_eq!(dd.vec_node_count(e), 3);
    }

    #[test]
    fn from_amplitudes_normalizes_input() {
        let mut dd = DdPackage::new();
        let amps = [Complex::real(3.0), Complex::real(4.0)];
        let e = dd.state_from_amplitudes(&amps).unwrap();
        let root_w = dd.complex_value(e.weight);
        // Norm of 5 divided out; the state is unit norm.
        assert!((root_w.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_amplitudes_rejects_bad_inputs() {
        let mut dd = DdPackage::new();
        assert!(matches!(
            dd.state_from_amplitudes(&[Complex::ONE; 3]),
            Err(DdError::AmplitudesNotPowerOfTwo { len: 3 })
        ));
        assert!(matches!(
            dd.state_from_amplitudes(&[Complex::ZERO; 4]),
            Err(DdError::ZeroVector)
        ));
        assert!(matches!(
            dd.state_from_amplitudes(&[Complex::ONE]),
            Err(DdError::AmplitudesNotPowerOfTwo { len: 1 })
        ));
    }
}
