//! Garbage collection: mark/sweep over both node stores, unique-table
//! rebuild, and the complex-table sweep.

use crate::package::DdPackage;
use crate::types::MNodeId;
use qdd_complex::{ComplexIdx, FxHashSet};

/// Report of one garbage-collection run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Vector nodes reclaimed.
    pub freed_vnodes: usize,
    /// Matrix nodes reclaimed.
    pub freed_mnodes: usize,
    /// Vector nodes surviving.
    pub live_vnodes: usize,
    /// Matrix nodes surviving.
    pub live_mnodes: usize,
    /// Interned complex values reclaimed.
    pub freed_cvalues: usize,
}

impl DdPackage {
    /// Reclaims every node not reachable from a root registered via the
    /// `inc_ref_*` methods, then sweeps the complex table of weights no
    /// live edge references. Clears all compute tables (their keys may
    /// refer to reclaimed ids); the gate-DD cache survives as an
    /// additional root (see [`Self::gc_under_pressure`] for the
    /// flush-everything variant).
    pub fn garbage_collect(&mut self) -> GcReport {
        let mut span = qdd_telemetry::span("core.gc");
        self.gc_runs += 1;

        // Mark phase. For matrices the gate-DD cache counts as roots: its
        // entries are bounded (GATE_CACHE_CAP) and keeping hot operators
        // alive across routine collections is the point of caching them.
        // Pressure GCs flush the cache first, so under a node budget it
        // costs nothing.
        let vmark = self.vstore.mark(std::iter::empty());
        let cache_roots: Vec<MNodeId> = self
            .gate_cache
            .values()
            .filter(|e| !e.is_terminal())
            .map(|e| e.node)
            .collect();
        let mmark = self.mstore.mark(cache_roots);

        // Sweep phase.
        let mut report = GcReport::default();
        (report.freed_vnodes, report.live_vnodes) = self.vstore.sweep(&vmark);
        (report.freed_mnodes, report.live_mnodes) = self.mstore.sweep(&mmark);

        // Rebuild unique tables from the survivors.
        self.vstore.rebuild_unique();
        self.mstore.rebuild_unique();

        self.caches.clear();

        // Sweep the complex table as well: each applied gate interns a
        // fresh set of amplitudes, and without reclamation the table's
        // probe index outgrows the CPU caches and every normalization
        // slows to DRAM speed. Weights on surviving nodes and registered
        // root edges stay pinned (bit-identical handles), so canonicity of
        // everything alive is untouched.
        let mut keep: FxHashSet<ComplexIdx> = self.root_weights.keys().copied().collect();
        for e in self.gate_cache.values() {
            keep.insert(e.weight);
        }
        self.vstore.collect_live_weights(&mut keep);
        self.mstore.collect_live_weights(&mut keep);
        report.freed_cvalues = self.ctable.retain_referenced(|idx| keep.contains(&idx));
        span.field("freed_vnodes", report.freed_vnodes);
        span.field("freed_mnodes", report.freed_mnodes);
        span.field("live_vnodes", report.live_vnodes);
        span.field("live_mnodes", report.live_mnodes);
        span.field("freed_cvalues", report.freed_cvalues);
        qdd_telemetry::counter_add("core.gc.runs", 1);
        qdd_telemetry::counter_add(
            "core.gc.nodes_swept",
            (report.freed_vnodes + report.freed_mnodes) as u64,
        );
        report
    }

    /// Garbage-collects in response to budget pressure. Unlike the routine
    /// [`Self::garbage_collect`], this also drops the gate-DD cache
    /// (which ordinarily survives collections as a root) — under a
    /// node budget every reclaimable node counts. Counted separately in
    /// [`PackageStats::gc_pressure_runs`](crate::PackageStats::gc_pressure_runs),
    /// so callers implementing the degradation ladder (collect, retry, then
    /// fall back or fail) leave an audit trail.
    pub fn gc_under_pressure(&mut self) -> GcReport {
        qdd_telemetry::emit("core.pressure_gc")
            .field("live_before", self.live_node_estimate() as u64);
        qdd_telemetry::counter_add("core.gc.pressure_runs", 1);
        self.governor.gc_pressure_runs += 1;
        self.gate_cache.clear();
        self.gate_cache_dirty = true;
        self.garbage_collect()
    }

    /// True when a between-operations garbage collection would pay for
    /// itself: the live-node estimate crossed
    /// [`Limits::auto_gc_threshold`](crate::Limits::auto_gc_threshold), or
    /// the complex table crossed
    /// [`Limits::complex_gc_threshold`](crate::Limits::complex_gc_threshold)
    /// (its probe index has outgrown the CPU caches). Long-running drivers
    /// call this once per applied operation.
    pub fn wants_auto_gc(&self) -> bool {
        self.live_node_estimate() > self.config.limits.auto_gc_threshold
            || self.ctable.len() >= self.config.limits.complex_gc_threshold
    }

    /// Drops all cached operation results without collecting nodes.
    pub fn clear_compute_tables(&mut self) {
        self.caches.clear();
    }
}

#[cfg(test)]
mod tests {
    use crate::gates::{self, Control};
    use crate::limits::Limits;
    use crate::package::{DdPackage, PackageConfig};

    #[test]
    fn gc_reclaims_unreferenced_nodes() {
        let mut dd = DdPackage::new();
        let keep = dd.zero_state(3).unwrap();
        let _drop = dd.basis_state(3, 5).unwrap();
        dd.inc_ref_vec(keep);
        let report = dd.garbage_collect();
        assert_eq!(report.live_vnodes, 3);
        assert!(report.freed_vnodes > 0);
        // The kept state is still intact and re-creatable slots are reused.
        assert_eq!(dd.vec_node_count(keep), 3);
        let again = dd.basis_state(3, 5).unwrap();
        assert_eq!(dd.vec_node_count(again), 3);
        dd.dec_ref_vec(keep);
    }

    #[test]
    fn gc_protects_matrix_roots() {
        let mut dd = DdPackage::new();
        // Under identity skip a CX is the smallest interesting matrix root
        // (identity(n) itself is nodeless, so it cannot dangle).
        let cx = dd.gate_dd(gates::X, &[Control::pos(2)], 0, 3).unwrap();
        dd.inc_ref_mat(cx);
        let _tmp = dd.gate_dd(gates::H, &[], 1, 3).unwrap();
        let report = dd.garbage_collect();
        // The registered root plus the cached H operator survive.
        assert!(report.live_mnodes >= 3);
        assert_eq!(dd.mat_node_count(cx), 2);
        dd.dec_ref_mat(cx);
    }

    #[test]
    fn gc_after_many_gate_dds_does_not_dangle_cached_roots() {
        let mut dd = DdPackage::new();
        // Populate the gate cache with unrooted operator DDs.
        for t in 0..4 {
            let _ = dd.gate_dd(gates::H, &[], t, 4).unwrap();
            let _ = dd
                .gate_dd(gates::X, &[Control::pos((t + 1) % 4)], t, 4)
                .unwrap();
        }
        let h_before = dd.gate_dd(gates::H, &[], 2, 4).unwrap();
        // An unrooted intermediate product is genuine garbage.
        let a = dd.gate_dd(gates::H, &[], 0, 4).unwrap();
        let b = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 4).unwrap();
        let _garbage = dd.mat_mat(a, b);
        let keep = dd.zero_state(4).unwrap();
        dd.inc_ref_vec(keep);
        let report = dd.garbage_collect();
        assert!(
            report.freed_mnodes > 0,
            "unrooted intermediates must be swept"
        );
        // Cached operators survive the collection as roots: the repeat
        // lookup hits, returns the identical edge, and its nodes are live
        // (counting them walks real, unreclaimed nodes).
        let hits_before = dd.stats().gate_cache_hits;
        let h_after = dd.gate_dd(gates::H, &[], 2, 4).unwrap();
        assert_eq!(h_before, h_after);
        assert_eq!(dd.stats().gate_cache_hits, hits_before + 1);
        let mut fresh = DdPackage::new();
        let expect = fresh.gate_dd(gates::H, &[], 2, 4).unwrap();
        assert_eq!(dd.mat_node_count(h_after), fresh.mat_node_count(expect));
        // Applying the cached operator after GC produces a valid state.
        let applied = dd.mat_vec(h_after, keep);
        assert!((dd.vec_norm(applied) - 1.0).abs() < 1e-10);
        dd.dec_ref_vec(keep);
    }

    #[test]
    fn budget_recovers_after_pressure_gc() {
        let mut dd = DdPackage::with_config(PackageConfig {
            limits: Limits {
                max_nodes: Some(8),
                ..Limits::default()
            },
            ..PackageConfig::default()
        });
        let keep = dd.zero_state(4).unwrap();
        dd.inc_ref_vec(keep);
        let _scratch = dd.basis_state(4, 5).unwrap();
        assert!(
            dd.basis_state(4, 9).is_err(),
            "budget spent on scratch states"
        );
        dd.gc_under_pressure();
        assert!(
            dd.basis_state(4, 9).is_ok(),
            "GC reclaimed the scratch nodes"
        );
        let s = dd.stats();
        assert_eq!(s.gc_pressure_runs, 1);
        assert_eq!(s.gc_runs, 1);
        assert!(s.peak_live_nodes >= 8);
        dd.dec_ref_vec(keep);
    }
}
