//! External root management: reference counts on nodes plus the pinned
//! root-edge weights the complex-table sweep needs.

use crate::package::store::HasStore;
use crate::package::DdPackage;
use crate::types::{Edge, MatEdge, VecEdge};
use qdd_complex::ComplexIdx;

impl DdPackage {
    /// One implementation of root registration for both arities: count the
    /// node, pin the edge's own weight (node roots are counted on the nodes
    /// themselves, but a root edge's weight lives only in the caller's copy
    /// of the edge).
    fn inc_ref_generic<const N: usize>(&mut self, e: Edge<N>)
    where
        Self: HasStore<N>,
    {
        if !e.is_terminal() {
            self.store_mut().inc_rc(e.node);
        }
        *self.root_weights.entry(e.weight).or_insert(0) += 1;
    }

    fn dec_ref_generic<const N: usize>(&mut self, e: Edge<N>, label: &'static str)
    where
        Self: HasStore<N>,
    {
        if !e.is_terminal() {
            self.store_mut().dec_rc(e.node, label);
        }
        self.release_root_weight(e.weight);
    }

    /// Marks a vector edge as an external root, protecting it from
    /// [`Self::garbage_collect`].
    pub fn inc_ref_vec(&mut self, e: VecEdge) {
        self.inc_ref_generic(e);
    }

    /// Releases an external root previously registered with
    /// [`Self::inc_ref_vec`].
    ///
    /// # Panics
    ///
    /// Panics if the edge's root count is already zero.
    pub fn dec_ref_vec(&mut self, e: VecEdge) {
        self.dec_ref_generic(e, "unbalanced dec_ref_vec");
    }

    /// Marks a matrix edge as an external root.
    pub fn inc_ref_mat(&mut self, e: MatEdge) {
        self.inc_ref_generic(e);
    }

    /// Releases an external matrix root.
    ///
    /// # Panics
    ///
    /// Panics if the edge's root count is already zero.
    pub fn dec_ref_mat(&mut self, e: MatEdge) {
        self.dec_ref_generic(e, "unbalanced dec_ref_mat");
    }

    /// Pins a vector node as an external root from `&self` (atomic count on
    /// the node; shared-lane use on one package from many threads).
    ///
    /// Unlike [`Self::inc_ref_vec`] this does **not** pin the edge's own
    /// weight against the complex-table sweep — the root-weight registry is
    /// exclusive-lane state. Shared refcounts protect *nodes* across a GC
    /// run by another owner of the package; callers that need the root
    /// edge's weight to survive a sweep must take the exclusive lane.
    pub fn inc_ref_vec_shared(&self, e: VecEdge) {
        if !e.is_terminal() {
            self.vstore.inc_rc(e.node);
        }
    }

    /// Releases a shared vector root (see [`Self::inc_ref_vec_shared`]).
    ///
    /// # Panics
    ///
    /// Panics if the node's root count is already zero.
    pub fn dec_ref_vec_shared(&self, e: VecEdge) {
        if !e.is_terminal() {
            self.vstore.dec_rc(e.node, "unbalanced dec_ref_vec_shared");
        }
    }

    /// Pins a matrix node as an external root from `&self` (see
    /// [`Self::inc_ref_vec_shared`] for the weight caveat).
    pub fn inc_ref_mat_shared(&self, e: MatEdge) {
        if !e.is_terminal() {
            self.mstore.inc_rc(e.node);
        }
    }

    /// Releases a shared matrix root.
    ///
    /// # Panics
    ///
    /// Panics if the node's root count is already zero.
    pub fn dec_ref_mat_shared(&self, e: MatEdge) {
        if !e.is_terminal() {
            self.mstore.dec_rc(e.node, "unbalanced dec_ref_mat_shared");
        }
    }

    fn release_root_weight(&mut self, w: ComplexIdx) {
        if let Some(rc) = self.root_weights.get_mut(&w) {
            *rc -= 1;
            if *rc == 0 {
                self.root_weights.remove(&w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::package::DdPackage;

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_dec_ref_panics() {
        let mut dd = DdPackage::new();
        let e = dd.zero_state(1).unwrap();
        dd.dec_ref_vec(e);
    }

    #[test]
    fn ref_round_trip_is_balanced() {
        let mut dd = DdPackage::new();
        let v = dd.zero_state(2).unwrap();
        let m = dd.identity(2).unwrap();
        dd.inc_ref_vec(v);
        dd.inc_ref_mat(m);
        dd.inc_ref_vec(v);
        dd.dec_ref_vec(v);
        dd.dec_ref_vec(v);
        dd.dec_ref_mat(m);
        // Fully released roots are collectable again.
        let report = dd.garbage_collect();
        assert_eq!(report.live_vnodes, 0);
    }
}
