//! Cross-package diagram import: translating an edge built in one package
//! into another.
//!
//! The parallel verification path needs this: worker threads build their
//! halves of a construction-scheme check on private overlay packages (all
//! over one frozen base), and the checker then pulls each worker's result
//! edge into its own overlay to compare them as canonical edges.
//!
//! Translation is a memoized post-order walk. Two properties make it cheap
//! in the intended setting:
//!
//! * **Shared-base fast path** — when both packages overlay the *same*
//!   frozen base arena, every id below `base_len` denotes the same node (and
//!   frozen nodes only reference frozen weight handles, which the shared
//!   complex-table base resolves identically), so the walk never descends
//!   into the base: only worker-local nodes are visited.
//! * **Value re-interning** — local weights are carried across by value
//!   through the destination's exclusive-lane intern, so tolerance collapse
//!   happens exactly as if the diagram had been built here.

use crate::package::store::HasStore;
use crate::package::DdPackage;
use crate::types::{Edge, MatEdge, NodeId, VecEdge};
use qdd_complex::{ComplexIdx, FxHashMap};

impl DdPackage {
    /// Translates `e`, built in `src`, into this package, returning the
    /// canonical local edge for the same vector diagram.
    pub fn import_vec_edge(&mut self, src: &DdPackage, e: VecEdge) -> VecEdge {
        let mut memo = FxHashMap::default();
        self.import_edge_generic(src, e, &mut memo)
    }

    /// Translates `e`, built in `src`, into this package, returning the
    /// canonical local edge for the same matrix diagram.
    pub fn import_mat_edge(&mut self, src: &DdPackage, e: MatEdge) -> MatEdge {
        let mut memo = FxHashMap::default();
        self.import_edge_generic(src, e, &mut memo)
    }

    fn import_edge_generic<const N: usize>(
        &mut self,
        src: &DdPackage,
        e: Edge<N>,
        memo: &mut FxHashMap<u32, NodeId<N>>,
    ) -> Edge<N>
    where
        Self: HasStore<N>,
    {
        if e.is_zero() {
            return Edge::ZERO;
        }
        let w = self.import_weight(src, e.weight);
        if e.is_terminal() {
            return Edge::terminal(w);
        }
        let node = self.import_node_generic(src, e.node, memo);
        // Re-interning can collapse a weight to zero under this package's
        // tolerance; keep the 0-stub invariant.
        if w.is_zero() {
            Edge::ZERO
        } else {
            Edge::new(node, w)
        }
    }

    fn import_node_generic<const N: usize>(
        &mut self,
        src: &DdPackage,
        id: NodeId<N>,
        memo: &mut FxHashMap<u32, NodeId<N>>,
    ) -> NodeId<N>
    where
        Self: HasStore<N>,
    {
        // Shared-base fast path: the node already exists here under the
        // same id.
        if self.store().same_base(src.store()) && id.raw() < self.store().base_len() {
            return id;
        }
        if let Some(&t) = memo.get(&id.raw()) {
            return t;
        }
        let src_node = src.store().node(id);
        let (var, children) = (src_node.var, src_node.children);
        let translated: [Edge<N>; N] =
            std::array::from_fn(|i| self.import_edge_generic(src, children[i], memo));
        // Children are already canonical in `src`, so re-construction here
        // is a unique-table hit whenever the sub-diagram exists locally.
        let local = self
            .try_make_node_generic(var, translated)
            .unwrap_or_else(|err| panic!("import exceeded destination budget: {err}"));
        debug_assert!(
            !local.is_zero(),
            "importing a live node cannot yield the 0-stub"
        );
        memo.insert(id.raw(), local.node);
        local.node
    }

    fn import_weight(&mut self, src: &DdPackage, w: ComplexIdx) -> ComplexIdx {
        self.ctable.lookup(src.ctable.value(w))
    }
}

#[cfg(test)]
mod tests {
    use crate::gates::{self, Control};
    use crate::package::DdPackage;

    #[test]
    fn import_between_unrelated_packages_preserves_semantics() {
        let mut a = DdPackage::new();
        let mut b = DdPackage::new();
        // Warm `b` with unrelated state so id spaces diverge.
        let _ = b.zero_state(5).unwrap();
        let z = a.zero_state(3).unwrap();
        let s = a.apply_gate(z, gates::H, &[], 2).unwrap();
        let s = a.apply_gate(s, gates::X, &[Control::pos(2)], 0).unwrap();
        let s = a.apply_gate(s, gates::t(), &[], 1).unwrap();
        let got = b.import_vec_edge(&a, s);
        assert_eq!(b.to_dense_vector(got, 3), a.to_dense_vector(s, 3));
    }

    #[test]
    fn import_over_shared_base_reuses_frozen_nodes() {
        let mut warm = DdPackage::new();
        let _ = warm.zero_state(4).unwrap();
        let h = warm.gate_dd(gates::H, &[], 3, 4).unwrap();
        let base = warm.freeze();

        // Worker overlay builds past the frozen prefix.
        let mut worker = base.overlay();
        let u = {
            let cx = worker.gate_dd(gates::X, &[Control::pos(3)], 0, 4).unwrap();
            worker.mat_mat(cx, h)
        };

        let mut checker = base.overlay();
        let local_before = checker.stats().mnodes_allocated;
        let got = checker.import_mat_edge(&worker, u);
        // The checker now holds the same canonical operator: rebuilding it
        // locally is a pure unique-table hit.
        let cx = checker.gate_dd(gates::X, &[Control::pos(3)], 0, 4).unwrap();
        let rebuilt = checker.mat_mat(cx, h);
        assert_eq!(got, rebuilt);
        assert!(checker.stats().mnodes_allocated > local_before);

        // And a frozen-only edge imports without allocating anything.
        let before = checker.stats().mnodes_allocated;
        let h2 = checker.import_mat_edge(&worker, h);
        assert_eq!(h2, h);
        assert_eq!(checker.stats().mnodes_allocated, before);
    }
}
