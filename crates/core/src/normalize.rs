//! Deterministic edge-weight normalization.
//!
//! Normalization is what turns "reduced" diagrams into **canonical** ones:
//! two functions equal up to a complex factor share the same node, with the
//! factor pushed to the incoming edge (paper §III-A and footnote 3).
//!
//! * **Vectors** use L2 normalization: outgoing weights are scaled so their
//!   squared magnitudes sum to 1, with the phase fixed by making the first
//!   non-zero weight real-positive. This makes `|wᵢ|²` a local measurement
//!   probability, enabling the single-path sampling of paper ref \[16\].
//! * **Matrices** are scaled by the first entry of maximal magnitude, which
//!   becomes exactly `1`.
//!
//! Both rules are invariant under pre-scaling of the inputs, which is the
//! canonicity requirement.

use qdd_complex::{Complex, ComplexIdx, ComplexTable, FrontCache, C_ZERO};

/// The weight-table capability normalization needs: resolve a handle and
/// intern a value. Implemented for the exclusive (`&mut ComplexTable`) hot
/// path and the shared (`&ComplexTable` + per-thread front cache) path, so
/// the normalization rules themselves exist exactly once.
pub(crate) trait WeightCtx {
    fn value(&self, idx: ComplexIdx) -> Complex;
    fn intern(&mut self, v: Complex) -> ComplexIdx;
}

/// Exclusive-lane weight context: plain mutable table access.
pub(crate) struct ExclusiveCtx<'a>(pub &'a mut ComplexTable);

impl WeightCtx for ExclusiveCtx<'_> {
    #[inline]
    fn value(&self, idx: ComplexIdx) -> Complex {
        self.0.value(idx)
    }

    #[inline]
    fn intern(&mut self, v: Complex) -> ComplexIdx {
        self.0.lookup(v)
    }
}

/// Shared-lane weight context: lock-free reads, striped interning through
/// the caller's per-thread front cache.
pub(crate) struct SharedCtx<'a> {
    pub table: &'a ComplexTable,
    pub front: &'a mut FrontCache,
}

impl WeightCtx for SharedCtx<'_> {
    #[inline]
    fn value(&self, idx: ComplexIdx) -> Complex {
        self.table.value(idx)
    }

    #[inline]
    fn intern(&mut self, v: Complex) -> ComplexIdx {
        self.table.lookup_shared(v, self.front)
    }
}

/// Which normalization rule vector nodes use.
///
/// The default [`L2`](VectorNormalization::L2) is what enables the paper's
/// single-path measurement sampling (footnote 3);
/// [`MaxMagnitude`](VectorNormalization::MaxMagnitude) is the QMDD-style
/// alternative kept for the ablation experiments — equally canonical, but
/// local weights are no longer probability amplitudes, so the measurement
/// APIs refuse to run under it.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum VectorNormalization {
    /// Outgoing weights scaled to `|w₀|² + |w₁|² = 1`, first non-zero
    /// weight real-positive.
    #[default]
    L2,
    /// Divide by the first entry of maximal magnitude (which becomes 1) —
    /// the rule matrix nodes always use.
    MaxMagnitude,
}

/// Result of normalizing a prospective node's outgoing weights.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct Normalized<const W: usize> {
    /// The factor pulled out onto the incoming edge.
    pub top: ComplexIdx,
    /// The normalized outgoing weights.
    pub weights: [ComplexIdx; W],
}

/// Normalizes the two outgoing weights of a vector node with the given
/// rule. Returns `None` when both weights are zero (the node vanishes
/// into a 0-stub).
pub(crate) fn normalize_vector(
    table: &mut ComplexTable,
    weights: [ComplexIdx; 2],
    rule: VectorNormalization,
) -> Option<Normalized<2>> {
    normalize_vector_ctx(&mut ExclusiveCtx(table), weights, rule)
}

/// Context-generic form of [`normalize_vector`] (exclusive or shared lane).
pub(crate) fn normalize_vector_ctx<C: WeightCtx>(
    ctx: &mut C,
    weights: [ComplexIdx; 2],
    rule: VectorNormalization,
) -> Option<Normalized<2>> {
    match rule {
        VectorNormalization::L2 => normalize_vector_l2(ctx, weights),
        VectorNormalization::MaxMagnitude => normalize_vector_max(ctx, weights),
    }
}

/// L2 rule (paper footnote 3): unit local norm, first non-zero weight
/// real-positive.
fn normalize_vector_l2<C: WeightCtx>(
    ctx: &mut C,
    weights: [ComplexIdx; 2],
) -> Option<Normalized<2>> {
    if weights.iter().all(|i| i.is_zero()) {
        return None;
    }
    let w = [ctx.value(weights[0]), ctx.value(weights[1])];
    let mag2: f64 = w.iter().map(|c| c.norm_sqr()).sum();
    let norm = mag2.sqrt();
    // Phase convention: first non-zero (interned-non-zero) weight becomes
    // real-positive.
    let k = weights.iter().position(|i| !i.is_zero()).expect("non-zero");
    let phase = w[k] / w[k].abs();
    let factor = phase * norm;
    let top = ctx.intern(factor);
    let mut out = [C_ZERO; 2];
    for (i, slot) in out.iter_mut().enumerate() {
        if !weights[i].is_zero() {
            *slot = ctx.intern(w[i] / factor);
        }
    }
    Some(Normalized { top, weights: out })
}

/// QMDD-style max-magnitude rule for vectors (ablation alternative).
fn normalize_vector_max<C: WeightCtx>(
    ctx: &mut C,
    weights: [ComplexIdx; 2],
) -> Option<Normalized<2>> {
    if weights.iter().all(|i| i.is_zero()) {
        return None;
    }
    let w = [ctx.value(weights[0]), ctx.value(weights[1])];
    let best = if w[1].norm_sqr() > w[0].norm_sqr() { 1 } else { 0 };
    let factor = w[best];
    let top = ctx.intern(factor);
    let mut out = [C_ZERO; 2];
    for (i, slot) in out.iter_mut().enumerate() {
        if !weights[i].is_zero() {
            *slot = if i == best {
                qdd_complex::C_ONE
            } else {
                ctx.intern(w[i] / factor)
            };
        }
    }
    Some(Normalized { top, weights: out })
}

/// Normalizes the four outgoing weights of a matrix node by the first entry
/// of maximal magnitude.
///
/// Returns `None` when all weights are zero.
pub(crate) fn normalize_matrix(
    table: &mut ComplexTable,
    weights: [ComplexIdx; 4],
) -> Option<Normalized<4>> {
    normalize_matrix_ctx(&mut ExclusiveCtx(table), weights)
}

/// Context-generic form of [`normalize_matrix`] (exclusive or shared lane).
pub(crate) fn normalize_matrix_ctx<C: WeightCtx>(
    ctx: &mut C,
    weights: [ComplexIdx; 4],
) -> Option<Normalized<4>> {
    let nonzero = weights.iter().filter(|i| !i.is_zero()).count();
    if nonzero == 0 {
        return None;
    }
    let w = [
        ctx.value(weights[0]),
        ctx.value(weights[1]),
        ctx.value(weights[2]),
        ctx.value(weights[3]),
    ];
    // First strictly-larger magnitude wins; earliest index on ties. Because
    // equal values share an interned handle, genuine ties compare exactly
    // equal and the rule is stable under uniform pre-scaling.
    let mut best = 0usize;
    let mut best_mag = w[0].norm_sqr();
    for (i, c) in w.iter().enumerate().skip(1) {
        let m = c.norm_sqr();
        if m > best_mag {
            best = i;
            best_mag = m;
        }
    }
    let factor = w[best];
    let top = ctx.intern(factor);
    let mut out = [C_ZERO; 4];
    for (i, slot) in out.iter_mut().enumerate() {
        if !weights[i].is_zero() {
            *slot = if i == best {
                qdd_complex::C_ONE
            } else {
                ctx.intern(w[i] / factor)
            };
        }
    }
    Some(Normalized { top, weights: out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_complex::{Complex, C_ONE};

    fn table() -> ComplexTable {
        ComplexTable::new()
    }

    #[test]
    fn vector_all_zero_vanishes() {
        let mut t = table();
        assert!(normalize_vector(&mut t, [C_ZERO, C_ZERO], VectorNormalization::L2).is_none());
    }

    #[test]
    fn vector_l2_property() {
        let mut t = table();
        let a = t.lookup(Complex::new(3.0, 0.0));
        let b = t.lookup(Complex::new(0.0, 4.0));
        let n = normalize_vector(&mut t, [a, b], VectorNormalization::L2).unwrap();
        let w0 = t.value(n.weights[0]);
        let w1 = t.value(n.weights[1]);
        assert!((w0.norm_sqr() + w1.norm_sqr() - 1.0).abs() < 1e-12);
        // First non-zero weight is real-positive.
        assert!(w0.im.abs() < 1e-12 && w0.re > 0.0);
        // Factor reconstructs the originals.
        let f = t.value(n.top);
        assert!((w0 * f).approx_eq(Complex::new(3.0, 0.0), 1e-12));
        assert!((w1 * f).approx_eq(Complex::new(0.0, 4.0), 1e-12));
    }

    #[test]
    fn vector_scale_invariance() {
        let mut t = table();
        let w = [Complex::new(0.3, 0.1), Complex::new(-0.2, 0.5)];
        let c = Complex::new(-1.3, 0.7);
        let idx: Vec<_> = w.iter().map(|&v| t.lookup(v)).collect();
        let scaled: Vec<_> = w.iter().map(|&v| t.lookup(v * c)).collect();
        let n1 = normalize_vector(&mut t, [idx[0], idx[1]], VectorNormalization::L2).unwrap();
        let n2 = normalize_vector(&mut t, [scaled[0], scaled[1]], VectorNormalization::L2).unwrap();
        assert_eq!(n1.weights, n2.weights, "canonicity under scaling");
    }

    #[test]
    fn vector_zero_first_child() {
        let mut t = table();
        let b = t.lookup(Complex::new(0.0, -2.0));
        let n = normalize_vector(&mut t, [C_ZERO, b], VectorNormalization::L2).unwrap();
        assert_eq!(n.weights[0], C_ZERO);
        // Sole weight normalizes to exactly 1.
        assert_eq!(n.weights[1], C_ONE);
        assert!(t.value(n.top).approx_eq(Complex::new(0.0, -2.0), 1e-12));
    }

    #[test]
    fn matrix_all_zero_vanishes() {
        let mut t = table();
        assert!(normalize_matrix(&mut t, [C_ZERO; 4]).is_none());
    }

    #[test]
    fn matrix_max_entry_becomes_one() {
        let mut t = table();
        let ws = [
            t.lookup(Complex::new(0.1, 0.0)),
            t.lookup(Complex::new(0.0, -0.9)),
            C_ZERO,
            t.lookup(Complex::new(0.5, 0.0)),
        ];
        let n = normalize_matrix(&mut t, ws).unwrap();
        assert_eq!(n.weights[1], C_ONE);
        assert!(t.value(n.top).approx_eq(Complex::new(0.0, -0.9), 1e-12));
        assert_eq!(n.weights[2], C_ZERO);
    }

    #[test]
    fn matrix_tie_breaks_to_first_index() {
        let mut t = table();
        let half = t.lookup(Complex::new(0.5, 0.0));
        let neg = t.lookup(Complex::new(-0.5, 0.0));
        let n = normalize_matrix(&mut t, [half, half, half, neg]).unwrap();
        assert_eq!(n.weights[0], C_ONE);
        let w3 = t.value(n.weights[3]);
        assert!(w3.approx_eq(Complex::new(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn matrix_scale_invariance() {
        let mut t = table();
        let w = [
            Complex::new(0.2, 0.1),
            Complex::ZERO,
            Complex::new(0.9, -0.3),
            Complex::new(-0.4, 0.0),
        ];
        let c = Complex::new(0.3, -1.1);
        let idx: Vec<_> = w
            .iter()
            .map(|&v| if v == Complex::ZERO { C_ZERO } else { t.lookup(v) })
            .collect();
        let scaled: Vec<_> = w
            .iter()
            .map(|&v| if v == Complex::ZERO { C_ZERO } else { t.lookup(v * c) })
            .collect();
        let n1 = normalize_matrix(&mut t, [idx[0], idx[1], idx[2], idx[3]]).unwrap();
        let n2 =
            normalize_matrix(&mut t, [scaled[0], scaled[1], scaled[2], scaled[3]]).unwrap();
        assert_eq!(n1.weights, n2.weights);
    }
}

#[cfg(test)]
mod max_magnitude_tests {
    use super::VectorNormalization;
    use crate::{gates, Control, DdPackage, PackageConfig};
    use qdd_complex::Complex;

    fn max_package() -> DdPackage {
        DdPackage::with_config(PackageConfig {
            vector_normalization: VectorNormalization::MaxMagnitude,
            ..PackageConfig::default()
        })
    }

    #[test]
    fn dense_round_trip_under_max_rule() {
        let mut dd = max_package();
        let amps = [
            Complex::new(0.1, 0.4),
            Complex::new(-0.3, 0.2),
            Complex::new(0.6, 0.0),
            Complex::new(0.0, -0.5),
        ];
        let e = dd.state_from_amplitudes(&amps).unwrap();
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        for (i, back) in dd.to_dense_vector(e, 2).iter().enumerate() {
            assert!(back.approx_eq(amps[i] / norm, 1e-12), "entry {i}");
        }
    }

    #[test]
    fn canonicity_under_max_rule() {
        let mut dd = max_package();
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
        let bell_a = dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap();
        let h = std::f64::consts::FRAC_1_SQRT_2;
        let bell_b = dd
            .state_from_amplitudes(&[
                Complex::real(h),
                Complex::ZERO,
                Complex::ZERO,
                Complex::real(h),
            ])
            .unwrap();
        assert_eq!(bell_a.node, bell_b.node, "same canonical node");
    }

    #[test]
    fn max_rule_puts_unit_weight_on_largest_child() {
        let mut dd = max_package();
        let amps = [Complex::real(0.6), Complex::real(0.8)];
        let e = dd.state_from_amplitudes(&amps).unwrap();
        let node = dd.vnode(e.node);
        assert!(node.children[1].weight.is_one(), "0.8 branch becomes 1");
    }

    #[test]
    #[should_panic(expected = "requires VectorNormalization::L2")]
    fn measurement_refuses_max_rule() {
        let mut dd = max_package();
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 0).unwrap();
        let _ = dd.prob_one(s, 0);
    }

    #[test]
    fn simulation_agrees_across_rules() {
        let mut l2 = DdPackage::new();
        let mut mx = max_package();
        let build = |dd: &mut DdPackage| {
            let z = dd.zero_state(3).unwrap();
            let s = dd.apply_gate(z, gates::H, &[], 2).unwrap();
            let s = dd.apply_gate(s, gates::t(), &[Control::pos(2)], 1).unwrap();
            let s = dd.apply_gate(s, gates::ry(0.9), &[], 0).unwrap();
            dd.to_dense_vector(s, 3)
        };
        let a = build(&mut l2);
        let b = build(&mut mx);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }
}
