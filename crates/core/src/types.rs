//! Core identifier and edge types.
//!
//! Vector and matrix diagrams share one generic representation: a node with
//! `N` successor edges, where `N = 2` for state vectors (qubit in `|0⟩` /
//! `|1⟩`) and `N = 4` for operators (one successor per `U_{ij}` block).
//! [`NodeId`] and [`Edge`] are generic over that arity; the const parameter
//! keeps the two diagram kinds **nominally distinct types** — a `VecEdge`
//! cannot be passed where a `MatEdge` is expected — while letting the store,
//! refcounting, GC and traversal code exist exactly once.

use qdd_complex::{ComplexIdx, C_ONE, C_ZERO};

/// A qubit / decision-diagram variable label.
///
/// Variables are ordered with the **most-significant qubit at the root**
/// (big-endian, matching the paper's `|q_{n-1} … q_0⟩` convention): a node
/// labelled `q` has children labelled `q-1` (or zero-stub / terminal edges).
pub type Qubit = u8;

/// Identifier of a decision-diagram node with `N` successors inside a
/// [`DdPackage`](crate::DdPackage) arena.
///
/// Use the [`VNodeId`] / [`MNodeId`] aliases in application code.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId<const N: usize>(u32);

impl<const N: usize> NodeId<N> {
    /// The sentinel id of the shared terminal node.
    pub const TERMINAL: NodeId<N> = NodeId(u32::MAX);

    /// Wraps a raw arena slot.
    #[inline]
    pub(crate) fn from_index(i: usize) -> Self {
        debug_assert!(i < u32::MAX as usize);
        NodeId(i as u32)
    }

    /// The raw arena slot.
    ///
    /// # Panics
    ///
    /// Panics if called on [`Self::TERMINAL`].
    #[inline]
    pub(crate) fn index(self) -> usize {
        debug_assert!(self != Self::TERMINAL, "terminal has no arena slot");
        self.0 as usize
    }

    /// Returns `true` for the terminal sentinel.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self == Self::TERMINAL
    }

    /// The raw value, for diagnostics and visualization keys.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Identifier of a vector-DD node inside a [`DdPackage`](crate::DdPackage).
pub type VNodeId = NodeId<2>;

/// Identifier of a matrix-DD node inside a [`DdPackage`](crate::DdPackage).
pub type MNodeId = NodeId<4>;

/// An edge of a decision diagram with `N`-ary nodes: a target node plus an
/// interned complex weight.
///
/// The all-zero sub-diagram ("0-stub" in the paper) is the edge with weight
/// zero pointing at the terminal; the invariant *weight = 0 ⇒ node =
/// terminal* is maintained by every constructor and operation.
///
/// Use the [`VecEdge`] / [`MatEdge`] aliases in application code.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Edge<const N: usize> {
    /// Target node (or [`NodeId::TERMINAL`]).
    pub node: NodeId<N>,
    /// Interned edge weight.
    pub weight: ComplexIdx,
}

impl<const N: usize> Edge<N> {
    /// The zero edge (0-stub): terminal with weight `0`.
    pub const ZERO: Edge<N> = Edge {
        node: NodeId::TERMINAL,
        weight: C_ZERO,
    };

    /// The unit terminal edge: the scalar `1`.
    pub const ONE: Edge<N> = Edge {
        node: NodeId::TERMINAL,
        weight: C_ONE,
    };

    /// Creates an edge.
    #[inline]
    pub fn new(node: NodeId<N>, weight: ComplexIdx) -> Self {
        Edge { node, weight }
    }

    /// A terminal edge carrying `weight`.
    #[inline]
    pub fn terminal(weight: ComplexIdx) -> Self {
        if weight.is_zero() {
            Self::ZERO
        } else {
            Edge {
                node: NodeId::TERMINAL,
                weight,
            }
        }
    }

    /// Returns `true` if this is the zero edge.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.weight.is_zero()
    }

    /// Returns `true` if the edge points at the terminal node.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.node.is_terminal()
    }
}

/// An edge of a vector decision diagram (2 successors per node).
pub type VecEdge = Edge<2>;

/// An edge of a matrix decision diagram (4 successors per node).
pub type MatEdge = Edge<4>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_sentinel_round_trip() {
        assert!(VNodeId::TERMINAL.is_terminal());
        assert!(!VNodeId::from_index(0).is_terminal());
        assert_eq!(MNodeId::from_index(7).index(), 7);
    }

    #[test]
    fn zero_edge_invariant() {
        assert!(VecEdge::ZERO.is_zero());
        assert!(VecEdge::ZERO.is_terminal());
        assert_eq!(VecEdge::terminal(C_ZERO), VecEdge::ZERO);
        assert!(!MatEdge::ONE.is_zero());
    }

    #[test]
    fn edges_are_hashable_keys() {
        let mut set = std::collections::HashSet::new();
        assert!(set.insert(VecEdge::ZERO));
        assert!(!set.insert(VecEdge::ZERO));
        assert!(set.insert(VecEdge::ONE));
    }
}
