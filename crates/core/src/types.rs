//! Core identifier and edge types.

use qdd_complex::{ComplexIdx, C_ONE, C_ZERO};

/// A qubit / decision-diagram variable label.
///
/// Variables are ordered with the **most-significant qubit at the root**
/// (big-endian, matching the paper's `|q_{n-1} … q_0⟩` convention): a node
/// labelled `q` has children labelled `q-1` (or zero-stub / terminal edges).
pub type Qubit = u8;

macro_rules! node_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// The sentinel id of the shared terminal node.
            pub const TERMINAL: $name = $name(u32::MAX);

            /// Wraps a raw arena slot.
            #[inline]
            pub(crate) fn from_index(i: usize) -> Self {
                debug_assert!(i < u32::MAX as usize);
                $name(i as u32)
            }

            /// The raw arena slot.
            ///
            /// # Panics
            ///
            /// Panics if called on [`Self::TERMINAL`].
            #[inline]
            pub(crate) fn index(self) -> usize {
                debug_assert!(self != Self::TERMINAL, "terminal has no arena slot");
                self.0 as usize
            }

            /// Returns `true` for the terminal sentinel.
            #[inline]
            pub fn is_terminal(self) -> bool {
                self == Self::TERMINAL
            }

            /// The raw value, for diagnostics and visualization keys.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }
        }
    };
}

node_id! {
    /// Identifier of a vector-DD node inside a [`DdPackage`](crate::DdPackage).
    VNodeId
}

node_id! {
    /// Identifier of a matrix-DD node inside a [`DdPackage`](crate::DdPackage).
    MNodeId
}

/// An edge of a vector decision diagram: a target node plus an interned
/// complex weight.
///
/// The all-zero sub-vector ("0-stub" in the paper) is the edge with weight
/// zero pointing at the terminal; the invariant *weight = 0 ⇒ node =
/// terminal* is maintained by every constructor and operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct VecEdge {
    /// Target node (or [`VNodeId::TERMINAL`]).
    pub node: VNodeId,
    /// Interned edge weight.
    pub weight: ComplexIdx,
}

/// An edge of a matrix decision diagram.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct MatEdge {
    /// Target node (or [`MNodeId::TERMINAL`]).
    pub node: MNodeId,
    /// Interned edge weight.
    pub weight: ComplexIdx,
}

macro_rules! edge_impl {
    ($edge:ident, $id:ident) => {
        impl $edge {
            /// The zero edge (0-stub): terminal with weight `0`.
            pub const ZERO: $edge = $edge {
                node: $id::TERMINAL,
                weight: C_ZERO,
            };

            /// The unit terminal edge: the scalar `1`.
            pub const ONE: $edge = $edge {
                node: $id::TERMINAL,
                weight: C_ONE,
            };

            /// Creates an edge.
            #[inline]
            pub fn new(node: $id, weight: ComplexIdx) -> Self {
                $edge { node, weight }
            }

            /// A terminal edge carrying `weight`.
            #[inline]
            pub fn terminal(weight: ComplexIdx) -> Self {
                if weight.is_zero() {
                    Self::ZERO
                } else {
                    $edge {
                        node: $id::TERMINAL,
                        weight,
                    }
                }
            }

            /// Returns `true` if this is the zero edge.
            #[inline]
            pub fn is_zero(self) -> bool {
                self.weight.is_zero()
            }

            /// Returns `true` if the edge points at the terminal node.
            #[inline]
            pub fn is_terminal(self) -> bool {
                self.node.is_terminal()
            }
        }
    };
}

edge_impl!(VecEdge, VNodeId);
edge_impl!(MatEdge, MNodeId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_sentinel_round_trip() {
        assert!(VNodeId::TERMINAL.is_terminal());
        assert!(!VNodeId::from_index(0).is_terminal());
        assert_eq!(MNodeId::from_index(7).index(), 7);
    }

    #[test]
    fn zero_edge_invariant() {
        assert!(VecEdge::ZERO.is_zero());
        assert!(VecEdge::ZERO.is_terminal());
        assert_eq!(VecEdge::terminal(C_ZERO), VecEdge::ZERO);
        assert!(!MatEdge::ONE.is_zero());
    }

    #[test]
    fn edges_are_hashable_keys() {
        let mut set = std::collections::HashSet::new();
        assert!(set.insert(VecEdge::ZERO));
        assert!(!set.insert(VecEdge::ZERO));
        assert!(set.insert(VecEdge::ONE));
    }
}
