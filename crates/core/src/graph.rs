//! Renderer-independent graph extraction from decision diagrams.
//!
//! Lives in the core crate (rather than the viz layer) so lower layers —
//! the simulator's timeline recorder in particular — can capture structural
//! snapshots without depending on rendering code. `qdd-viz` re-exports the
//! types for backwards compatibility.

use crate::{DdPackage, Edge, MatEdge, Traversable, VecEdge};
use qdd_complex::Complex;
use std::fmt::Write as _;

/// Whether the graph came from a state (2 successors) or an operator
/// (4 successors) diagram.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A state-vector diagram.
    Vector,
    /// An operator-matrix diagram.
    Matrix,
}

/// A drawn node.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GraphNode {
    /// Stable key (the package's raw node id).
    pub key: u32,
    /// Qubit variable (`q0` is the lowest level).
    pub var: u8,
    /// Bit `i` set iff successor `i` is a 0-stub.
    pub zero_mask: u8,
}

/// A drawn edge (including 0-stubs; renderers decide whether to retract
/// them).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct GraphEdge {
    /// Source node key.
    pub from: u32,
    /// Successor slot (`0..2` for vectors, `0..4` for matrices; slot
    /// `2·i + j` is the `U_{ij}` block).
    pub slot: u8,
    /// Target node key, or `None` for the terminal.
    pub to: Option<u32>,
    /// The edge weight.
    pub weight: Complex,
    /// Identity levels skipped between source and target (matrix diagrams
    /// only): the edge passes through this many levels as `I₂` without a
    /// node. Renderers draw skip edges with a distinct style and this
    /// count as a label.
    pub skip: u8,
}

impl GraphEdge {
    /// `true` for 0-stub edges.
    pub fn is_zero(&self) -> bool {
        self.weight == Complex::ZERO
    }
}

/// A decision diagram flattened for rendering: nodes in BFS (top-down,
/// left-to-right) order plus all edges.
#[derive(Clone, Debug, PartialEq)]
pub struct DdGraph {
    /// Vector or matrix diagram.
    pub kind: NodeKind,
    /// The root edge's weight.
    pub root_weight: Complex,
    /// The root node key (`None` when the whole diagram is a terminal/
    /// zero edge).
    pub root: Option<u32>,
    /// Nodes in BFS order.
    pub nodes: Vec<GraphNode>,
    /// All edges of drawn nodes, in `(node BFS index, slot)` order.
    pub edges: Vec<GraphEdge>,
    /// Number of variable levels spanned (`root var + 1`).
    pub num_levels: usize,
}

impl DdGraph {
    /// Extracts the graph of a state diagram.
    pub fn from_vector(dd: &DdPackage, e: VecEdge) -> Self {
        Self::extract(dd, e, NodeKind::Vector)
    }

    /// Extracts the graph of an operator diagram.
    pub fn from_matrix(dd: &DdPackage, e: MatEdge) -> Self {
        Self::extract(dd, e, NodeKind::Matrix)
    }

    /// Arity-generic extraction: one BFS (top-down, left-to-right — the
    /// order renderers lay nodes out in) over the shared traversal layer.
    fn extract<const N: usize>(dd: &DdPackage, e: Edge<N>, kind: NodeKind) -> Self
    where
        DdPackage: Traversable<N>,
    {
        let mut graph = DdGraph {
            kind,
            root_weight: dd.complex_value(e.weight),
            root: if e.is_terminal() { None } else { Some(e.node.raw()) },
            nodes: Vec::new(),
            edges: Vec::new(),
            num_levels: if e.is_terminal() {
                0
            } else {
                dd.node(e.node).var as usize + 1
            },
        };
        dd.visit_bfs(e, |id, node| {
            let mut zero_mask = 0u8;
            for (slot, child) in node.children.iter().enumerate() {
                if child.is_zero() {
                    zero_mask |= 1 << slot;
                }
                // Identity-skip annotation: in matrix diagrams an edge may
                // land strictly below the next level (or on the terminal
                // above level 0), passing through the gap as identity.
                let skip = if kind == NodeKind::Matrix && !child.is_zero() {
                    if child.is_terminal() {
                        node.var
                    } else {
                        node.var - 1 - dd.node(child.node).var
                    }
                } else {
                    0
                };
                graph.edges.push(GraphEdge {
                    from: id.raw(),
                    slot: slot as u8,
                    to: if child.is_terminal() {
                        None
                    } else {
                        Some(child.node.raw())
                    },
                    weight: dd.complex_value(child.weight),
                    skip,
                });
            }
            graph.nodes.push(GraphNode {
                key: id.raw(),
                var: node.var,
                zero_mask,
            });
        });
        graph
    }

    /// The number of successor slots per node (2 or 4).
    pub fn slots(&self) -> usize {
        match self.kind {
            NodeKind::Vector => 2,
            NodeKind::Matrix => 4,
        }
    }

    /// Nodes grouped per level, root level first.
    pub fn levels(&self) -> Vec<Vec<&GraphNode>> {
        let mut levels: Vec<Vec<&GraphNode>> = vec![Vec::new(); self.num_levels];
        for node in &self.nodes {
            let row = self.num_levels - 1 - node.var as usize;
            levels[row].push(node);
        }
        levels
    }

    /// `true` if any non-zero edge reaches the terminal (so renderers know
    /// whether to draw the terminal box).
    pub fn reaches_terminal(&self) -> bool {
        self.root.is_none() || self.edges.iter().any(|e| e.to.is_none() && !e.is_zero())
    }

    /// Number of drawn (non-terminal) nodes — the paper's size measure.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Serializes the graph to a compact JSON document (hand-rolled; the
    /// schema is small and fixed, so no serialization dependency is
    /// warranted).
    ///
    /// Schema:
    ///
    /// ```json
    /// {
    ///   "kind": "vector" | "matrix",
    ///   "numLevels": 2,
    ///   "rootWeight": {"re": 0.707, "im": 0.0},
    ///   "root": 12,
    ///   "nodes": [{"key": 12, "var": 1, "zeroMask": 0}],
    ///   "edges": [{"from": 12, "slot": 0, "to": 3,
    ///              "weight": {"re": 1.0, "im": 0.0}, "skip": 0}]
    /// }
    /// ```
    ///
    /// `"to": null` denotes the terminal; numbers are plain IEEE doubles.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let kind = match self.kind {
            NodeKind::Vector => "vector",
            NodeKind::Matrix => "matrix",
        };
        let _ = write!(out, "\"kind\":\"{kind}\",");
        let _ = write!(out, "\"numLevels\":{},", self.num_levels);
        let _ = write!(out, "\"rootWeight\":{},", complex_json(self.root_weight));
        match self.root {
            Some(key) => {
                let _ = write!(out, "\"root\":{key},");
            }
            None => out.push_str("\"root\":null,"),
        }
        out.push_str("\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"key\":{},\"var\":{},\"zeroMask\":{}}}",
                n.key, n.var, n.zero_mask
            );
        }
        out.push_str("],\"edges\":[");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let to = match e.to {
                Some(key) => key.to_string(),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{{\"from\":{},\"slot\":{},\"to\":{to},\"weight\":{},\"skip\":{}}}",
                e.from,
                e.slot,
                complex_json(e.weight),
                e.skip
            );
        }
        out.push_str("]}");
        out
    }
}

fn complex_json(c: Complex) -> String {
    format!("{{\"re\":{},\"im\":{}}}", json_number(c.re), json_number(c.im))
}

/// JSON has no NaN/Infinity; diagrams never contain them (the complex table
/// rejects non-finite values), but stay defensive.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gates, Control};

    fn bell_graph() -> DdGraph {
        let mut dd = DdPackage::new();
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
        let bell = dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap();
        DdGraph::from_vector(&dd, bell)
    }

    #[test]
    fn bell_graph_matches_fig_2a() {
        let g = bell_graph();
        assert_eq!(g.kind, NodeKind::Vector);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.num_levels, 2);
        // Root is the q1 node; two q0 nodes below.
        let levels = g.levels();
        assert_eq!(levels[0].len(), 1);
        assert_eq!(levels[1].len(), 2);
        // Each q0 node has exactly one 0-stub.
        for n in &levels[1] {
            assert_eq!(n.zero_mask.count_ones(), 1);
        }
        // Under L2 normalization the root weight is 1 (the 1/√2 factors
        // sit on the child edges; the paper's QMDD normalization instead
        // shows 1/√2 on the root — same diagram shape, different weight
        // placement).
        assert!((g.root_weight.re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bfs_order_starts_at_root() {
        let g = bell_graph();
        assert_eq!(Some(g.nodes[0].key), g.root);
        assert_eq!(g.nodes[0].var, 1);
    }

    #[test]
    fn edge_inventory_including_stubs() {
        let g = bell_graph();
        assert_eq!(g.edges.len(), 6, "3 nodes × 2 slots");
        let zero_edges = g.edges.iter().filter(|e| e.is_zero()).count();
        assert_eq!(zero_edges, 2);
        assert!(g.reaches_terminal());
    }

    #[test]
    fn matrix_graph_of_cnot_matches_fig_2c() {
        let mut dd = DdPackage::new();
        let cx = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).unwrap();
        let g = DdGraph::from_matrix(&dd, cx);
        assert_eq!(g.kind, NodeKind::Matrix);
        assert_eq!(g.slots(), 4);
        // Fig. 2(c) draws 3 nodes; under identity skip the idle I branch
        // is a pass-through edge, leaving the q1 root and the X node.
        assert_eq!(g.node_count(), 2);
        // Root has the two off-diagonal blocks as 0-stubs.
        assert_eq!(g.nodes[0].zero_mask, 0b0110);
        // The non-firing branch skips the q0 level to the terminal.
        let root_key = g.nodes[0].key;
        let skip_edge = g
            .edges
            .iter()
            .find(|e| e.from == root_key && e.slot == 0)
            .unwrap();
        assert_eq!(skip_edge.to, None);
        assert_eq!(skip_edge.skip, 1);
        // The firing branch lands on the X node without a gap.
        let fire_edge = g
            .edges
            .iter()
            .find(|e| e.from == root_key && e.slot == 3)
            .unwrap();
        assert_eq!(fire_edge.skip, 0);
    }

    #[test]
    fn terminal_only_graph() {
        let mut dd = DdPackage::new();
        let one = dd.intern(qdd_complex::Complex::ONE);
        let g = DdGraph::from_vector(&dd, VecEdge::terminal(one));
        assert_eq!(g.node_count(), 0);
        assert!(g.root.is_none());
        assert!(g.reaches_terminal());
    }

    #[test]
    fn shared_nodes_are_extracted_once() {
        let mut dd = DdPackage::new();
        // |++⟩ has one node per level (children share).
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 0).unwrap();
        let s = dd.apply_gate(s, gates::H, &[], 1).unwrap();
        let g = DdGraph::from_vector(&dd, s);
        assert_eq!(g.node_count(), 2);
        // The q1 node's two edges point to the same q0 node.
        let q0_key = g.nodes[1].key;
        let to_q0 = g
            .edges
            .iter()
            .filter(|e| e.to == Some(q0_key))
            .count();
        assert_eq!(to_q0, 2);
    }

    #[test]
    fn to_json_is_balanced_and_tagged() {
        let g = bell_graph();
        let json = g.to_json();
        assert!(json.contains("\"kind\":\"vector\""));
        assert!(json.contains("\"skip\":0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
